"""Unit tests for exact dyadic Gaussian arithmetic (repro.linalg.dyadic)."""

import pytest

from repro.linalg.dyadic import DyadicComplex


class TestNormalization:
    def test_even_numerators_reduce(self):
        assert DyadicComplex(2, 4, 1) == DyadicComplex(1, 2, 0)

    def test_zero_normalizes_to_exponent_zero(self):
        z = DyadicComplex(0, 0, 5)
        assert z.exponent == 0 and z.is_zero

    def test_odd_numerator_stops_reduction(self):
        z = DyadicComplex(1, 2, 3)
        assert (z.real_numerator, z.imag_numerator, z.exponent) == (1, 2, 3)

    def test_negative_exponent_folds_into_numerators(self):
        assert DyadicComplex(1, 0, -2) == DyadicComplex(4, 0, 0)

    def test_equal_values_hash_equal(self):
        assert hash(DyadicComplex(2, 0, 1)) == hash(DyadicComplex(1, 0, 0))


class TestConstructors:
    def test_from_int(self):
        assert DyadicComplex.from_int(7) == 7

    def test_i_unit(self):
        i = DyadicComplex.i()
        assert i * i == -1 + 0 * i  # i^2 = -1
        assert (i * i) == DyadicComplex(-1)

    def test_half(self):
        h = DyadicComplex.half(1, 1)
        assert h.to_complex() == 0.5 + 0.5j


class TestArithmetic:
    def test_addition_aligns_exponents(self):
        a = DyadicComplex(1, 0, 1)   # 1/2
        b = DyadicComplex(1, 0, 2)   # 1/4
        assert a + b == DyadicComplex(3, 0, 2)

    def test_int_coercion_both_sides(self):
        a = DyadicComplex(1, 1, 1)
        assert a + 1 == 1 + a
        assert a - 1 == -(1 - a)
        assert 2 * a == a * 2

    def test_subtraction(self):
        a = DyadicComplex(3, 1, 1)
        assert a - a == DyadicComplex(0)

    def test_multiplication_complex_rule(self):
        a = DyadicComplex(1, 1, 0)   # 1 + i
        b = DyadicComplex(1, -1, 0)  # 1 - i
        assert a * b == DyadicComplex(2)

    def test_v_entry_square(self):
        # ((1+i)/2)^2 = i/2 -- the off-diagonal of V*V computations.
        h = DyadicComplex.half(1, 1)
        assert h * h == DyadicComplex(0, 1, 1)

    def test_negation(self):
        a = DyadicComplex(1, -2, 3)
        assert a + (-a) == DyadicComplex(0)

    def test_halve(self):
        assert DyadicComplex(1).halve() == DyadicComplex(1, 0, 1)
        assert DyadicComplex(1, 0, 1).halve() == DyadicComplex(1, 0, 2)


class TestConjugation:
    def test_conjugate(self):
        a = DyadicComplex(1, 3, 2)
        assert a.conjugate() == DyadicComplex(1, -3, 2)

    def test_conjugate_involution(self):
        a = DyadicComplex(5, -7, 3)
        assert a.conjugate().conjugate() == a

    def test_abs_squared_is_real(self):
        a = DyadicComplex(1, 1, 1)  # (1+i)/2
        sq = a.abs_squared()
        assert sq.is_real
        assert sq == DyadicComplex(1, 0, 1)  # |.|^2 = 1/2

    def test_abs_squared_of_v_entries_sum_to_one(self):
        # Unitarity of a V row: |.5+.5i|^2 + |.5-.5i|^2 = 1.
        p = DyadicComplex.half(1, 1)
        m = DyadicComplex.half(1, -1)
        assert p.abs_squared() + m.abs_squared() == DyadicComplex(1)


class TestPredicates:
    def test_is_zero_is_one(self):
        assert DyadicComplex(0).is_zero
        assert DyadicComplex(1).is_one
        assert not DyadicComplex(1, 1).is_one

    def test_is_real(self):
        assert DyadicComplex(3, 0, 2).is_real
        assert not DyadicComplex(0, 1).is_real


class TestConversion:
    def test_to_complex(self):
        assert DyadicComplex(1, -1, 1).to_complex() == 0.5 - 0.5j
        assert complex(DyadicComplex(3)) == 3 + 0j

    def test_to_complex_is_exact_for_dyadics(self):
        # Dyadic rationals are exactly representable in binary floats.
        z = DyadicComplex(5, -3, 4)  # 5/16 - 3i/16
        assert z.to_complex() == complex(5 / 16, -3 / 16)


class TestFormatting:
    @pytest.mark.parametrize(
        "value,text",
        [
            (DyadicComplex(0), "0"),
            (DyadicComplex(3), "3"),
            (DyadicComplex(1, 1, 1), "1/2+1/2i"),
            (DyadicComplex(0, -1, 0), "-1i"),
            (DyadicComplex(1, -1, 2), "1/4-1/4i"),
        ],
    )
    def test_str(self, value, text):
        assert str(value) == text

    def test_repr_roundtrip(self):
        z = DyadicComplex(3, -5, 2)
        assert eval(repr(z)) == z  # noqa: S307 - controlled input

    def test_equality_against_other_types(self):
        assert DyadicComplex(2) == 2
        assert DyadicComplex(2) != "2"
