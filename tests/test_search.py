"""Unit tests for the cascade search engine (repro.core.search)."""

import pytest

from repro.errors import InvalidValueError
from repro.core.cost import CostModel
from repro.core.search import CascadeSearch
from repro.gates.kinds import GateKind
from repro.gates.library import GateLibrary
from repro.perm.permutation import Permutation

#: Level sizes measured by this reproduction (stable regression values).
EXPECTED_B_SIZES = [1, 18, 162, 1017, 5364, 25761]


class TestLevels:
    def test_level_zero_is_identity(self, search3):
        level = search3.level(0)
        assert len(level) == 1
        perm, mask = level[0]
        assert perm == bytes(range(38))
        assert mask == search3.s_mask

    def test_level_one_is_whole_library(self, search3):
        assert search3.level_size(1) == 18

    @pytest.mark.parametrize("cost", range(6))
    def test_level_sizes(self, search3, cost):
        assert search3.level_size(cost) == EXPECTED_B_SIZES[cost]

    def test_incremental_extension_is_idempotent(self, library3):
        search = CascadeSearch(library3, track_parents=False)
        search.extend_to(3)
        first = search.level_size(3)
        search.extend_to(3)
        assert search.level_size(3) == first
        search.extend_to(4)
        assert search.level_size(4) == EXPECTED_B_SIZES[4]

    def test_negative_bound_rejected(self, search3):
        with pytest.raises(InvalidValueError):
            search3.extend_to(-1)

    def test_total_seen_is_cumulative(self, library3):
        search = CascadeSearch(library3, track_parents=False)
        search.extend_to(3)
        assert search.total_seen() == sum(EXPECTED_B_SIZES[:4])


class TestReasonableProducts:
    def test_banned_masks_prune_extensions(self, library3):
        """V_BA leaves B mixed on binary inputs; no L_B/F*B gate may follow."""
        search = CascadeSearch(library3, track_parents=True)
        v_ba = library3.by_name("V_BA")
        forbidden_after_v_ba = {"V_AB", "V_CB", "V+_AB", "V+_CB",
                                "F_AB", "F_BA", "F_BC", "F_CB"}
        # Collect all 2-gate witnesses that start with V_BA.
        seconds = set()
        for perm, _mask in search.level(2):
            names = [g.name for g in search.witness_circuit(perm).gates]
            if names[0] == "V_BA":
                seconds.add(names[1])
        assert seconds  # some extensions exist
        assert not (seconds & forbidden_after_v_ba)

    def test_masks_describe_binary_images(self, search3):
        for perm, mask in search3.level(2):
            expected = 0
            for image in perm[:8]:
                expected |= 1 << image
            assert mask == expected


class TestCostQueries:
    def test_cost_of_identity(self, search3):
        assert search3.cost_of(bytes(range(38))) == 0

    def test_cost_of_single_gate(self, search3, library3):
        perm = library3.by_name("V_BA").permutation
        assert search3.cost_of(perm) == 1

    def test_cost_of_unknown(self, search3):
        # A permutation that is not a reasonable cascade: a bare swap of
        # two mixed labels.
        probe = Permutation.transposition(38, 20, 21)
        assert search3.cost_of(probe) is None

    def test_cost_is_minimal(self, search3, library3):
        # V * V+ on the same wires collapses to the identity (cost 0).
        v = library3.by_name("V_BA").permutation
        vdag = library3.by_name("V+_BA").permutation
        assert search3.cost_of(v * vdag) == 0


class TestWitnesses:
    def test_witness_reproduces_permutation(self, search3, library3):
        for perm, _mask in search3.level(3)[:50]:
            circuit = search3.witness_circuit(perm)
            assert len(circuit) == 3
            entries = [library3.entry_for(g) for g in circuit]
            assert library3.circuit_permutation(entries).images == perm

    def test_witness_indices_of_identity_is_empty(self, search3):
        assert search3.witness_indices(bytes(range(38))) == []

    def test_witness_requires_parent_tracking(self, library3):
        search = CascadeSearch(library3, track_parents=False)
        search.extend_to(1)
        perm, _mask = search.level(1)[0]
        with pytest.raises(InvalidValueError):
            search.witness_indices(perm)

    def test_witness_of_undiscovered_raises(self, search3):
        probe = Permutation.transposition(38, 20, 21)
        with pytest.raises(InvalidValueError):
            search3.witness_indices(probe)


class TestWeightedCosts:
    def test_weighted_levels_respect_gate_costs(self, library3):
        model = CostModel(v_cost=2, vdag_cost=2, cnot_cost=1)
        search = CascadeSearch(library3, model, track_parents=True)
        # At cost 1 only the 6 Feynman gates exist.
        names1 = {
            search.witness_circuit(p).gates[0].name
            for p, _m in search.level(1)
        }
        assert names1 == {"F_AB", "F_BA", "F_AC", "F_CA", "F_BC", "F_CB"}
        # V gates first appear at cost 2 (alongside Feynman pairs).
        kinds2 = set()
        for p, _m in search.level(2):
            kinds2.update(g.kind for g in search.witness_circuit(p).gates)
        assert GateKind.V in kinds2 and GateKind.VDAG in kinds2

    def test_weighted_witness_cost_matches_level(self, library3):
        model = CostModel(v_cost=2, vdag_cost=2, cnot_cost=1)
        search = CascadeSearch(library3, model, track_parents=True)
        for cost in (1, 2, 3):
            for perm, _mask in search.level(cost)[:30]:
                circuit = search.witness_circuit(perm)
                assert circuit.cost(model) == cost


class TestStats:
    def test_stats_snapshot(self, library3):
        search = CascadeSearch(library3, track_parents=False)
        search.extend_to(2)
        stats = search.stats()
        assert stats.cost_bound == 2
        assert stats.level_sizes == (1, 18, 162)
        assert stats.a_sizes == (1, 19, 181)
        assert stats.total_seen == 181
        assert stats.elapsed_seconds >= 0

    def test_properties(self, search3, library3):
        assert search3.library is library3
        assert search3.tracks_parents
        assert search3.cost_model.is_unit
