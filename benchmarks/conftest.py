"""Shared state for the benchmark harness.

Each benchmark regenerates one table or figure of the paper and asserts
the reproduced values, so ``pytest benchmarks/ --benchmark-only`` is both
a performance run and a results-regeneration run.  Run with ``-s`` to see
the regenerated tables printed.
"""

from __future__ import annotations

import pytest

from repro.baselines.nct import NCTSynthesizer
from repro.core.search import CascadeSearch
from repro.gates.library import GateLibrary


@pytest.fixture(scope="session")
def library3():
    return GateLibrary(3)


@pytest.fixture(scope="session")
def shared_search(library3):
    """One parent-tracking closure shared by all synthesis benchmarks."""
    return CascadeSearch(library3, track_parents=True)


@pytest.fixture(scope="session")
def nct_synthesizer():
    return NCTSynthesizer()
