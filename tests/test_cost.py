"""Unit tests for cost models (repro.core.cost)."""

import pytest

from repro.errors import InvalidValueError
from repro.core.cost import UNIT_COST, CostModel
from repro.gates.kinds import GateKind


class TestValidation:
    def test_unit_default(self):
        model = CostModel()
        assert model.is_unit
        assert UNIT_COST.is_unit

    def test_two_qubit_costs_must_be_positive(self):
        with pytest.raises(InvalidValueError):
            CostModel(v_cost=0)
        with pytest.raises(InvalidValueError):
            CostModel(cnot_cost=-1)
        with pytest.raises(InvalidValueError):
            CostModel(vdag_cost=0)

    def test_costs_must_be_integers(self):
        with pytest.raises(InvalidValueError):
            CostModel(v_cost=1.5)

    def test_not_cost_non_negative(self):
        with pytest.raises(InvalidValueError):
            CostModel(not_cost=-1)
        assert CostModel(not_cost=2).not_cost == 2


class TestGateCost:
    def test_unit_costs(self):
        assert UNIT_COST.gate_cost(GateKind.V) == 1
        assert UNIT_COST.gate_cost(GateKind.VDAG) == 1
        assert UNIT_COST.gate_cost(GateKind.CNOT) == 1
        assert UNIT_COST.gate_cost(GateKind.NOT) == 0

    def test_weighted_costs(self):
        model = CostModel(v_cost=3, vdag_cost=4, cnot_cost=2, not_cost=1)
        assert model.gate_cost(GateKind.V) == 3
        assert model.gate_cost(GateKind.VDAG) == 4
        assert model.gate_cost(GateKind.CNOT) == 2
        assert model.gate_cost(GateKind.NOT) == 1
        assert not model.is_unit

    def test_max_two_qubit_cost(self):
        model = CostModel(v_cost=3, vdag_cost=4, cnot_cost=2)
        assert model.max_two_qubit_cost == 4

    def test_classmethod_unit(self):
        assert CostModel.unit() == UNIT_COST

    def test_frozen(self):
        with pytest.raises(AttributeError):
            UNIT_COST.v_cost = 5
