"""Unit tests for machine synthesis specs (repro.automata.spec)."""

import pytest
from fractions import Fraction

from repro.errors import SpecificationError
from repro.automata.markov import MarkovChain
from repro.automata.spec import MachineSynthesisSpec, synthesize_machine
from repro.mvl.patterns import Pattern
from repro.mvl.values import Qv

HOLD_OR_RANDOMIZE_ROWS = {
    ((0,), (0,)): (0, 0),
    ((0,), (1,)): (0, 1),
    ((1,), (0,)): (1, "?"),
    ((1,), (1,)): (1, "?"),
}


class TestSpecValidation:
    def test_wires_must_partition(self):
        with pytest.raises(SpecificationError):
            MachineSynthesisSpec(
                input_wires=(0,), state_wires=(2,), rows=HOLD_OR_RANDOMIZE_ROWS
            )

    def test_all_rows_required(self):
        rows = dict(HOLD_OR_RANDOMIZE_ROWS)
        del rows[((1,), (1,))]
        with pytest.raises(SpecificationError):
            MachineSynthesisSpec(input_wires=(0,), state_wires=(1,), rows=rows)

    def test_row_width_checked(self):
        rows = dict(HOLD_OR_RANDOMIZE_ROWS)
        rows[((0,), (0,))] = (0,)
        spec = MachineSynthesisSpec(input_wires=(0,), state_wires=(1,), rows=rows)
        with pytest.raises(SpecificationError):
            spec.to_probabilistic_spec()

    def test_bad_symbol_rejected(self):
        rows = dict(HOLD_OR_RANDOMIZE_ROWS)
        rows[((0,), (0,))] = (0, "x")
        spec = MachineSynthesisSpec(input_wires=(0,), state_wires=(1,), rows=rows)
        with pytest.raises(SpecificationError):
            spec.to_probabilistic_spec()

    def test_n_qubits(self):
        spec = MachineSynthesisSpec(
            input_wires=(0,), state_wires=(1,), rows=HOLD_OR_RANDOMIZE_ROWS
        )
        assert spec.n_qubits == 2


class TestCompilation:
    def test_fair_coin_encoding_keeps_rows_distinct(self):
        spec = MachineSynthesisSpec(
            input_wires=(0,), state_wires=(1,), rows=HOLD_OR_RANDOMIZE_ROWS
        )
        prob_spec = spec.to_probabilistic_spec()
        # '?' on a wire carrying 0 becomes V0; carrying 1 becomes V1.
        assert prob_spec.outputs[2] == Pattern([1, Qv.V0])
        assert prob_spec.outputs[3] == Pattern([1, Qv.V1])
        assert len(set(prob_spec.outputs)) == 4


class TestSynthesizeMachine:
    def test_end_to_end(self, library2):
        spec = MachineSynthesisSpec(
            input_wires=(0,), state_wires=(1,), rows=HOLD_OR_RANDOMIZE_ROWS
        )
        machine, result = synthesize_machine(spec, library2)
        assert result.cost == 1
        assert result.circuit.names() == ("V_BA",)
        chain = MarkovChain.from_machine(machine, (1,))
        half = Fraction(1, 2)
        assert chain.matrix == ((half, half), (half, half))

    def test_width_mismatch_rejected(self, library3):
        spec = MachineSynthesisSpec(
            input_wires=(0,), state_wires=(1,), rows=HOLD_OR_RANDOMIZE_ROWS
        )
        with pytest.raises(SpecificationError):
            synthesize_machine(spec, library3)

    def test_three_wire_machine(self, library3, search3):
        # Enable wire randomizes two state wires at once.
        rows = {}
        for inp in ((0,), (1,)):
            for s1 in (0, 1):
                for s2 in (0, 1):
                    symbol = "?" if inp[0] else None
                    rows[(inp, (s1, s2))] = (
                        inp[0],
                        symbol if symbol else s1,
                        symbol if symbol else s2,
                    )
        spec = MachineSynthesisSpec(
            input_wires=(0,), state_wires=(1, 2), rows=rows
        )
        machine, result = synthesize_machine(spec, library3, search=search3)
        assert result.cost == 2
        chain = MarkovChain.from_machine(machine, (1,))
        assert all(p == Fraction(1, 4) for row in chain.matrix for p in row)
