"""Entanglement structure: the binary-control discipline keeps states
separable; violating it creates entanglement the simulator can detect."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.circuit import Circuit
from repro.gates.library import GateLibrary
from repro.mvl.patterns import binary_patterns
from repro.sim.statevector import StatevectorSimulator

_LIBRARY = GateLibrary(3)
_GATE_NAMES = [e.name for e in _LIBRARY.gates]


class TestProductStateDetection:
    def test_basis_states_are_product(self):
        sim = StatevectorSimulator(3)
        for index in range(8):
            assert sim.is_product_state(sim.initial_state(index))

    def test_ghz_like_state_is_entangled(self):
        sim = StatevectorSimulator(2)
        bell = np.array([1, 0, 0, 1], dtype=np.complex128) / np.sqrt(2)
        assert not sim.is_product_state(bell)

    def test_superposition_product_state(self):
        sim = StatevectorSimulator(2)
        plus = np.array([1, 1], dtype=np.complex128) / np.sqrt(2)
        state = np.kron(plus, np.array([1, 0], dtype=np.complex128))
        assert sim.is_product_state(state)


class TestBinaryControlDiscipline:
    @given(names=st.lists(st.sampled_from(_GATE_NAMES), min_size=0, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_reasonable_cascades_never_entangle(self, names):
        """If the cascade is reasonable, every binary input stays a
        product state at the output -- the unitary-side justification of
        the paper's quaternary abstraction."""
        circuit = Circuit.from_names(names, 3)
        if not circuit.is_reasonable():
            return
        sim = StatevectorSimulator(3)
        for pattern in binary_patterns(3):
            state = sim.run(circuit, pattern)
            assert sim.is_product_state(state)

    def test_unreasonable_cascade_can_entangle(self):
        """A V-control on a mixed wire -- exactly what the banned sets
        forbid -- produces genuine entanglement."""
        # V_BA puts B into V0 (input A=1); V_CB then "controls" on the
        # mixed wire B, entangling B and C.
        circuit = Circuit.from_names("V_BA V_CB", 3)
        assert not circuit.is_reasonable()
        sim = StatevectorSimulator(3)
        state = sim.run(circuit, sim.initial_state(4))  # |100>
        assert not sim.is_product_state(state)

    def test_entangled_state_not_describable_by_any_pattern(self):
        """The MV abstraction has no value for the entangled state --
        quantifying why the don't-care entries are don't-cares."""
        from repro.sim.statevector import pattern_statevector
        from repro.mvl.patterns import all_patterns

        circuit = Circuit.from_names("V_BA V_CB", 3)
        sim = StatevectorSimulator(3)
        state = sim.run(circuit, sim.initial_state(4))
        for pattern in all_patterns(3):
            assert not np.allclose(state, pattern_statevector(pattern))
