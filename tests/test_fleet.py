"""Fleet tests: ring, breaker, router, supervisor, and chaos e2e.

Unit-tests the consistent-hash ring (stability under member loss), the
circuit breaker's state machine against a fake clock, the supervisor's
propose/verify stages against fake managers, then proves the whole
fleet end to end: a 2-replica fleet returns byte-identical results to
a single server, killing the preferred replica mid-64-call-run loses
nothing and the ops log shows the full detect -> restart -> recovered
-> readmit story, and a saturated single-replica fleet sheds with
``FLEET_OVERLOADED`` instead of queueing without bound.  Also the
client-retry and access-log-rotation satellites.
"""

from __future__ import annotations

import json
import os
import shutil
import socket
import tempfile
import threading
import time

import pytest

from repro.cli import main
from repro.client import ServeClient
from repro.core.batch import BatchSynthesizer
from repro.core.search import CascadeSearch
from repro.core.store import save_search
from repro.errors import FleetOverloadedError, ServerError
from repro.fleet.manager import BackgroundFleet, FleetManager
from repro.fleet.router import CircuitBreaker, HashRing, RouterService
from repro.fleet.supervisor import Finding, GuardRails, Proposal, Supervisor
from repro.gates.library import GateLibrary
from repro.io import load_access_log, open_store, result_to_dict
from repro.server import BackgroundServer
from repro.server.protocol import decode_request_line

BOUND = 4


@pytest.fixture(scope="module")
def store_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("fleet") / "closure.rpro"
    search = CascadeSearch(GateLibrary(3), track_parents=True)
    search.extend_to(BOUND)
    save_search(search, path)
    return str(path)


@pytest.fixture(scope="module")
def reference(store_path):
    _header, _library, search = open_store(store_path)
    return BatchSynthesizer(search)


@pytest.fixture(scope="module")
def fleet(store_path):
    with BackgroundFleet(
        store_path, replicas=2, port=0, interval=0.3
    ) as handle:
        yield handle


def _preferred_index(replicas: int = 2, key: str = "") -> int:
    """Which replica the router prefers for *key* (deterministic)."""
    ring = HashRing()
    for index in range(replicas):
        ring.add(f"backend-{index}")
    return int(ring.order(key)[0].rsplit("-", 1)[1])


class TestHashRing:
    def test_order_is_deterministic_and_complete(self):
        ring = HashRing()
        for name in ("a", "b", "c"):
            ring.add(name)
        first = ring.order("store-x")
        assert sorted(first) == ["a", "b", "c"]
        assert ring.order("store-x") == first

    def test_different_keys_spread(self):
        ring = HashRing()
        for name in ("a", "b", "c", "d"):
            ring.add(name)
        preferred = {ring.order(f"key-{i}")[0] for i in range(64)}
        assert len(preferred) >= 3  # not everything lands on one member

    def test_removing_member_only_moves_its_keys(self):
        ring = HashRing()
        for name in ("a", "b", "c"):
            ring.add(name)
        keys = [f"key-{i}" for i in range(128)]
        before = {key: ring.order(key)[0] for key in keys}
        ring.remove("c")
        after = {key: ring.order(key)[0] for key in keys}
        for key in keys:
            if before[key] != "c":
                assert after[key] == before[key]
            else:
                assert after[key] in ("a", "b")

    def test_add_and_remove_are_idempotent(self):
        ring = HashRing()
        ring.add("a")
        before = ring.order("key")
        ring.add("a")  # duplicate add: no extra virtual points
        assert ring.order("key") == before
        ring.remove("b")  # unknown remove: no-op
        assert ring.order("key") == before
        assert ring.names == frozenset({"a"})


class TestCircuitBreaker:
    def make(self, threshold=3, cooldown=10.0):
        clock = [0.0]
        breaker = CircuitBreaker(
            threshold=threshold, cooldown=cooldown, clock=lambda: clock[0]
        )
        return breaker, clock

    def test_trips_after_threshold_consecutive_failures(self):
        breaker, _clock = self.make(threshold=3)
        assert breaker.state == "closed"
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.opened_total == 1

    def test_success_resets_the_failure_run(self):
        breaker, _clock = self.make(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_single_probe_then_close(self):
        breaker, clock = self.make(threshold=1, cooldown=5.0)
        breaker.record_failure()
        assert breaker.state == "open"
        clock[0] = 5.1
        assert breaker.state == "half-open"
        assert breaker.allow()       # the probe slot
        assert not breaker.allow()   # only one probe at a time
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        breaker, clock = self.make(threshold=1, cooldown=5.0)
        breaker.record_failure()
        clock[0] = 5.1
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        clock[0] = 5.1 + 5.1  # a fresh cooldown starts at the re-trip
        assert breaker.state == "half-open"

    def test_release_probe_returns_the_slot(self):
        breaker, clock = self.make(threshold=1, cooldown=1.0)
        breaker.record_failure()
        clock[0] = 1.1
        assert breaker.allow()
        breaker.release_probe()  # attempt was cancelled, not judged
        assert breaker.allow()


class TestRouterUnits:
    def test_healthz_is_answered_locally(self):
        import asyncio

        router = RouterService({"b0": "unix:/tmp/absent-0.sock"})
        request = decode_request_line(b'{"id": 1, "op": "healthz"}')
        payload = asyncio.run(router.handle(request))
        assert payload["role"] == "router"
        assert payload["status"] == "ok"
        assert "b0" in payload["backends"]

    def test_degraded_when_every_backend_is_out(self):
        import asyncio

        router = RouterService({"b0": "unix:/tmp/absent-0.sock"})
        assert router.set_admitted("b0", False) is True
        assert router.set_admitted("b0", False) is False  # no change
        request = decode_request_line(b'{"id": 1, "op": "healthz"}')
        payload = asyncio.run(router.handle(request))
        assert payload["status"] == "degraded"
        assert payload["healthy_backends"] == 0

    def test_unknown_backend_name_raises(self):
        router = RouterService({"b0": "unix:/tmp/absent-0.sock"})
        with pytest.raises(ServerError):
            router.backend("nope")

    def test_routing_with_no_admitted_backend_fails_cleanly(self):
        import asyncio

        router = RouterService({"b0": "unix:/tmp/absent-0.sock"})
        router.set_admitted("b0", False)
        request = decode_request_line(
            b'{"id": 1, "op": "store-info", "params": {}}'
        )
        with pytest.raises(ServerError, match="no admitted backends"):
            asyncio.run(router.handle(request))


class _FakeBackend:
    def __init__(self, name, alive=True, supervised=True):
        self.name = name
        self.endpoint = f"unix:/tmp/absent-{name}.sock"
        self.access_log = None
        # Live fakes have no real healthz endpoint; keeping them inside
        # the grace window suppresses the (correct) unresponsive finding.
        self.spawned_at = (
            time.monotonic() if alive else time.monotonic() - 3600
        )
        self.restart_times: list[float] = []
        self.supervised = supervised
        self._alive = alive
        self._exit_code = None if alive else 70

    def alive(self):
        return self._alive

    def exit_code(self):
        return self._exit_code


class _FakeManager:
    def __init__(self, backends):
        self.backends = {backend.name: backend for backend in backends}
        self.restarts: list[str] = []

    def restart(self, name):
        self.restarts.append(name)
        self.backends[name].restart_times.append(time.monotonic())


def _make_supervisor(backends, ops_log=None, **rails):
    manager = _FakeManager(backends)
    router = RouterService({
        backend.name: backend.endpoint for backend in backends
    })
    supervisor = Supervisor(
        router, manager, ops_log=ops_log,
        guardrails=GuardRails(**rails) if rails else GuardRails(),
    )
    return supervisor, manager, router


class TestSupervisorStages:
    def test_dead_supervised_backend_is_restarted_and_ejected(self):
        import asyncio

        supervisor, manager, router = _make_supervisor(
            [_FakeBackend("b0", alive=False), _FakeBackend("b1")],
        )
        records = asyncio.run(supervisor.run_cycle())
        by_backend = {record["backend"]: record for record in records}
        record = by_backend["b0"]
        assert record["finding"] == "dead"
        assert record["action"] == "restart"
        assert record["verdict"] == "approved" and record["applied"]
        assert manager.restarts == ["b0"]
        # Restarted backends come back EJECTED; a later healthy probe
        # earns re-admission as its own logged decision.
        assert router.backend("b0").admitted is False

    def test_dead_unsupervised_backend_is_ejected_not_restarted(self):
        import asyncio

        supervisor, manager, router = _make_supervisor(
            [_FakeBackend("b0", alive=False, supervised=False),
             _FakeBackend("b1")],
        )
        records = asyncio.run(supervisor.run_cycle())
        record = {r["backend"]: r for r in records}["b0"]
        assert record["action"] == "eject" and record["applied"]
        assert manager.restarts == []
        assert router.backend("b0").admitted is False

    def test_cooldown_vetoes_back_to_back_actions(self):
        import asyncio

        supervisor, manager, _router = _make_supervisor(
            [_FakeBackend("b0", alive=False)], cooldown_s=60.0,
        )
        first = asyncio.run(supervisor.run_cycle())
        second = asyncio.run(supervisor.run_cycle())
        assert first[0]["verdict"] == "approved"
        assert second[0]["verdict"] == "rejected"
        assert "cooldown" in second[0]["reason"]
        assert manager.restarts == ["b0"]  # only the first applied

    def test_restart_budget_vetoes_crash_loops(self):
        import asyncio

        backend = _FakeBackend("b0", alive=False)
        backend.restart_times = [time.monotonic()] * 3
        supervisor, manager, _router = _make_supervisor(
            [backend], cooldown_s=0.0, restart_budget=3,
        )
        records = asyncio.run(supervisor.run_cycle())
        assert records[0]["verdict"] == "rejected"
        assert "restart-budget" in records[0]["reason"]
        assert manager.restarts == []

    def test_min_healthy_floor_protects_healthy_replicas(self):
        supervisor, _manager, _router = _make_supervisor(
            [_FakeBackend("b0"), _FakeBackend("b1")], min_healthy=1,
        )
        supervisor._healthy_now = {"b0"}
        verdict, reason = supervisor._verify(
            Proposal("b0", "eject", "slow")
        )
        assert verdict == "rejected" and "min-healthy" in reason
        supervisor._healthy_now = {"b0", "b1"}
        verdict, _reason = supervisor._verify(
            Proposal("b0", "eject", "slow")
        )
        assert verdict == "approved"

    def test_min_healthy_does_not_protect_dead_replicas(self):
        supervisor, _manager, _router = _make_supervisor(
            [_FakeBackend("b0", alive=False)], min_healthy=1,
        )
        supervisor._healthy_now = set()  # b0 is dead, protects nothing
        verdict, _reason = supervisor._verify(
            Proposal("b0", "restart", "dead")
        )
        assert verdict == "approved"

    def test_recovered_finding_proposes_readmit(self):
        import asyncio

        supervisor, _manager, router = _make_supervisor(
            [_FakeBackend("b0")],
        )
        router.set_admitted("b0", False)
        proposal = supervisor._propose(
            Finding("b0", "recovered", "healthz ok while ejected")
        )
        assert proposal == Proposal(
            "b0", "readmit", "healthz ok while ejected"
        )
        asyncio.run(supervisor._apply(proposal))
        assert router.backend("b0").admitted is True

    def test_degradation_findings_propose_eject(self):
        supervisor, _manager, _router = _make_supervisor(
            [_FakeBackend("b0")],
        )
        for kind in ("latency", "queue-wait", "error-rate"):
            proposal = supervisor._propose(Finding("b0", kind, "x"))
            assert proposal is not None and proposal.action == "eject"

    def test_decisions_land_in_the_ops_log(self, tmp_path):
        import asyncio

        ops_log = str(tmp_path / "ops.ndjson")
        supervisor, _manager, _router = _make_supervisor(
            [_FakeBackend("b0", alive=False)], ops_log=ops_log,
        )

        async def run():
            await supervisor.start()
            try:
                await asyncio.sleep(0.1)
            finally:
                await supervisor.stop()

        asyncio.run(run())
        with open(ops_log, encoding="utf-8") as handle:
            records = [json.loads(line) for line in handle]
        assert any(
            record["finding"] == "dead" and record["action"] == "restart"
            for record in records
        )


class TestFleetEndToEnd:
    def test_healthz_shows_router_and_both_backends(self, fleet):
        with ServeClient(fleet.address_text) as client:
            payload = client.healthz()
        assert payload["role"] == "router"
        assert payload["status"] == "ok"
        assert payload["healthy_backends"] == 2
        assert set(payload["backends"]) == {"backend-0", "backend-1"}

    def test_results_byte_identical_to_single_server(
        self, fleet, store_path, reference
    ):
        targets = []
        for cost in range(BOUND + 1):
            targets.extend(reference.targets_at_cost(cost, True))
        specs = [target.cycle_string() for target in targets[:64]]
        assert len(specs) == 64
        with BackgroundServer(store_path) as single:
            with ServeClient(single.address_text) as direct, \
                    ServeClient(fleet.address_text) as routed:
                want = direct.synth_batch(specs)
                got = routed.synth_batch(specs)
        dump = lambda payload: json.dumps(  # noqa: E731
            payload, sort_keys=True, separators=(",", ":")
        )
        assert dump(got) == dump(want)
        assert got["failures"] == 0

    def test_fleet_status_cli_renders(self, fleet, capsys):
        assert main(["fleet", "status", fleet.address_text]) == 0
        out = capsys.readouterr().out
        assert "router" in out
        assert "backend-0" in out and "backend-1" in out
        assert main(["fleet", "status", fleet.address_text,
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["role"] == "router"

    def test_structured_errors_round_trip_through_the_router(self, fleet):
        from repro.errors import CostBoundExceededError

        with ServeClient(fleet.address_text) as client:
            with pytest.raises(CostBoundExceededError):
                client.synth("toffoli")  # cost 5 > stored bound 4


class TestChaosEndToEnd:
    def test_replica_crash_mid_run_is_invisible_and_audited(
        self, store_path, reference
    ):
        """Kill the preferred replica mid-run: zero client-visible
        errors, byte-identical results, and an ops log telling the full
        detect -> restart -> recovered -> readmit story."""
        from repro.gates import named

        crash_index = _preferred_index(replicas=2)
        specs = ["peres", "g2", "g3", "g4"] * 16  # 64 calls
        expected = {
            spec: result_to_dict(reference.synthesize(named.TARGETS[spec]))
            for spec in set(specs)
        }
        with BackgroundFleet(
            store_path,
            replicas=2,
            port=0,
            faults={crash_index: "exit-after:8"},
            interval=0.2,
            guardrails=GuardRails(min_healthy=1, cooldown_s=0.3),
        ) as fleet:
            with ServeClient(fleet.address_text, retries=2) as client:
                for spec in specs:
                    payload = client.synth(spec)
                    assert payload["results"][0] == expected[spec]
            crashed = f"backend-{crash_index}"
            deadline = time.monotonic() + 30
            story = set()
            while time.monotonic() < deadline:
                story = {
                    (record["finding"], record["action"])
                    for record in fleet.supervisor.decisions
                    if record.get("backend") == crashed
                    and record.get("applied")
                }
                if ("dead", "restart") in story and \
                        ("recovered", "readmit") in story:
                    break
                time.sleep(0.2)
            assert ("dead", "restart") in story
            assert ("recovered", "readmit") in story
            with open(fleet.ops_log, encoding="utf-8") as handle:
                logged = [json.loads(line) for line in handle]
            assert {
                (record["finding"], record["action"])
                for record in logged
                if record["backend"] == crashed and record["applied"]
            } >= {("dead", "restart"), ("recovered", "readmit")}
            # After recovery the fleet is whole again.
            with ServeClient(fleet.address_text) as client:
                health = client.healthz()
            assert health["healthy_backends"] == 2

    def test_saturated_fleet_sheds_with_structured_error(self, store_path):
        """One replica, one in-flight slot: overlapping requests shed
        with FLEET_OVERLOADED instead of queueing."""
        with BackgroundFleet(
            store_path,
            replicas=1,
            port=0,
            faults={0: "slow:700"},
            max_inflight=1,
            interval=5.0,  # keep supervisor probes out of the way
        ) as fleet:
            results: dict = {}

            def slow_call():
                with ServeClient(fleet.address_text) as client:
                    results["first"] = client.synth("peres")["cost"]

            thread = threading.Thread(target=slow_call)
            thread.start()
            time.sleep(0.25)  # first request is now holding the slot
            with ServeClient(fleet.address_text) as client:
                with pytest.raises(FleetOverloadedError):
                    client.synth("g2")
            thread.join(timeout=30)
            assert results.get("first") == 4
            # Shedding is visible in the router's own counters.
            with ServeClient(fleet.address_text) as client:
                assert client.healthz()["shed"] >= 1


class TestFleetManagerUnits:
    def test_rejects_bad_configuration(self, store_path):
        from repro.errors import SpecificationError

        with pytest.raises(SpecificationError):
            FleetManager([store_path], replicas=0)
        with pytest.raises(SpecificationError):
            FleetManager([])
        with pytest.raises(SpecificationError):
            FleetManager([store_path], replicas=2, faults={5: "slow:1"})

    def test_backend_argv_and_run_files(self, store_path, tmp_path):
        run_dir = str(tmp_path / "run")
        manager = FleetManager(
            [store_path], replicas=2, run_dir=run_dir,
            faults={1: "exit-after:9"}, fault_seed=3,
        )
        assert sorted(manager.backends) == ["backend-0", "backend-1"]
        b0, b1 = (manager.backends[n] for n in sorted(manager.backends))
        assert b0.fault is None and b1.fault == "exit-after:9"
        assert "--no-tcp" in b0.argv and store_path in b0.argv
        assert b0.endpoint == f"unix:{os.path.join(run_dir, 'b0.sock')}"
        assert manager.endpoints() == {
            "backend-0": b0.endpoint, "backend-1": b1.endpoint,
        }


class TestClientRetries:
    def _flaky_server(self, failures_before_success):
        """A TCP server that drops N connections, then speaks NDJSON."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(8)
        state = {"drops": 0}

        def run():
            remaining = failures_before_success
            while True:
                try:
                    conn, _addr = listener.accept()
                except OSError:
                    return
                if remaining > 0:
                    remaining -= 1
                    state["drops"] += 1
                    conn.close()
                    continue
                with conn:
                    stream = conn.makefile("rwb")
                    line = stream.readline()
                    if not line:
                        continue
                    request = json.loads(line)
                    reply = {
                        "id": request["id"], "ok": True,
                        "result": {"status": "ok"},
                    }
                    stream.write(json.dumps(reply).encode() + b"\n")
                    stream.flush()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        host, port = listener.getsockname()
        return listener, f"{host}:{port}", state

    def test_retries_ride_out_dropped_connections(self):
        listener, address, state = self._flaky_server(2)
        try:
            with ServeClient(address, retries=3, backoff=0.01) as client:
                assert client.call("healthz")["status"] == "ok"
            assert state["drops"] == 2
        finally:
            listener.close()

    def test_default_client_still_fails_fast(self):
        listener, address, _state = self._flaky_server(1)
        try:
            with ServeClient(address) as client:  # retries=0 default
                with pytest.raises(ServerError):
                    client.call("healthz")
        finally:
            listener.close()

    def test_constructor_validates_retry_arguments(self):
        with pytest.raises(ValueError):
            ServeClient("127.0.0.1:1", retries=-1)
        with pytest.raises(ValueError):
            ServeClient("127.0.0.1:1", backoff=-0.5)


class TestAccessLogRotation:
    def test_rotation_keeps_every_record_across_files(self, store_path):
        workdir = tempfile.mkdtemp(prefix="repro-rotate-")
        log = os.path.join(workdir, "access.ndjson")
        calls = 40
        try:
            # ~140 bytes/record: 40 records span several 1 KiB files
            # but fit comfortably inside the keep window of 8.
            with BackgroundServer(
                store_path,
                access_log=log,
                access_log_max_bytes=1024,
                access_log_keep=8,
            ) as srv:
                with ServeClient(srv.address_text) as client:
                    for _ in range(calls):
                        client.synth("peres")
            rotated = [
                name for name in os.listdir(workdir)
                if name.startswith("access.ndjson.")
            ]
            assert len(rotated) >= 2, "expected several rotated files"
            assert len(rotated) <= 8
            records = load_access_log(log, rotated=True)
            synths = [r for r in records if r["op"] == "synth"]
            assert len(synths) == calls
            # Oldest-first ordering across the whole rotated set.
            stamps = [r["ts"] for r in records]
            assert stamps == sorted(stamps)
        finally:
            shutil.rmtree(workdir, ignore_errors=True)

    def test_without_rotated_flag_only_active_file_is_read(
        self, store_path
    ):
        workdir = tempfile.mkdtemp(prefix="repro-rotate2-")
        log = os.path.join(workdir, "access.ndjson")
        try:
            with BackgroundServer(
                store_path,
                access_log=log,
                access_log_max_bytes=512,
                access_log_keep=2,
            ) as srv:
                with ServeClient(srv.address_text) as client:
                    for _ in range(40):
                        client.synth("peres")
            active_only = load_access_log(log)
            everything = load_access_log(log, rotated=True)
            assert len(everything) > len(active_only)
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
