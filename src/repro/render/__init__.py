"""Plain-text rendering: circuit diagrams and paper-style tables."""

from repro.render.diagram import circuit_diagram
from repro.render.tables import (
    format_table,
    truth_table_text,
    cost_table_text,
    comparison_table_text,
)

__all__ = [
    "circuit_diagram",
    "format_table",
    "truth_table_text",
    "cost_table_text",
    "comparison_table_text",
]
