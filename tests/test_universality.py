"""Unit tests for the G[4] analysis (repro.core.universality) -- Section 5."""

import pytest

from repro.core.universality import (
    analyze_g4,
    feynman_word_lengths,
    is_universal,
    match_paper_representatives,
    wire_relabeling_orbit,
)
from repro.gates import named


@pytest.fixture(scope="module")
def analysis(cost_table5):
    return analyze_g4(cost_table5)


class TestG4Decomposition:
    def test_g4_splits_60_plus_24(self, analysis):
        # Paper: "there are 60 circuits realized by 4 Feynman gates, the
        # other 24 circuits realized by 3 control gates and 1 Feynman".
        assert len(analysis.feynman_only) == 60
        assert len(analysis.control_using) == 24

    def test_exactly_the_24_are_universal(self, analysis):
        assert len(analysis.universal) == 24
        assert set(analysis.universal) == set(analysis.control_using)

    def test_four_orbits_of_six(self, analysis):
        # "There are four representative circuits ... each of these four
        # circuits has other five similar circuits."
        assert [len(orbit) for orbit in analysis.orbits] == [6, 6, 6, 6]

    def test_orbits_partition_control_using(self, analysis):
        all_members = [p for orbit in analysis.orbits for p in orbit]
        assert sorted(all_members, key=lambda p: p.images) == sorted(
            analysis.control_using, key=lambda p: p.images
        )

    def test_paper_gates_land_in_distinct_orbits(self, analysis):
        mapping = match_paper_representatives(analysis)
        assert sorted(mapping) == ["g1", "g2", "g3", "g4"]
        assert len(set(mapping.values())) == 4

    def test_representatives_are_orbit_minima(self, analysis):
        for orbit, rep in zip(analysis.orbits, analysis.representatives):
            assert rep == orbit[0]


class TestWitnessStructure:
    def test_control_using_members_need_3_controlled_gates(
        self, analysis, search3, library3
    ):
        # Each control-using member's witness: 3 V/V+ + 1 Feynman.
        from repro.gates.kinds import GateKind

        s_mask = search3.s_mask
        for target in analysis.control_using[:6]:
            wanted = target.images
            witnesses = [
                p
                for p, m in search3.level(4)
                if m == s_mask and p[:8] == wanted
            ]
            assert witnesses
            circuit = search3.witness_circuit(witnesses[0])
            kinds = [g.kind for g in circuit]
            assert kinds.count(GateKind.CNOT) == 1
            assert len(kinds) == 4

    def test_feynman_only_members_have_cnot_witnesses(
        self, analysis, search3, library3
    ):
        from repro.gates.kinds import GateKind

        s_mask = search3.s_mask
        for target in analysis.feynman_only[:6]:
            wanted = target.images
            witnesses = [
                p
                for p, m in search3.level(4)
                if m == s_mask and p[:8] == wanted
            ]
            kind_sets = []
            for w in witnesses:
                circuit = search3.witness_circuit(w)
                kind_sets.append({g.kind for g in circuit})
            assert {GateKind.CNOT} in kind_sets


class TestFeynmanWordLengths:
    def test_reachable_set_is_gl32(self):
        lengths = feynman_word_lengths()
        assert len(lengths) == 168

    def test_identity_has_length_zero(self):
        lengths = feynman_word_lengths()
        assert lengths[named.IDENTITY3] == 0

    def test_single_gates_have_length_one(self):
        lengths = feynman_word_lengths()
        assert lengths[named.cnot_target(1, 0)] == 1

    def test_swap_needs_three(self):
        lengths = feynman_word_lengths()
        assert lengths[named.swap_target(0, 1)] == 3


class TestIsUniversal:
    def test_peres_family_universal(self):
        for gate in (named.PERES, named.G2, named.G3, named.G4):
            assert is_universal(gate)

    def test_toffoli_universal(self):
        assert is_universal(named.TOFFOLI)

    def test_linear_gates_not_universal(self):
        assert not is_universal(named.cnot_target(1, 0))
        assert not is_universal(named.swap_target(0, 1))
        assert not is_universal(named.IDENTITY3)


class TestOrbits:
    def test_orbit_of_peres_has_six_members(self):
        orbit = wire_relabeling_orbit(named.PERES)
        assert len(orbit) == 6
        assert named.PERES in orbit

    def test_orbit_closed_under_relabeling(self):
        orbit = wire_relabeling_orbit(named.G3)
        for member in orbit:
            assert wire_relabeling_orbit(member) == orbit

    def test_toffoli_orbit_smaller(self):
        # Toffoli is symmetric in its two controls: orbit size 3.
        assert len(wire_relabeling_orbit(named.TOFFOLI)) == 3
