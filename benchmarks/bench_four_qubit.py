"""A3 (extension) -- the same machinery on 4 qubits.

The paper's formulation generalizes beyond 3 qubits: for n = 4 the
reduced label space has 4^4 - 3^4 + 1 = 176 labels and the library has
36 gates.  These benchmarks chart the cost spectrum (values the paper
never computed), confirm that an embedded 3-qubit Toffoli still costs 5
on the wider register, and measure the search growth.
"""

from repro.core.fmcf import find_minimum_cost_circuits
from repro.core.mce import express
from repro.core.search import CascadeSearch
from repro.gates import named
from repro.gates.library import GateLibrary
from repro.render.tables import format_table

#: measured by this reproduction
EXPECTED_G4Q = [1, 12, 96, 542, 2154]
EXPECTED_B4Q = [1, 36, 684, 9354, 104850]


def test_four_qubit_cost_spectrum(benchmark):
    library = GateLibrary(4)

    def run():
        return find_minimum_cost_circuits(library, cost_bound=4)

    table = benchmark.pedantic(run, rounds=3, iterations=1)
    assert table.g_sizes == EXPECTED_G4Q
    assert table.b_sizes == EXPECTED_B4Q
    rows = [["|G[k]| (n=4)", *table.g_sizes], ["|B[k]| (n=4)", *table.b_sizes]]
    print("\n" + format_table(["k", *range(5)], rows))


def test_four_qubit_space_structure(benchmark):
    def build():
        library = GateLibrary(4)
        return library

    library = benchmark(build)
    assert library.space.size == 176
    assert len(library) == 36
    # S16[k] factor is 2**4 = 16 by Theorem 2.
    table = find_minimum_cost_circuits(library, cost_bound=2)
    assert table.s8_sizes == [16 * g for g in table.g_sizes]


def test_embedded_toffoli_cost_invariant(benchmark):
    """A 3-qubit Toffoli on a 4-qubit register still costs 5."""
    library = GateLibrary(4)
    toffoli4 = named.from_output_functions(
        4,
        [
            lambda b: b[0],
            lambda b: b[1],
            lambda b: b[2] ^ (b[0] & b[1]),
            lambda b: b[3],
        ],
    )

    def synthesize():
        search = CascadeSearch(library, track_parents=True)
        return express(toffoli4, library, cost_bound=5, search=search)

    result = benchmark.pedantic(synthesize, rounds=1, iterations=1)
    assert result.cost == 5
    assert result.circuit.binary_permutation() == toffoli4
    # The witness only touches the three active wires.
    touched = set()
    for gate in result.circuit:
        touched.add(gate.target)
        touched.add(gate.control)
    assert touched <= {0, 1, 2}
    print(f"\nembedded Toffoli on 4 qubits: {result.circuit} (cost 5)")
