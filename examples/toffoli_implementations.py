"""All minimal Toffoli and Peres implementations (Figures 4, 8 and 9).

The paper reports that its algorithm found two cost-4 implementations of
the Peres gate (Figure 4 and its Hermitian adjoint, Figure 8) and four
cost-5 implementations of the Toffoli gate (Figure 9a-d, two
Hermitian-adjoint pairs differing in which qubit carries the XORs).

This example regenerates all of them, draws them, checks the printed
figure cascades against our search results, and demonstrates the
V <-> V+ swap symmetry.

Run:  python examples/toffoli_implementations.py
"""

from repro import Circuit, GateLibrary, express_all, named
from repro.core.search import CascadeSearch
from repro.render.diagram import circuit_diagram
from repro.sim.verify import verify_synthesis

FIGURE_CASCADES = {
    "Figure 4 (Peres)": "V_CB F_BA V_CA V+_CB",
    "Figure 8 (Peres, adjoint)": "V+_CB F_BA V+_CA V_CB",
    "Figure 9a (Toffoli)": "F_BA V+_CB F_BA V_CA V_CB",
    "Figure 9b (Toffoli)": "F_BA V_CB F_BA V+_CA V+_CB",
    "Figure 9c (Toffoli)": "F_AB V+_CA F_AB V_CA V_CB",
    "Figure 9d (Toffoli)": "F_AB V_CA F_AB V+_CA V+_CB",
}


def main() -> None:
    library = GateLibrary(3)
    search = CascadeSearch(library, track_parents=True)

    for target_name, target in (("Peres", named.PERES),
                                ("Toffoli", named.TOFFOLI)):
        results = express_all(target, library, search=search)
        print("=" * 64)
        print(f"{target_name} = {target.cycle_string()}: "
              f"{len(results)} minimal implementation(s), "
              f"cost {results[0].cost}")
        print("=" * 64)
        for result in results:
            verified = "ok" if verify_synthesis(result) else "FAILED"
            print(f"\n{result.circuit}   [exact verification: {verified}]")
            print(circuit_diagram(result.circuit))
            swapped = result.circuit.adjoint_swapped()
            same = swapped.binary_permutation() == target
            print(f"V<->V+ swapped version also implements "
                  f"{target_name}: {same}")
        print()

    print("=" * 64)
    print("The paper's printed figure cascades, re-checked:")
    print("=" * 64)
    for label, names in FIGURE_CASCADES.items():
        circuit = Circuit.from_names(names, 3)
        perm = circuit.binary_permutation()
        target = named.PERES if "Peres" in label else named.TOFFOLI
        status = "matches" if perm == target else "MISMATCH"
        print(f"  {label:28s} {names:28s} -> {perm.cycle_string():12s} {status}")


if __name__ == "__main__":
    main()
