"""The synthesis service: shared read-only closures, many requests.

:class:`SynthesisService` is the framing-independent middle of ``repro
serve``: it owns a registry of open stores (each a frozen
:class:`~repro.core.search.CascadeSearch` wrapped by a warmed
:class:`~repro.core.batch.BatchSynthesizer`), a bounded thread pool for
the GIL-bound query work, and a coalescing queue between them.

Concurrency model
-----------------

* The asyncio event loop only ever *frames* requests and responses; no
  query math runs on it, so accepts and health checks stay responsive
  while workers chew on big batches.
* Query operations are enqueued as jobs on an ``asyncio.Queue`` with a
  bounded depth (back-pressure: a flooded server makes clients wait on
  ``write`` instead of buffering unboundedly).
* A dispatcher task drains the queue, **coalescing** everything
  currently waiting (up to ``max_batch`` jobs) into one executor call
  -- so a burst of 64 concurrent single-target requests costs one
  thread hop, not 64.  A semaphore sized to the pool keeps at most
  ``workers`` batches in flight, which bounds thread-pool queue growth.
* Workers only touch frozen, warmed state (see the thread-safety
  contract on :class:`~repro.core.batch.BatchSynthesizer`), so any
  number of in-flight batches can read the same closures.
* Store opens (startup and SIGHUP reload) run on a **dedicated
  single-thread opener executor**, never on the query pool: a reload
  queued behind a saturated pool would wait on the very jobs whose
  back-pressure prompted it -- and could deadlock shutdown ordering.

Routing: each request may carry a ``store`` selector (alias or
``LIBFP:COSTFP`` fingerprints, see :mod:`repro.server.registry`);
a single-store server treats an absent selector as that store.

Store reloads (SIGHUP, or :meth:`SynthesisService.reload`) are atomic:
a whole new registry is built off-loop (every named store re-opened,
``--store-dir`` re-scanned), then a single reference assignment swaps
it in.  Jobs dispatched before the swap finish against the old state
objects -- v2 memory maps and v3 chunk stores (plus any decompressed
sections they hand out) stay alive until the last in-flight query
drops them, and the v3 section cache is keyed by file identity, so a
reload can never hand an old query bytes from the new file; a failed
reload leaves the previous registry serving and is reported via
``healthz``.

Observability: per-op queue-wait and total-latency percentiles
(reservoir-sampled, :mod:`repro.server.metrics`) ride on ``healthz``
next to the counters, and an optional NDJSON **access log** records one
line per request (op, store alias, queue wait, execute time, outcome,
and the request's ``trace_id``/``span_id`` when traced).
Errors are split into ``client_errors`` (4xx-mapped: bad targets,
unknown stores, over-bound queries) and ``server_errors`` (5xx-mapped)
so client mistakes cannot inflate the server-fault signal;
``errors`` stays their sum for pre-split scrapers.

Since PR 10 the counters live in a process-wide
:class:`~repro.telemetry.MetricsRegistry` (``self.telemetry``) and the
``healthz`` payload *reads them back* from it -- one source of truth,
so a Prometheus scrape of ``GET /metrics`` and a ``healthz`` poll can
never disagree.  The access log is written by the shared
:class:`~repro.telemetry.AccessLogWriter` (same single-thread,
fire-and-forget, rotate-between-lines discipline this class used to
implement inline), which also exports the writer's own health --
records/bytes written, rotations, queue depth -- as metrics.
"""

from __future__ import annotations

import asyncio
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import (
    CostBoundExceededError,
    ProtocolError,
    ServerError,
    SpecificationError,
)
from repro._version import __version__
from repro.core.batch import BatchSynthesizer
from repro.core.store import section_cache_stats
from repro.server.metrics import ServiceMetrics
from repro.server.protocol import OPERATIONS, Request, error_payload
from repro.server.registry import StoreRegistry, build_registry
from repro.telemetry import (
    METRICS_CONTENT_TYPE,
    AccessLogWriter,
    MetricsRegistry,
)

#: Default worker-thread count: the kernel work is GIL-bound numpy +
#: pure Python, so a small pool is enough to overlap queries with
#: framing; more threads mostly add contention.
DEFAULT_WORKERS = 2
#: Default coalescing limit per executor dispatch.
DEFAULT_MAX_BATCH = 64
#: The store-touching query operations (access-log records for these
#: carry their params, which is what makes a log replayable).
_QUERY_OPS = frozenset({"synth", "synth-batch", "cost-table"})


@dataclass(frozen=True)
class StoreState:
    """Everything derived from one open of a store file (immutable)."""

    path: str
    header: object  # repro.core.store.StoreHeader
    library: object  # repro.gates.library.GateLibrary
    batch: BatchSynthesizer
    cost_bound: int
    #: The full cost table, computed once per open -- the cost-table
    #: endpoint slices this instead of rebuilding ~|G| Permutation
    #: objects per request.
    table: object  # repro.core.fmcf.CostTable


def _section_cache_reader(stat: str):
    """A scrape-time reader for one ``section_cache_stats()`` field."""
    def read() -> float:
        return section_cache_stats().get(stat, 0)
    return read


class _Job:
    """One unit of query work: a thread function, its future, timings."""

    __slots__ = ("fn", "future", "loop", "enqueued", "started", "finished")

    def __init__(self, fn: Callable[[], dict], future, loop):
        self.fn = fn
        self.future = future
        self.loop = loop
        self.enqueued = time.perf_counter()
        #: Set by the worker thread around ``fn()``; the resolving
        #: ``call_soon_threadsafe`` orders these writes before any
        #: event-loop read, so no lock is needed.
        self.started: float | None = None
        self.finished: float | None = None


def open_store_state(path: str, cost_bound: int | None = None) -> StoreState:
    """Open, validate, freeze and warm a store for serving (blocking).

    Raises:
        StoreError / StoreMismatchError: unreadable or mismatched store.
        SpecificationError: *cost_bound* exceeds the store's bound.
    """
    from repro.io import open_store, resolve_cost_bound

    header, library, search = open_store(path)
    bound = resolve_cost_bound(cost_bound, header.expanded_to, str(path))
    search.freeze()
    batch = BatchSynthesizer(search, cost_bound=bound).warm()
    return StoreState(
        path=str(path), header=header, library=library, batch=batch,
        cost_bound=bound, table=batch.cost_table(),
    )


class SynthesisService:
    """Dispatches protocol requests against a registry of stores.

    Args:
        stores: one store path, or a sequence of ``PATH`` /
            ``ALIAS=PATH`` specs (see :mod:`repro.server.registry`).
        cost_bound: serve only costs up to this bound (default: each
            store's full expanded bound; must be within every store's).
        workers: worker threads for query execution.
        max_batch: coalescing limit -- the most queued jobs one executor
            dispatch may absorb.
        store_dir: also serve every ``*.rpro`` file in this directory
            (re-scanned on reload/SIGHUP).
        access_log: append one NDJSON record per request to this file.
        access_log_max_bytes: rotate the access log once it reaches
            this size (``None`` -- the default -- never rotates).
            Rotation shifts ``log -> log.1 -> log.2 ...`` like
            logrotate, on the log thread, between whole lines.
        access_log_keep: how many rotated files to keep (default 3;
            older ones are deleted at rotation time).
    """

    def __init__(
        self,
        stores: str | os.PathLike | Sequence[str],
        cost_bound: int | None = None,
        workers: int = DEFAULT_WORKERS,
        max_batch: int = DEFAULT_MAX_BATCH,
        store_dir: str | None = None,
        access_log: str | None = None,
        access_log_max_bytes: int | None = None,
        access_log_keep: int | None = None,
    ):
        if workers < 1:
            raise SpecificationError("need at least one worker thread")
        if max_batch < 1:
            raise SpecificationError("max_batch must be positive")
        if access_log_max_bytes is not None and access_log_max_bytes < 1:
            raise SpecificationError(
                "access_log_max_bytes must be positive"
            )
        if access_log_keep is not None and access_log_keep < 1:
            raise SpecificationError(
                "access_log_keep must keep at least one rotated file"
            )
        if isinstance(stores, (str, os.PathLike)):
            stores = [stores]
        self._store_specs = [str(spec) for spec in stores]
        self._store_dir = None if store_dir is None else str(store_dir)
        if not self._store_specs and self._store_dir is None:
            raise SpecificationError(
                "no stores to serve: give store files or store_dir"
            )
        self._requested_bound = cost_bound
        self._workers = workers
        self._max_batch = max_batch
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )
        # Store opens must never compete with (or wait behind) query
        # work -- see the concurrency notes in the module docstring.
        self._opener = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-open"
        )
        self._registry: StoreRegistry | None = None
        self._queue: asyncio.Queue[_Job] | None = None
        self._dispatcher: asyncio.Task | None = None
        self._slots: asyncio.Semaphore | None = None
        self._reload_lock: asyncio.Lock | None = None
        self._started_monotonic = time.monotonic()
        self._started_epoch = round(time.time(), 3)
        self._closing = False
        self._last_reload_error: str | None = None
        self._metrics = ServiceMetrics()
        # The process-wide metrics registry.  Every counter healthz
        # reports lives here (healthz reads values back out), and the
        # `metrics` op renders it as Prometheus text.
        self.telemetry = MetricsRegistry()
        reg = self.telemetry
        reg.gauge(
            "repro_build_info",
            "Build/version info as labels; value is always 1.",
            labels=("version",),
        ).set(1, version=__version__)
        reg.gauge(
            "repro_start_time_seconds",
            "Unix time the service object was created.",
            fn=lambda: self._started_epoch,
        )
        reg.gauge(
            "repro_uptime_seconds",
            "Seconds since the service object was created.",
            fn=lambda: round(time.monotonic() - self._started_monotonic, 3),
        )
        self._m_queries = reg.counter(
            "repro_requests_total",
            "Requests handled, by operation.",
            labels=("op",),
        )
        for op in OPERATIONS:
            self._m_queries.preseed(op)
        self._m_batches = reg.counter(
            "repro_batches_executed_total",
            "Coalesced executor dispatches.",
        )
        self._m_coalesced = reg.counter(
            "repro_jobs_coalesced_total",
            "Query jobs absorbed into coalesced batches.",
        )
        self._m_errors = reg.counter(
            "repro_request_errors_total",
            "Failed requests by fault domain (client=4xx, server=5xx).",
            labels=("domain",),
        )
        self._m_errors.preseed("client")
        self._m_errors.preseed("server")
        self._m_reloads = reg.counter(
            "repro_store_reloads_total",
            "Successful registry reloads (SIGHUP or explicit).",
        )
        self._h_latency = reg.histogram(
            "repro_request_latency_ms",
            "End-to-end request latency in milliseconds, by operation.",
            labels=("op",),
        )
        self._h_queue_wait = reg.histogram(
            "repro_request_queue_wait_ms",
            "Queue wait before a worker picked the job up, by operation.",
            labels=("op",),
        )
        for stat in ("hits", "misses", "evictions"):
            reg.counter(
                f"repro_section_cache_{stat}_total",
                f"Process-wide v3 section cache {stat} since start.",
                fn=_section_cache_reader(stat),
            )
        for name in ("entries", "bytes", "max_bytes"):
            reg.gauge(
                f"repro_section_cache_{name}",
                f"Process-wide v3 section cache {name}.",
                fn=_section_cache_reader(name),
            )
        # Access-log writes run on their own single thread (ordered,
        # fire-and-forget): a slow or hung log filesystem must add
        # latency to the *log*, never to the event loop serving
        # requests.  The shared writer also registers the log's own
        # observability metrics on this registry.
        self._log_writer: AccessLogWriter | None = None
        if access_log is not None:
            self._log_writer = AccessLogWriter(
                access_log,
                max_bytes=access_log_max_bytes,
                keep=access_log_keep,
                registry=reg,
            )

    # -- lifecycle ---------------------------------------------------------------------

    @property
    def registry(self) -> StoreRegistry:
        if self._registry is None:
            raise ServerError("service is not started")
        return self._registry

    @property
    def state(self) -> StoreState:
        """The sole store's state (single-store compatibility accessor)."""
        sole = self.registry.sole()
        if sole is None:
            raise ServerError(
                "service serves multiple stores; use .registry"
            )
        return sole[1]

    def _build_registry(self) -> StoreRegistry:
        return build_registry(
            self._store_specs, self._store_dir, self._requested_bound
        )

    async def start(self) -> None:
        """Open the stores and start the dispatcher (idempotent)."""
        if self._dispatcher is not None:
            return
        loop = asyncio.get_running_loop()
        if self._registry is None:
            self._registry = await loop.run_in_executor(
                self._opener, self._build_registry
            )
        if self._log_writer is not None:
            self._log_writer.start()
        self._queue = asyncio.Queue(maxsize=4 * self._max_batch)
        self._slots = asyncio.Semaphore(self._workers)
        self._reload_lock = asyncio.Lock()
        self._dispatcher = loop.create_task(
            self._dispatch_loop(), name="repro-serve-dispatcher"
        )

    async def close(self) -> None:
        """Stop dispatching, fail queued jobs and release the pools."""
        self._closing = True
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        if self._queue is not None:
            while True:
                try:
                    job = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if not job.future.done():
                    job.future.set_exception(
                        ServerError("server is shutting down")
                    )
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._pool.shutdown, True)
        await loop.run_in_executor(None, self._opener.shutdown, True)
        if self._log_writer is not None:
            # Drain pending log lines before closing the file.
            await loop.run_in_executor(None, self._log_writer.close)

    async def reload(self) -> None:
        """Rebuild the whole registry and atomically swap it in (SIGHUP).

        Every named store is re-opened and ``store_dir`` re-scanned on
        the dedicated opener executor -- a saturated query pool cannot
        delay the reload.  A failed build keeps the current registry
        serving; the failure is recorded and surfaced via ``healthz``.
        """
        assert self._reload_lock is not None, "service not started"
        async with self._reload_lock:
            loop = asyncio.get_running_loop()
            try:
                registry = await loop.run_in_executor(
                    self._opener, self._build_registry
                )
            except Exception as exc:
                self._last_reload_error = f"{type(exc).__name__}: {exc}"
                return
            self._registry = registry  # atomic reference swap
            self._m_reloads.inc()
            self._last_reload_error = None

    # -- dispatch ----------------------------------------------------------------------

    async def handle(self, request: Request) -> dict:
        """Execute one request; returns the result payload or raises."""
        op = request.op
        self._m_queries.inc(op=op)
        started = time.perf_counter()
        trace = {"queue_wait": 0.0, "execute": 0.0}
        alias: str | None = None
        try:
            if op == "healthz":
                result = self._do_healthz()
                trace["execute"] = time.perf_counter() - started
            elif op == "metrics":
                result = self._do_metrics()
                trace["execute"] = time.perf_counter() - started
            else:
                alias, state = self.registry.resolve(request.store)
                params = request.params
                if op == "store-info":
                    result = self._do_store_info(alias, state)
                    trace["execute"] = time.perf_counter() - started
                elif op == "synth":
                    result = await self._submit(
                        lambda: _run_synth(state, params), trace
                    )
                elif op == "synth-batch":
                    result = await self._submit(
                        lambda: _run_synth_batch(state, params), trace
                    )
                elif op == "cost-table":
                    result = await self._submit(
                        lambda: _run_cost_table(state, params), trace
                    )
                else:
                    raise ProtocolError(f"unknown operation {op!r}")
        except Exception as exc:
            # The wire mapping already splits fault domains: 4xx
            # statuses are client mistakes, 5xx are server faults.
            payload, status = error_payload(exc)
            domain = "server" if status >= 500 else "client"
            self._m_errors.inc(domain=domain)
            self._finish_request(request, alias, started, trace,
                                 payload["code"])
            raise
        self._finish_request(request, alias, started, trace, "ok")
        return result

    def _finish_request(
        self,
        request: Request,
        alias: str | None,
        started: float,
        trace: dict,
        outcome: str,
    ) -> None:
        total = time.perf_counter() - started
        self._metrics.observe(request.op, trace["queue_wait"], total)
        self._h_latency.observe(total * 1e3, op=request.op)
        self._h_queue_wait.observe(trace["queue_wait"] * 1e3, op=request.op)
        if self._log_writer is None:
            return
        record = {
            "ts": round(time.time(), 6),
            "op": request.op,
            "store": alias,
            "id": request.id,
            "queue_wait_ms": round(trace["queue_wait"] * 1e3, 3),
            "execute_ms": round(trace["execute"] * 1e3, 3),
            "total_ms": round(total * 1e3, 3),
            "outcome": outcome,
        }
        # Correlation IDs, when the request carried them: the fields
        # that join this record to the router's view of the same
        # request (and its per-attempt span).  Untraced requests keep
        # the exact pre-tracing record shape.
        if request.trace_id is not None:
            record["trace_id"] = request.trace_id
        if request.span_id is not None:
            record["span_id"] = request.span_id
        # Query params make the record replayable (`repro replay`).
        # They arrived as decoded JSON, so they serialize back as-is;
        # counter ops (healthz/store-info) carry none worth keeping.
        if request.params and request.op in _QUERY_OPS:
            record["params"] = request.params
        # Fire-and-forget onto the single log thread: lines stay
        # ordered, and a stalled log device never blocks the loop.
        self._log_writer.submit(record)

    async def _submit(self, fn: Callable[[], dict], trace: dict) -> dict:
        if self._queue is None or self._closing:
            raise ServerError("service is not accepting queries")
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        job = _Job(fn, future, loop)
        await self._queue.put(job)
        try:
            return await future
        finally:
            if job.started is not None and job.finished is not None:
                trace["queue_wait"] = job.started - job.enqueued
                trace["execute"] = job.finished - job.started

    async def _dispatch_loop(self) -> None:
        assert self._queue is not None and self._slots is not None
        loop = asyncio.get_running_loop()
        while True:
            # Acquire the worker slot BEFORE popping anything: the only
            # awaits happen while no job is held, so cancellation (from
            # close()) can never strand popped jobs with unresolved
            # futures -- everything still queued is failed by close().
            await self._slots.acquire()
            try:
                job = await self._queue.get()
            except asyncio.CancelledError:
                self._slots.release()
                raise
            jobs = [job]
            while len(jobs) < self._max_batch:
                try:
                    jobs.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            self._m_batches.inc()
            self._m_coalesced.inc(len(jobs))
            executor_future = loop.run_in_executor(
                self._pool, _run_jobs, jobs
            )
            executor_future.add_done_callback(
                lambda _fut: self._slots.release()
            )

    # -- inline (event-loop) operations ------------------------------------------------

    def _do_healthz(self) -> dict:
        registry = self._registry
        sole = None if registry is None else registry.sole()
        # Counter values are read back from the telemetry registry --
        # the single source of truth -- so this payload and a
        # ``GET /metrics`` scrape can never disagree.
        queries = {
            key[0]: int(value)
            for key, value in self._m_queries.values().items()
        }
        client_errors = int(self._m_errors.value(domain="client"))
        server_errors = int(self._m_errors.value(domain="server"))
        payload = {
            "status": "ok" if registry is not None else "starting",
            "pid": os.getpid(),
            "version": __version__,
            "start_time": self._started_epoch,
            "uptime_s": round(time.monotonic() - self._started_monotonic, 3),
            # Single-store compatibility fields (null on multi-store).
            "store": None if sole is None else sole[1].path,
            "expanded_to": None if sole is None else sole[1].header.expanded_to,
            "serving_cost_bound": None if sole is None else sole[1].cost_bound,
            "stores": {} if registry is None else registry.describe(),
            "queries": queries,
            "batches_executed": int(self._m_batches.value()),
            "jobs_coalesced": int(self._m_coalesced.value()),
            "errors": client_errors + server_errors,
            "client_errors": client_errors,
            "server_errors": server_errors,
            "reloads": int(self._m_reloads.value()),
            "last_reload_error": self._last_reload_error,
            "workers": self._workers,
            "max_batch": self._max_batch,
        }
        payload["section_cache"] = section_cache_stats()
        payload.update(self._metrics.summary())
        return payload

    def _do_metrics(self) -> dict:
        """The ``metrics`` op: Prometheus exposition text, wrapped.

        The HTTP front end unwraps this into a raw ``text/plain``
        body; NDJSON peers receive the wrapper object as-is.
        """
        return {
            "content_type": METRICS_CONTENT_TYPE,
            "text": self.telemetry.render(),
        }

    def _do_store_info(self, alias: str, state: StoreState) -> dict:
        header = state.header
        cm = header.cost_model
        return {
            "alias": alias,
            "path": state.path,
            "format_version": header.format_version,
            "n_qubits": header.n_qubits,
            "degree": header.degree,
            "expanded_to": header.expanded_to,
            "serving_cost_bound": state.cost_bound,
            "total_seen": header.total_seen,
            "level_sizes": list(header.level_sizes),
            "track_parents": header.track_parents,
            "library_fingerprint": header.library_fingerprint,
            "cost_fingerprint": header.cost_fingerprint,
            "kernel": header.kernel,
            "writer": header.writer,
            "cost_model": {
                "v_cost": cm.v_cost,
                "vdag_cost": cm.vdag_cost,
                "cnot_cost": cm.cnot_cost,
                "not_cost": cm.not_cost,
            },
            "index_entries": len(state.batch.remainder_index),
            "gate_kinds": list(header.gate_kinds),
            "radix": header.radix,
            "library_family": header.library_family,
        }


# -- worker-thread query functions (pure reads of frozen state) ------------------------


def _run_jobs(jobs: list[_Job]) -> None:
    """Execute one coalesced batch on a worker thread.

    Results and exceptions cross back to the event loop thread through
    ``call_soon_threadsafe``; a cancelled (e.g. disconnected) waiter is
    skipped rather than poked.
    """
    for job in jobs:
        job.started = time.perf_counter()
        try:
            outcome: object = job.fn()
            error: BaseException | None = None
        except BaseException as exc:  # noqa: BLE001 -- forwarded to waiter
            outcome, error = None, exc
        job.finished = time.perf_counter()
        job.loop.call_soon_threadsafe(_resolve, job.future, outcome, error)


def _resolve(future, outcome, error) -> None:
    if future.done():
        return
    if error is None:
        future.set_result(outcome)
    else:
        future.set_exception(error)


def _parse_spec(state: StoreState, spec: object):
    from repro.io import parse_target

    if not isinstance(spec, str):
        raise ProtocolError("target must be a spec string")
    return parse_target(
        spec,
        n_qubits=state.library.n_qubits,
        radix=state.library.space.radix,
    )


def _check_query_bound(state: StoreState, params: dict) -> int:
    from repro.io import resolve_cost_bound

    bound = params.get("cost_bound")
    if bound is not None and (not isinstance(bound, int) or bound < 0):
        raise ProtocolError("cost_bound must be a non-negative integer")
    return resolve_cost_bound(bound, state.cost_bound, state.path)


def _synthesize_bounded(
    state: StoreState, target, bound: int, allow_not: bool, all_: bool
) -> list:
    """Synthesize under a per-query bound with local-identical errors.

    A ``CostBoundExceededError`` must cite the *resolved query* bound --
    the bound a local ``BatchSynthesizer(search, cost_bound=bound)``
    would have been built with -- not the (possibly deeper) serving
    bound, so the server-side message stays byte-identical to the
    ``--store`` path's.
    """
    description = f"permutation {target.cycle_string()}"
    try:
        if all_:
            results = state.batch.synthesize_all(target, allow_not=allow_not)
        else:
            results = [state.batch.synthesize(target, allow_not=allow_not)]
    except CostBoundExceededError:
        raise CostBoundExceededError(description, bound) from None
    kept = [result for result in results if result.cost <= bound]
    if not kept:
        raise CostBoundExceededError(description, bound)
    return kept


def _run_synth(state: StoreState, params: dict) -> dict:
    from repro.io import result_to_dict

    target = _parse_spec(state, params.get("target"))
    bound = _check_query_bound(state, params)
    allow_not = bool(params.get("allow_not", True))
    results = _synthesize_bounded(
        state, target, bound, allow_not, bool(params.get("all", False))
    )
    return {
        "target": target.cycle_string(),
        "cost": results[0].cost,
        "results": [result_to_dict(result) for result in results],
    }


def _run_synth_batch(state: StoreState, params: dict) -> dict:
    """One entry per spec, errors reported per entry, never wholesale.

    The success path is exactly
    :meth:`BatchSynthesizer.synthesize_many`'s loop body, so an all-ok
    batch returns results identical to calling it directly
    (``tests/test_server.py`` and ``benchmarks/bench_serve.py`` pin
    this); any per-target failure -- unparseable spec, over-bound cost
    -- becomes that entry's structured ``{ok: false, error}`` record
    instead of failing the sibling targets.
    """
    from repro.errors import ReproError
    from repro.io import result_to_dict

    specs = params.get("targets")
    if not isinstance(specs, list):
        raise ProtocolError("targets must be a list of spec strings")
    bound = _check_query_bound(state, params)
    allow_not = bool(params.get("allow_not", True))

    entries: list[dict] = []
    failures = 0
    for spec in specs:
        try:
            target = _parse_spec(state, spec)
            result = _synthesize_bounded(
                state, target, bound, allow_not, all_=False
            )[0]
            entries.append({"ok": True, "result": result_to_dict(result)})
        except ReproError as exc:
            failures += 1
            entries.append({"ok": False, "error": error_payload(exc)[0]})
    return {"results": entries, "count": len(entries), "failures": failures}


def execute_query(state: StoreState, op: str, params: dict) -> dict:
    """Run one store-touching query synchronously, outside any service.

    The exact worker-side code path the live server dispatches to, so
    the payload is byte-identical to what a server over the same store
    would answer -- this is what lets ``repro replay`` diff recorded
    responses against a locally opened golden store.

    Raises:
        ProtocolError: *op* is not a store query.
    """
    if op == "synth":
        return _run_synth(state, params)
    if op == "synth-batch":
        return _run_synth_batch(state, params)
    if op == "cost-table":
        return _run_cost_table(state, params)
    raise ProtocolError(f"{op!r} is not a store query")


def _run_cost_table(state: StoreState, params: dict) -> dict:
    # Same validation and error codes as the synth endpoints; the full
    # table was built once at open, so a bound is just a slice (class
    # membership by *minimal* cost never changes with the bound).
    bound = _check_query_bound(state, params)
    table = state.table
    classes = table.classes[: bound + 1]
    payload = {
        "cost_bound": bound,
        "n_qubits": table.n_qubits,
        "g_sizes": [len(members) for members in classes],
        "b_sizes": list(table.b_sizes[: bound + 1]),
        "a_sizes": list(table.a_sizes[: bound + 1]),
    }
    if params.get("include_members", False):
        payload["members"] = [
            [perm.cycle_string() for perm in members]
            for members in classes
        ]
    return payload
