"""Generalized permutative-library synthesis (the conclusion's claim).

The paper's conclusion asserts: "the number of gates using libraries with
Peres gates is smaller than using other libraries for all 3-qubit
circuits" (the companion-paper claim).  To measure it we generalize the
NCT machinery to *arbitrary* permutative gate libraries -- any named set
of permutations of the binary patterns with per-gate quantum costs -- and
provide exhaustive optimal synthesis under two objectives:

* ``objective="count"``  -- minimal number of library gates (BFS);
* ``objective="quantum"`` -- minimal total quantum cost (layered
  Dijkstra over integer costs).

Stock libraries: NCT, NCT + Peres family (NCTP), and Peres + NOT/CNOT
(PNC).  Peres-family gates are charged their true elementary cost of 4
(this library's own MCE result); Toffoli is charged 5.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.baselines.nct import NCTLibrary
from repro.errors import InvalidGateError, InvalidValueError, SynthesisError
from repro.gates import named
from repro.perm.permutation import Permutation


@dataclass(frozen=True)
class PermutativeGate:
    """A named permutative gate with a quantum-cost weight."""

    name: str
    permutation: Permutation
    quantum_cost: int

    def __post_init__(self) -> None:
        if self.quantum_cost < 0:
            raise InvalidValueError("quantum cost must be non-negative")


class PermutativeLibrary:
    """A named collection of permutative gates on 2**n binary patterns."""

    def __init__(self, name: str, gates: Iterable[PermutativeGate]):
        gate_list = list(gates)
        if not gate_list:
            raise InvalidGateError("library needs at least one gate")
        degree = gate_list[0].permutation.degree
        if any(g.permutation.degree != degree for g in gate_list):
            raise InvalidGateError("gates have mixed degrees")
        names = [g.name for g in gate_list]
        if len(set(names)) != len(names):
            raise InvalidGateError("duplicate gate names in library")
        self.name = name
        self._gates = tuple(gate_list)
        self._degree = degree
        self._by_name = {g.name: g for g in gate_list}

    @property
    def gates(self) -> tuple[PermutativeGate, ...]:
        return self._gates

    @property
    def degree(self) -> int:
        return self._degree

    def __len__(self) -> int:
        return len(self._gates)

    def by_name(self, name: str) -> PermutativeGate:
        try:
            return self._by_name[name]
        except KeyError:
            raise InvalidGateError(f"unknown gate {name!r}") from None

    def permutation_of(self, circuit: Sequence[PermutativeGate]) -> Permutation:
        perm = Permutation.identity(self._degree)
        for gate in circuit:
            perm = perm * gate.permutation
        return perm

    def quantum_cost_of(self, circuit: Sequence[PermutativeGate]) -> int:
        return sum(g.quantum_cost for g in circuit)

    def __repr__(self) -> str:
        return f"PermutativeLibrary({self.name!r}, n_gates={len(self._gates)})"


# -- stock libraries -----------------------------------------------------------

#: Elementary quantum costs established by this library's own MCE runs.
TOFFOLI_QCOST = 5
PERES_QCOST = 4


def nct_library(n_wires: int = 3) -> PermutativeLibrary:
    """NOT/CNOT/Toffoli with standard quantum costs (NOT free)."""
    gates = []
    for gate in NCTLibrary(n_wires).gates:
        cost = {0: 0, 1: 1, 2: TOFFOLI_QCOST}.get(len(gate.controls), 10**6)
        gates.append(PermutativeGate(gate.name, gate.permutation(), cost))
    return PermutativeLibrary("NCT", gates)


def peres_gates(n_wires: int = 3) -> list[PermutativeGate]:
    """All wire-placements of the Peres gate and its inverse.

    For n = 3 these are the 6 relabelings of g1 = (5,7,6,8) plus the 6
    relabelings of its inverse -- 12 gates, each of quantum cost 4.
    """
    if n_wires != 3:
        raise InvalidValueError("Peres placements implemented for 3 wires")
    gates = []
    seen = set()
    for base, tag in ((named.PERES, "PER"), (named.PERES.inverse(), "PERI")):
        for wires in itertools.permutations(range(3)):
            relabel = named.wire_relabeling(wires)
            perm = base.conjugate_by(relabel)
            if perm in seen:
                continue
            seen.add(perm)
            suffix = "".join("ABC"[w] for w in wires)
            gates.append(
                PermutativeGate(f"{tag}_{suffix}", perm, PERES_QCOST)
            )
    return gates


def nctp_library(n_wires: int = 3) -> PermutativeLibrary:
    """NCT plus the Peres family (the paper's recommended library)."""
    gates = list(nct_library(n_wires).gates) + peres_gates(n_wires)
    return PermutativeLibrary("NCTP", gates)


def pnc_library(n_wires: int = 3) -> PermutativeLibrary:
    """Peres + NOT + CNOT (no Toffoli): the aggressive Peres library."""
    gates = [
        g
        for g in nct_library(n_wires).gates
        if not g.name.startswith("TOF")
    ] + peres_gates(n_wires)
    return PermutativeLibrary("PNC", gates)


# -- exhaustive optimal synthesis --------------------------------------------------


class OptimalPermutativeSynthesizer:
    """Exhaustive optimal synthesis over a permutative library.

    Args:
        library: the gate set.
        objective: ``"count"`` minimizes the number of gates; ``"quantum"``
            minimizes total quantum cost (gates of cost 0 are applied
            within the same Dijkstra layer).

    Builds the complete optimal table over the reachable subgroup once;
    queries are table lookups plus witness walk-back.
    """

    def __init__(self, library: PermutativeLibrary, objective: str = "count"):
        if objective not in ("count", "quantum"):
            raise InvalidValueError(f"unknown objective {objective!r}")
        self._library = library
        self._objective = objective
        identity = Permutation.identity(library.degree)
        rows = [
            (
                index,
                gate.permutation.table(),
                1 if objective == "count" else gate.quantum_cost,
            )
            for index, gate in enumerate(library.gates)
        ]
        best: dict[bytes, int] = {identity.images: 0}
        parents: dict[bytes, tuple[bytes, int] | None] = {
            identity.images: None
        }
        # Dijkstra over non-negative integer weights: process states in
        # cost order; zero-cost edges relax within the same bucket.
        import heapq

        heap: list[tuple[int, bytes]] = [(0, identity.images)]
        while heap:
            cost, perm = heapq.heappop(heap)
            if cost > best.get(perm, -1) and perm in best and best[perm] < cost:
                continue
            for index, table, weight in rows:
                product = perm.translate(table)
                candidate = cost + weight
                known = best.get(product)
                if known is None or candidate < known:
                    best[product] = candidate
                    parents[product] = (perm, index)
                    heapq.heappush(heap, (candidate, product))
        self._best = best
        self._parents = parents

    @property
    def library(self) -> PermutativeLibrary:
        return self._library

    @property
    def objective(self) -> str:
        return self._objective

    def reachable_count(self) -> int:
        return len(self._best)

    def optimal_cost(self, target: Permutation) -> int:
        """Minimal objective value for *target*."""
        try:
            return self._best[target.images]
        except KeyError:
            raise SynthesisError(
                f"{target.cycle_string()} unreachable with library "
                f"{self._library.name}"
            ) from None

    def synthesize(self, target: Permutation) -> list[PermutativeGate]:
        """An optimal circuit in cascade order."""
        key = target.images
        if key not in self._parents:
            raise SynthesisError(
                f"{target.cycle_string()} unreachable with library "
                f"{self._library.name}"
            )
        indices = []
        while True:
            parent = self._parents[key]
            if parent is None:
                break
            key, index = parent
            indices.append(index)
        indices.reverse()
        return [self._library.gates[i] for i in indices]

    def cost_distribution(self) -> dict[int, int]:
        """Histogram: optimal objective value -> number of functions."""
        histogram: dict[int, int] = {}
        for cost in self._best.values():
            histogram[cost] = histogram.get(cost, 0) + 1
        return dict(sorted(histogram.items()))

    def average_cost(self) -> float:
        """Mean optimal objective value over all reachable functions."""
        return sum(self._best.values()) / len(self._best)

    def worst_case(self) -> int:
        return max(self._best.values())
