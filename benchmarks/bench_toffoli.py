"""E7 -- Figure 9: Toffoli synthesis at quantum cost 5.

The paper: "98 seconds for the Toffoli circuit (cost = 5)" on a 850 MHz
Pentium III, with exactly four implementations found -- two
Hermitian-adjoint pairs, differing in whether the XOR operations land on
qubit A or qubit B.  All four facts are reproduced here.
"""

from repro.core.circuit import Circuit
from repro.core.mce import express, express_all
from repro.core.search import CascadeSearch
from repro.gates import named
from repro.gates.kinds import GateKind
from repro.sim.verify import verify_synthesis

FIGURE_9 = [
    "F_BA V+_CB F_BA V_CA V_CB",
    "F_BA V_CB F_BA V+_CA V+_CB",
    "F_AB V+_CA F_AB V_CA V_CB",
    "F_AB V_CA F_AB V+_CA V+_CB",
]


def test_toffoli_cold_synthesis(benchmark, library3):
    """Cold run: BFS from scratch (paper: 98 s on the P-III)."""

    def synthesize():
        search = CascadeSearch(library3, track_parents=True)
        return express(named.TOFFOLI, library3, search=search)

    result = benchmark.pedantic(synthesize, rounds=3, iterations=1)
    assert result.cost == 5
    assert verify_synthesis(result)


def test_toffoli_four_implementations(benchmark, library3, shared_search):
    results = benchmark(
        lambda: express_all(named.TOFFOLI, library3, search=shared_search)
    )
    assert len(results) == 4
    for result in results:
        assert result.cost == 5
        assert result.circuit.binary_permutation() == named.TOFFOLI

    # Two adjoint pairs: the V<->V+ swap permutes the implementation set.
    perms = {r.cascade_permutation for r in results}
    for result in results:
        swapped = result.circuit.adjoint_swapped()
        assert swapped.binary_permutation() == named.TOFFOLI

    # Both XOR placements (qubit A and qubit B) occur.
    xor_targets = set()
    for result in results:
        for gate in result.circuit:
            if gate.kind is GateKind.CNOT:
                xor_targets.add(gate.target)
    assert xor_targets == {0, 1}
    print("\nToffoli implementations:")
    for result in results:
        print(f"  {result.circuit}")


def test_figure9_cascades_validate(benchmark):
    def check_all():
        perms = []
        for names in FIGURE_9:
            perms.append(Circuit.from_names(names, 3).binary_permutation())
        return perms

    perms = benchmark(check_all)
    assert all(perm == named.TOFFOLI for perm in perms)


def test_fredkin_extension(benchmark, library3, shared_search):
    """Beyond the paper's figures: Fredkin needs the full cb = 7."""
    result = benchmark(
        lambda: express(named.FREDKIN, library3, search=shared_search)
    )
    assert result.cost == 7
    assert verify_synthesis(result)
    print(f"\nFredkin: {result.circuit} (cost {result.cost})")
