"""The NCT (NOT / CNOT / Toffoli) permutative baseline.

Classical reversible-logic synthesis (Toffoli 1980; Shende, Prasad,
Markov & Hayes 2002) works over permutative gates only.  For 3 wires the
library has 12 gates (3 NOT, 6 CNOT, 3 Toffoli) and the reachable set is
the whole symmetric group on the 8 binary patterns, so *optimal
gate-count* synthesis is a complete BFS over 40320 permutations --
:class:`NCTSynthesizer` materializes it once and answers every query from
the table.

Quantum costs are assigned per gate kind by :class:`NCTCostAssignment`;
the default charges a Toffoli 5 (the minimal V/V+/CNOT realization found
by this library's own MCE run, matching the paper) and a CNOT 1, NOT
free, which is what makes gate-count-optimal NCT circuits quantum-cost
suboptimal.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.errors import InvalidGateError, SynthesisError
from repro.gates.gate import wire_letter
from repro.perm.permutation import Permutation

Bits = tuple[int, ...]


@dataclass(frozen=True)
class NCTGate:
    """A NOT/CNOT/Toffoli gate on an n-wire register.

    Attributes:
        target: the flipped wire.
        controls: sorted tuple of control wires (0 = NOT, 1 = CNOT,
            2 = Toffoli, more = multi-control Toffoli).
        n_wires: register width.
    """

    target: int
    controls: tuple[int, ...]
    n_wires: int

    def __post_init__(self) -> None:
        if not 0 <= self.target < self.n_wires:
            raise InvalidGateError("target out of range")
        if self.target in self.controls:
            raise InvalidGateError("target cannot also be a control")
        if any(not 0 <= c < self.n_wires for c in self.controls):
            raise InvalidGateError("control out of range")
        if tuple(sorted(self.controls)) != self.controls:
            raise InvalidGateError("controls must be sorted")

    @property
    def kind(self) -> str:
        return {0: "NOT", 1: "CNOT"}.get(len(self.controls), "TOFFOLI")

    @property
    def name(self) -> str:
        t = wire_letter(self.target)
        if not self.controls:
            return f"NOT_{t}"
        c = "".join(wire_letter(c) for c in self.controls)
        if len(self.controls) == 1:
            return f"CNOT_{t}{c}"
        return f"TOF_{t}({c})"

    def permutation(self) -> Permutation:
        """Action on the 2**n binary patterns (wire 0 most significant)."""
        n = self.n_wires
        images = []
        for index in range(2**n):
            fires = all(
                (index >> (n - 1 - c)) & 1 for c in self.controls
            )
            images.append(index ^ (1 << (n - 1 - self.target)) if fires else index)
        return Permutation.from_images(images)

    def __str__(self) -> str:
        return self.name


class NCTLibrary:
    """All NCT gates on an n-wire register, with permutations attached."""

    def __init__(self, n_wires: int = 3, max_controls: int | None = None):
        if max_controls is None:
            max_controls = n_wires - 1
        self._n_wires = n_wires
        gates: list[NCTGate] = []
        wires = range(n_wires)
        for target in wires:
            others = [w for w in wires if w != target]
            for k in range(0, max_controls + 1):
                for controls in itertools.combinations(others, k):
                    gates.append(NCTGate(target, tuple(controls), n_wires))
        self._gates = tuple(gates)
        self._perms = tuple(g.permutation() for g in gates)
        self._by_name = {g.name: g for g in gates}

    @property
    def n_wires(self) -> int:
        return self._n_wires

    @property
    def gates(self) -> tuple[NCTGate, ...]:
        return self._gates

    def __len__(self) -> int:
        return len(self._gates)

    def by_name(self, name: str) -> NCTGate:
        try:
            return self._by_name[name]
        except KeyError:
            raise InvalidGateError(f"unknown NCT gate {name!r}") from None

    def permutation_of(self, circuit: Iterable[NCTGate]) -> Permutation:
        """Cascade product of a gate list."""
        perm = Permutation.identity(2**self._n_wires)
        for gate in circuit:
            perm = perm * gate.permutation()
        return perm


@dataclass(frozen=True)
class NCTCostAssignment:
    """Quantum-cost weights for NCT gates.

    Defaults follow the paper's conventions: NOT is a free 1-qubit gate,
    CNOT is one elementary 2-qubit gate, Toffoli costs 5 (its minimal
    elementary realization -- Figure 9 of the paper, re-derived by this
    library's MCE).  Multi-control Toffolis beyond 2 controls have no
    3-qubit elementary realization without ancillas and default to a
    large constant so comparisons flag them.
    """

    not_cost: int = 0
    cnot_cost: int = 1
    toffoli_cost: int = 5
    multi_control_cost: int = 1_000

    def gate_cost(self, gate: NCTGate) -> int:
        n_controls = len(gate.controls)
        if n_controls == 0:
            return self.not_cost
        if n_controls == 1:
            return self.cnot_cost
        if n_controls == 2:
            return self.toffoli_cost
        return self.multi_control_cost


def nct_quantum_cost(
    circuit: Sequence[NCTGate], assignment: NCTCostAssignment | None = None
) -> int:
    """Total quantum cost of an NCT circuit under an assignment."""
    assignment = assignment or NCTCostAssignment()
    return sum(assignment.gate_cost(g) for g in circuit)


class NCTSynthesizer:
    """Exhaustive optimal gate-count synthesis over an NCT library.

    Builds the complete BFS table from the identity once (2**n! states;
    40320 for n = 3) and then answers syntheses in O(solution length).
    """

    def __init__(self, library: NCTLibrary | None = None):
        self._library = library or NCTLibrary(3)
        degree = 2**self._library.n_wires
        identity = Permutation.identity(degree)
        self._parents: dict[bytes, tuple[bytes, int] | None] = {
            identity.images: None
        }
        self._depth: dict[bytes, int] = {identity.images: 0}
        frontier = [identity.images]
        tables = [
            (index, gate.permutation().table())
            for index, gate in enumerate(self._library.gates)
        ]
        depth = 0
        while frontier:
            depth += 1
            next_frontier = []
            for perm in frontier:
                for index, table in tables:
                    product = perm.translate(table)
                    if product in self._parents:
                        continue
                    self._parents[product] = (perm, index)
                    self._depth[product] = depth
                    next_frontier.append(product)
            frontier = next_frontier

    @property
    def library(self) -> NCTLibrary:
        return self._library

    def reachable_count(self) -> int:
        """Number of synthesizable functions (all of S_{2**n} for NCT)."""
        return len(self._depth)

    def optimal_gate_count(self, target: Permutation) -> int:
        """Minimal number of NCT gates realizing *target*.

        Raises:
            SynthesisError: if the target is outside the reachable set
                (cannot happen for the full NCT library).
        """
        try:
            return self._depth[target.images]
        except KeyError:
            raise SynthesisError(
                f"{target.cycle_string()} is not reachable with this library"
            ) from None

    def synthesize(self, target: Permutation) -> list[NCTGate]:
        """A gate-count-optimal NCT circuit for *target* (cascade order)."""
        key = target.images
        if key not in self._parents:
            raise SynthesisError(
                f"{target.cycle_string()} is not reachable with this library"
            )
        gates: list[int] = []
        while True:
            parent = self._parents[key]
            if parent is None:
                break
            key, index = parent
            gates.append(index)
        gates.reverse()
        return [self._library.gates[i] for i in gates]

    def gate_count_distribution(self) -> dict[int, int]:
        """Histogram: minimal gate count -> number of functions.

        For the 3-wire NCT library this reproduces the classic optimal
        synthesis table of Shende et al. (ICCAD 2002).
        """
        histogram: dict[int, int] = {}
        for depth in self._depth.values():
            histogram[depth] = histogram.get(depth, 0) + 1
        return dict(sorted(histogram.items()))
