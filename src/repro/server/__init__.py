"""Long-lived synthesis service over a precomputed closure store.

With the v2 memory-mapped store opening in milliseconds
(:mod:`repro.core.store`), the remaining cost of ``repro synth
--store`` is process lifecycle: every CLI invocation pays Python
startup, opens the store, answers exactly one query and exits.  This
package keeps one process -- and one shared, frozen, read-only
:class:`~repro.core.batch.BatchSynthesizer` -- alive behind a TCP
listener, so the marginal query costs a socket round trip instead of an
interpreter launch (``benchmarks/bench_serve.py`` tracks the gap).

Public API
----------

The stable, documented surface of the service stack:

* :class:`~repro.server.service.SynthesisService` -- the
  framing-independent core: owns the registry of open stores, the
  bounded worker pool and the coalescing queue; ``await
  handle(request)`` per query; ``await reload()`` for an atomic
  registry swap.
* :class:`~repro.server.registry.StoreRegistry` -- many stores behind
  one server, routed per request by alias or ``(library, cost-model)``
  fingerprints (:mod:`repro.server.registry`).
* :class:`~repro.server.app.ReproServer` -- asyncio front end binding
  the TCP (and optional UNIX-socket) listeners and sniffing HTTP vs
  NDJSON per connection.
* :func:`~repro.server.app.run_server` -- blocking entry point with
  signal handling (what ``repro serve`` calls).
* :class:`~repro.server.app.BackgroundServer` -- the same stack on a
  daemon thread, for tests, benchmarks and embedding.
* :mod:`repro.server.protocol` -- the wire protocol: operations,
  request/response framing, the structured error-code mapping
  (:func:`~repro.server.protocol.error_payload` /
  :func:`~repro.server.protocol.error_to_exception`),
  :func:`~repro.server.protocol.parse_address` and
  :func:`~repro.server.protocol.parse_endpoint`.
* :mod:`repro.server.metrics` -- reservoir-sampled per-op queue-wait
  and latency percentiles behind ``healthz``.

The matching client lives in :mod:`repro.client`
(:class:`~repro.client.ServeClient`); the CLI verbs are ``repro serve``
and ``repro synth --server HOST:PORT`` (or ``--server unix:PATH``).
Everything here is standard library only (asyncio + sockets + json) --
serving adds no dependencies beyond the core package.

The service is deliberately *query-only*: stores are produced by
``repro precompute`` and reloaded wholesale on SIGHUP; nothing ever
writes through the server.  That matches the artifact's nature -- the
paper's closure for a fixed (library, cost model) pair never changes --
and keeps the concurrency story trivial (see the thread-safety contract
on :class:`~repro.core.batch.BatchSynthesizer`).
"""

from repro.server.app import BackgroundServer, ReproServer, run_server
from repro.server.metrics import Reservoir, ServiceMetrics
from repro.server.protocol import (
    DEFAULT_PORT,
    OPERATIONS,
    Request,
    error_payload,
    error_to_exception,
    parse_address,
    parse_endpoint,
)
from repro.server.registry import StoreRegistry, build_registry
from repro.server.service import (
    DEFAULT_MAX_BATCH,
    DEFAULT_WORKERS,
    StoreState,
    SynthesisService,
    open_store_state,
)

__all__ = [
    "BackgroundServer",
    "DEFAULT_MAX_BATCH",
    "DEFAULT_PORT",
    "DEFAULT_WORKERS",
    "OPERATIONS",
    "ReproServer",
    "Request",
    "Reservoir",
    "ServiceMetrics",
    "StoreRegistry",
    "StoreState",
    "SynthesisService",
    "build_registry",
    "error_payload",
    "error_to_exception",
    "open_store_state",
    "parse_address",
    "parse_endpoint",
    "run_server",
]
