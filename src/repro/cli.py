"""Command-line interface: regenerate the paper's artifacts from a shell.

Examples::

    repro table1                      # Ctrl-V truth table (paper Table 1)
    repro table2 --cost-bound 7      # cost spectrum (paper Table 2)
    repro synth toffoli --all        # Figure 9's four implementations
    repro synth "(5,7,6,8)"          # arbitrary target by cycle notation
    repro peres-family               # the Section 5 G[4] analysis
    repro banned-sets                # Section 3's N_A .. N_BC and L_A .. L_BC
    repro compare                    # baseline-vs-direct cost table
    repro rng --bits 32 --seed 7     # controlled quantum RNG demo

Precompute-then-serve workflow (the closure is expanded once, then any
number of synthesis queries are answered against the stored artifact;
format-v2 stores are memory-mapped, so serving opens in milliseconds)::

    repro precompute closure.rpro            # expand + save the closure
    repro precompute closure.rpro --jobs 4   # parallel sharded expansion
    repro precompute big.rpro --jobs 8 --dedup-budget 512M \\
        --checkpoint-dir ck/                 # disk-backed dedup + resume
    repro precompute closure.rpro --extend --cost-bound 8   # deepen it
    repro precompute small.rpro --format-version 3           # compressed v3
    repro plan --cost-bound 8                # size --jobs/--shard-bits/budget
    repro plan closure.rpro --cost-bound 9   # ... seeded by a real store
    repro store info closure.rpro            # peek at a store's header
    repro store shards closure.rpro          # per-level/shard layout
    repro store verify closure.rpro          # full checksum pass
    repro store migrate old.rpro new.rpro    # rewrite v1 as v2
    repro store migrate big.rpro small.rpro --format-version 3  # compress
    repro synth toffoli --store closure.rpro # query without re-expanding
    repro synth --store closure.rpro --batch targets.txt --save out.json
    repro table2 --store closure.rpro        # Table 2 from the store

Long-lived serving (one process keeps any number of stores open and
answers queries over HTTP/1.1 + newline-delimited JSON, on TCP and/or
a UNIX socket; see :mod:`repro.server`)::

    repro serve closure.rpro --port 7205     # SIGHUP reloads the stores
    repro serve fast=c5.rpro deep=c7.rpro --unix /tmp/repro.sock \\
        --access-log /var/log/repro-access.ndjson
    repro serve --store-dir stores/          # every *.rpro, rescan on SIGHUP
    repro synth toffoli --server 127.0.0.1:7205
    repro synth toffoli --server unix:/tmp/repro.sock --store-alias deep
    repro synth --server :7205 --batch targets.txt
    curl http://127.0.0.1:7205/healthz       # incl. p50/p90/p99 timings

Load testing and trace replay (the scenario engine; named traffic
shapes live in ``scenarios/``, see :mod:`repro.scenario`)::

    repro load steady_interactive --server :7205 --seed 7
    repro load scenarios/bursty_batch.toml --server :7205 --json out.json
    repro load steady_interactive --dry-run --seed 7   # the exact stream
    repro replay access.ndjson --server :7205 --golden closure.rpro
    repro fleet status :7300 --json          # machine-readable fleet state
"""

from __future__ import annotations

import argparse
import random
import sys

from repro._version import __version__
from repro.errors import ReproError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Exact synthesis of 3-qubit quantum circuits from non-binary "
            "gates (Yang/Hung/Song/Perkowski, DATE 2005) -- reproduction CLI."
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="2-qubit Ctrl-V truth table (Table 1)")

    p_table2 = sub.add_parser("table2", help="cost spectrum |G[k]| (Table 2)")
    p_table2.add_argument(
        "--cost-bound", type=int, default=None,
        help="highest cost level (default: 7, or a store's full bound)",
    )
    p_table2.add_argument(
        "--paper-pseudocode",
        action="store_true",
        help="reproduce the published pseudocode verbatim (no G[0] subtraction)",
    )
    p_table2.add_argument(
        "--store", metavar="FILE", default=None,
        help="serve the table from a precomputed closure store",
    )

    p_synth = sub.add_parser("synth", help="synthesize a reversible target")
    p_synth.add_argument(
        "target",
        nargs="?",
        default=None,
        help="named target (toffoli, peres, fredkin, g2..g4, ...) or "
        "1-based cycle notation like '(5,7,6,8)'; omit with --batch",
    )
    p_synth.add_argument("--all", action="store_true", help="all implementations")
    p_synth.add_argument(
        "--cost-bound", type=int, default=None,
        help="abandon the search beyond this cost "
        "(default: 7, or a store's full bound)",
    )
    p_synth.add_argument(
        "--save", metavar="FILE", default=None,
        help="write the (first) result -- or the whole batch -- to a JSON file",
    )
    p_synth.add_argument(
        "--store", metavar="FILE", default=None,
        help="answer from a precomputed closure store (no re-expansion)",
    )
    p_synth.add_argument(
        "--batch", metavar="FILE", default=None,
        help="synthesize every target listed in FILE (one spec per line)",
    )
    p_synth.add_argument(
        "--server", metavar="ADDR", default=None,
        help="answer from a running `repro serve` instance "
        "(HOST:PORT or unix:PATH; mutually exclusive with --store)",
    )
    p_synth.add_argument(
        "--store-alias", metavar="NAME", default=None,
        help="route to this store on a multi-store server "
        "(an alias or LIBFP:COSTFP fingerprints; requires --server)",
    )

    p_serve = sub.add_parser(
        "serve",
        help="long-lived synthesis service over precomputed stores",
        description=(
            "Serve synth / synth-batch / cost-table / store-info / healthz "
            "from shared read-only closures (HTTP/1.1 + newline-"
            "delimited JSON, sniffed per connection, on TCP and/or a UNIX "
            "socket).  Several stores may be served at once -- requests "
            "route by alias or fingerprint via the optional 'store' "
            "field.  SIGHUP reloads every store (and rescans --store-dir) "
            "atomically; SIGINT/SIGTERM shut down gracefully."
        ),
    )
    p_serve.add_argument(
        "stores", nargs="*", metavar="STORE",
        help="store files written by `repro precompute`, each PATH or "
        "ALIAS=PATH (default alias: the file stem)",
    )
    p_serve.add_argument(
        "--store-dir", metavar="DIR", default=None,
        help="also serve every *.rpro file in DIR (rescanned on SIGHUP)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=None,
        help="TCP port (default: 7205; 0 picks an ephemeral port)",
    )
    p_serve.add_argument(
        "--unix", metavar="PATH", default=None,
        help="also listen on a UNIX socket at PATH (same protocol)",
    )
    p_serve.add_argument(
        "--no-tcp", action="store_true",
        help="do not bind the TCP listener (requires --unix)",
    )
    p_serve.add_argument(
        "--access-log", metavar="FILE", default=None,
        help="append one NDJSON record per request (op, store, queue "
        "wait, execute time, outcome) to FILE",
    )
    p_serve.add_argument(
        "--workers", type=int, default=None,
        help="query worker threads (default: 2)",
    )
    p_serve.add_argument(
        "--max-batch", type=int, default=None,
        help="request-coalescing limit per dispatch (default: 64)",
    )
    p_serve.add_argument(
        "--cost-bound", type=int, default=None,
        help="serve only costs up to this bound (default: each store's)",
    )
    p_serve.add_argument(
        "--access-log-max-bytes", metavar="SIZE", default=None,
        help="rotate the access log when it reaches SIZE (bytes, or "
        "K/M/G suffix); rotated files are FILE.1 (newest) .. FILE.N",
    )
    p_serve.add_argument(
        "--access-log-keep", type=int, default=None,
        help="rotated access-log files to keep (default: 3)",
    )
    p_serve.add_argument(
        "--drain-timeout", type=float, default=None, metavar="SECONDS",
        help="on SIGTERM/SIGINT, wait up to SECONDS for in-flight "
        "requests to finish before closing connections (default: 5)",
    )
    p_serve.add_argument(
        "--fault", metavar="SPEC", default=None,
        help="inject a deterministic fault for chaos testing: "
        "exit-after:N | hang:OP | slow:MS | reset-conn:P "
        "(comma-separate several)",
    )
    p_serve.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed for probabilistic fault injection (default: 0)",
    )

    p_fleet = sub.add_parser(
        "fleet",
        help="supervised replica fleet behind a retrying router",
        description=(
            "Run several `repro serve` replicas behind one front "
            "address.  The router consistent-hashes by store, retries "
            "idempotent queries across replicas behind per-backend "
            "circuit breakers, and sheds load when every replica is "
            "saturated; the supervisor restarts dead replicas, ejects "
            "slow ones, and re-admits them after a healthy probe, "
            "logging every decision to an NDJSON ops log."
        ),
    )
    fleet_sub = p_fleet.add_subparsers(dest="fleet_command", required=True)
    p_fserve = fleet_sub.add_parser(
        "serve", help="spawn replicas and serve through the router"
    )
    p_fserve.add_argument(
        "stores", nargs="*", metavar="STORE",
        help="store files, each PATH or ALIAS=PATH (as `repro serve`)",
    )
    p_fserve.add_argument("--store-dir", metavar="DIR", default=None)
    p_fserve.add_argument(
        "--replicas", type=int, default=2,
        help="backend processes to spawn (default: 2)",
    )
    p_fserve.add_argument("--host", default="127.0.0.1")
    p_fserve.add_argument(
        "--port", type=int, default=None,
        help="router TCP port (default: 7205; 0 picks an ephemeral port)",
    )
    p_fserve.add_argument(
        "--unix", metavar="PATH", default=None,
        help="also listen on a UNIX socket at PATH",
    )
    p_fserve.add_argument(
        "--no-tcp", action="store_true",
        help="do not bind the TCP listener (requires --unix)",
    )
    p_fserve.add_argument(
        "--run-dir", metavar="DIR", default=None,
        help="directory for backend sockets, access logs, and the ops "
        "log (default: a fresh temp dir, printed at startup)",
    )
    p_fserve.add_argument(
        "--ops-log", metavar="FILE", default=None,
        help="supervisor decision log, NDJSON (default: RUN_DIR/ops.ndjson)",
    )
    p_fserve.add_argument("--workers", type=int, default=None)
    p_fserve.add_argument("--max-batch", type=int, default=None)
    p_fserve.add_argument("--cost-bound", type=int, default=None)
    p_fserve.add_argument(
        "--retries", type=int, default=None,
        help="router retry/failover attempts beyond the first (default: 2)",
    )
    p_fserve.add_argument(
        "--attempt-timeout", type=float, default=None, metavar="SECONDS",
        help="per-attempt timeout before failing over (default: 30)",
    )
    p_fserve.add_argument(
        "--max-inflight", type=int, default=None,
        help="per-backend concurrent request bound; beyond it the "
        "fleet sheds with FLEET_OVERLOADED (default: 32)",
    )
    p_fserve.add_argument(
        "--min-healthy", type=int, default=None,
        help="supervisor guardrail: never eject/restart below this "
        "many healthy replicas (default: 1)",
    )
    p_fserve.add_argument(
        "--restart-budget", type=int, default=None,
        help="supervised restarts allowed per backend per minute "
        "(default: 3)",
    )
    p_fserve.add_argument(
        "--fault", action="append", metavar="INDEX:SPEC", default=None,
        help="chaos: inject SPEC into replica INDEX's first spawn, "
        "e.g. 0:exit-after:20 (repeatable; restarts come back clean)",
    )
    p_fserve.add_argument("--fault-seed", type=int, default=0)
    p_fstatus = fleet_sub.add_parser(
        "status", help="print a fleet's healthz (router + per-backend)"
    )
    p_fstatus.add_argument(
        "address", metavar="ADDR",
        help="router address: HOST:PORT or unix:PATH",
    )
    p_fstatus.add_argument(
        "--json", action="store_true", help="raw JSON payload"
    )

    p_pre = sub.add_parser(
        "precompute",
        help="expand the cascade closure once and save it as a store file",
    )
    p_pre.add_argument("out", help="store file to write (e.g. closure.rpro)")
    p_pre.add_argument("--cost-bound", type=int, default=7)
    p_pre.add_argument("--qubits", type=int, default=3)
    p_pre.add_argument(
        "--radix", type=int, choices=(2, 3, 4), default=2,
        help="wire radix: 2 expands the paper's binary library "
        "(default); 3/4 expand the ternary (Di-Wei) / quaternary "
        "Muthukrishnan-Stroud digit libraries",
    )
    p_pre.add_argument(
        "--no-parents",
        action="store_true",
        help="counting-only store (smaller; serves costs/tables, no witnesses)",
    )
    p_pre.add_argument("--v-cost", type=int, default=1)
    p_pre.add_argument("--vdag-cost", type=int, default=1)
    p_pre.add_argument("--cnot-cost", type=int, default=1)
    p_pre.add_argument(
        "--extend",
        action="store_true",
        help="if OUT already exists, load it, deepen the closure to "
        "--cost-bound with the vectorized kernel, and re-save (library "
        "and cost-model flags must match the existing store)",
    )
    p_pre.add_argument(
        "--kernel", choices=("vector", "translate", "parallel"), default=None,
        help="expansion kernel (vector: NumPy engine, default; "
        "translate: the byte-level reference loop; parallel: the "
        "sharded multi-worker engine -- implied by --jobs > 1 or any "
        "--dedup-*/--shard-bits/--checkpoint-dir flag)",
    )
    p_pre.add_argument(
        "--format-version", type=int, choices=(1, 2, 3), default=None,
        help="store format to write (default: 2, the memory-mapped "
        "layout with the serialized remainder index; 3 compresses the "
        "sections per level and decompresses them on touch)",
    )
    p_pre.add_argument(
        "--codec", choices=("auto", "zstd", "zlib", "raw"), default=None,
        help="v3 section codec (default auto: zstd when available, "
        "else zlib; requires --format-version 3)",
    )
    p_pre.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for candidate generation (parallel "
        "kernel; 1 = in-process)",
    )
    p_pre.add_argument(
        "--dedup-budget", metavar="SIZE", default=None,
        help="RAM budget for the dedup table (bytes, or 512M/2G); past "
        "it, per-shard slabs spill to disk-backed memmaps",
    )
    p_pre.add_argument(
        "--shard-bits", type=int, default=None, metavar="B",
        help="split the dedup keyspace into 2**B hash-prefix shards "
        "(default: 6)",
    )
    p_pre.add_argument(
        "--checkpoint-dir", metavar="DIR", default=None,
        help="persist completed levels + dedup slabs under DIR and "
        "resume from them after a crash (also the spill directory)",
    )
    p_pre.add_argument(
        "--progress", action="store_true",
        help="live one-line progress on stderr (TTY only) while the "
        "closure expands",
    )
    p_pre.add_argument(
        "--progress-log", metavar="FILE", default=None,
        help="append per-phase progress events (plan/generate/commit/"
        "level-end/spill/checkpoint) as NDJSON to FILE",
    )

    p_info = sub.add_parser("store-info", help="print a store file's header")
    p_info.add_argument("file", help="store file written by `repro precompute`")

    p_store = sub.add_parser(
        "store", help="store maintenance: info / verify / migrate"
    )
    store_sub = p_store.add_subparsers(dest="store_command", required=True)
    p_sinfo = store_sub.add_parser("info", help="print a store file's header")
    p_sinfo.add_argument("file")
    p_shards = store_sub.add_parser(
        "shards",
        help="per-level row counts, section sizes and dedup-shard "
        "layout (for sizing --dedup-budget)",
    )
    p_shards.add_argument("file")
    p_shards.add_argument(
        "--bits", type=int, default=None, metavar="B",
        help="no recorded layout? project one by hashing the stored "
        "rows into 2**B shards",
    )
    p_sverify = store_sub.add_parser(
        "verify",
        help="full integrity pass: framing, sha256 checksum, invariants",
    )
    p_sverify.add_argument("file")
    p_smigrate = store_sub.add_parser(
        "migrate",
        help="rewrite a store in another format (v1 -> v2 upgrade, "
        "v2 <-> v3 compress/decompress)",
    )
    p_smigrate.add_argument("src", help="existing store file")
    p_smigrate.add_argument("dst", help="store file to write")
    p_smigrate.add_argument(
        "--format-version", type=int, choices=(1, 2, 3), default=None,
        help="target format (default: 2)",
    )
    p_smigrate.add_argument(
        "--codec", choices=("auto", "zstd", "zlib", "raw"), default=None,
        help="v3 section codec (default auto: zstd when available, "
        "else zlib; requires --format-version 3)",
    )

    p_plan = sub.add_parser(
        "plan",
        help="size --jobs/--shard-bits/--dedup-budget for a precompute run",
        description=(
            "Project the closure size for a cost bound and size the "
            "parallel-expansion flags from this machine's CPU count and "
            "available RAM.  An existing store seeds the projection with "
            "its recorded level sizes and shard skew."
        ),
    )
    p_plan.add_argument(
        "store", nargs="?", default=None,
        help="existing store whose level sizes seed the projection",
    )
    p_plan.add_argument(
        "--cost-bound", type=int, default=7,
        help="closure bound being planned (default: 7)",
    )
    p_plan.add_argument(
        "--memory", metavar="SIZE", default=None,
        help="plan for this much RAM (bytes, or 512M/8G/1.5GiB) "
        "instead of the detected available memory",
    )
    p_plan.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="plan for N workers instead of this machine's CPU count",
    )
    p_plan.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    p_load = sub.add_parser(
        "load",
        help="re-verify a saved result, or drive a scenario load test",
    )
    p_load.add_argument(
        "file",
        help="JSON file written by `repro synth --save`, or -- with "
        "--server/--dry-run -- a scenario spec (.toml/.json path or a "
        "name under scenarios/)",
    )
    p_load.add_argument(
        "--server", metavar="ADDR", default=None,
        help="drive the scenario against this server or fleet front "
        "(HOST:PORT or unix:PATH)",
    )
    p_load.add_argument(
        "--seed", type=int, default=None,
        help="override the spec's RNG seed (same seed = same stream)",
    )
    p_load.add_argument(
        "--requests", type=int, default=None,
        help="override the spec's stream length",
    )
    p_load.add_argument(
        "--concurrency", type=int, default=None,
        help="override the spec's worker-thread count",
    )
    p_load.add_argument(
        "--timing", action="store_true",
        help="pace requests by the spec's arrival offsets (default: "
        "closed loop)",
    )
    p_load.add_argument(
        "--retries", type=int, default=0,
        help="client transport retries per request (for fleet/chaos runs)",
    )
    p_load.add_argument(
        "--dry-run", action="store_true",
        help="print the planned request stream as NDJSON and exit "
        "(no server needed; two runs with one seed are identical)",
    )
    p_load.add_argument(
        "--json", dest="json_out", metavar="FILE", default=None,
        help="also write the scenario report as JSON to FILE",
    )
    p_load.add_argument(
        "--no-slo", action="store_true",
        help="report SLO violations without failing the exit code",
    )

    p_replay = sub.add_parser(
        "replay",
        help="re-drive a recorded access log against a live server",
    )
    p_replay.add_argument(
        "log", help="NDJSON access log written by `repro serve --access-log`"
    )
    p_replay.add_argument(
        "--server", metavar="ADDR", required=True,
        help="server or fleet front to replay against",
    )
    p_replay.add_argument(
        "--golden", action="append", metavar="[ALIAS=]PATH", default=None,
        help="store file to byte-diff results against (repeatable; "
        "bare PATH is the default for every alias)",
    )
    p_replay.add_argument(
        "--no-rotated", action="store_true",
        help="read only the named file, not its rotated set",
    )
    p_replay.add_argument(
        "--strict", action="store_true",
        help="a malformed log line fails the replay (default: a "
        "truncated final line per file is tolerated and reported)",
    )
    p_replay.add_argument(
        "--timing", action="store_true",
        help="pace the replay by the recorded timestamps",
    )
    p_replay.add_argument(
        "--speed", type=float, default=1.0,
        help="timing speedup factor (2.0 = twice as fast)",
    )
    p_replay.add_argument(
        "--limit", type=int, default=None,
        help="replay at most N records",
    )
    p_replay.add_argument(
        "--retries", type=int, default=0,
        help="client transport retries per request",
    )
    p_replay.add_argument(
        "--json", dest="json_out", metavar="FILE", default=None,
        help="also write the replay report as JSON to FILE",
    )

    p_tail = sub.add_parser(
        "tail",
        help="summarize access/ops/progress logs; join requests by trace id",
        description=(
            "Read one or more NDJSON logs written by the serving stack "
            "(replica access logs, the router access log, supervisor "
            "ops logs, precompute progress logs), roll them up per "
            "store, and join request records across files by trace_id "
            "-- a failover shows up as one trace with a router record "
            "plus one replica record per attempt."
        ),
    )
    p_tail.add_argument(
        "logs", nargs="+", metavar="LOG",
        help="NDJSON log file (rotated siblings LOG.1.. are included "
        "unless --no-rotated)",
    )
    p_tail.add_argument(
        "--trace", metavar="TRACE_ID", default=None,
        help="show only this trace's joined records",
    )
    p_tail.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    p_tail.add_argument(
        "--follow", action="store_true",
        help="re-read and re-print the summary every --interval seconds",
    )
    p_tail.add_argument(
        "--interval", type=float, default=2.0,
        help="refresh period for --follow (default: 2s)",
    )
    p_tail.add_argument(
        "--no-rotated", action="store_true",
        help="read only the named files, not their rotated sets",
    )

    sub.add_parser("identities", help="verified gate-identity catalog")

    sub.add_parser("peres-family", help="G[4] universal-gate analysis (Sec. 5)")
    sub.add_parser("banned-sets", help="banned sets and sub-libraries (Sec. 3)")
    sub.add_parser("compare", help="NCT/MMD baselines vs direct synthesis")
    sub.add_parser("verify-gates", help="MV-vs-unitary gate representation check")

    p_rng = sub.add_parser("rng", help="controlled quantum RNG demo (Sec. 4)")
    p_rng.add_argument("--bits", type=int, default=32)
    p_rng.add_argument("--seed", type=int, default=None)
    return parser


def _cmd_table1() -> int:
    from repro.gates.gate import Gate
    from repro.gates.truth_table import TruthTable
    from repro.mvl.labels import label_space
    from repro.render.tables import truth_table_text

    space = label_space(2, reduced=False, ordering="grouped")
    gate = Gate.v(1, 0, 2)  # data B controlled by A, the paper's Table 1 gate
    table = TruthTable.from_gate(gate, space)
    print("Controlled-V on 2 qubits (control A, data B):")
    print(truth_table_text(table))
    print(f"\npermutation representation: {table.permutation().cycle_string()}")
    return 0


def _store_bound(requested: int | None, expanded_to: int, store: str) -> int:
    """Resolve a --cost-bound against what a store/server covers."""
    from repro.io import resolve_cost_bound

    return resolve_cost_bound(requested, expanded_to, store)


def _cmd_table2(
    cost_bound: int | None, paper_pseudocode: bool, store: str | None = None
) -> int:
    from repro.core.fmcf import find_minimum_cost_circuits
    from repro.gates.library import GateLibrary
    from repro.render.tables import cost_table_text

    if store is not None:
        if paper_pseudocode:
            from repro.errors import SpecificationError

            raise SpecificationError(
                "--paper-pseudocode re-counts the identity per level; a "
                "store index keeps minimal costs only, so the two cannot "
                "be combined"
            )
        from repro.core.batch import BatchSynthesizer
        from repro.io import open_store

        header, _library, search = open_store(store)
        bound = _store_bound(cost_bound, header.expanded_to, store)
        table = BatchSynthesizer(search, cost_bound=bound).cost_table()
    else:
        library = GateLibrary(3)
        table = find_minimum_cost_circuits(
            library,
            cost_bound=7 if cost_bound is None else cost_bound,
            paper_pseudocode=paper_pseudocode,
        )
    paper_row = [1, 6, 30, 52, 84, 156, 398, 540]
    print(cost_table_text(
        table, paper_g=paper_row if table.cost_bound <= 7 else None
    ))
    if table.stats is not None:
        print(f"\nclosure: {table.stats.total_seen} cascades, "
              f"{table.stats.elapsed_seconds:.2f}s"
              + (f" (precomputed, served from {store})" if store else ""))
    return 0


def _resolve_target(text: str, n_qubits: int = 3, radix: int = 2):
    from repro.io import parse_target

    return parse_target(text, n_qubits=n_qubits, radix=radix)


def _print_result(result) -> bool:
    from repro.core.schedule import depth
    from repro.render.diagram import circuit_diagram
    from repro.sim.verify import verify_synthesis

    print(f"{result.circuit}   [depth {depth(result.circuit)}]")
    print(circuit_diagram(result.circuit))
    report = verify_synthesis(result)
    if "mv-permutation" in report.checks or any(
        f.startswith("mv-permutation") for f in report.failures
    ):
        status = "verified (digit permutation)" if report else "FAILED"
    else:
        status = "verified (MV + exact unitary)" if report else "FAILED"
    print(f"  -> {status}\n")
    return bool(report)


def _cmd_synth(
    target_text: str | None,
    all_implementations: bool,
    cost_bound: int | None,
    save: str | None = None,
    store: str | None = None,
    batch_file: str | None = None,
    server: str | None = None,
    store_alias: str | None = None,
) -> int:
    from repro.errors import SpecificationError
    from repro.gates.library import GateLibrary

    if (target_text is None) == (batch_file is None):
        raise SpecificationError(
            "give exactly one of a target or --batch FILE"
        )
    if store is not None and server is not None:
        raise SpecificationError("give at most one of --store and --server")
    if store_alias is not None and server is None:
        raise SpecificationError("--store-alias requires --server")

    if server is not None:
        return _synth_via_server(
            server, target_text, all_implementations, cost_bound, save,
            batch_file, store_alias,
        )

    if store is not None:
        from repro.core.batch import BatchSynthesizer
        from repro.io import open_store

        header, library, search = open_store(store)
        bound = _store_bound(cost_bound, header.expanded_to, store)
        batch = BatchSynthesizer(search, cost_bound=bound)
        print(
            f"store {store}: closure to cost {header.expanded_to}, "
            f"{header.total_seen} cascades (no re-expansion, "
            f"serving cost <= {bound})\n"
        )
    else:
        library = GateLibrary(3)
        batch = None
        if cost_bound is None:
            from repro.core.mce import DEFAULT_COST_BOUND

            cost_bound = DEFAULT_COST_BOUND

    if batch_file is not None:
        return _synth_batch(batch_file, library, batch, cost_bound, save)

    target = _resolve_target(
        target_text, library.n_qubits, library.space.radix
    )
    if batch is not None:
        if all_implementations:
            results = batch.synthesize_all(target)
        else:
            results = [batch.synthesize(target)]
    else:
        from repro.core.mce import express, express_all

        if all_implementations:
            results = express_all(target, library, cost_bound=cost_bound)
        else:
            results = [express(target, library, cost_bound=cost_bound)]
    return _print_synth_results(results, save)


def _synth_via_server(
    server: str,
    target_text: str | None,
    all_implementations: bool,
    cost_bound: int | None,
    save: str | None,
    batch_file: str | None,
    store_alias: str | None = None,
) -> int:
    """``repro synth --server``: same output, remote backend.

    The result body (everything after the banner line) is byte-
    identical to ``repro synth --store`` against the same store: the
    server ships :func:`repro.io.result_to_dict` records, the client
    rebuilds and *re-verifies* them locally, and the shared printing
    path does the rest.  *store_alias* routes every request on a
    multi-store server.
    """
    from repro.client import ServeClient
    from repro.gates.library import GateLibrary

    with ServeClient(server, store=store_alias) as client:
        info = client.store_info()
        bound = _store_bound(
            cost_bound, info["serving_cost_bound"], f"server {server}"
        )
        print(
            f"server {server}: store {info['path']}, closure to cost "
            f"{info['expanded_to']}, {info['total_seen']} cascades "
            f"(no re-expansion, serving cost <= {bound})\n"
        )
        if batch_file is not None:
            radix = int(info.get("radix", 2))
            if radix == 3:
                from repro.gates.ternary import ternary_library

                library = ternary_library(info["n_qubits"])
            elif radix == 4:
                from repro.gates.quaternary import quaternary_library

                library = quaternary_library(info["n_qubits"])
            else:
                library = GateLibrary(info["n_qubits"])
            return _synth_batch(
                batch_file, library, None, cost_bound, save, client=client
            )
        results = client.synth_results(
            target_text, all=all_implementations, cost_bound=cost_bound
        )
        return _print_synth_results(results, save)


def _print_synth_results(results, save: str | None) -> int:
    """The shared result-printing tail of every ``repro synth`` backend."""
    target = results[0].target
    print(
        f"target {target.cycle_string()} -- minimal quantum cost "
        f"{results[0].cost}, {len(results)} implementation(s):\n"
    )
    for result in results:
        _print_result(result)
    if save is not None:
        from repro.io import save_result

        save_result(results[0], save)
        print(f"saved first implementation to {save}")
    return 0


def _synth_batch(
    batch_file: str,
    library,
    batch,
    cost_bound: int,
    save: str | None,
    client=None,
) -> int:
    from repro.errors import CostBoundExceededError
    from repro.core.mce import express
    from repro.core.search import CascadeSearch
    from repro.io import load_targets, save_batch_results
    from repro.sim.verify import verify_synthesis

    targets = load_targets(
        batch_file, n_qubits=library.n_qubits, radix=library.space.radix
    )
    entries = None
    if client is not None:
        # One coalesced server-side batch; per-target errors come back
        # as structured payloads alongside the successful records.
        from repro.io import result_from_dict
        from repro.server.protocol import error_to_exception

        reply = client.synth_batch(
            [spec for spec, _target in targets], cost_bound=cost_bound
        )
        entries = reply["results"]
    elif batch is None:
        # One shared live closure amortizes the BFS across the batch.
        search = CascadeSearch(library, track_parents=True)
    results = []
    failures = 0
    for i, (spec, target) in enumerate(targets):
        try:
            if entries is not None:
                entry = entries[i]
                if not entry["ok"]:
                    raise error_to_exception(entry["error"])
                result = result_from_dict(entry["result"])
            elif batch is not None:
                result = batch.synthesize(target)
            else:
                result = express(
                    target, library, cost_bound=cost_bound, search=search
                )
        except CostBoundExceededError as exc:
            print(f"{spec:24} -> no realization ({exc})")
            failures += 1
            continue
        ok = verify_synthesis(result)
        results.append(result)
        status = "ok" if ok else "VERIFY FAILED"
        if not ok:
            failures += 1
        print(
            f"{spec:24} -> cost {result.cost}  {result.circuit}  [{status}]"
        )
    print(
        f"\n{len(results)}/{len(targets)} synthesized"
        + (f", {failures} failure(s)" if failures else "")
    )
    if save is not None:
        save_batch_results(results, save)
        print(f"saved batch results to {save}")
    return 1 if failures else 0


def _resolve_precompute_kernel(
    kernel: str | None,
    jobs: int | None,
    dedup_budget: str | None,
    shard_bits: int | None,
    checkpoint_dir: str | None,
) -> tuple[str, dict]:
    """Pick the expansion kernel + options from the precompute flags.

    Any parallel-engine tunable implies ``kernel="parallel"``; flags on
    a non-parallel kernel are refused rather than silently ignored.
    """
    from repro.core.dedup import parse_budget
    from repro.errors import SpecificationError

    options: dict = {}
    if jobs is not None:
        options["jobs"] = jobs
    if dedup_budget is not None:
        options["memory_budget"] = parse_budget(dedup_budget)
    if shard_bits is not None:
        options["shard_bits"] = shard_bits
    if checkpoint_dir is not None:
        options["checkpoint_dir"] = checkpoint_dir
    if kernel is None:
        kernel = "parallel" if options else "vector"
    elif options and kernel != "parallel":
        raise SpecificationError(
            "--jobs/--dedup-budget/--shard-bits/--checkpoint-dir are "
            f"parallel-kernel options; they cannot combine with "
            f"--kernel {kernel}"
        )
    return kernel, options


def _cmd_precompute(
    out: str,
    cost_bound: int,
    qubits: int,
    no_parents: bool,
    v_cost: int,
    vdag_cost: int,
    cnot_cost: int,
    radix: int = 2,
    extend: bool = False,
    kernel: str | None = None,
    format_version: int | None = None,
    codec: str | None = None,
    jobs: int | None = None,
    dedup_budget: str | None = None,
    shard_bits: int | None = None,
    checkpoint_dir: str | None = None,
    progress: bool = False,
    progress_log: str | None = None,
) -> int:
    from pathlib import Path

    from repro.core.cost import CostModel
    from repro.core.search import CascadeSearch
    from repro.core.store import (
        cost_model_fingerprint,
        library_fingerprint,
        read_header,
    )
    from repro.errors import StoreMismatchError
    from repro.gates.library import GateLibrary
    from repro.io import open_store, save_search

    if codec is not None and format_version != 3:
        from repro.errors import SpecificationError

        raise SpecificationError(
            "--codec chooses the v3 section compression; it requires "
            "--format-version 3"
        )
    kernel, kernel_options = _resolve_precompute_kernel(
        kernel, jobs, dedup_budget, shard_bits, checkpoint_dir
    )
    if radix != 2:
        from repro.errors import SpecificationError

        if (v_cost, vdag_cost, cnot_cost) != (1, 1, 1):
            raise SpecificationError(
                "--v-cost/--vdag-cost/--cnot-cost tune the binary "
                "library; MV gate costs are fixed by the digit library "
                "(singles 1, controlled 2)"
            )
        if radix == 3:
            from repro.gates.ternary import ternary_library

            library = ternary_library(qubits)
        else:
            from repro.gates.quaternary import quaternary_library

            library = quaternary_library(qubits)
    else:
        library = GateLibrary(qubits)
    cost_model = CostModel(
        v_cost=v_cost, vdag_cost=vdag_cost, cnot_cost=cnot_cost
    )
    if extend and Path(out).exists():
        old = read_header(out)
        if old.library_fingerprint != library_fingerprint(library) or (
            old.cost_fingerprint != cost_model_fingerprint(cost_model)
        ):
            raise StoreMismatchError(
                f"{out} was expanded under a different library or cost "
                "model than the given flags; refusing to extend it"
            )
        if no_parents and old.track_parents:
            raise StoreMismatchError(
                f"{out} tracks parents but --no-parents was given; "
                "precompute a fresh counting-only store instead"
            )
        if not no_parents and not old.track_parents:
            raise StoreMismatchError(
                f"{out} is a counting-only store (no parents); extending "
                "it cannot add witnesses -- pass --no-parents to extend "
                "it as-is, or precompute a fresh parent-tracking store"
            )
        _header, library, search = open_store(out)
        search.use_kernel(kernel, kernel_options or None)
        previous = search.expanded_to
        if cost_bound <= previous:
            print(
                f"{out} already covers cost {previous} (>= {cost_bound}); "
                "nothing to extend"
            )
            return 0
        print(
            f"extending {out} from cost {previous} to {cost_bound} "
            f"({kernel} kernel)"
        )
    else:
        previous = None
        search = CascadeSearch(
            library,
            cost_model,
            track_parents=not no_parents,
            kernel=kernel,
            kernel_options=kernel_options,
        )
        if search.was_restored and search.expanded_to:
            print(
                f"resumed checkpoint {checkpoint_dir} at cost "
                f"{search.expanded_to}"
            )
    reporter = None
    if progress or progress_log:
        from repro.telemetry import ProgressReporter, make_tty

        reporter = ProgressReporter(
            path=progress_log, tty=make_tty(progress and sys.stderr.isatty())
        )
        reporter.emit(
            "start",
            degree=library.space.size,
            qubits=qubits,
            radix=radix,
            cost_bound=cost_bound,
            kernel=kernel,
            track_parents=not no_parents,
            resumed_from=previous if previous is not None else 0,
        )
        search.set_progress(reporter)
    try:
        search.extend_to(cost_bound)
        stats = search.stats()
        if reporter is not None:
            reporter.emit(
                "done",
                levels=search.expanded_to,
                rows=stats.total_seen,
                elapsed_s=round(stats.elapsed_seconds, 6),
            )
        if format_version is None:
            header = save_search(search, out)
        else:
            header = save_search(
                search, out, format_version=format_version, codec=codec
            )
    finally:
        search.close()
        if reporter is not None:
            reporter.close()
    size = Path(out).stat().st_size
    verb = "extended" if previous is not None else "expanded"
    print(
        f"{verb} {library!r} to cost {cost_bound}: "
        f"{stats.total_seen} cascades in {stats.elapsed_seconds:.2f}s"
    )
    if kernel == "parallel":
        layout = header.shards
        if layout:
            spill = "disk-backed" if layout.get("spilled") else "in-RAM"
            print(
                f"dedup table: {1 << layout['shard_bits']} shards x "
                f"{layout['slab_slots']} slots ({spill}), "
                f"jobs {kernel_options.get('jobs', 1)}"
            )
    print(f"levels |B[k]|: {list(stats.level_sizes)}")
    print(
        f"wrote {out} ({size / 1e6:.1f} MB, format {header.format_version}, "
        f"parents {'yes' if header.track_parents else 'no'})"
    )
    print(f"library fingerprint {header.library_fingerprint[:16]}...")
    return 0


def _cmd_serve(
    stores: list[str],
    store_dir: str | None,
    host: str,
    port: int | None,
    unix: str | None,
    no_tcp: bool,
    access_log: str | None,
    workers: int | None,
    max_batch: int | None,
    cost_bound: int | None,
    access_log_max_bytes: str | None = None,
    access_log_keep: int | None = None,
    drain_timeout: float | None = None,
    fault: str | None = None,
    fault_seed: int = 0,
) -> int:
    import asyncio

    from repro.core.dedup import parse_budget
    from repro.errors import SpecificationError
    from repro.server import DEFAULT_PORT, run_server

    max_bytes = (
        None if access_log_max_bytes is None
        else parse_budget(access_log_max_bytes)
    )

    if not stores and store_dir is None:
        raise SpecificationError(
            "nothing to serve: give store files and/or --store-dir"
        )
    if no_tcp:
        if unix is None:
            raise SpecificationError("--no-tcp requires --unix PATH")
        if port is not None:
            raise SpecificationError("give at most one of --port and --no-tcp")
        bind_port = None
    else:
        bind_port = DEFAULT_PORT if port is None else port

    def ready(address, service) -> None:
        for alias, state in service.registry:
            print(
                f"serving {alias}={state.path}: closure to cost "
                f"{state.header.expanded_to}, {state.header.total_seen} "
                f"cascades (cost <= {state.cost_bound})"
            )
        if access_log is not None:
            print(f"access log: {access_log} (NDJSON, one record/request)")
        if unix is not None:
            print(f"listening on unix:{unix} (HTTP/1.1 + NDJSON)")
        if address is not None:
            bound_host, bound_port = address
            print(f"listening on {bound_host}:{bound_port} "
                  "(HTTP/1.1 + NDJSON)")
        print(
            "SIGHUP reloads the stores, SIGINT/SIGTERM stop",
            flush=True,
        )

    extra = {}
    if drain_timeout is not None:
        extra["drain_timeout"] = drain_timeout
    return asyncio.run(
        run_server(
            stores,
            host=host,
            port=bind_port,
            cost_bound=cost_bound,
            workers=workers,
            max_batch=max_batch,
            ready=ready,
            unix=unix,
            store_dir=store_dir,
            access_log=access_log,
            access_log_max_bytes=max_bytes,
            access_log_keep=access_log_keep,
            fault=fault,
            fault_seed=fault_seed,
            **extra,
        )
    )


def _cmd_fleet_serve(args) -> int:
    import asyncio

    from repro.errors import SpecificationError
    from repro.fleet.manager import run_fleet
    from repro.fleet.supervisor import GuardRails
    from repro.server import DEFAULT_PORT

    if not args.stores and args.store_dir is None:
        raise SpecificationError(
            "nothing to serve: give store files and/or --store-dir"
        )
    if args.no_tcp:
        if args.unix is None:
            raise SpecificationError("--no-tcp requires --unix PATH")
        if args.port is not None:
            raise SpecificationError("give at most one of --port and --no-tcp")
        bind_port = None
    else:
        bind_port = DEFAULT_PORT if args.port is None else args.port

    faults: dict[int, str] = {}
    for item in args.fault or []:
        index_text, _, spec = item.partition(":")
        if not index_text.isdigit() or not spec:
            raise SpecificationError(
                f"bad --fault {item!r}: expected INDEX:SPEC, "
                "e.g. 0:exit-after:20"
            )
        faults[int(index_text)] = spec

    guardrails = GuardRails(
        min_healthy=(
            GuardRails.min_healthy if args.min_healthy is None
            else args.min_healthy
        ),
        restart_budget=(
            GuardRails.restart_budget if args.restart_budget is None
            else args.restart_budget
        ),
    )

    def ready(address, handle) -> None:
        manager = handle.manager
        print(f"fleet run dir: {manager.run_dir}")
        for name, backend in manager.backends.items():
            note = (
                f" (fault: {backend.fault})" if backend.fault is not None
                else ""
            )
            print(f"  {name}: {backend.endpoint} pid "
                  f"{backend.proc.pid}{note}")
        print(f"ops log: {handle.ops_log} (NDJSON, one record/decision)")
        if handle.router_access_log:
            print(f"router access log: {handle.router_access_log} "
                  "(NDJSON, one record/request, trace ids)")
        if args.unix is not None:
            print(f"routing on unix:{args.unix} (HTTP/1.1 + NDJSON)")
        if address is not None:
            bound_host, bound_port = address
            print(f"routing on {bound_host}:{bound_port} "
                  "(HTTP/1.1 + NDJSON)")
        print("SIGINT/SIGTERM stop the fleet", flush=True)

    extra = {}
    if args.retries is not None:
        extra["retries"] = args.retries
    if args.attempt_timeout is not None:
        extra["attempt_timeout"] = args.attempt_timeout
    if args.max_inflight is not None:
        extra["max_inflight"] = args.max_inflight
    return asyncio.run(
        run_fleet(
            args.stores,
            replicas=args.replicas,
            host=args.host,
            port=bind_port,
            unix=args.unix,
            store_dir=args.store_dir,
            cost_bound=args.cost_bound,
            workers=args.workers,
            max_batch=args.max_batch,
            run_dir=args.run_dir,
            ops_log=args.ops_log,
            faults=faults,
            fault_seed=args.fault_seed,
            guardrails=guardrails,
            ready=ready,
            **extra,
        )
    )


def _cmd_fleet_status(address: str, as_json: bool) -> int:
    import json as json_mod

    from repro.client import http_request
    from repro.errors import ServerError

    status, payload = http_request(address, "/healthz")
    if status != 200:
        raise ServerError(f"healthz returned HTTP {status}: {payload}")
    if as_json:
        print(json_mod.dumps(payload, indent=2, sort_keys=True))
        return 0
    role = payload.get("role", "server")
    print(f"{address}: {payload.get('status', '?')} ({role})")
    if payload.get("version"):
        print(f"  version: {payload['version']}")
    if role != "router":
        print("  (single server, not a fleet front)")
        return 0
    print(
        f"  backends: {payload.get('healthy_backends', '?')} healthy / "
        f"{payload.get('admitted_backends', '?')} admitted / "
        f"{len(payload.get('backends', {}))} total"
    )
    print(
        f"  routed: {payload.get('routed', 0)}  "
        f"failovers: {payload.get('failovers', 0)}  "
        f"shed: {payload.get('shed', 0)}"
    )
    for name in sorted(payload.get("backends", {})):
        info = payload["backends"][name]
        state = "admitted" if info.get("admitted") else "EJECTED"
        line = (
            f"  {name}: {state}, breaker {info.get('breaker')}, "
            f"inflight {info.get('inflight')}/{info.get('max_inflight')}, "
            f"requests {info.get('requests')} "
            f"(failures {info.get('failures')})"
        )
        latency = info.get("latency_recent_ms")
        if latency:
            line += f", recent p99 {latency.get('p99'):.1f} ms"
        if info.get("version"):
            line += f", v{info['version']}"
        print(line)
    versions = {
        info["version"]
        for info in payload.get("backends", {}).values()
        if info.get("version")
    }
    if payload.get("version"):
        versions.add(payload["version"])
    if len(versions) > 1:
        print(
            f"  WARNING: version skew across the fleet: "
            f"{', '.join(sorted(versions))}"
        )
    return 0


def _cmd_store_info(path: str) -> int:
    from repro.io import read_header

    header = read_header(path)
    print(f"{path}: closure store, format {header.format_version}")
    if header.radix != 2:
        print(
            f"  library: {header.n_qubits} wires at radix {header.radix} "
            f"({header.radix}**{header.n_qubits} digit labels, "
            f"{header.library_family} gate family), "
            f"kinds {'/'.join(header.gate_kinds)}"
        )
    else:
        print(
            f"  library: {header.n_qubits} qubits, {header.degree} labels "
            f"(reduced={header.space_reduced}, "
            f"ordering={header.space_ordering}), "
            f"kinds {'/'.join(header.gate_kinds)}"
        )
    print(f"  library fingerprint: {header.library_fingerprint}")
    cm = header.cost_model
    if header.radix != 2:
        print("  cost model: digit library (singles 1, controlled 2)")
    else:
        print(
            f"  cost model: V={cm.v_cost} V+={cm.vdag_cost} "
            f"CNOT={cm.cnot_cost} NOT={cm.not_cost}"
            + (" (free)" if cm.not_cost == 0 else "")
        )
    if header.writer or header.kernel:
        kernel = f"{header.kernel} kernel" if header.kernel else "unknown kernel"
        writer = header.writer or "unknown writer"
        print(f"  written by: {writer} ({kernel})")
    else:
        print("  written by: not recorded (pre-provenance store)")
    print(
        f"  closure: cost bound {header.expanded_to}, "
        f"{header.total_seen} cascades, parents "
        f"{'tracked' if header.track_parents else 'not tracked'}"
    )
    print(f"  levels |B[k]|: {list(header.level_sizes)}")
    print(f"  expansion time: {header.elapsed_seconds:.2f}s")
    if header.format_version >= 3:
        stored = sum(
            s for spans in header.chunks.values() for (_, s, _) in spans
        )
        raw = sum(
            r for spans in header.chunks.values() for (_, _, r) in spans
        )
        ratio = stored / raw if raw else 1.0
        print(
            f"  layout: chunk-compressed v3 ({header.codec} codec, "
            "decompress-on-touch)"
        )
        print(
            f"  chunks: {sum(len(s) for s in header.chunks.values())} "
            f"spans over {len(header.chunks)} sections, "
            f"{stored / 1e6:.1f} MB compressed / {raw / 1e6:.1f} MB raw "
            f"({ratio:.2f}x)"
        )
    elif header.format_version >= 2:
        print(
            "  layout: memory-mapped v2 (8-aligned sections, "
            "O(queries touched) open)"
        )
        print(
            f"  sections: "
            + ", ".join(
                f"{name}@{off}+{length}"
                for name, (off, length) in header.sections.items()
            )
        )
    if header.format_version >= 2:
        print(
            f"  remainder index: {header.index_entries} reversible "
            f"functions, {header.index_matches} minimal-cost witnesses "
            "(serialized; no closure scan on open)"
        )
        if header.shards:
            layout = header.shards
            rows = layout.get("rows_per_shard", [])
            print(
                f"  dedup shards: {1 << layout['shard_bits']} x "
                f"{layout['slab_slots']} slots, max {max(rows, default=0)} "
                f"rows/shard "
                f"({'disk-backed' if layout.get('spilled') else 'in-RAM'}; "
                "`repro store shards` for the full layout)"
            )
    else:
        print(
            "  layout: legacy v1 (eager byte records; "
            "`repro store migrate` upgrades to v2)"
        )
    return 0


def _cmd_store_shards(path: str, bits: int | None) -> int:
    """Per-level rows, section sizes, shard layout -- budget sizing aid."""
    from repro.io import read_header
    from repro.render.tables import format_table

    header = read_header(path)
    print(f"{path}: closure store, format {header.format_version}")
    offsets = header.level_row_offsets
    if offsets:
        rows = [
            [k, offsets[k], offsets[k + 1] - offsets[k]]
            for k in range(len(offsets) - 1)
        ]
        print(format_table(["level", "first row", "rows"], rows))
    else:
        print(f"  levels |B[k]|: {list(header.level_sizes)} (v1: no offsets)")
    if header.sections:
        rows = [
            [name, offset, length]
            for name, (offset, length) in header.sections.items()
        ]
        print(format_table(["section", "offset", "bytes"], rows))
    elif header.chunks:
        rows = [
            [
                name,
                len(spans),
                sum(s for (_, s, _) in spans),
                sum(r for (_, _, r) in spans),
            ]
            for name, spans in header.chunks.items()
        ]
        print(format_table(
            ["section", "chunks", "stored bytes", "raw bytes"], rows
        ))
    layout = header.shards
    if not layout and bits is None and header.format_version >= 2:
        print(
            "no recorded shard layout (store not written by the parallel "
            "kernel); pass --bits B to project one"
        )
        return 0
    if layout and bits is None:
        per_shard = layout.get("rows_per_shard", [])
        shard_bits = layout["shard_bits"]
        slots = layout["slab_slots"]
        source = "recorded by the parallel kernel"
    else:
        if header.format_version < 2:
            print(
                "legacy v1 store: no mappable rows to project a shard "
                "layout from (`repro store migrate` first)"
            )
            return 0
        from repro.core.dedup import MAX_SHARD_BITS
        from repro.errors import SpecificationError

        from repro.core.store import projected_shard_layout

        shard_bits = 6 if bits is None else bits
        if not 0 <= shard_bits <= MAX_SHARD_BITS:
            raise SpecificationError(
                f"--bits must be in 0..{MAX_SHARD_BITS} (the engine's "
                f"supported shard range), got {shard_bits}"
            )
        per_shard, slots = projected_shard_layout(path, shard_bits)
        source = f"projected from the stored rows at --bits {shard_bits}"
    if per_shard:
        peak = max(per_shard)
        total_bytes = (1 << shard_bits) * slots * 8
        print(
            f"dedup shards ({source}): {1 << shard_bits} shards, "
            f"{slots} slots each"
        )
        print(
            f"  rows/shard: min {min(per_shard)}, max {peak}, "
            f"total {sum(per_shard)}"
        )
        print(
            f"  table bytes at load<=1/4: {total_bytes} "
            f"(--dedup-budget below this spills to disk)"
        )
    return 0


def _cmd_store_verify(path: str) -> int:
    from repro.io import verify_store

    header = verify_store(path)
    print(
        f"{path}: OK (format {header.format_version}, "
        f"{header.total_seen} cascades, sha256 verified)"
    )
    return 0


def _cmd_store_migrate(
    src: str,
    dst: str,
    format_version: int | None = None,
    codec: str | None = None,
) -> int:
    from pathlib import Path

    from repro.io import migrate_store

    if codec is not None and format_version != 3:
        from repro.errors import SpecificationError

        raise SpecificationError(
            "--codec chooses the v3 section compression; it requires "
            "--format-version 3"
        )
    if format_version is None:
        old, new = migrate_store(src, dst)
    else:
        old, new = migrate_store(
            src, dst, format_version=format_version, codec=codec
        )
    detail = f"format {new.format_version}"
    if new.codec:
        detail += f", {new.codec}"
    print(
        f"migrated {src} (format {old.format_version}) -> {dst} "
        f"({detail}, {Path(dst).stat().st_size / 1e6:.1f} MB)"
    )
    print(
        f"  {new.total_seen} cascades to cost {new.expanded_to}, "
        f"remainder index: {new.index_entries} entries"
    )
    return 0


def _cmd_plan(
    store: str | None,
    cost_bound: int,
    memory: str | None,
    jobs: int | None,
    as_json: bool,
) -> int:
    from repro.core.dedup import parse_budget
    from repro.core.plan import plan_resources
    from repro.io import read_header

    header = None if store is None else read_header(store)
    memory_bytes = None if memory is None else parse_budget(memory)
    plan = plan_resources(
        cost_bound,
        header=header,
        memory_bytes=memory_bytes,
        jobs=jobs,
    )
    if as_json:
        import json

        print(json.dumps(plan.as_dict(), indent=2))
        return 0
    print(f"plan for cost bound {plan.cost_bound}:")
    print(f"  projected closure: {plan.projected_rows} cascades")
    mem = (
        "unknown" if plan.memory_bytes is None
        else f"{plan.memory_bytes / 1e9:.1f} GB"
    )
    print(
        f"  dedup table at load<=1/4: {plan.table_bytes / 1e6:.1f} MB "
        f"(available RAM: {mem})"
    )
    for note in plan.notes:
        print(f"  note: {note}")
    print(
        f"  --jobs {plan.jobs}  --shard-bits {plan.shard_bits}  "
        f"--dedup-budget {plan.dedup_budget_text}"
        + ("  (slabs will spill to disk)" if plan.spills else "")
    )
    print(f"  {plan.command(store or 'closure.rpro')}")
    return 0


def _cmd_load(path: str) -> int:
    from repro.io import load_result
    from repro.render.diagram import circuit_diagram

    circuit, target = load_result(path)
    print(f"loaded {target.cycle_string()} (re-verified):")
    print(f"{circuit}")
    print(circuit_diagram(circuit))
    return 0


def _cmd_load_scenario(args) -> int:
    import json as json_mod

    from repro import scenario

    spec = scenario.find_scenario(args.file)
    if args.dry_run:
        plan = scenario.generate(
            spec, seed=args.seed, requests=args.requests
        )
        for request in plan:
            print(json_mod.dumps(
                scenario.planned_to_dict(request), separators=(",", ":")
            ))
        return 0
    plan, samples, wall_s = scenario.run_scenario(
        spec,
        args.server,
        seed=args.seed,
        requests=args.requests,
        concurrency=args.concurrency,
        timing=args.timing,
        retries=args.retries,
    )
    health = None
    try:
        health = scenario.snapshot(args.server)
    except ReproError:
        pass  # a report without the server-side view is still a report
    report = scenario.scenario_report(
        spec, samples, wall_s, seed=args.seed, server_health=health
    )
    report["planned"] = len(plan)
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json_mod.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    print(scenario.format_report(report))
    if report["slo_violations"] and not args.no_slo:
        return 1
    return 0


def _cmd_replay(args) -> int:
    import json as json_mod

    from repro import scenario

    records, tail = scenario.load_trace(
        args.log, rotated=not args.no_rotated, strict=args.strict
    )
    goldens, default_golden = scenario.parse_golden_specs(args.golden)
    report = scenario.replay(
        records,
        args.server,
        goldens=goldens,
        default_golden=default_golden,
        timing=args.timing,
        speed=args.speed,
        retries=args.retries,
        limit=args.limit,
    )
    if tail is not None:
        report["tail"] = tail
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json_mod.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    print(
        f"replayed {report['replayed']} of {len(records)} records: "
        f"{report['ok']} ok, {report['errors']} errors, "
        f"{report['outcome_mismatches']} outcome mismatches, "
        f"{report['result_byte_diffs']} result-byte diffs "
        f"({report['byte_checked']} byte-checked)"
    )
    if report["shed_drift"]:
        print(f"  shed drift (not counted as mismatch): "
              f"{report['shed_drift']}")
    if report["skipped_no_params"] or report["skipped_unknown_op"]:
        print(
            f"  skipped: {report['skipped_no_params']} without params, "
            f"{report['skipped_unknown_op']} unknown op"
        )
    if tail is not None:
        print(f"  tolerated truncated tail at {tail['path']}:"
              f"{tail['lineno']}")
    for item in report["mismatch_detail"]:
        print(
            f"  mismatch #{item['index']} {item['op']}: logged "
            f"{item['logged']}, replayed {item['replayed']}"
        )
    for item in report["diff_detail"]:
        print(f"  byte diff #{item['index']} {item['op']} "
              f"(store {item['store']})")
    return 0 if report["clean"] else 1


def _cmd_tail(args) -> int:
    import json as json_mod
    import time as time_mod

    from repro.telemetry import format_text, summarize_logs

    def render() -> None:
        summary = summarize_logs(
            args.logs, rotated=not args.no_rotated, trace=args.trace
        )
        if args.json:
            print(json_mod.dumps(summary, indent=2, sort_keys=True))
        else:
            print(format_text(summary))

    if not args.follow:
        render()
        return 0
    try:
        while True:
            render()
            print("---", flush=True)
            time_mod.sleep(max(0.1, args.interval))
    except KeyboardInterrupt:
        return 0


def _cmd_identities() -> int:
    from repro.core.identities import identity_catalog
    from repro.gates.library import GateLibrary
    from repro.render.tables import format_table

    catalog = identity_catalog(GateLibrary(3))
    rows = []
    for relation, identities in catalog.items():
        for identity in identities:
            rows.append([relation, identity.left, identity.right])
    print(format_table(["relation", "left", "right"], rows))
    print(f"\n{len(catalog['commute'])} commuting pairs, "
          f"{len(catalog['inverse'])} inverse pairs, "
          f"{len(catalog['cnot-emulation'])} CNOT emulations "
          "(all machine-verified)")
    return 0


def _cmd_peres_family() -> int:
    from repro.core.fmcf import find_minimum_cost_circuits
    from repro.core.universality import analyze_g4, match_paper_representatives
    from repro.gates.library import GateLibrary
    from repro.render.tables import format_table

    table = find_minimum_cost_circuits(GateLibrary(3), cost_bound=4)
    analysis = analyze_g4(table)
    print(
        f"|G[4]| = {len(table.members(4))}: "
        f"{len(analysis.feynman_only)} Feynman-only + "
        f"{len(analysis.control_using)} control-using"
    )
    print(f"universal gates among them: {len(analysis.universal)}")
    mapping = match_paper_representatives(analysis)
    rows = []
    for name, index in sorted(mapping.items()):
        orbit = analysis.orbits[index]
        rows.append([name, orbit[0].cycle_string(), len(orbit)])
    print(format_table(["paper gate", "representative", "orbit size"], rows))
    return 0


def _cmd_banned_sets() -> int:
    from repro.gates.library import GateLibrary
    from repro.render.tables import format_table

    library = GateLibrary(3)
    banned = library.banned_sets_paper()
    subs = library.sublibrary_names()
    rows = [[k, ", ".join(subs[f"L{k[1:]}"]), str(list(v))] for k, v in banned.items()]
    print(format_table(["banned set", "gates it gates", "labels (1-based)"], rows))
    return 0


def _cmd_compare() -> int:
    from repro.baselines.compare import compare_targets
    from repro.gates import named
    from repro.render.tables import comparison_table_text

    picks = {
        k: named.TARGETS[k]
        for k in ("toffoli", "fredkin", "peres", "g2", "g3", "g4", "swap_bc")
    }
    rows = compare_targets(picks)
    print(comparison_table_text(rows))
    return 0


def _cmd_verify_gates() -> int:
    from repro.gates.library import GateLibrary
    from repro.sim.verify import verify_gate_representation

    report = verify_gate_representation(GateLibrary(3))
    print(
        f"{len(report.checks)} pattern/gate agreements verified exactly; "
        f"{len(report.failures)} failures"
    )
    return 0 if report else 1


def _cmd_rng(bits: int, seed: int | None) -> int:
    from repro.automata.rng import ControlledRandomBitGenerator
    from repro.render.diagram import circuit_diagram

    generator = ControlledRandomBitGenerator(n_random=2)
    print(f"synthesized generator (cost {generator.cost}):")
    print(circuit_diagram(generator.circuit))
    rng = random.Random(seed)
    stream = generator.generate_bits(bits, rng)
    print(f"\n{bits} quantum-random bits: {''.join(map(str, stream))}")
    ones = sum(stream)
    print(f"ones: {ones}/{bits}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "table1":
            return _cmd_table1()
        if args.command == "table2":
            return _cmd_table2(args.cost_bound, args.paper_pseudocode, args.store)
        if args.command == "synth":
            return _cmd_synth(
                args.target, args.all, args.cost_bound, args.save,
                args.store, args.batch, args.server, args.store_alias,
            )
        if args.command == "serve":
            return _cmd_serve(
                args.stores, args.store_dir, args.host, args.port,
                args.unix, args.no_tcp, args.access_log, args.workers,
                args.max_batch, args.cost_bound,
                args.access_log_max_bytes, args.access_log_keep,
                args.drain_timeout, args.fault, args.fault_seed,
            )
        if args.command == "fleet":
            if args.fleet_command == "serve":
                return _cmd_fleet_serve(args)
            if args.fleet_command == "status":
                return _cmd_fleet_status(args.address, args.json)
            raise AssertionError(f"unhandled fleet command {args.fleet_command}")
        if args.command == "precompute":
            return _cmd_precompute(
                args.out, args.cost_bound, args.qubits, args.no_parents,
                args.v_cost, args.vdag_cost, args.cnot_cost,
                args.radix, args.extend, args.kernel, args.format_version,
                args.codec, args.jobs, args.dedup_budget,
                args.shard_bits, args.checkpoint_dir,
                args.progress, args.progress_log,
            )
        if args.command == "plan":
            return _cmd_plan(
                args.store, args.cost_bound, args.memory, args.jobs,
                args.json,
            )
        if args.command == "store-info":
            return _cmd_store_info(args.file)
        if args.command == "store":
            if args.store_command == "info":
                return _cmd_store_info(args.file)
            if args.store_command == "shards":
                return _cmd_store_shards(args.file, args.bits)
            if args.store_command == "verify":
                return _cmd_store_verify(args.file)
            if args.store_command == "migrate":
                return _cmd_store_migrate(
                    args.src, args.dst, args.format_version, args.codec
                )
            raise AssertionError(f"unhandled store command {args.store_command}")
        if args.command == "load":
            if args.server is not None or args.dry_run:
                return _cmd_load_scenario(args)
            return _cmd_load(args.file)
        if args.command == "replay":
            return _cmd_replay(args)
        if args.command == "tail":
            return _cmd_tail(args)
        if args.command == "identities":
            return _cmd_identities()
        if args.command == "peres-family":
            return _cmd_peres_family()
        if args.command == "banned-sets":
            return _cmd_banned_sets()
        if args.command == "compare":
            return _cmd_compare()
        if args.command == "verify-gates":
            return _cmd_verify_gates()
        if args.command == "rng":
            return _cmd_rng(args.bits, args.seed)
        raise AssertionError(f"unhandled command {args.command}")
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
