"""Unit tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main


class TestTable1:
    def test_prints_permutation(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "(3,7,4,8)" in out
        assert "V0" in out


class TestTable2:
    def test_small_bound(self, capsys):
        assert main(["table2", "--cost-bound", "2"]) == 0
        out = capsys.readouterr().out
        assert "|G[k]|" in out
        assert "24" in out

    def test_paper_pseudocode_flag(self, capsys):
        assert main(["table2", "--cost-bound", "3", "--paper-pseudocode"]) == 0
        out = capsys.readouterr().out
        assert "52" in out


class TestSynth:
    def test_named_target(self, capsys):
        assert main(["synth", "peres"]) == 0
        out = capsys.readouterr().out
        assert "cost 4" in out
        assert "verified" in out

    def test_cycle_notation_target(self, capsys):
        assert main(["synth", "(7,8)", "--cost-bound", "5"]) == 0
        out = capsys.readouterr().out
        assert "cost 5" in out

    def test_all_flag(self, capsys):
        assert main(["synth", "peres", "--all"]) == 0
        out = capsys.readouterr().out
        assert "2 implementation(s)" in out

    def test_bad_target_is_clean_error(self, capsys):
        assert main(["synth", "notagate"]) == 1
        err = capsys.readouterr().err
        assert "error:" in err

    def test_cost_bound_exceeded_is_clean_error(self, capsys):
        assert main(["synth", "toffoli", "--cost-bound", "3"]) == 1
        err = capsys.readouterr().err
        assert "cost" in err


class TestStoreWorkflow:
    """The precompute-then-serve loop: precompute / store-info / synth / table2."""

    @pytest.fixture(scope="class")
    def store_path(self, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("store") / "closure.rpro")
        assert main(["precompute", path, "--cost-bound", "5"]) == 0
        return path

    def test_precompute_reports_closure(self, store_path, capsys):
        assert main(["store-info", store_path]) == 0
        out = capsys.readouterr().out
        assert "cost bound 5" in out
        assert "32323 cascades" in out
        assert "parents tracked" in out

    def test_synth_from_store(self, store_path, capsys):
        assert main(["synth", "toffoli", "--store", store_path]) == 0
        out = capsys.readouterr().out
        assert "no re-expansion" in out
        assert "cost 5" in out and "verified" in out

    def test_synth_all_from_store(self, store_path, capsys):
        assert main(["synth", "peres", "--all", "--store", store_path]) == 0
        assert "2 implementation(s)" in capsys.readouterr().out

    def test_batch_from_store(self, store_path, capsys, tmp_path):
        targets = tmp_path / "targets.txt"
        targets.write_text("toffoli\nperes  # a comment\n\n(7,8)\n")
        save = tmp_path / "results.json"
        assert main([
            "synth", "--store", store_path,
            "--batch", str(targets), "--save", str(save),
        ]) == 0
        out = capsys.readouterr().out
        assert "3/3 synthesized" in out
        from repro.io import load_batch_results

        assert len(load_batch_results(save)) == 3

    def test_batch_reports_out_of_bound_targets(self, store_path, capsys, tmp_path):
        targets = tmp_path / "targets.txt"
        targets.write_text("(1,5,3)(2,7,8)(4,6)\ntoffoli\n")
        assert main(["synth", "--store", store_path, "--batch", str(targets)]) == 1
        out = capsys.readouterr().out
        assert "no realization" in out
        assert "1/2 synthesized" in out

    def test_table2_from_store(self, store_path, capsys):
        assert main(["table2", "--store", store_path]) == 0
        out = capsys.readouterr().out
        assert "|G[k]|" in out
        assert "precomputed" in out

    def test_table2_store_rejects_paper_pseudocode(self, store_path, capsys):
        code = main(["table2", "--store", store_path, "--paper-pseudocode"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_store_respects_explicit_cost_bound(self, store_path, capsys):
        # toffoli costs 5; a bound-1 query against a bound-5 store must
        # refuse, exactly like the live search would.
        assert main([
            "synth", "toffoli", "--store", store_path, "--cost-bound", "1",
        ]) == 1
        assert "cost <= 1" in capsys.readouterr().err

    def test_store_refuses_bound_beyond_its_own(self, store_path, capsys):
        assert main([
            "synth", "toffoli", "--store", store_path, "--cost-bound", "9",
        ]) == 1
        err = capsys.readouterr().err
        assert "only covers cost <= 5" in err and "precompute" in err
        assert main([
            "table2", "--store", store_path, "--cost-bound", "9",
        ]) == 1
        assert "only covers cost <= 5" in capsys.readouterr().err

    def test_four_qubit_store_single_target(self, capsys, tmp_path):
        path = str(tmp_path / "closure4.rpro")
        assert main([
            "precompute", path, "--qubits", "4", "--cost-bound", "2",
        ]) == 0
        capsys.readouterr()
        # F_DC on 4 wires: degree-16 cycle spec, resolvable only if the
        # store's own library (not the 3-qubit default) parses targets.
        assert main([
            "synth", "(3,4)(7,8)(11,12)(15,16)", "--store", path,
        ]) == 0
        out = capsys.readouterr().out
        assert "minimal quantum cost 1" in out and "verified" in out

    def test_synth_requires_target_or_batch(self, capsys):
        assert main(["synth"]) == 1
        assert "exactly one" in capsys.readouterr().err

    def test_corrupt_store_is_clean_error(self, store_path, capsys, tmp_path):
        from pathlib import Path

        corrupt = tmp_path / "corrupt.rpro"
        data = bytearray(Path(store_path).read_bytes())
        data[-1] ^= 0xFF
        corrupt.write_bytes(bytes(data))
        assert main(["synth", "toffoli", "--store", str(corrupt)]) == 1
        assert "error:" in capsys.readouterr().err


class TestStoreMaintenance:
    """The `repro store ...` group and `precompute --extend`."""

    @pytest.fixture(scope="class")
    def v2_path(self, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("maint") / "closure.rpro")
        assert main(["precompute", path, "--cost-bound", "4"]) == 0
        return path

    def test_store_info_reports_v2_layout(self, v2_path, capsys):
        assert main(["store", "info", v2_path]) == 0
        out = capsys.readouterr().out
        assert "format 2" in out
        assert "memory-mapped" in out
        assert "remainder index" in out

    def test_store_verify_passes(self, v2_path, capsys):
        assert main(["store", "verify", v2_path]) == 0
        assert "sha256 verified" in capsys.readouterr().out

    def test_store_verify_catches_corruption(self, v2_path, capsys, tmp_path):
        from pathlib import Path

        data = bytearray(Path(v2_path).read_bytes())
        data[len(data) // 2] ^= 0xFF
        bad = tmp_path / "bad.rpro"
        bad.write_bytes(bytes(data))
        assert main(["store", "verify", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_extend_deepens_an_existing_store(self, v2_path, capsys):
        assert main([
            "precompute", v2_path, "--extend", "--cost-bound", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "extending" in out and "from cost 4 to 5" in out
        assert main(["store", "info", v2_path]) == 0
        assert "cost bound 5" in capsys.readouterr().out

    def test_extend_refuses_mismatched_flags(self, v2_path, capsys):
        assert main([
            "precompute", v2_path, "--extend", "--cost-bound", "5",
            "--cnot-cost", "2",
        ]) == 1
        assert "refusing to extend" in capsys.readouterr().err

    def test_migrate_v1_store(self, capsys, tmp_path):
        old = str(tmp_path / "old.rpro")
        new = str(tmp_path / "new.rpro")
        assert main([
            "precompute", old, "--cost-bound", "3", "--format-version", "1",
        ]) == 0
        capsys.readouterr()
        assert main(["store", "migrate", old, new]) == 0
        out = capsys.readouterr().out
        assert "(format 1)" in out and "format 2" in out
        assert main(["synth", "swap_ab", "--store", new]) == 0
        assert "cost 3" in capsys.readouterr().out

    def test_translate_kernel_precompute_matches(self, capsys, tmp_path):
        path = str(tmp_path / "tk.rpro")
        assert main([
            "precompute", path, "--cost-bound", "3", "--kernel", "translate",
        ]) == 0
        out = capsys.readouterr().out
        assert "[1, 18, 162, 1017]" in out

    def test_extend_honors_kernel_flag(self, capsys, tmp_path):
        path = str(tmp_path / "ek.rpro")
        assert main(["precompute", path, "--cost-bound", "3"]) == 0
        capsys.readouterr()
        assert main([
            "precompute", path, "--extend", "--cost-bound", "4",
            "--kernel", "translate",
        ]) == 0
        out = capsys.readouterr().out
        assert "(translate kernel)" in out
        assert "[1, 18, 162, 1017, 5364]" in out

    def test_extend_at_or_below_bound_is_a_noop(self, v2_path, capsys):
        assert main([
            "precompute", v2_path, "--extend", "--cost-bound", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "nothing to extend" in out
        assert "extended" not in out

    def test_extend_refuses_no_parents_on_parent_store(
        self, v2_path, capsys
    ):
        assert main([
            "precompute", v2_path, "--extend", "--cost-bound", "5",
            "--no-parents",
        ]) == 1
        assert "counting-only" in capsys.readouterr().err

    def test_extend_counting_only_store_needs_explicit_flag(
        self, capsys, tmp_path
    ):
        path = str(tmp_path / "np.rpro")
        assert main([
            "precompute", path, "--cost-bound", "3", "--no-parents",
        ]) == 0
        capsys.readouterr()
        assert main(["precompute", path, "--extend", "--cost-bound", "4"]) == 1
        assert "counting-only" in capsys.readouterr().err
        assert main([
            "precompute", path, "--extend", "--cost-bound", "4",
            "--no-parents",
        ]) == 0


class TestOtherCommands:
    def test_banned_sets(self, capsys):
        assert main(["banned-sets"]) == 0
        out = capsys.readouterr().out
        assert "N_A" in out and "F_CB" in out

    def test_peres_family(self, capsys):
        assert main(["peres-family"]) == 0
        out = capsys.readouterr().out
        assert "60" in out and "24" in out
        assert "g1" in out

    def test_verify_gates(self, capsys):
        assert main(["verify-gates"]) == 0
        out = capsys.readouterr().out
        assert "372" in out

    def test_rng(self, capsys):
        assert main(["rng", "--bits", "16", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "16 quantum-random bits" in out

    # Rebuilds the complete optimal-NCT table (40320 functions): `slow`
    # tier (marker convention in tests/conftest.py).
    @pytest.mark.slow
    def test_compare(self, capsys):
        assert main(["compare"]) == 0
        out = capsys.readouterr().out
        assert "peres" in out and "saving" in out

    def test_identities(self, capsys):
        assert main(["identities"]) == 0
        out = capsys.readouterr().out
        assert "cnot-emulation" in out
        assert "48 commuting pairs" in out

    def test_save_and_load_roundtrip(self, capsys, tmp_path):
        path = str(tmp_path / "peres.json")
        assert main(["synth", "peres", "--save", path]) == 0
        capsys.readouterr()
        assert main(["load", path]) == 0
        out = capsys.readouterr().out
        assert "(5,7,6,8)" in out and "re-verified" in out

    def test_load_missing_file_is_clean_error(self, capsys, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["load", str(tmp_path / "nope.json")])

    def test_load_tampered_file_is_clean_error(self, capsys, tmp_path):
        import json

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "n_qubits": 3,
            "gates": ["F_BA"],
            "target": "(7,8)",
            "cost": 1,
        }))
        assert main(["load", str(path)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_synth_reports_depth(self, capsys):
        assert main(["synth", "peres"]) == 0
        assert "depth 4" in capsys.readouterr().out

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_no_command_errors(self):
        with pytest.raises(SystemExit):
            main([])


class TestParallelPrecompute:
    """`repro precompute --jobs/--dedup-budget/...` and `repro store shards`."""

    @pytest.fixture(scope="class")
    def parallel_store(self, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("par") / "closure.rpro")
        assert main([
            "precompute", path, "--cost-bound", "4", "--jobs", "2",
            "--shard-bits", "4",
        ]) == 0
        return path

    def test_parallel_precompute_reports_shards(
        self, parallel_store, capsys
    ):
        assert main(["store", "info", parallel_store]) == 0
        out = capsys.readouterr().out
        assert "dedup shards: 16 x" in out

    def test_parallel_store_verifies_and_serves(
        self, parallel_store, capsys
    ):
        assert main(["store", "verify", parallel_store]) == 0
        capsys.readouterr()
        assert main(["synth", "peres", "--store", parallel_store]) == 0
        assert "cost 4" in capsys.readouterr().out

    def test_store_shards_recorded_layout(self, parallel_store, capsys):
        assert main(["store", "shards", parallel_store]) == 0
        out = capsys.readouterr().out
        assert "recorded by the parallel kernel" in out
        assert "level" in out and "perms" in out
        assert "total 6562" in out

    def test_store_shards_projected_layout(self, capsys, tmp_path):
        path = str(tmp_path / "seq.rpro")
        assert main(["precompute", path, "--cost-bound", "3"]) == 0
        capsys.readouterr()
        assert main(["store", "shards", path]) == 0
        assert "no recorded shard layout" in capsys.readouterr().out
        assert main(["store", "shards", path, "--bits", "3"]) == 0
        out = capsys.readouterr().out
        assert "projected from the stored rows at --bits 3" in out
        assert "total 1198" in out

    def test_store_shards_v1_needs_migration(self, capsys, tmp_path):
        path = str(tmp_path / "v1.rpro")
        assert main([
            "precompute", path, "--cost-bound", "2", "--format-version", "1",
        ]) == 0
        capsys.readouterr()
        assert main(["store", "shards", path, "--bits", "2"]) == 0
        assert "legacy v1 store" in capsys.readouterr().out

    def test_parallel_flags_imply_parallel_kernel(self, capsys, tmp_path):
        path = str(tmp_path / "imp.rpro")
        assert main([
            "precompute", path, "--cost-bound", "3", "--dedup-budget", "64M",
        ]) == 0
        out = capsys.readouterr().out
        assert "dedup table:" in out and "[1, 18, 162, 1017]" in out

    def test_parallel_flags_refuse_other_kernels(self, capsys, tmp_path):
        path = str(tmp_path / "bad.rpro")
        assert main([
            "precompute", path, "--cost-bound", "3", "--jobs", "2",
            "--kernel", "translate",
        ]) == 1
        assert "parallel-kernel options" in capsys.readouterr().err

    def test_budget_spill_reported(self, capsys, tmp_path):
        path = str(tmp_path / "spill.rpro")
        assert main([
            "precompute", path, "--cost-bound", "4", "--shard-bits", "3",
            "--dedup-budget", "16K",
        ]) == 0
        out = capsys.readouterr().out
        assert "disk-backed" in out

    def test_checkpoint_resume_via_cli(self, capsys, tmp_path):
        store = str(tmp_path / "ck.rpro")
        ckdir = str(tmp_path / "ckpt")
        assert main([
            "precompute", store, "--cost-bound", "3",
            "--checkpoint-dir", ckdir,
        ]) == 0
        capsys.readouterr()
        deeper = str(tmp_path / "ck2.rpro")
        assert main([
            "precompute", deeper, "--cost-bound", "4",
            "--checkpoint-dir", ckdir,
        ]) == 0
        out = capsys.readouterr().out
        assert f"resumed checkpoint {ckdir} at cost 3" in out
        assert "[1, 18, 162, 1017, 5364]" in out
        assert main(["store", "verify", deeper]) == 0

    def test_parallel_extend(self, capsys, tmp_path):
        path = str(tmp_path / "pe.rpro")
        assert main(["precompute", path, "--cost-bound", "3"]) == 0
        capsys.readouterr()
        assert main([
            "precompute", path, "--extend", "--cost-bound", "4",
            "--jobs", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "(parallel kernel)" in out
        assert "[1, 18, 162, 1017, 5364]" in out
