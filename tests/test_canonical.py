"""Unit tests for symmetry classification (repro.core.canonical)."""

import pytest

from repro.core.canonical import (
    classify_implementations,
    xor_wires,
)
from repro.core.circuit import Circuit
from repro.core.mce import express_all
from repro.gates import named


class TestAdjointPairs:
    def test_peres_implementations_form_one_pair(self, library3, search3):
        results = express_all(named.PERES, library3, search=search3)
        families = classify_implementations(results)
        assert families.adjoint_pairs == ((0, 1),)
        assert families.self_adjoint == ()

    def test_toffoli_implementations_form_two_pairs(self, library3, search3):
        results = express_all(named.TOFFOLI, library3, search=search3)
        families = classify_implementations(results)
        assert len(families.adjoint_pairs) == 2
        covered = {i for pair in families.adjoint_pairs for i in pair}
        assert covered == {0, 1, 2, 3}

    def test_feynman_only_circuit_is_self_adjoint(self):
        circuits = [Circuit.from_names("F_AB F_BC", 3)]
        families = classify_implementations(circuits)
        assert families.self_adjoint == (0,)
        assert families.adjoint_pairs == ()


class TestXorWireSplit:
    def test_figure9_split_by_xor_wire(self, library3, search3):
        """The paper: two pairs differ in which qubit carries the XORs."""
        results = express_all(named.TOFFOLI, library3, search=search3)
        families = classify_implementations(results)
        for i, j in families.adjoint_pairs:
            # Adjoint partners share the XOR wire...
            assert xor_wires(families.circuits[i]) == xor_wires(
                families.circuits[j]
            )
        pair_wires = {
            xor_wires(families.circuits[i])
            for i, _j in families.adjoint_pairs
        }
        # ...and the two pairs use different wires (A vs B).
        assert pair_wires == {frozenset({0}), frozenset({1})}

    def test_xor_wires_of_mixed_cascade(self):
        circuit = Circuit.from_names("F_BA V_CA F_CB", 3)
        assert xor_wires(circuit) == frozenset({1, 2})


class TestRelabelingClasses:
    def test_relabeled_copies_share_a_class(self):
        base = Circuit.from_names("V_CB F_BA V_CA V+_CB", 3)
        moved = base.relabeled({0: 1, 1: 0, 2: 2})
        families = classify_implementations([base, moved])
        assert families.relabeling_classes == ((0, 1),)

    def test_unrelated_circuits_split(self):
        a = Circuit.from_names("F_AB", 3)
        b = Circuit.from_names("V_CB F_BA V_CA V+_CB", 3)
        families = classify_implementations([a, b])
        assert len(families.relabeling_classes) == 2

    def test_adjoint_swap_merges_classes(self, library3, search3):
        results = express_all(named.PERES, library3, search=search3)
        families = classify_implementations(results)
        # The two Peres circuits are one class under swap+relabel.
        assert len(families.relabeling_classes) == 1

    def test_type_check(self):
        with pytest.raises(TypeError):
            classify_implementations(["not a circuit"])
