"""Unit tests for exact matrices (repro.linalg.matrix)."""

import pytest

from repro.errors import InvalidValueError
from repro.linalg.dyadic import DyadicComplex
from repro.linalg.matrix import Matrix


def d(a, b=0, k=0):
    return DyadicComplex(a, b, k)


class TestConstruction:
    def test_from_ints(self):
        m = Matrix([[1, 0], [0, 1]])
        assert m.shape == (2, 2)
        assert m[0, 0] == d(1)

    def test_ragged_rows_rejected(self):
        with pytest.raises(InvalidValueError):
            Matrix([[1, 0], [1]])

    def test_empty_rejected(self):
        with pytest.raises(InvalidValueError):
            Matrix([])
        with pytest.raises(InvalidValueError):
            Matrix([[]])

    def test_bad_entry_rejected(self):
        with pytest.raises(InvalidValueError):
            Matrix([[1.5]])

    def test_identity(self):
        assert Matrix.identity(3).is_identity()

    def test_zero(self):
        z = Matrix.zero(2, 3)
        assert z.shape == (2, 3)
        assert all(z[r, c].is_zero for r in range(2) for c in range(3))

    def test_basis_state(self):
        v = Matrix.basis_state(2, 4)
        assert v.column_vector() == (d(0), d(0), d(1), d(0))

    def test_basis_state_out_of_range(self):
        with pytest.raises(InvalidValueError):
            Matrix.basis_state(4, 4)


class TestAlgebra:
    def test_addition_and_subtraction(self):
        a = Matrix([[1, 2], [3, 4]])
        b = Matrix([[5, 6], [7, 8]])
        assert (a + b) - b == a

    def test_shape_mismatch_raises(self):
        with pytest.raises(InvalidValueError):
            Matrix([[1]]) + Matrix([[1, 2]])

    def test_matmul(self):
        a = Matrix([[1, 2], [3, 4]])
        b = Matrix([[0, 1], [1, 0]])
        assert a @ b == Matrix([[2, 1], [4, 3]])

    def test_matmul_shape_check(self):
        with pytest.raises(InvalidValueError):
            Matrix([[1, 2]]) @ Matrix([[1, 2]])

    def test_scale(self):
        assert Matrix([[1, 2]]).scale(3) == Matrix([[3, 6]])

    def test_power(self):
        x = Matrix([[0, 1], [1, 0]])
        assert x.power(0).is_identity()
        assert x.power(2).is_identity()
        assert x.power(5) == x

    def test_power_negative_raises(self):
        with pytest.raises(InvalidValueError):
            Matrix.identity(2).power(-1)

    def test_power_non_square_raises(self):
        with pytest.raises(InvalidValueError):
            Matrix([[1, 2]]).power(2)


class TestKron:
    def test_kron_shapes(self):
        a = Matrix.identity(2)
        assert a.kron(a).shape == (4, 4)

    def test_kron_identity_is_identity(self):
        assert Matrix.identity(2).kron(Matrix.identity(4)).is_identity()

    def test_kron_wire_zero_most_significant(self):
        # |1> kron |0> should be basis state 2 of dimension 4.
        one = Matrix.column([0, 1])
        zero = Matrix.column([1, 0])
        assert one.kron(zero) == Matrix.basis_state(2, 4)

    def test_kron_mixed_product_rule(self):
        # (A kron B)(C kron D) = AC kron BD
        a = Matrix([[1, 1], [0, 1]])
        b = Matrix([[2, 0], [1, 1]])
        c = Matrix([[1, 0], [1, 1]])
        e = Matrix([[0, 1], [1, 0]])
        assert a.kron(b) @ c.kron(e) == (a @ c).kron(b @ e)


class TestDagger:
    def test_dagger_conjugates_and_transposes(self):
        m = Matrix([[d(1, 1), d(0)], [d(2), d(0, -1)]])
        dm = m.dagger()
        assert dm[0, 0] == d(1, -1)
        assert dm[0, 1] == d(2)
        assert dm[1, 1] == d(0, 1)

    def test_dagger_of_product(self):
        a = Matrix([[d(1, 1), d(0)], [d(1), d(1)]])
        b = Matrix([[d(0), d(1)], [d(1, -1), d(0)]])
        assert (a @ b).dagger() == b.dagger() @ a.dagger()

    def test_transpose(self):
        m = Matrix([[1, 2, 3], [4, 5, 6]])
        assert m.transpose().shape == (3, 2)
        assert m.transpose()[2, 1] == d(6)


class TestPredicates:
    def test_is_unitary_of_permutation(self):
        x = Matrix([[0, 1], [1, 0]])
        assert x.is_unitary()

    def test_is_unitary_rejects_non_unitary(self):
        assert not Matrix([[1, 1], [0, 1]]).is_unitary()
        assert not Matrix([[1, 0]]).is_unitary()

    def test_permutation_matrix_detection(self):
        p = Matrix([[0, 1, 0], [0, 0, 1], [1, 0, 0]])
        assert p.is_permutation_matrix()
        assert not Matrix([[1, 1], [0, 0]]).is_permutation_matrix()

    def test_permutation_images(self):
        # Column j maps to the row holding the 1.
        p = Matrix([[0, 1, 0], [0, 0, 1], [1, 0, 0]])
        assert p.permutation_images() == (2, 0, 1)

    def test_permutation_images_rejects_general_matrix(self):
        with pytest.raises(InvalidValueError):
            Matrix([[1, 1], [0, 0]]).permutation_images()


class TestAccessors:
    def test_column_vector_on_matrix_raises(self):
        with pytest.raises(InvalidValueError):
            Matrix.identity(2).column_vector()

    def test_rows_immutable_view(self):
        m = Matrix([[1, 2]])
        assert m.rows() == ((d(1), d(2)),)

    def test_to_complex_lists(self):
        m = Matrix([[d(1, 1, 1)]])
        assert m.to_complex_lists() == [[0.5 + 0.5j]]

    def test_str_contains_entries(self):
        assert "1/2" in str(Matrix([[d(1, 0, 1)]]))

    def test_hash_equal_matrices(self):
        assert hash(Matrix.identity(2)) == hash(Matrix.identity(2))
