"""Unit tests for MCE (repro.core.mce) -- minimum-cost expression."""

import pytest

from repro.errors import CostBoundExceededError, SpecificationError
from repro.core.circuit import Circuit
from repro.core.mce import express, express_all, minimal_cost
from repro.core.search import CascadeSearch
from repro.gates import named
from repro.gates.kinds import GateKind
from repro.perm.permutation import Permutation


class TestPaperSyntheses:
    def test_peres_cost_4(self, library3, search3):
        result = express(named.PERES, library3, search=search3)
        assert result.cost == 4
        assert result.not_mask == 0
        assert result.circuit.binary_permutation() == named.PERES

    def test_peres_has_exactly_two_implementations(self, library3, search3):
        results = express_all(named.PERES, library3, search=search3)
        assert len(results) == 2

    def test_peres_implementations_are_adjoint_swaps(self, library3, search3):
        a, b = express_all(named.PERES, library3, search=search3)
        # Figure 4 vs Figure 8: swap every V with V+.
        assert a.circuit.adjoint_swapped().binary_permutation() == named.PERES
        names_a = [g.kind for g in a.circuit.gates]
        names_b = [g.kind for g in b.circuit.gates]
        swap = {GateKind.V: GateKind.VDAG, GateKind.VDAG: GateKind.V,
                GateKind.CNOT: GateKind.CNOT}
        assert [swap[k] for k in names_a] == names_b

    def test_toffoli_cost_5(self, library3, search3):
        result = express(named.TOFFOLI, library3, search=search3)
        assert result.cost == 5
        assert result.circuit.binary_permutation() == named.TOFFOLI

    def test_toffoli_has_exactly_four_implementations(self, library3, search3):
        results = express_all(named.TOFFOLI, library3, search=search3)
        assert len(results) == 4
        for result in results:
            assert result.cost == 5
            assert result.circuit.binary_permutation() == named.TOFFOLI

    def test_toffoli_implementations_form_adjoint_pairs(self, library3, search3):
        results = express_all(named.TOFFOLI, library3, search=search3)
        perms = {r.cascade_permutation for r in results}
        # Swapping V <-> V+ maps the implementation set to itself.
        for result in results:
            swapped = result.circuit.adjoint_swapped()
            assert swapped.binary_permutation() == named.TOFFOLI

    def test_fredkin_cost_7(self, library3, search3):
        assert minimal_cost(named.FREDKIN, library3, search=search3) == 7

    def test_figure4_cascade_is_valid_witness(self, library3, search3):
        # The printed Figure 4 circuit realizes Peres at the found cost.
        figure4 = Circuit.from_names("V_CB F_BA V_CA V+_CB", 3)
        assert figure4.binary_permutation() == named.PERES
        assert figure4.cost() == express(
            named.PERES, library3, search=search3
        ).cost

    @pytest.mark.parametrize(
        "names",
        [
            "F_BA V+_CB F_BA V_CA V_CB",
            "F_BA V_CB F_BA V+_CA V+_CB",
            "F_AB V+_CA F_AB V_CA V_CB",
            "F_AB V_CA F_AB V+_CA V+_CB",
        ],
    )
    def test_figure9_cascades_realize_toffoli_at_cost_5(self, names):
        circuit = Circuit.from_names(names, 3)
        assert circuit.binary_permutation() == named.TOFFOLI
        assert circuit.cost() == 5


class TestNotLayerHandling:
    def test_pure_not_layer_costs_zero(self, library3, search3):
        target = named.not_layer_permutation(0b101)
        result = express(target, library3, search=search3)
        assert result.cost == 0
        assert result.not_mask == 0b101
        assert [g.kind for g in result.circuit] == [GateKind.NOT, GateKind.NOT]
        assert result.circuit.binary_permutation() == target

    def test_identity_costs_zero(self, library3, search3):
        result = express(named.IDENTITY3, library3, search=search3)
        assert result.cost == 0
        assert len(result.circuit) == 0

    def test_target_needing_not_layer(self, library3, search3):
        # NOT_A then Toffoli: moves the all-zero pattern.
        target = named.not_layer_permutation(0b100) * named.TOFFOLI
        result = express(target, library3, search=search3)
        assert result.not_mask != 0
        assert result.circuit.binary_permutation() == target

    def test_allow_not_false_rejects_moving_zero(self, library3, search3):
        target = named.not_layer_permutation(0b001)
        with pytest.raises(SpecificationError):
            express(target, library3, search=search3, allow_not=False)

    def test_allow_not_false_works_for_stabilizing_targets(
        self, library3, search3
    ):
        result = express(
            named.TOFFOLI, library3, search=search3, allow_not=False
        )
        assert result.cost == 5
        assert result.not_mask == 0

    def test_two_qubit_circuit_property(self, library3, search3):
        target = named.not_layer_permutation(0b100) * named.TOFFOLI
        result = express(target, library3, search=search3)
        assert result.two_qubit_circuit.not_count == 0
        assert result.two_qubit_circuit.two_qubit_count == result.cost


class TestErrors:
    def test_degree_mismatch(self, library3, search3):
        with pytest.raises(SpecificationError):
            express(Permutation.identity(4), library3, search=search3)

    def test_cost_bound_exceeded(self, library3):
        with pytest.raises(CostBoundExceededError) as excinfo:
            express(named.TOFFOLI, library3, cost_bound=4)
        assert excinfo.value.cost_bound == 4

    def test_fredkin_beyond_bound_6(self, library3, search3):
        with pytest.raises(CostBoundExceededError):
            express(named.FREDKIN, library3, cost_bound=6, search=search3)

    def test_search_without_parents_rejected(self, library3):
        search = CascadeSearch(library3, track_parents=False)
        with pytest.raises(SpecificationError):
            express(named.TOFFOLI, library3, search=search)


class TestMinimality:
    """Theorem 1/3: the returned cost is minimal."""

    @pytest.mark.parametrize("cost", [1, 2, 3, 4])
    def test_every_class_member_expresses_at_its_cost(
        self, library3, search3, cost_table5, cost
    ):
        # A sample of members from each G[k] must synthesize at cost k.
        members = cost_table5.members(cost)
        for perm in members[:: max(1, len(members) // 8)]:
            result = express(perm, library3, search=search3)
            assert result.cost == cost
            assert result.circuit.binary_permutation() == perm

    def test_result_str(self, library3, search3):
        result = express(named.PERES, library3, search=search3)
        assert "cost 4" in str(result)
