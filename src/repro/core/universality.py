"""Analysis of G[4]: the Peres-like family of universal gates.

Section 5 of the paper dissects G[4] (the 84 reversible circuits of
minimal cost 4):

* 60 are products of 4 Feynman gates (linear, hence not universal);
* 24 use 3 controlled gates and 1 Feynman gate; each of these, together
  with NOT and Feynman gates, generates the full symmetric group S8 --
  they are *universal* gates of minimal possible cost;
* under relabeling of the three qubits the 24 split into 4 families of
  6, represented by g1 (Peres), g2, g3, g4 (Figures 4-7).

This module reproduces that analysis from a :class:`CostTable`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.fmcf import CostTable
from repro.core.theorems import universality_group
from repro.gates import named
from repro.perm.named_groups import closure_levels, symmetric_group_order
from repro.perm.permutation import Permutation


@dataclass(frozen=True)
class G4Analysis:
    """The decomposition of G[4] reported in Section 5.

    Attributes:
        feynman_only: members realizable with 4 Feynman gates.
        control_using: the remaining members (the Peres-like family).
        universal: subset of G[4] passing the universality test.
        orbits: the control-using members grouped into wire-relabeling
            conjugacy orbits, each sorted; orbits sorted by their minimal
            member for determinism.
        representatives: one canonical member per orbit.
    """

    feynman_only: tuple[Permutation, ...]
    control_using: tuple[Permutation, ...]
    universal: tuple[Permutation, ...]
    orbits: tuple[tuple[Permutation, ...], ...]
    representatives: tuple[Permutation, ...]


def feynman_word_lengths(n_qubits: int = 3, max_length: int = 8) -> dict[Permutation, int]:
    """Minimal CNOT-count of every CNOT-network permutation.

    BFS over the 2 * C(n,2) Feynman gates acting on binary patterns; the
    reachable set is the group of invertible linear maps on n bits
    (order 168 for n = 3).
    """
    generators = [
        named.cnot_target(t, c, n_qubits)
        for t, c in itertools.permutations(range(n_qubits), 2)
    ]
    levels = closure_levels(generators, 2**n_qubits, max_levels=max_length)
    lengths: dict[Permutation, int] = {}
    for length, members in enumerate(levels):
        for perm in members:
            lengths.setdefault(perm, length)
    return lengths


def wire_relabeling_orbit(
    perm: Permutation, n_qubits: int = 3
) -> frozenset[Permutation]:
    """All conjugates of a target under qubit relabelings.

    Conjugating by the pattern permutation of a wire relabeling r gives
    the "same circuit with permuted qubits": r^-1 * g * r.
    """
    orbit = set()
    for wires in itertools.permutations(range(n_qubits)):
        r = named.wire_relabeling(wires, n_qubits)
        orbit.add(perm.conjugate_by(r))
    return frozenset(orbit)


def is_universal(perm: Permutation, n_qubits: int = 3) -> bool:
    """The paper's universality test for a candidate gate.

    True iff <perm, NOT, Feynman> is the full symmetric group on the
    binary patterns (order (2**n)! -- 40320 for n = 3).
    """
    group = universality_group(perm, n_qubits)
    return group.order() == symmetric_group_order(2**n_qubits)


def analyze_g4(table: CostTable) -> G4Analysis:
    """Reproduce the Section 5 decomposition of G[4].

    Args:
        table: a :class:`CostTable` with ``cost_bound >= 4``.
    """
    n_qubits = table.n_qubits
    members = table.members(4)
    lengths = feynman_word_lengths(n_qubits)
    feynman_only = tuple(
        sorted(
            (p for p in members if lengths.get(p) == 4),
            key=lambda p: p.images,
        )
    )
    control_using = tuple(
        sorted(
            (p for p in members if lengths.get(p) != 4),
            key=lambda p: p.images,
        )
    )
    universal = tuple(
        p for p in members if is_universal(p, n_qubits)
    )

    remaining = set(control_using)
    orbits: list[tuple[Permutation, ...]] = []
    while remaining:
        seed = min(remaining, key=lambda p: p.images)
        orbit = wire_relabeling_orbit(seed, n_qubits) & set(control_using)
        orbits.append(tuple(sorted(orbit, key=lambda p: p.images)))
        remaining -= orbit
    orbits.sort(key=lambda orbit: orbit[0].images)
    representatives = tuple(orbit[0] for orbit in orbits)
    return G4Analysis(
        feynman_only=feynman_only,
        control_using=control_using,
        universal=universal,
        orbits=orbits,
        representatives=representatives,
    )


def match_paper_representatives(analysis: G4Analysis) -> dict[str, int]:
    """Locate the paper's g1..g4 in the orbit decomposition.

    Returns:
        Mapping from paper name ("g1".."g4") to orbit index in
        ``analysis.orbits``.

    Raises:
        LookupError: if some paper gate is not found in any orbit (would
            indicate a reproduction failure).
    """
    paper_gates = {
        "g1": named.PERES,
        "g2": named.G2,
        "g3": named.G3,
        "g4": named.G4,
    }
    result: dict[str, int] = {}
    for name, perm in paper_gates.items():
        for index, orbit in enumerate(analysis.orbits):
            if perm in orbit:
                result[name] = index
                break
        else:
            raise LookupError(f"paper gate {name} not found in any G[4] orbit")
    return result
