"""Unit tests for FMCF (repro.core.fmcf) -- the paper's Table 2."""

import pytest

from repro.core.fmcf import find_minimum_cost_circuits
from repro.core.cost import CostModel
from repro.gates import named
from repro.gates.library import GateLibrary

#: Our measured counts (minimal-cost semantics, identity has cost 0).
OUR_G_SIZES = [1, 6, 24, 51, 84, 156, 398, 540]
#: The row printed in the paper.
PAPER_G_SIZES = [1, 6, 30, 52, 84, 156, 398, 540]


class TestTable2:
    def test_g_sizes_to_cost_7(self, cost_table7):
        assert cost_table7.g_sizes == OUR_G_SIZES

    def test_g_sizes_match_paper_from_cost_3(self, cost_table7):
        # k = 0, 1, 4, 5, 6, 7 match the paper exactly; k = 2, 3 are the
        # documented deviations (see EXPERIMENTS.md).
        for k in (0, 1, 4, 5, 6, 7):
            assert cost_table7.g_sizes[k] == PAPER_G_SIZES[k]

    def test_paper_pseudocode_mode_reproduces_g3(self, library3):
        # Without the G[0] subtraction the identity is re-counted at
        # cost 3, giving the paper's published 52.
        table = find_minimum_cost_circuits(
            library3, cost_bound=3, paper_pseudocode=True
        )
        assert table.g_sizes == [1, 6, 24, 52]

    def test_s8_sizes_are_eight_times_g(self, cost_table7):
        assert cost_table7.s8_sizes == [8 * g for g in cost_table7.g_sizes]

    def test_paper_s8_row_from_cost_4(self, cost_table7):
        assert cost_table7.s8_sizes[4:] == [672, 1248, 3184, 4320]

    def test_b_sizes(self, cost_table7):
        assert cost_table7.b_sizes[:6] == [1, 18, 162, 1017, 5364, 25761]

    def test_a_sizes_cumulative(self, cost_table7):
        acc = 0
        for b, a in zip(cost_table7.b_sizes, cost_table7.a_sizes):
            acc += b
            assert a == acc


class TestClasses:
    def test_g0_is_identity_singleton(self, cost_table5):
        members = cost_table5.members(0)
        assert len(members) == 1 and members[0].is_identity

    def test_g1_is_the_six_feynman_gates(self, cost_table5):
        expected = {
            named.cnot_target(t, c)
            for t in range(3)
            for c in range(3)
            if t != c
        }
        assert set(cost_table5.members(1)) == expected

    def test_classes_are_disjoint(self, cost_table7):
        seen = set()
        for members in cost_table7.classes:
            for perm in members:
                assert perm not in seen
                seen.add(perm)

    def test_all_members_fix_the_zero_pattern(self, cost_table7):
        for members in cost_table7.classes:
            for perm in members:
                assert perm(0) == 0

    def test_cost_of_named_targets(self, cost_table7):
        assert cost_table7.cost_of(named.TOFFOLI) == 5
        assert cost_table7.cost_of(named.PERES) == 4
        assert cost_table7.cost_of(named.G2) == 4
        assert cost_table7.cost_of(named.G3) == 4
        assert cost_table7.cost_of(named.G4) == 4
        assert cost_table7.cost_of(named.FREDKIN) == 7
        assert cost_table7.cost_of(named.cnot_target(1, 0)) == 1
        assert cost_table7.cost_of(named.IDENTITY3) == 0

    def test_cost_of_unknown_returns_none(self, cost_table5):
        # Fredkin costs 7, beyond this table's bound of 5.
        assert cost_table5.cost_of(named.FREDKIN) is None

    def test_total_synthesized(self, cost_table7):
        assert cost_table7.total_synthesized() == sum(OUR_G_SIZES)


class TestConfigurations:
    def test_standalone_run_without_shared_search(self, library3):
        table = find_minimum_cost_circuits(library3, cost_bound=2)
        assert table.g_sizes == [1, 6, 24]
        assert table.stats is not None

    def test_weighted_cost_model(self, library3):
        # With CNOT twice as expensive, cost-1 circuits vanish (a lone
        # Feynman costs 2) and G[2] contains the 6 Feynman gates plus the
        # 12 V*V / V+*V+ CNOT-equivalents... which restrict identically,
        # so G[2] has exactly 6 members.
        model = CostModel(v_cost=1, vdag_cost=1, cnot_cost=2)
        table = find_minimum_cost_circuits(
            library3, cost_bound=2, cost_model=model
        )
        assert table.g_sizes[1] == 0
        assert len(table.members(2)) == 6

    def test_two_qubit_library(self, library2):
        table = find_minimum_cost_circuits(library2, cost_bound=3)
        # Cost 1: the two Feynman gates on 2 qubits.
        assert table.g_sizes[0] == 1
        assert table.g_sizes[1] == 2

    def test_n_qubits_recorded(self, cost_table5):
        assert cost_table5.n_qubits == 3
