"""repro: exact synthesis of 3-qubit quantum circuits from non-binary gates.

A from-scratch reproduction of Yang, Hung, Song & Perkowski, *"Exact
Synthesis of 3-qubit Quantum Circuits from Non-binary Quantum Gates Using
Multiple-Valued Logic and Group Theory"* (DATE 2005).

Quickstart::

    from repro import GateLibrary, express, named

    library = GateLibrary(n_qubits=3)
    result = express(named.TOFFOLI, library)
    print(result.circuit)        # 5-gate V/V+/CNOT cascade
    print(result.cost)           # 5

Precompute workflow -- the closure for a fixed (library, cost model)
pair is a pure artifact, so expand it once, persist it, and answer any
number of synthesis queries against the loaded store::

    from repro import (
        BatchSynthesizer, CascadeSearch, GateLibrary,
        load_search, save_search, named,
    )

    library = GateLibrary(n_qubits=3)

    # Precompute (once; `repro precompute closure.rpro` from a shell).
    # The default NumPy kernel builds the paper's cost-7 closure in a
    # fraction of a second; kernel="translate" keeps the byte-level
    # reference loop.
    search = CascadeSearch(library, track_parents=True)
    search.extend_to(7)
    save_search(search, "closure.rpro")

    # Serve (many times; `repro synth --store closure.rpro ...`):
    batch = BatchSynthesizer(load_search("closure.rpro", library))
    batch.synthesize(named.TOFFOLI).cost       # 5, in microseconds
    batch.synthesize_many(named.TARGETS.values())
    batch.cost_table().g_sizes                 # Table 2, no re-scan

Stores are written in the memory-mapped **format v2**: contiguous
per-level uint8/uint64/int32 arrays plus a serialized remainder index,
so opening a store costs O(queries touched) -- milliseconds for open +
first query, against seconds for the legacy eager format.  v1 stores
stay readable (``repro store migrate`` upgrades them), loading verifies
checksums and refuses stores whose library or cost-model fingerprints
do not match (`StoreMismatchError`), and ``repro store verify`` runs
the full integrity pass a lazy open skips.

See README.md for the full tour and DESIGN.md for the architecture.
"""

from repro._version import __version__

from repro.errors import (
    ReproError,
    InvalidValueError,
    InvalidGateError,
    InvalidCircuitError,
    InvalidPermutationError,
    SynthesisError,
    CostBoundExceededError,
    SpecificationError,
    SimulationError,
    NonBinaryControlError,
    StoreError,
    StoreMismatchError,
    StoreVersionError,
)
from repro.mvl import Qv, Pattern, LabelSpace, label_space
from repro.linalg import DyadicComplex, Matrix
from repro.perm import Permutation, PermutationGroup, symmetric_group
from repro.gates import Gate, GateKind, GateLibrary, TruthTable, named
from repro.core import (
    Circuit,
    CostModel,
    CascadeSearch,
    SearchArrays,
    SearchState,
    StoreHeader,
    BatchSynthesizer,
    CostTable,
    dump_search,
    find_minimum_cost_circuits,
    express,
    express_all,
    express_probabilistic,
    load_search,
    loads_search,
    migrate_store,
    open_store,
    ProbabilisticSpec,
    read_header,
    save_search,
    SynthesisResult,
    verify_store,
)

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "InvalidValueError",
    "InvalidGateError",
    "InvalidCircuitError",
    "InvalidPermutationError",
    "SynthesisError",
    "CostBoundExceededError",
    "SpecificationError",
    "SimulationError",
    "NonBinaryControlError",
    "StoreError",
    "StoreMismatchError",
    "StoreVersionError",
    # substrates
    "Qv",
    "Pattern",
    "LabelSpace",
    "label_space",
    "DyadicComplex",
    "Matrix",
    "Permutation",
    "PermutationGroup",
    "symmetric_group",
    # gates
    "Gate",
    "GateKind",
    "GateLibrary",
    "TruthTable",
    "named",
    # core
    "Circuit",
    "CostModel",
    "CascadeSearch",
    "SearchArrays",
    "SearchState",
    "StoreHeader",
    "BatchSynthesizer",
    "CostTable",
    "dump_search",
    "find_minimum_cost_circuits",
    "express",
    "express_all",
    "express_probabilistic",
    "load_search",
    "loads_search",
    "migrate_store",
    "open_store",
    "ProbabilisticSpec",
    "read_header",
    "save_search",
    "SynthesisResult",
    "verify_store",
]
