"""Property-based tests: store-format roundtrip invariants (hypothesis).

For random small libraries, cost models, bounds and store formats (the
legacy v1 byte records and the memory-mapped v2 array layout):
expanding a closure, serializing it and loading it back must reproduce
the search exactly -- level sizes and contents, minimal costs, parent
pointers and witness circuits -- and the loaded search must keep
expanding identically.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost import CostModel
from repro.core.search import CascadeSearch
from repro.core.store import dump_search, loads_search
from repro.gates.kinds import GateKind
from repro.gates.library import GateLibrary

_ALL_KINDS = (GateKind.V, GateKind.VDAG, GateKind.CNOT)

# Random library/cost-model configurations: small enough that a closure
# expands in milliseconds, varied enough to cover empty levels (non-unit
# costs), missing gate kinds and both register widths.
library_configs = st.tuples(
    st.integers(min_value=2, max_value=3),
    st.lists(
        st.sampled_from(_ALL_KINDS), min_size=1, max_size=3, unique=True
    ),
)
store_formats = st.sampled_from((1, 2))
cost_models = st.builds(
    CostModel,
    v_cost=st.integers(min_value=1, max_value=2),
    vdag_cost=st.integers(min_value=1, max_value=2),
    cnot_cost=st.integers(min_value=1, max_value=3),
)


def _expand(config, cost_model, bound, track_parents):
    n_qubits, kinds = config
    library = GateLibrary(n_qubits, kinds=tuple(kinds))
    search = CascadeSearch(library, cost_model, track_parents=track_parents)
    search.extend_to(bound)
    return library, search


class TestRoundtripInvariants:
    @given(
        config=library_configs,
        cost_model=cost_models,
        bound=st.integers(min_value=0, max_value=3),
        fmt=store_formats,
    )
    @settings(max_examples=20, deadline=None)
    def test_levels_and_costs_survive(self, config, cost_model, bound, fmt):
        library, search = _expand(config, cost_model, bound, True)
        loaded = loads_search(dump_search(search, fmt), library, cost_model)
        assert loaded.expanded_to == search.expanded_to
        assert loaded.stats().level_sizes == search.stats().level_sizes
        for cost in range(bound + 1):
            assert loaded.level(cost) == search.level(cost)
            for perm, _mask in search.level(cost):
                assert loaded.cost_of(perm) == cost

    @given(
        config=library_configs,
        cost_model=cost_models,
        bound=st.integers(min_value=1, max_value=3),
        fmt=store_formats,
    )
    @settings(max_examples=15, deadline=None)
    def test_witness_circuits_survive(self, config, cost_model, bound, fmt):
        library, search = _expand(config, cost_model, bound, True)
        loaded = loads_search(dump_search(search, fmt), library, cost_model)
        for cost in range(1, bound + 1):
            for perm, _mask in search.level(cost):
                assert loaded.witness_indices(perm) == search.witness_indices(
                    perm
                )
                circuit = loaded.witness_circuit(perm)
                assert circuit.permutation(library.space).images == perm

    @given(
        config=library_configs,
        cost_model=cost_models,
        bound=st.integers(min_value=0, max_value=2),
        track_parents=st.booleans(),
        fmt=store_formats,
    )
    @settings(max_examples=15, deadline=None)
    def test_loaded_search_extends_like_the_original(
        self, config, cost_model, bound, track_parents, fmt
    ):
        library, search = _expand(config, cost_model, bound, track_parents)
        loaded = loads_search(dump_search(search, fmt), library, cost_model)
        assert loaded.tracks_parents == track_parents
        search.extend_to(bound + 1)
        loaded.extend_to(bound + 1)
        assert loaded.stats().level_sizes == search.stats().level_sizes
        assert sorted(p for p, _m in loaded.level(bound + 1)) == sorted(
            p for p, _m in search.level(bound + 1)
        )

    @given(
        config=library_configs,
        bound=st.integers(min_value=0, max_value=3),
        fmt=store_formats,
    )
    @settings(max_examples=15, deadline=None)
    def test_dump_is_deterministic(self, config, bound, fmt):
        _library, search = _expand(config, CostModel(), bound, True)
        assert dump_search(search, fmt) == dump_search(search, fmt)

    @given(
        config=library_configs,
        cost_model=cost_models,
        bound=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=15, deadline=None)
    def test_v1_and_v2_loads_agree(self, config, cost_model, bound):
        library, search = _expand(config, cost_model, bound, True)
        via_v1 = loads_search(dump_search(search, 1), library, cost_model)
        via_v2 = loads_search(dump_search(search, 2), library, cost_model)
        assert via_v1.stats().level_sizes == via_v2.stats().level_sizes
        for cost in range(bound + 1):
            assert via_v1.level(cost) == via_v2.level(cost)
            for perm, _mask in via_v1.level(cost):
                assert via_v1.witness_indices(perm) == (
                    via_v2.witness_indices(perm)
                )


class TestStateRoundtrip:
    @given(
        config=library_configs,
        cost_model=cost_models,
        bound=st.integers(min_value=0, max_value=3),
        track_parents=st.booleans(),
    )
    @settings(max_examples=15, deadline=None)
    def test_export_restore_export_is_identity(
        self, config, cost_model, bound, track_parents
    ):
        library, search = _expand(config, cost_model, bound, track_parents)
        state = search.export_state()
        rebuilt = CascadeSearch.from_state(library, state, cost_model)
        assert rebuilt.export_state() == state
