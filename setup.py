"""Legacy setup shim.

Kept so ``pip install -e .`` works on offline machines whose setuptools
lacks ``bdist_wheel`` (pip falls back to ``setup.py develop`` with
``--no-use-pep517``).  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
