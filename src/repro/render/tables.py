"""Plain-text tables: Table 1, Table 2 and comparison tables.

A small aligned-column formatter plus the concrete presentation layouts
the paper uses.  Everything returns strings so the CLI, examples and
benchmarks can print or persist them uniformly.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.fmcf import CostTable
from repro.gates.truth_table import TruthTable


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], indent: str = ""
) -> str:
    """Align columns under headers, separated by two spaces."""
    headers = [str(h) for h in headers]
    text_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        indent + "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        indent + "  ".join("-" * w for w in widths),
    ]
    for row in text_rows:
        lines.append(
            indent + "  ".join(c.ljust(w) for c, w in zip(row, widths))
        )
    return "\n".join(lines)


def truth_table_text(table: TruthTable) -> str:
    """Paper's Table 1 layout: labeled input/output pattern rows."""
    n = table.space.n_qubits
    in_cols = [chr(ord("A") + w) for w in range(n)]
    out_cols = [chr(ord("P") + w) for w in range(n)]
    headers = ["#", *in_cols, *out_cols, "->#"]
    rows = []
    for row in table.rows():
        rows.append(
            [
                row.input_label,
                *[str(v) for v in row.input_pattern],
                *[str(v) for v in row.output_pattern],
                row.output_label,
            ]
        )
    return format_table(headers, rows)


def cost_table_text(
    table: CostTable, paper_g: Sequence[int] | None = None
) -> str:
    """The paper's Table 2 layout, optionally with the published row."""
    costs = list(range(table.cost_bound + 1))
    rows = [
        ["|G[k]|", *table.g_sizes],
        [f"|S{2**table.n_qubits}[k]|", *table.s8_sizes],
        ["|B[k]|", *table.b_sizes],
        ["|A[k]|", *table.a_sizes],
    ]
    if paper_g is not None:
        rows.insert(1, ["paper |G[k]|", *paper_g[: len(costs)]])
    return format_table(["cost k", *costs], rows)


def comparison_table_text(rows) -> str:
    """Baseline-vs-direct cost comparison (see repro.baselines.compare)."""
    return format_table(
        [
            "target",
            "NCT gates",
            "NCT qcost",
            "MMD gates",
            "MMD qcost",
            "direct qcost",
            "saving",
        ],
        [
            [
                r.name,
                r.nct_gate_count,
                r.nct_quantum_cost,
                r.mmd_gate_count,
                r.mmd_quantum_cost,
                r.direct_quantum_cost,
                r.advantage,
            ]
            for r in rows
        ],
    )
