"""The reasonable-product cascade search (shared FMCF/MCE engine).

This is the computational heart of the paper: a layered breadth-first
closure over cascades of library gates, where a gate may extend a cascade
``f`` only when ``f(S)`` avoids the gate's banned set (Definition 1's
*reasonable product*).  Levels are indexed by accumulated quantum cost, so
with non-unit cost models the search is a Dijkstra-style layered
expansion; with the paper's unit costs it degenerates to plain BFS and the
level sets are exactly the paper's ``B[k]`` (and their union ``A[k]``).

Performance: permutations are raw ``bytes`` and cascade extension is one
``bytes.translate`` call, so the full cost-7 closure (~6.9e5 distinct
cascades for 3 qubits) takes seconds in pure Python.  Optional parent
pointers give O(cost) witness extraction for MCE.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

from repro.errors import InvalidValueError
from repro.core.circuit import Circuit
from repro.core.cost import CostModel, UNIT_COST
from repro.gates.library import GateLibrary
from repro.perm.permutation import Permutation


@dataclass(frozen=True)
class SearchState:
    """Complete snapshot of an expanded :class:`CascadeSearch`.

    This is the clean export surface consumed by the persistent closure
    store (:mod:`repro.core.store`): everything the search accumulated --
    level sets, S-image masks, parent pointers -- without any of the
    library-derived data that is cheaper to rebuild than to ship.

    Attributes:
        expanded_to: highest fully-computed cost level.
        levels: ``levels[k]`` is the B[k] level as a tuple of
            ``(permutation bytes, S-image mask)`` pairs in discovery
            order; empty levels (possible with non-unit cost models) are
            present as empty tuples.
        parents: one ``perm -> (predecessor perm, library gate index)``
            entry per non-identity permutation, or None when the search
            was counting-only (``track_parents=False``).
        elapsed_seconds: accumulated expansion wall time.
    """

    expanded_to: int
    levels: tuple[tuple[tuple[bytes, int], ...], ...]
    parents: dict[bytes, tuple[bytes, int]] | None
    elapsed_seconds: float

    @property
    def total_seen(self) -> int:
        return sum(len(level) for level in self.levels)

    @property
    def level_sizes(self) -> tuple[int, ...]:
        return tuple(len(level) for level in self.levels)


@dataclass(frozen=True)
class SearchStats:
    """Size/timing snapshot of an expanded search."""

    cost_bound: int
    level_sizes: tuple[int, ...]
    total_seen: int
    elapsed_seconds: float

    @property
    def a_sizes(self) -> tuple[int, ...]:
        """Cumulative sizes |A[k]| = |B[0]| + ... + |B[k]|."""
        out = []
        acc = 0
        for size in self.level_sizes:
            acc += size
            out.append(acc)
        return tuple(out)


class CascadeSearch:
    """Incremental layered closure over reasonable cascades.

    Args:
        library: gate library to search over.
        cost_model: integer gate costs (default: the paper's unit model).
        track_parents: keep one predecessor pointer per discovered
            permutation, enabling :meth:`witness_circuit`.  Costs memory
            proportional to the closure size; disable for counting-only
            runs such as Table 2.
    """

    def __init__(
        self,
        library: GateLibrary,
        cost_model: CostModel = UNIT_COST,
        track_parents: bool = True,
    ):
        self._library = library
        self._cost_model = cost_model
        space = library.space
        self._degree = space.size
        self._n_binary = space.n_binary
        self._s_mask = space.s_mask
        # Hot-path gate rows: (translate table, banned mask, cost, index).
        self._rows = tuple(
            (
                entry.table,
                entry.banned_mask,
                cost_model.gate_cost(entry.gate.kind),
                entry.index,
            )
            for entry in library.gates
        )
        identity = bytes(range(self._degree))
        self._identity = identity
        self._seen: dict[bytes, int] = {identity: 0}
        self._levels: dict[int, list[tuple[bytes, int]]] = {
            0: [(identity, self._mask_of(identity))]
        }
        self._parents: dict[bytes, tuple[bytes, int]] | None = (
            {} if track_parents else None
        )
        self._expanded_to = 0
        self._elapsed = 0.0

    # -- infrastructure ----------------------------------------------------------

    def _mask_of(self, perm: bytes) -> int:
        """Bitmask of the images of the binary labels under *perm*."""
        mask = 0
        for image in perm[: self._n_binary]:
            mask |= 1 << image
        return mask

    @property
    def library(self) -> GateLibrary:
        return self._library

    @property
    def cost_model(self) -> CostModel:
        return self._cost_model

    @property
    def expanded_to(self) -> int:
        """Highest cost level fully computed so far."""
        return self._expanded_to

    @property
    def tracks_parents(self) -> bool:
        return self._parents is not None

    # -- expansion ------------------------------------------------------------------

    def extend_to(self, cost_bound: int) -> None:
        """Ensure all levels up to *cost_bound* are computed."""
        if cost_bound < 0:
            raise InvalidValueError("cost bound must be non-negative")
        started = perf_counter()
        seen = self._seen
        parents = self._parents
        for cost in range(self._expanded_to + 1, cost_bound + 1):
            frontier: list[tuple[bytes, int]] = []
            for table, banned, gate_cost, gate_index in self._rows:
                source = self._levels.get(cost - gate_cost)
                if not source:
                    continue
                for perm, mask in source:
                    if mask & banned:
                        continue
                    product = perm.translate(table)
                    if product in seen:
                        continue
                    seen[product] = cost
                    frontier.append((product, self._mask_of(product)))
                    if parents is not None:
                        parents[product] = (perm, gate_index)
            self._levels[cost] = frontier
            self._expanded_to = cost
        self._elapsed += perf_counter() - started

    # -- queries ---------------------------------------------------------------------

    def level(self, cost: int) -> list[tuple[bytes, int]]:
        """The ``B[cost]`` level: list of (permutation bytes, S-image mask).

        Expands the search on demand.
        """
        if cost > self._expanded_to:
            self.extend_to(cost)
        return self._levels.get(cost, [])

    def level_size(self, cost: int) -> int:
        return len(self.level(cost))

    def total_seen(self) -> int:
        """|A[expanded_to]|: all distinct cascade permutations found."""
        return len(self._seen)

    def cost_of(self, perm: bytes | Permutation) -> int | None:
        """Minimal cost of a full label permutation, if discovered so far."""
        key = perm.images if isinstance(perm, Permutation) else perm
        return self._seen.get(key)

    @property
    def s_mask(self) -> int:
        """The mask identifying binary-preserving cascades (b(S) = S)."""
        return self._s_mask

    def stats(self) -> SearchStats:
        return SearchStats(
            cost_bound=self._expanded_to,
            level_sizes=tuple(
                len(self._levels.get(c, [])) for c in range(self._expanded_to + 1)
            ),
            total_seen=len(self._seen),
            elapsed_seconds=self._elapsed,
        )

    # -- state export / restore ----------------------------------------------------------

    def export_state(self) -> SearchState:
        """Snapshot the accumulated closure as an immutable value.

        The snapshot is independent of this instance: later
        :meth:`extend_to` calls do not mutate it.
        """
        return SearchState(
            expanded_to=self._expanded_to,
            levels=tuple(
                tuple(self._levels.get(cost, ()))
                for cost in range(self._expanded_to + 1)
            ),
            parents=dict(self._parents) if self._parents is not None else None,
            elapsed_seconds=self._elapsed,
        )

    @classmethod
    def from_state(
        cls,
        library: GateLibrary,
        state: SearchState,
        cost_model: CostModel = UNIT_COST,
    ) -> "CascadeSearch":
        """Rebuild a search from an exported snapshot in O(closure size).

        The result behaves exactly like the search the state was exported
        from: queries answer without re-expansion, and :meth:`extend_to`
        continues the closure past the stored bound.

        Raises:
            InvalidValueError: if the state is structurally inconsistent
                with *library* (wrong degree, missing identity level,
                duplicate permutations, or dangling parent pointers).
        """
        if state.expanded_to != len(state.levels) - 1:
            raise InvalidValueError(
                f"state claims bound {state.expanded_to} but carries "
                f"{len(state.levels)} levels"
            )
        search = cls(
            library, cost_model, track_parents=state.parents is not None
        )
        degree = search._degree
        if not state.levels or state.levels[0] != (
            (search._identity, search._mask_of(search._identity)),
        ):
            raise InvalidValueError(
                "state level 0 is not the identity singleton"
            )
        seen: dict[bytes, int] = {}
        levels: dict[int, list[tuple[bytes, int]]] = {}
        for cost, level in enumerate(state.levels):
            for perm, _mask in level:
                if len(perm) != degree:
                    raise InvalidValueError(
                        f"permutation of degree {len(perm)} in a state "
                        f"for a degree-{degree} space"
                    )
                if perm in seen:
                    raise InvalidValueError(
                        "duplicate permutation across state levels"
                    )
                seen[perm] = cost
            levels[cost] = list(level)
        parents = state.parents
        if parents is not None:
            if len(parents) != len(seen) - 1:
                raise InvalidValueError(
                    f"state has {len(parents)} parent pointers for "
                    f"{len(seen) - 1} non-identity permutations"
                )
            n_gates = len(library)
            for child, (parent, gate_index) in parents.items():
                child_cost = seen.get(child)
                parent_cost = seen.get(parent)
                if child_cost is None or parent_cost is None:
                    raise InvalidValueError("dangling parent pointer in state")
                if not 0 <= gate_index < n_gates:
                    raise InvalidValueError(
                        f"parent gate index {gate_index} outside the "
                        f"{n_gates}-gate library"
                    )
                if parent_cost >= child_cost:
                    raise InvalidValueError(
                        "parent pointer does not decrease cost"
                    )
            search._parents = dict(parents)
        search._seen = seen
        search._levels = levels
        search._expanded_to = state.expanded_to
        search._elapsed = state.elapsed_seconds
        return search

    # -- witnesses -----------------------------------------------------------------------

    def witness_indices(self, perm: bytes | Permutation) -> list[int]:
        """Library gate indices of one minimal cascade realizing *perm*.

        Raises:
            InvalidValueError: if parents are not tracked or the
                permutation has not been discovered yet.
        """
        if self._parents is None:
            raise InvalidValueError(
                "search was built with track_parents=False; no witnesses"
            )
        key = perm.images if isinstance(perm, Permutation) else bytes(perm)
        if key not in self._seen:
            raise InvalidValueError("permutation not discovered at current bound")
        indices: list[int] = []
        while key != self._identity:
            key, gate_index = self._parents[key]
            indices.append(gate_index)
        indices.reverse()
        return indices

    def witness_circuit(self, perm: bytes | Permutation) -> Circuit:
        """One minimal-cost circuit realizing *perm* (cascade order)."""
        gates = [
            self._library[i].gate for i in self.witness_indices(perm)
        ]
        return Circuit(gates, self._library.n_qubits)
