"""E1 -- Table 1: the 2-qubit controlled-V quaternary truth table.

Regenerates the 16-row table (in the paper's row grouping) and its
permutation representation ``(3,7,4,8)``, and benchmarks the tabulation.
"""

from repro.gates.gate import Gate
from repro.gates.truth_table import TruthTable
from repro.mvl.labels import label_space
from repro.render.tables import truth_table_text

PAPER_PERMUTATION = "(3,7,4,8)"
PAPER_OUTPUT_LABELS = [1, 2, 7, 8, 5, 6, 4, 3, 9, 10, 11, 12, 13, 14, 15, 16]


def build_table1() -> TruthTable:
    space = label_space(2, reduced=False, ordering="grouped")
    return TruthTable.from_gate(Gate.v(1, 0, 2), space)


def test_table1_regeneration(benchmark):
    table = benchmark(build_table1)
    assert table.permutation().cycle_string() == PAPER_PERMUTATION
    assert [row.output_label for row in table.rows()] == PAPER_OUTPUT_LABELS
    print("\n" + truth_table_text(table))
    print(f"permutation representation: {table.permutation().cycle_string()}")


def test_table1_all_two_qubit_gates(benchmark):
    """Tabulate the entire 2-qubit library (6 gates x 16 rows)."""
    space = label_space(2, reduced=False, ordering="grouped")

    def tabulate_all():
        from repro.gates.library import GateLibrary

        library = GateLibrary(2, space=space)
        return [TruthTable.from_gate(e.gate, space) for e in library]

    tables = benchmark(tabulate_all)
    assert len(tables) == 6
    # Every gate's truth table is a permutation fixing the binary block
    # or mapping it into V-values -- and V+_BA is the inverse of V_BA.
    by_perm = {t.permutation().cycle_string() for t in tables}
    assert PAPER_PERMUTATION in by_perm
