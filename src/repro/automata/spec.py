"""Machine-level synthesis specifications.

Bridges Figure 3 to the Section 4 synthesis: describe the desired
per-step behavior of a probabilistic state machine as rows

    (input bits, state bits)  ->  per-wire output symbol (0, 1 or '?')

where '?' denotes a fair random bit, and compile that into a
:class:`~repro.core.probabilistic.ProbabilisticSpec` for
:func:`~repro.core.probabilistic.express_probabilistic`.  The synthesized
cascade plus the wire partition then *is* the machine.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.errors import SpecificationError
from repro.automata.machine import QuantumStateMachine
from repro.core.probabilistic import (
    ProbabilisticSpec,
    ProbabilisticSynthesisResult,
    express_probabilistic,
)
from repro.gates.library import GateLibrary
from repro.mvl.patterns import Pattern
from repro.mvl.values import Qv

Bits = tuple[int, ...]
Row = Sequence[str | int]


@dataclass(frozen=True)
class MachineSynthesisSpec:
    """Desired behavior of a quantum state machine.

    Attributes:
        input_wires: wires driven by the external input.
        state_wires: wires driven by the fed-back state.
        rows: per-(input, state) output symbols, one symbol per *wire*
            (register order): 0/1 for deterministic bits, '?' for a fair
            coin.  Every (input, state) combination must be present.
    """

    input_wires: tuple[int, ...]
    state_wires: tuple[int, ...]
    rows: Mapping[tuple[Bits, Bits], tuple[str | int, ...]]

    @property
    def n_qubits(self) -> int:
        return len(self.input_wires) + len(self.state_wires)

    def __post_init__(self) -> None:
        wires = sorted(self.input_wires + self.state_wires)
        if wires != list(range(len(wires))):
            raise SpecificationError(
                "input and state wires must partition the register"
            )
        expected = 2 ** len(self.input_wires) * 2 ** len(self.state_wires)
        if len(self.rows) != expected:
            raise SpecificationError(
                f"need {expected} rows (every input x state combination), "
                f"got {len(self.rows)}"
            )

    def to_probabilistic_spec(self) -> ProbabilisticSpec:
        """Compile to a width-n probabilistic synthesis spec.

        '?' symbols are encoded as ``V(previous bit)`` -- V0 where the
        wire carried 0, V1 where it carried 1 -- keeping the output
        patterns pairwise distinct (a necessary realizability condition:
        the underlying label map of any cascade is a bijection).  Both
        values measure as fair coins, so the machine-level behavior is
        the one specified.
        """
        n = self.n_qubits
        outputs: list[Pattern | None] = [None] * (2**n)
        for (input_bits, state_bits), row in self.rows.items():
            if len(row) != n:
                raise SpecificationError(
                    f"row for {(input_bits, state_bits)} must list {n} symbols"
                )
            wire_in = [0] * n
            for wire, bit in zip(self.input_wires, input_bits):
                wire_in[wire] = int(bit)
            for wire, bit in zip(self.state_wires, state_bits):
                wire_in[wire] = int(bit)
            index = 0
            for bit in wire_in:
                index = index * 2 + bit
            values = []
            for wire, symbol in enumerate(row):
                if symbol in (0, 1, "0", "1"):
                    values.append(Qv(int(symbol)))
                elif symbol == "?":
                    # Fair coin: V maps 0 -> V0, 1 -> V1, keeping rows distinct.
                    values.append(Qv.V0 if wire_in[wire] == 0 else Qv.V1)
                else:
                    raise SpecificationError(
                        f"symbol {symbol!r} is not 0, 1 or '?'"
                    )
            if outputs[index] is not None:
                raise SpecificationError(
                    f"duplicate row for register pattern index {index}"
                )
            outputs[index] = Pattern(values)
        assert all(p is not None for p in outputs)
        return ProbabilisticSpec(tuple(outputs))


def synthesize_machine(
    spec: MachineSynthesisSpec,
    library: GateLibrary,
    cost_bound: int = 7,
    search=None,
    output_wires: Sequence[int] | None = None,
    initial_state: Sequence[int] | None = None,
) -> tuple[QuantumStateMachine, ProbabilisticSynthesisResult]:
    """Synthesize a machine's circuit and assemble the machine.

    Returns:
        (machine, synthesis result) -- the result carries the cascade,
        its quantum cost and the realized label permutation.
    """
    if library.n_qubits != spec.n_qubits:
        raise SpecificationError(
            f"library width {library.n_qubits} != machine width {spec.n_qubits}"
        )
    result = express_probabilistic(
        spec.to_probabilistic_spec(), library, cost_bound=cost_bound, search=search
    )
    machine = QuantumStateMachine(
        result.circuit,
        input_wires=spec.input_wires,
        state_wires=spec.state_wires,
        output_wires=output_wires,
        initial_state=initial_state,
    )
    return machine, result
