"""Thin client for the ``repro serve`` synthesis service.

:class:`ServeClient` speaks the NDJSON IPC framing of
:mod:`repro.server.protocol` over one persistent socket: connect once,
then every query is a single JSON line each way.  Errors come back as
structured payloads and are re-raised as the *same*
:class:`~repro.errors.ReproError` subclasses the local
:class:`~repro.core.batch.BatchSynthesizer` would raise -- a
:class:`~repro.errors.CostBoundExceededError` from a server has a
byte-identical message to one from a local store, so CLI output and
``except`` clauses work unchanged against either backend.

:func:`http_request` is the HTTP sibling for one-shot calls (health
checks, curl-style tooling) and :func:`wait_until_ready` polls a
server's ``healthz`` until it accepts queries.

Endpoints are either TCP (``host:port`` forms) or UNIX-socket
(``unix:/path/to.sock``); both speak the identical protocol.  Against
a multi-store server, pass ``store=`` (an alias or ``LIBFP:COSTFP``
fingerprint pair) per call or as the client-wide default.

Example::

    from repro.client import ServeClient

    with ServeClient("127.0.0.1:7205") as client:
        print(client.healthz()["status"])
        record = client.synth("toffoli")["results"][0]
        results = client.synth_results("toffoli")  # verified SynthesisResult

    with ServeClient("unix:/tmp/repro.sock", store="deep") as client:
        client.synth_batch(["toffoli", "peres"])

Everything here is standard library only (socket + json).
"""

from __future__ import annotations

import json
import random
import socket
import threading
import time

from repro.errors import ProtocolError, ServerError
from repro.server.protocol import (
    DEFAULT_PORT,
    MAX_BODY,
    error_to_exception,
    parse_endpoint,
)

DEFAULT_TIMEOUT = 30.0

#: Ceiling on the retry backoff between attempts, in seconds.
MAX_BACKOFF = 2.0


class _TransportFailure(Exception):
    """Internal: a retryable transport-level failure (never surfaced).

    Wraps the exception that :meth:`ServeClient.call` would raise for a
    failed connect, a dropped connection mid-round-trip, or a peer that
    closed without replying -- the only failures where retrying against
    a reconnected socket is safe *and* can't double-apply anything (the
    service is query-only, so every operation is idempotent).
    Protocol-level garbage (non-JSON, mismatched ids, structured
    errors) is NOT wrapped: the server is reachable and answering,
    retrying would just repeat the same exchange.
    """

    def __init__(self, error: Exception):
        super().__init__(str(error))
        self.error = error


def _open_socket(family: str, target, timeout: float) -> socket.socket:
    """Connect a TCP or AF_UNIX stream socket (parse_endpoint's output)."""
    if family == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        try:
            sock.connect(target)
        except OSError:
            sock.close()
            raise
        return sock
    sock = socket.create_connection(target, timeout=timeout)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


class ServeClient:
    """Persistent NDJSON connection to one ``repro serve`` instance.

    Args:
        address: ``host:port`` / ``:port`` / ``port`` /
            ``unix:/path/to.sock`` (see
            :func:`repro.server.protocol.parse_endpoint`).
        timeout: per-response socket timeout in seconds.
        store: default store selector sent with every request (a
            registry alias or ``LIBFP:COSTFP`` fingerprints); ``None``
            targets a single-store server's sole store.
        retries: transport-failure retries per call (default 0 -- off,
            preserving the historical fail-fast behavior exactly).
            Each retry reconnects from scratch, so a restarted server
            is picked up transparently.  Only *transport* failures are
            retried (connect errors, dropped connections, empty
            replies); structured errors and protocol violations are
            raised immediately -- the server answered, so retrying
            cannot help.  All service operations are idempotent reads,
            which is what makes blind re-send safe.
        backoff: base delay in seconds between retry attempts; actual
            sleeps grow exponentially (doubling per attempt, capped at
            :data:`MAX_BACKOFF`) with +/-50% jitter so a fleet of
            retrying clients doesn't stampede a recovering server.

    The socket is opened lazily on the first call and can be reused for
    any number of requests; the client is a context manager.  One
    client is **not** thread-safe (requests share the socket) -- use
    one client per thread, the server multiplexes happily.
    """

    def __init__(
        self,
        address: str = "",
        timeout: float = DEFAULT_TIMEOUT,
        store: str | None = None,
        retries: int = 0,
        backoff: float = 0.05,
    ):
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if backoff < 0:
            raise ValueError("backoff must be >= 0")
        self._family, self._target = parse_endpoint(
            address or str(DEFAULT_PORT)
        )
        self._timeout = timeout
        self._store = store
        self._retries = retries
        self._backoff = backoff
        self._rng = random.Random()
        self._sock: socket.socket | None = None
        self._file = None
        self._next_id = 0

    @property
    def address(self) -> str:
        if self._family == "unix":
            return f"unix:{self._target}"
        host, port = self._target
        return f"{host}:{port}"

    # -- connection lifecycle ----------------------------------------------------------

    def connect(self) -> "ServeClient":
        if self._sock is None:
            sock = _open_socket(self._family, self._target, self._timeout)
            self._sock = sock
            self._file = sock.makefile("rwb")
        return self

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- transport ---------------------------------------------------------------------

    def call(self, op: str, store: str | None = None, **params) -> dict:
        """One request/response round trip; raises the mapped exception.

        *store* overrides the client-wide default selector for this
        call only.  With ``retries=N``, up to N additional attempts are
        made after a transport failure, reconnecting each time with
        jittered exponential backoff in between; the *last* attempt's
        failure is what gets raised.
        """
        delay = self._backoff
        for attempt in range(self._retries + 1):
            try:
                return self._call_once(op, store, params)
            except _TransportFailure as failure:
                self.close()
                if attempt >= self._retries:
                    raise failure.error from None
                if delay > 0:
                    time.sleep(delay * (0.5 + self._rng.random()))
                delay = min(delay * 2, MAX_BACKOFF)
        raise AssertionError("unreachable")  # pragma: no cover

    def _call_once(self, op: str, store: str | None, params: dict) -> dict:
        """One attempt; transport failures raise ``_TransportFailure``."""
        try:
            self.connect()
        except OSError as exc:
            raise _TransportFailure(exc) from None
        assert self._file is not None
        self._next_id += 1
        request_id = self._next_id
        request: dict = {"id": request_id, "op": op, "params": params}
        selector = self._store if store is None else store
        if selector is not None:
            request["store"] = selector
        line = json.dumps(request, separators=(",", ":")).encode() + b"\n"
        try:
            self._file.write(line)
            self._file.flush()
            # Responses have no server-side size cap (MAX_BODY bounds
            # requests only -- a big batch legitimately returns more
            # than it asked with), so accumulate until the newline
            # instead of letting a capped readline() truncate mid-JSON.
            chunks = []
            while True:
                chunk = self._file.readline(MAX_BODY)
                chunks.append(chunk)
                if not chunk or chunk.endswith(b"\n"):
                    break
            reply = b"".join(chunks)
        except OSError as exc:
            raise _TransportFailure(ServerError(
                f"lost connection to {self.address}: {exc}"
            )) from None
        if not reply:
            raise _TransportFailure(ServerError(
                f"server {self.address} closed the connection"
            ))
        try:
            response = json.loads(reply)
        except ValueError:
            self.close()
            raise ProtocolError(
                f"server {self.address} sent a non-JSON response"
            ) from None
        if not isinstance(response, dict):
            raise ProtocolError("response must be a JSON object")
        if response.get("id") != request_id:
            self.close()
            raise ProtocolError(
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id}"
            )
        if response.get("ok"):
            result = response.get("result")
            if not isinstance(result, dict):
                raise ProtocolError("ok response carries no result object")
            return result
        raise error_to_exception(response.get("error") or {})

    # -- operations --------------------------------------------------------------------

    def healthz(self) -> dict:
        return self.call("healthz")

    def store_info(self, store: str | None = None) -> dict:
        return self.call("store-info", store=store)

    def synth(
        self,
        target: str,
        all: bool = False,
        allow_not: bool = True,
        cost_bound: int | None = None,
        store: str | None = None,
    ) -> dict:
        """Synthesize one target spec; returns the raw result payload."""
        params: dict = {"target": target, "all": all, "allow_not": allow_not}
        if cost_bound is not None:
            params["cost_bound"] = cost_bound
        return self.call("synth", store=store, **params)

    def synth_results(
        self,
        target: str,
        all: bool = False,
        allow_not: bool = True,
        cost_bound: int | None = None,
        store: str | None = None,
    ) -> list:
        """Like :meth:`synth`, rebuilt into verified ``SynthesisResult``s.

        Every record is re-verified locally
        (:func:`repro.io.result_from_dict` recomputes the circuit's
        permutation and compares), so a lying or corrupted server fails
        loudly instead of returning a wrong circuit.
        """
        from repro.io import result_from_dict

        payload = self.synth(
            target, all=all, allow_not=allow_not, cost_bound=cost_bound,
            store=store,
        )
        return [result_from_dict(record) for record in payload["results"]]

    def synth_batch(
        self,
        targets: list,
        allow_not: bool = True,
        cost_bound: int | None = None,
        store: str | None = None,
    ) -> dict:
        """Submit many target specs as one coalesced server-side batch."""
        params: dict = {"targets": list(targets), "allow_not": allow_not}
        if cost_bound is not None:
            params["cost_bound"] = cost_bound
        return self.call("synth-batch", store=store, **params)

    def cost_table(
        self,
        cost_bound: int | None = None,
        include_members: bool = False,
        store: str | None = None,
    ) -> dict:
        params: dict = {"include_members": include_members}
        if cost_bound is not None:
            params["cost_bound"] = cost_bound
        return self.call("cost-table", store=store, **params)


class ClientPool:
    """Per-thread persistent :class:`ServeClient`\\ s for one endpoint.

    :class:`ServeClient` is deliberately not thread-safe (requests
    share one socket), so a worker pool hammering a server -- the
    scenario runner, a replay driver, any threaded load generator --
    needs one client per thread, and wants each kept open across calls
    so the measured latency is the query, not a fresh TCP handshake.
    The pool hands every calling thread its own lazily-connected
    client (keyed by thread, created on first :meth:`get`) and closes
    them all together.

    Keyword arguments are forwarded to every :class:`ServeClient`
    constructed (``timeout``, ``store``, ``retries``, ``backoff``).
    The pool is a context manager; exiting closes every client it ever
    created, from any thread (socket close is safe cross-thread once
    the workers have stopped calling).
    """

    def __init__(self, address: str = "", **client_kwargs):
        self._address = address
        self._client_kwargs = client_kwargs
        self._local = threading.local()
        self._clients: list[ServeClient] = []
        self._lock = threading.Lock()

    def get(self) -> ServeClient:
        """The calling thread's client, created on first use."""
        client = getattr(self._local, "client", None)
        if client is None:
            client = ServeClient(self._address, **self._client_kwargs)
            self._local.client = client
            with self._lock:
                self._clients.append(client)
        return client

    def close_all(self) -> None:
        with self._lock:
            clients, self._clients = self._clients, []
        for client in clients:
            client.close()

    def __enter__(self) -> "ClientPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close_all()


def http_request(
    address: str,
    path: str,
    method: str = "GET",
    body: dict | None = None,
    timeout: float = DEFAULT_TIMEOUT,
) -> tuple[int, dict]:
    """One-shot HTTP/1.1 request against a ``repro serve`` instance.

    *address* may be a TCP ``host:port`` form or ``unix:/path/to.sock``
    (the server speaks the same sniffed protocol on both).  Returns
    ``(status, decoded JSON body)``.  Raises :class:`ServerError` on
    connection failure and :class:`ProtocolError` on an unparseable
    response.
    """
    family, target = parse_endpoint(address)
    host_header = "localhost" if family == "unix" else f"{target[0]}:{target[1]}"
    payload = b""
    if body is not None:
        payload = json.dumps(body, separators=(",", ":")).encode()
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: {host_header}\r\n"
        "Connection: close\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "\r\n"
    ).encode("ascii")
    try:
        with _open_socket(family, target, timeout) as sock:
            sock.sendall(head + payload)
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
    except OSError as exc:
        raise ServerError(f"HTTP request to {address} failed: {exc}") from None
    raw = b"".join(chunks)
    header, sep, rest = raw.partition(b"\r\n\r\n")
    if not sep:
        raise ProtocolError("malformed HTTP response (no header terminator)")
    try:
        status = int(header.split(None, 2)[1])
        data = json.loads(rest) if rest.strip() else {}
    except (IndexError, ValueError):
        raise ProtocolError("malformed HTTP response") from None
    if not isinstance(data, dict):
        raise ProtocolError("HTTP response body must be a JSON object")
    return status, data


def fetch_metrics(
    address: str, timeout: float = DEFAULT_TIMEOUT
) -> tuple[int, str]:
    """``GET /metrics`` against a server or router: ``(status, text)``.

    Unlike :func:`http_request` the body is returned as decoded text,
    not JSON -- ``/metrics`` is the one endpoint that speaks the
    Prometheus text exposition format.  Parse the result with
    :func:`repro.telemetry.parse_prometheus_text`.
    """
    family, target = parse_endpoint(address)
    host_header = (
        "localhost" if family == "unix" else f"{target[0]}:{target[1]}"
    )
    head = (
        f"GET /metrics HTTP/1.1\r\n"
        f"Host: {host_header}\r\n"
        "Connection: close\r\n"
        "\r\n"
    ).encode("ascii")
    try:
        with _open_socket(family, target, timeout) as sock:
            sock.sendall(head)
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
    except OSError as exc:
        raise ServerError(f"HTTP request to {address} failed: {exc}") from None
    raw = b"".join(chunks)
    header, sep, rest = raw.partition(b"\r\n\r\n")
    if not sep:
        raise ProtocolError("malformed HTTP response (no header terminator)")
    try:
        status = int(header.split(None, 2)[1])
    except (IndexError, ValueError):
        raise ProtocolError("malformed HTTP response") from None
    return status, rest.decode("utf-8", errors="replace")


def wait_until_ready(
    address: str, timeout: float = 30.0, interval: float = 0.05
) -> dict:
    """Poll ``healthz`` until the server answers; returns the payload.

    At least one attempt is always made.  Each attempt's socket timeout
    is clamped to the *remaining* deadline (never beyond 5 s), so a
    caller asking for ``timeout=0.3`` cannot be held up for seconds by
    a black-holed connect; between attempts the poll interval backs off
    geometrically from *interval* up to one second.

    Raises:
        ServerError: the server did not come up within *timeout*.
    """
    deadline = time.monotonic() + timeout
    last_error = "no attempt made"
    delay = interval
    attempts = 0
    while True:
        remaining = deadline - time.monotonic()
        if attempts and remaining <= 0:
            break
        attempts += 1
        per_attempt = min(5.0, max(remaining, 0.05))
        try:
            with ServeClient(address, timeout=per_attempt) as client:
                health = client.healthz()
            if health.get("status") == "ok":
                return health
            last_error = f"status {health.get('status')!r}"
        except (OSError, ServerError, ProtocolError) as exc:
            last_error = str(exc)
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            break
        time.sleep(min(delay, remaining))
        delay = min(delay * 2, 1.0)
    raise ServerError(
        f"server {address} not ready after {timeout:.0f}s ({last_error})"
    )
