"""Property-based tests: permutations and their group laws (hypothesis)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.perm.permutation import Permutation


@st.composite
def permutations(draw, degree=None):
    if degree is None:
        degree = draw(st.integers(min_value=1, max_value=40))
    images = draw(st.permutations(list(range(degree))))
    return Permutation.from_images(images)


perms38 = permutations(degree=38)
perms8 = permutations(degree=8)


class TestGroupLaws:
    @given(perms38, perms38, perms38)
    def test_associativity(self, a, b, c):
        assert (a * b) * c == a * (b * c)

    @given(perms38)
    def test_inverse_law(self, a):
        assert (a * a.inverse()).is_identity
        assert (a.inverse() * a).is_identity

    @given(perms38, perms38)
    def test_product_inverse_rule(self, a, b):
        assert (a * b).inverse() == b.inverse() * a.inverse()

    @given(perms38)
    def test_double_inverse(self, a):
        assert a.inverse().inverse() == a

    @given(perms38, perms38)
    def test_composition_convention(self, a, b):
        # (a*b)(x) = b(a(x)) for every point.
        product = a * b
        for x in range(0, 38, 5):
            assert product(x) == b(a(x))


class TestStructuralInvariants:
    @given(perms38)
    def test_order_annihilates(self, a):
        assert a.power(a.order()).is_identity

    @given(perms38)
    def test_cycle_string_roundtrip(self, a):
        text = a.cycle_string()
        assert Permutation.from_cycle_string(38, text) == a

    @given(perms38)
    def test_cycle_lengths_partition_degree(self, a):
        total = sum(
            length * count for length, count in a.cycle_structure().items()
        )
        assert total == 38

    @given(perms38, perms38)
    def test_parity_is_homomorphism(self, a, b):
        assert (a * b).parity() == (a.parity() + b.parity()) % 2

    @given(perms38, perms38)
    def test_conjugation_preserves_cycle_structure(self, a, g):
        assert a.conjugate_by(g).cycle_structure() == a.cycle_structure()

    @given(perms38)
    def test_support_excludes_fixed_points(self, a):
        for point in a.support():
            assert a(point) != point

    @given(perms8, st.integers(min_value=-6, max_value=6))
    def test_power_consistency(self, a, n):
        direct = Permutation.identity(8)
        step = a if n >= 0 else a.inverse()
        for _ in range(abs(n)):
            direct = direct * step
        assert a.power(n) == direct


class TestRestriction:
    @given(perms8, perms8)
    def test_extension_then_restriction_roundtrip(self, a, b):
        ea, eb = a.extended(20), b.extended(20)
        s = list(range(8))
        assert (ea * eb).restricted(s) == a * b

    @given(perms8)
    def test_image_of_invariant_set(self, a):
        assert a.image_of_set(range(8)) == frozenset(range(8))
        assert a.fixes(range(8))
