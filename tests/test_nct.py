"""Unit tests for the NCT baseline (repro.baselines.nct)."""

import pytest

from repro.errors import InvalidGateError, SynthesisError
from repro.baselines.nct import (
    NCTCostAssignment,
    NCTGate,
    NCTLibrary,
    NCTSynthesizer,
    nct_quantum_cost,
)
from repro.gates import named
from repro.perm.permutation import Permutation

#: The classic optimal NCT synthesis histogram (Shende et al., ICCAD'02).
CLASSIC_HISTOGRAM = {
    0: 1, 1: 12, 2: 102, 3: 625, 4: 2780,
    5: 8921, 6: 17049, 7: 10253, 8: 577,
}


class TestNCTGate:
    def test_kinds(self):
        assert NCTGate(0, (), 3).kind == "NOT"
        assert NCTGate(0, (1,), 3).kind == "CNOT"
        assert NCTGate(0, (1, 2), 3).kind == "TOFFOLI"

    def test_names(self):
        assert NCTGate(0, (), 3).name == "NOT_A"
        assert NCTGate(1, (0,), 3).name == "CNOT_BA"
        assert NCTGate(2, (0, 1), 3).name == "TOF_C(AB)"

    def test_validation(self):
        with pytest.raises(InvalidGateError):
            NCTGate(0, (0,), 3)
        with pytest.raises(InvalidGateError):
            NCTGate(3, (), 3)
        with pytest.raises(InvalidGateError):
            NCTGate(0, (2, 1), 3)  # unsorted controls

    def test_not_permutation(self):
        perm = NCTGate(0, (), 3).permutation()
        assert perm(0) == 4 and perm(7) == 3

    def test_toffoli_permutation(self):
        perm = NCTGate(2, (0, 1), 3).permutation()
        assert perm == named.TOFFOLI

    def test_gates_are_involutions(self):
        for gate in NCTLibrary(3).gates:
            p = gate.permutation()
            assert (p * p).is_identity


class TestNCTLibrary:
    def test_three_wire_count(self):
        # 3 NOT + 6 CNOT + 3 Toffoli = 12.
        assert len(NCTLibrary(3)) == 12

    def test_two_wire_count(self):
        # 2 NOT + 2 CNOT.
        assert len(NCTLibrary(2)) == 4

    def test_max_controls_cap(self):
        assert len(NCTLibrary(3, max_controls=1)) == 9

    def test_by_name(self):
        lib = NCTLibrary(3)
        assert lib.by_name("TOF_C(AB)").controls == (0, 1)
        with pytest.raises(InvalidGateError):
            lib.by_name("TOF_X")

    def test_permutation_of_cascade(self):
        lib = NCTLibrary(3)
        circuit = [lib.by_name("CNOT_BA"), lib.by_name("CNOT_BA")]
        assert lib.permutation_of(circuit).is_identity


class TestCostAssignment:
    def test_default_costs(self):
        assign = NCTCostAssignment()
        lib = NCTLibrary(3)
        assert assign.gate_cost(lib.by_name("NOT_A")) == 0
        assert assign.gate_cost(lib.by_name("CNOT_BA")) == 1
        assert assign.gate_cost(lib.by_name("TOF_C(AB)")) == 5

    def test_multi_control_flagged(self):
        gate = NCTGate(0, (1, 2, 3), 4)
        assert NCTCostAssignment().gate_cost(gate) == 1_000

    def test_circuit_cost(self):
        lib = NCTLibrary(3)
        circuit = [lib.by_name("TOF_C(AB)"), lib.by_name("CNOT_BA"),
                   lib.by_name("NOT_A")]
        assert nct_quantum_cost(circuit) == 6


class TestSynthesizer:
    def test_reaches_all_of_s8(self, nct_synthesizer):
        assert nct_synthesizer.reachable_count() == 40320

    def test_classic_distribution(self, nct_synthesizer):
        assert nct_synthesizer.gate_count_distribution() == CLASSIC_HISTOGRAM

    def test_toffoli_is_one_gate(self, nct_synthesizer):
        assert nct_synthesizer.optimal_gate_count(named.TOFFOLI) == 1
        circuit = nct_synthesizer.synthesize(named.TOFFOLI)
        assert [g.name for g in circuit] == ["TOF_C(AB)"]

    def test_peres_is_two_gates(self, nct_synthesizer):
        assert nct_synthesizer.optimal_gate_count(named.PERES) == 2

    def test_fredkin_is_three_gates(self, nct_synthesizer):
        assert nct_synthesizer.optimal_gate_count(named.FREDKIN) == 3

    def test_identity_is_zero_gates(self, nct_synthesizer):
        assert nct_synthesizer.optimal_gate_count(named.IDENTITY3) == 0
        assert nct_synthesizer.synthesize(named.IDENTITY3) == []

    def test_synthesis_roundtrip_on_samples(self, nct_synthesizer):
        import random

        lib = nct_synthesizer.library
        rng = random.Random(5)
        for _ in range(25):
            images = list(range(8))
            rng.shuffle(images)
            target = Permutation.from_images(images)
            circuit = nct_synthesizer.synthesize(target)
            assert lib.permutation_of(circuit) == target
            assert len(circuit) == nct_synthesizer.optimal_gate_count(target)

    def test_unreachable_target_raises(self):
        # A wrong-degree target is never in the BFS table.
        synth = NCTSynthesizer(NCTLibrary(2))
        with pytest.raises(SynthesisError):
            synth.optimal_gate_count(Permutation.identity(8))
        with pytest.raises(SynthesisError):
            synth.synthesize(Permutation.identity(8))

    def test_two_wire_nct_generates_s4(self):
        synth = NCTSynthesizer(NCTLibrary(2))
        assert synth.reachable_count() == 24
