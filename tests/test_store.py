"""Unit tests for the persistent closure store (repro.core.store)."""

import json

import pytest

from repro.errors import SpecificationError, StoreError, StoreMismatchError
from repro.core.batch import BatchSynthesizer
from repro.core.cost import CostModel
from repro.core.search import CascadeSearch
from repro.core.store import (
    FORMAT_VERSION,
    MAGIC,
    cost_model_fingerprint,
    dump_search,
    library_fingerprint,
    load_search,
    loads_search,
    open_store,
    read_header,
    save_search,
)
from repro.gates.kinds import GateKind
from repro.gates.library import GateLibrary


@pytest.fixture(scope="module")
def small_search(library3):
    search = CascadeSearch(library3, track_parents=True)
    search.extend_to(3)
    return search


@pytest.fixture(scope="module")
def store_bytes(small_search):
    return dump_search(small_search)


class TestFingerprints:
    def test_equal_libraries_fingerprint_equal(self, library3):
        assert library_fingerprint(library3) == library_fingerprint(
            GateLibrary(3)
        )

    def test_different_width_differs(self, library3):
        assert library_fingerprint(library3) != library_fingerprint(
            GateLibrary(2)
        )

    def test_different_kinds_differ(self, library3):
        trimmed = GateLibrary(3, kinds=(GateKind.V, GateKind.VDAG))
        assert library_fingerprint(library3) != library_fingerprint(trimmed)

    def test_cost_models_fingerprint_by_value(self):
        assert cost_model_fingerprint(CostModel()) == cost_model_fingerprint(
            CostModel.unit()
        )
        assert cost_model_fingerprint(CostModel()) != cost_model_fingerprint(
            CostModel(cnot_cost=2)
        )


class TestRoundtrip:
    def test_levels_and_seen_survive(self, small_search, store_bytes, library3):
        loaded = loads_search(store_bytes, library3)
        assert loaded.expanded_to == small_search.expanded_to
        assert loaded.stats().level_sizes == small_search.stats().level_sizes
        assert loaded.total_seen() == small_search.total_seen()
        for cost in range(4):
            assert loaded.level(cost) == small_search.level(cost)

    def test_witnesses_survive(self, small_search, store_bytes, library3):
        loaded = loads_search(store_bytes, library3)
        for perm, _mask in small_search.level(3):
            assert loaded.witness_indices(perm) == small_search.witness_indices(
                perm
            )

    def test_loaded_search_extends_identically(self, store_bytes, library3):
        loaded = loads_search(store_bytes, library3)
        fresh = CascadeSearch(library3, track_parents=True)
        loaded.extend_to(4)
        fresh.extend_to(4)
        assert loaded.stats().level_sizes == fresh.stats().level_sizes
        assert sorted(p for p, _m in loaded.level(4)) == sorted(
            p for p, _m in fresh.level(4)
        )

    def test_file_roundtrip(self, small_search, library3, tmp_path):
        path = tmp_path / "closure.rpro"
        header = save_search(small_search, path)
        assert header.expanded_to == 3
        assert header.total_seen == small_search.total_seen()
        loaded = load_search(path, library3)
        assert loaded.stats().level_sizes == small_search.stats().level_sizes

    def test_parentless_roundtrip(self, library3):
        search = CascadeSearch(library3, track_parents=False)
        search.extend_to(2)
        loaded = loads_search(dump_search(search), library3)
        assert not loaded.tracks_parents
        assert loaded.stats().level_sizes == search.stats().level_sizes

    def test_nonunit_cost_model_roundtrip(self, library3):
        model = CostModel(v_cost=1, vdag_cost=1, cnot_cost=2)
        search = CascadeSearch(library3, model, track_parents=True)
        search.extend_to(3)
        loaded = loads_search(dump_search(search), library3, model)
        assert loaded.stats().level_sizes == search.stats().level_sizes
        # Level 1 holds only the cost-1 V/V+ gates under cnot_cost=2.
        assert loaded.level_size(1) == 12


class TestHeader:
    def test_read_header_fields(self, small_search, tmp_path, library3):
        path = tmp_path / "closure.rpro"
        save_search(small_search, path)
        header = read_header(path)
        assert header.format_version == FORMAT_VERSION
        assert header.n_qubits == 3
        assert header.degree == 38
        assert header.level_sizes == (1, 18, 162, 1017)
        assert header.track_parents
        assert header.library_fingerprint == library_fingerprint(library3)

    def test_open_store_is_self_describing(self, small_search, tmp_path):
        path = tmp_path / "closure.rpro"
        save_search(small_search, path)
        header, library, search = open_store(path)
        assert library.n_qubits == 3 and len(library) == 18
        assert search.expanded_to == 3
        assert header.total_seen == search.total_seen()


class TestRefusals:
    def test_wrong_library_is_refused(self, store_bytes):
        with pytest.raises(StoreMismatchError):
            loads_search(store_bytes, GateLibrary(2))

    def test_trimmed_library_is_refused(self, store_bytes):
        trimmed = GateLibrary(3, kinds=(GateKind.V, GateKind.VDAG))
        with pytest.raises(StoreMismatchError):
            loads_search(store_bytes, trimmed)

    def test_wrong_cost_model_is_refused(self, store_bytes, library3):
        with pytest.raises(StoreMismatchError):
            loads_search(store_bytes, library3, CostModel(v_cost=3))

    def test_parentless_store_refuses_witness_queries(self, library3):
        search = CascadeSearch(library3, track_parents=False)
        search.extend_to(2)
        loaded = loads_search(dump_search(search), library3)
        batch = BatchSynthesizer(loaded, cost_bound=2)
        from repro.gates import named

        assert batch.minimal_cost(named.TARGETS["cnot_ba"]) == 1
        with pytest.raises(SpecificationError):
            batch.synthesize(named.TARGETS["cnot_ba"])


class TestCorruption:
    def test_bad_magic(self, store_bytes, library3):
        with pytest.raises(StoreError):
            loads_search(b"NOTASTORE" + store_bytes, library3)

    def test_truncated_payload(self, store_bytes, library3):
        with pytest.raises(StoreError):
            loads_search(store_bytes[:-10], library3)

    def test_flipped_payload_byte_fails_checksum(self, store_bytes, library3):
        corrupt = bytearray(store_bytes)
        corrupt[-1] ^= 0xFF
        with pytest.raises(StoreError, match="sha256"):
            loads_search(bytes(corrupt), library3)

    def test_unsupported_format_version(self, store_bytes, library3):
        header_len = int.from_bytes(
            store_bytes[len(MAGIC) : len(MAGIC) + 4], "little"
        )
        start = len(MAGIC) + 4
        header = json.loads(store_bytes[start : start + header_len])
        header["format"] = FORMAT_VERSION + 1
        blob = json.dumps(header, separators=(",", ":")).encode()
        doctored = (
            MAGIC
            + len(blob).to_bytes(4, "little")
            + blob
            + store_bytes[start + header_len :]
        )
        with pytest.raises(StoreError, match="format"):
            loads_search(doctored, library3)

    def test_header_not_json(self, library3):
        data = MAGIC + (4).to_bytes(4, "little") + b"\xff\xff\xff\xff"
        with pytest.raises(StoreError):
            loads_search(data, library3)

    def test_read_header_on_non_store_file(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"hello world, definitely not a store")
        with pytest.raises(StoreError):
            read_header(path)
