"""Section 4 end to end: controlled RNG and a probabilistic state machine.

Builds the two quantum-automata artifacts the paper motivates:

1. a **controlled quantum random number generator** -- an enable wire
   gating two fair random bits, synthesized (not hand-built) from its
   behavioral spec;
2. a **probabilistic finite state machine** (Figure 3) -- a one-bit
   memory that holds its state on input 0 and quantum-re-flips it on
   input 1; we extract its exact Markov chain, stationary distribution
   and an HMM likelihood, then sample a run.

Run:  python examples/quantum_random_machine.py
"""

import random

from repro import GateLibrary
from repro.automata.hmm import QuantumHMM
from repro.automata.markov import MarkovChain
from repro.automata.rng import ControlledRandomBitGenerator
from repro.automata.spec import MachineSynthesisSpec, synthesize_machine
from repro.render.diagram import circuit_diagram


def controlled_rng_demo() -> None:
    print("=" * 64)
    print("Controlled quantum random number generator")
    print("=" * 64)
    generator = ControlledRandomBitGenerator(n_random=2)
    print(f"synthesized cascade (cost {generator.cost}):")
    print(circuit_diagram(generator.circuit))

    print("\nexact output distribution, enable=1:")
    for bits, p in generator.exact_distribution(1).items():
        print(f"  {bits}: {p}")
    print("exact output distribution, enable=0:",
          dict(generator.exact_distribution(0)))

    rng = random.Random(2025)
    stream = generator.generate_bits(64, rng)
    print(f"\n64 quantum-random bits: {''.join(map(str, stream))}")
    print(f"ones: {sum(stream)}/64")


def state_machine_demo() -> None:
    print("\n" + "=" * 64)
    print("Probabilistic state machine (Figure 3)")
    print("=" * 64)
    rows = {
        ((0,), (0,)): (0, 0),       # input 0: hold state
        ((0,), (1,)): (0, 1),
        ((1,), (0,)): (1, "?"),     # input 1: re-flip the state fairly
        ((1,), (1,)): (1, "?"),
    }
    spec = MachineSynthesisSpec(input_wires=(0,), state_wires=(1,), rows=rows)
    machine, result = synthesize_machine(spec, GateLibrary(2))
    print(f"synthesized circuit: {result.circuit} (cost {result.cost})")

    flip = MarkovChain.from_machine(machine, (1,))
    hold = MarkovChain.from_machine(machine, (0,))
    print("\nMarkov chain under input 1 (exact):")
    for row in flip.matrix:
        print("  ", [str(p) for p in row])
    print("Markov chain under input 0 (exact):")
    for row in hold.matrix:
        print("  ", [str(p) for p in row])
    print("stationary distribution (input 1):",
          flip.stationary_distribution())

    hmm = QuantumHMM(machine)
    likelihood = hmm.sequence_probability(
        [(1,), (1,), (1,)], inputs=[(1,), (1,), (1,)]
    )
    print(f"\nHMM: P(observe outputs 1,1,1 | inputs 1,1,1) = {likelihood}")

    rng = random.Random(7)
    machine.reset()
    trace = machine.run([(1,)] * 10, rng)
    states = "".join(str(s.state_after[0]) for s in trace)
    print(f"sampled state trajectory over 10 re-flips: {states}")


if __name__ == "__main__":
    controlled_rng_demo()
    state_machine_demo()
