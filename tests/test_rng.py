"""Unit tests for the controlled quantum RNG (repro.automata.rng)."""

import random
from fractions import Fraction

import pytest

from repro.errors import SpecificationError
from repro.automata.rng import ControlledRandomBitGenerator
from repro.gates.library import GateLibrary


@pytest.fixture(scope="module")
def rng2():
    return ControlledRandomBitGenerator(n_random=2)


class TestSynthesis:
    def test_cost_is_one_gate_per_bit(self, rng2):
        assert rng2.cost == 2

    def test_circuit_is_v_gates_controlled_by_enable(self, rng2):
        names = set(rng2.circuit.names())
        assert names == {"V_BA", "V_CA"}

    def test_one_bit_generator_on_two_qubits(self, library2):
        generator = ControlledRandomBitGenerator(n_random=1, library=library2)
        assert generator.cost == 1

    def test_library_width_checked(self, library2):
        with pytest.raises(SpecificationError):
            ControlledRandomBitGenerator(n_random=2, library=library2)

    def test_needs_at_least_one_bit(self):
        with pytest.raises(SpecificationError):
            ControlledRandomBitGenerator(n_random=0)


class TestDistributions:
    def test_enabled_uniform(self, rng2):
        dist = rng2.exact_distribution(1)
        assert len(dist) == 4
        assert all(p == Fraction(1, 4) for p in dist.values())
        assert all(bits[0] == 1 for bits in dist)  # enable wire reads 1

    def test_disabled_passthrough(self, rng2):
        assert rng2.exact_distribution(0) == {(0, 0, 0): Fraction(1)}

    def test_disabled_with_data(self, rng2):
        dist = rng2.exact_distribution(0, (1, 0))
        assert dist == {(0, 1, 0): Fraction(1)}

    def test_data_width_checked(self, rng2):
        with pytest.raises(SpecificationError):
            rng2.output_pattern(1, (0,))


class TestGeneration:
    def test_generate_returns_data_bits_only(self, rng2):
        bits = rng2.generate(random.Random(3))
        assert len(bits) == 2
        assert set(bits) <= {0, 1}

    def test_generate_disabled_is_deterministic(self, rng2):
        for seed in range(5):
            assert rng2.generate(random.Random(seed), enable=0) == (0, 0)

    def test_generate_bits_exact_count(self, rng2):
        stream = rng2.generate_bits(17, random.Random(1))
        assert len(stream) == 17

    def test_stream_is_balanced(self, rng2):
        stream = rng2.generate_bits(4000, random.Random(123))
        ones = sum(stream)
        assert 1800 < ones < 2200  # ~10 sigma window around 2000

    def test_repr(self, rng2):
        assert "n_random=2" in repr(rng2)
