"""Unit tests for gate matrices and value states (repro.linalg.constants).

These check the *printed matrices* of Section 2 and their identities.
"""

import pytest

from repro.errors import InvalidGateError
from repro.linalg.constants import (
    I2,
    V,
    VDAG,
    X,
    cnot_matrix,
    controlled,
    pattern_state,
    single_qubit,
    value_state,
)
from repro.linalg.dyadic import DyadicComplex
from repro.linalg.matrix import Matrix
from repro.mvl.patterns import Pattern
from repro.mvl.values import Qv


class TestElementaryMatrices:
    def test_v_entries_match_paper(self):
        p = DyadicComplex.half(1, 1)
        m = DyadicComplex.half(1, -1)
        assert V == Matrix([[p, m], [m, p]])

    def test_vdag_is_hermitian_adjoint_of_v(self):
        assert VDAG == V.dagger()

    def test_v_squared_is_not(self):
        assert V @ V == X

    def test_vdag_squared_is_not(self):
        assert VDAG @ VDAG == X

    def test_v_vdag_is_identity(self):
        assert (V @ VDAG).is_identity()
        assert (VDAG @ V).is_identity()

    def test_all_unitary(self):
        for m in (I2, X, V, VDAG):
            assert m.is_unitary()


class TestValueStates:
    def test_binary_states(self):
        assert value_state(Qv.ZERO) == Matrix.basis_state(0, 2)
        assert value_state(Qv.ONE) == Matrix.basis_state(1, 2)

    def test_v0_is_v_applied_to_zero(self):
        assert value_state(Qv.V0) == V @ value_state(Qv.ZERO)

    def test_v1_is_v_applied_to_one(self):
        assert value_state(Qv.V1) == V @ value_state(Qv.ONE)

    def test_paper_identity_v0_equals_vdag_one(self):
        assert value_state(Qv.V0) == VDAG @ value_state(Qv.ONE)

    def test_paper_identity_v1_equals_vdag_zero(self):
        assert value_state(Qv.V1) == VDAG @ value_state(Qv.ZERO)

    def test_v_on_v1_gives_exact_zero_state(self):
        # V(V1) = 0 with no global phase -- the key exactness property.
        assert V @ value_state(Qv.V1) == value_state(Qv.ZERO)

    def test_v_on_v0_gives_exact_one_state(self):
        assert V @ value_state(Qv.V0) == value_state(Qv.ONE)

    def test_states_normalized(self):
        for v in Qv:
            state = value_state(v)
            norm = (state.dagger() @ state)[0, 0]
            assert norm == DyadicComplex(1)


class TestPatternState:
    def test_binary_pattern_is_basis_state(self):
        assert pattern_state(Pattern([1, 0, 1])) == Matrix.basis_state(5, 8)

    def test_mixed_pattern_product(self):
        state = pattern_state(Pattern([1, Qv.V0]))
        expected = value_state(Qv.ONE).kron(value_state(Qv.V0))
        assert state == expected


class TestControlled:
    def test_cnot_on_two_qubits_is_standard(self):
        # control wire 0, target wire 1 -> the textbook CNOT matrix.
        cnot = cnot_matrix(1, 0, 2)
        assert cnot == Matrix(
            [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]]
        )

    def test_reversed_cnot(self):
        cnot = cnot_matrix(0, 1, 2)
        assert cnot.permutation_images() == (0, 3, 2, 1)

    def test_controlled_v_blocks(self):
        cv = controlled(V, 1, 0, 2)
        # Control=0 subspace untouched.
        assert cv[0, 0] == DyadicComplex(1)
        assert cv[1, 1] == DyadicComplex(1)
        # Control=1 subspace carries V.
        assert cv[2, 2] == V[0, 0]
        assert cv[3, 2] == V[1, 0]

    def test_controlled_is_unitary(self):
        for target, control in ((0, 1), (1, 0), (2, 0)):
            assert controlled(V, target, control, 3).is_unitary()

    def test_control_equals_target_rejected(self):
        with pytest.raises(InvalidGateError):
            controlled(V, 1, 1, 2)

    def test_wire_out_of_range_rejected(self):
        with pytest.raises(InvalidGateError):
            controlled(V, 0, 2, 2)

    def test_controlled_v_squared_is_cnot(self):
        cv = controlled(V, 1, 0, 3)
        assert cv @ cv == cnot_matrix(1, 0, 3)


class TestSingleQubit:
    def test_not_on_middle_wire(self):
        u = single_qubit(X, 1, 3)
        # |010> -> |000>: basis 2 -> 0.
        assert u.permutation_images()[2] == 0

    def test_wire_out_of_range(self):
        with pytest.raises(InvalidGateError):
            single_qubit(X, 3, 3)

    def test_identity_embedding(self):
        assert single_qubit(I2, 1, 2).is_identity()
