"""Property-based tests: the dyadic Gaussian ring (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.dyadic import DyadicComplex

dyadics = st.builds(
    DyadicComplex,
    st.integers(min_value=-1000, max_value=1000),
    st.integers(min_value=-1000, max_value=1000),
    st.integers(min_value=0, max_value=12),
)


class TestRingAxioms:
    @given(dyadics, dyadics, dyadics)
    def test_addition_associative(self, a, b, c):
        assert (a + b) + c == a + (b + c)

    @given(dyadics, dyadics)
    def test_addition_commutative(self, a, b):
        assert a + b == b + a

    @given(dyadics, dyadics, dyadics)
    def test_multiplication_associative(self, a, b, c):
        assert (a * b) * c == a * (b * c)

    @given(dyadics, dyadics)
    def test_multiplication_commutative(self, a, b):
        assert a * b == b * a

    @given(dyadics, dyadics, dyadics)
    def test_distributivity(self, a, b, c):
        assert a * (b + c) == a * b + a * c

    @given(dyadics)
    def test_additive_inverse(self, a):
        assert a + (-a) == DyadicComplex(0)

    @given(dyadics)
    def test_multiplicative_identity(self, a):
        assert a * DyadicComplex(1) == a

    @given(dyadics)
    def test_zero_annihilates(self, a):
        assert a * DyadicComplex(0) == DyadicComplex(0)


class TestNormalizationInvariants:
    @given(dyadics)
    def test_normal_form(self, a):
        # Either exponent is 0, or at least one numerator is odd.
        assert a.exponent == 0 or (
            a.real_numerator % 2 or a.imag_numerator % 2
        )

    @given(dyadics, dyadics)
    def test_equality_consistent_with_hash(self, a, b):
        if a == b:
            assert hash(a) == hash(b)

    @given(dyadics)
    def test_halve_doubles_back(self, a):
        assert a.halve() + a.halve() == a


class TestConjugation:
    @given(dyadics, dyadics)
    def test_conjugate_distributes_over_product(self, a, b):
        assert (a * b).conjugate() == a.conjugate() * b.conjugate()

    @given(dyadics, dyadics)
    def test_conjugate_distributes_over_sum(self, a, b):
        assert (a + b).conjugate() == a.conjugate() + b.conjugate()

    @given(dyadics)
    def test_abs_squared_nonnegative_real(self, a):
        sq = a.abs_squared()
        assert sq.is_real
        assert sq.real_numerator >= 0


class TestFloatAgreement:
    @settings(max_examples=50)
    @given(dyadics, dyadics)
    def test_complex_arithmetic_agrees(self, a, b):
        # Exact ops must agree with float complex within float precision.
        assert abs((a * b).to_complex() - a.to_complex() * b.to_complex()) < 1e-6
        assert abs((a + b).to_complex() - (a.to_complex() + b.to_complex())) < 1e-9
