"""Machine-checkable forms of the paper's Theorems 1-3 and group facts.

These functions are used by the test-suite and benchmarks to *verify*
(not assume) the structural claims of Section 3:

* Theorem 1: G[k] really contains exactly the minimal-cost-k circuits
  (spot-checked by re-synthesis in the tests).
* Theorem 2: H = union of a*G over the NOT group N, disjointly; for
  n = 3, |G| = 5040 and |H| = |S8| = 40320.
* The generator fact: G = <F_AB, F_BA, F_BC, F_CB, Peres_AB>.
"""

from __future__ import annotations

from repro.core.circuit import Circuit
from repro.core.cost import CostModel, UNIT_COST
from repro.gates.gate import Gate
from repro.gates import named
from repro.perm.group import PermutationGroup
from repro.perm.named_groups import coset_decomposition, symmetric_group
from repro.perm.permutation import Permutation


def not_layer_circuit(mask: int, n_qubits: int = 3) -> Circuit:
    """The circuit of NOT gates whose pattern action XORs *mask*."""
    gates = []
    for wire in range(n_qubits):
        if (mask >> (n_qubits - 1 - wire)) & 1:
            gates.append(Gate.not_(wire, n_qubits))
    return Circuit(gates, n_qubits) if gates else Circuit.empty(n_qubits)


def stabilizer_group(n_qubits: int = 3) -> PermutationGroup:
    """G as an abstract group: the stabilizer of the all-zero pattern.

    For n = 3 its order is 5040 = 7! = |S8| / 8.
    """
    return symmetric_group(2**n_qubits).stabilizer(0)


def paper_generator_group(n_qubits: int = 3) -> PermutationGroup:
    """The paper's generating set for G: four Feynman gates plus Peres.

    Section 3 states G = <F_AB, F_BA, F_BC, F_CB, Pe_AB> with |G| = 5040.
    (Peres here is the canonical gate of Figure 4, acting on the binary
    patterns.)
    """
    if n_qubits != 3:
        raise ValueError("the paper's generator fact is specific to 3 qubits")
    generators = [
        named.cnot_target(0, 1),  # F_AB: A ^= B
        named.cnot_target(1, 0),  # F_BA: B ^= A
        named.cnot_target(1, 2),  # F_BC: B ^= C
        named.cnot_target(2, 1),  # F_CB: C ^= B
        named.PERES,
    ]
    return PermutationGroup(generators, degree=8)


def universality_group(extra: Permutation, n_qubits: int = 3) -> PermutationGroup:
    """<extra, NOT layers, all Feynman gates> on the binary patterns.

    The paper's universality criterion for the 24 control-using G[4]
    circuits: this group equals the full symmetric group (order 40320
    for n = 3).
    """
    generators: list[Permutation] = [extra]
    generators.extend(
        named.not_layer_permutation(1 << i, n_qubits) for i in range(n_qubits)
    )
    for target in range(n_qubits):
        for control in range(n_qubits):
            if target != control:
                generators.append(named.cnot_target(target, control, n_qubits))
    return PermutationGroup(generators, degree=2**n_qubits)


def verify_theorem2(n_qubits: int = 3) -> dict[str, int]:
    """Machine-check Theorem 2 for small n.

    Materializes the cosets a*G for every NOT layer a and verifies they
    are disjoint and cover the full symmetric group H on binary patterns.

    Returns:
        Summary dict with the orders involved (raises on any violation).
    """
    g_group = stabilizer_group(n_qubits)
    n_layers = named.not_group(n_qubits)
    cosets = coset_decomposition(g_group, n_layers)
    covered = set()
    for coset in cosets.values():
        covered.update(coset)
    h_order = symmetric_group(2**n_qubits).order()
    if len(covered) != h_order:
        raise AssertionError(
            f"cosets cover {len(covered)} elements, expected {h_order}"
        )
    return {
        "n_qubits": n_qubits,
        "g_order": g_group.order(),
        "h_order": h_order,
        "n_cosets": len(cosets),
        "coset_size": len(next(iter(cosets.values()))),
    }


def coset_cost_is_invariant(
    table, sample_stride: int = 7
) -> bool:
    """Check the |S8[k]| = 2**n |G[k]| corollary on concrete elements.

    For a sample of g in G[k] and every NOT layer a, the product a*g must
    be a *distinct* element of the symmetric group, and the 2**n * |G[k]|
    products per level must all differ -- which is what justifies the
    second row of Table 2.  (Cost invariance itself follows from d0 being
    free and invertible.)
    """
    n_layers = named.not_group(table.n_qubits)
    seen: set[bytes] = set()
    for members in table.classes:
        for index, g in enumerate(members):
            if index % sample_stride and len(members) > sample_stride:
                continue
            for a in n_layers:
                product = (a * g).images
                if product in seen:
                    return False
                seen.add(product)
    return True


def verify_theorem1_consistency(table, library, search=None) -> bool:
    """Cross-check that G[k] levels are disjoint and exhaustive per level.

    Every restricted permutation appearing at level k must not appear in
    any earlier G[j] (guaranteed by construction; this re-verifies from
    the raw classes, catching bookkeeping regressions).
    """
    seen: set[bytes] = set()
    for members in table.classes:
        for perm in members:
            if perm.images in seen:
                return False
            seen.add(perm.images)
    return True
