"""E4/E5 -- Section 5 and Figures 4-7: the G[4] universal-gate family.

Regenerates the decomposition |G[4]| = 60 Feynman-only + 24
control-using circuits, the universality of all 24 (each generates S8
together with NOT and Feynman gates, |S8| = 40320), the four orbits of
six under qubit relabeling, and the printed cascades of g1..g4.
"""

from repro.core.circuit import Circuit
from repro.core.fmcf import find_minimum_cost_circuits
from repro.core.universality import analyze_g4, match_paper_representatives
from repro.gates import named

FIGURE_CASCADES = {
    "g1": ("V_CB F_BA V_CA V+_CB", named.PERES),
    "g2": ("V+_BC F_CA V_BA V_BC", named.G2),
    "g3": ("V_CB F_BA V+_CA V_CB", named.G3),
    "g4": ("V_CB F_BA V_CA V_CB", named.G4),
}


def test_g4_analysis(benchmark, library3):
    table = find_minimum_cost_circuits(library3, cost_bound=4)

    analysis = benchmark.pedantic(
        lambda: analyze_g4(table), rounds=3, iterations=1
    )
    assert len(analysis.feynman_only) == 60
    assert len(analysis.control_using) == 24
    assert len(analysis.universal) == 24
    assert [len(orbit) for orbit in analysis.orbits] == [6, 6, 6, 6]

    mapping = match_paper_representatives(analysis)
    assert len(set(mapping.values())) == 4
    print(
        f"\n|G[4]| = 84 = {len(analysis.feynman_only)} Feynman-only + "
        f"{len(analysis.control_using)} control-using (all universal)"
    )
    for name, index in sorted(mapping.items()):
        rep = analysis.orbits[index][0]
        print(f"  {name}: orbit {index}, representative {rep.cycle_string()}")


def test_universality_of_the_24(benchmark, library3):
    """Each control-using member generates S8 with NOT + Feynman."""
    from repro.core.universality import is_universal

    table = find_minimum_cost_circuits(library3, cost_bound=4)
    members = analyze_g4(table).control_using

    def check_all():
        return [is_universal(member) for member in members]

    verdicts = benchmark.pedantic(check_all, rounds=3, iterations=1)
    assert all(verdicts) and len(verdicts) == 24


def test_figure_cascades_for_g1_to_g4(benchmark):
    def check():
        out = {}
        for name, (cascade, target) in FIGURE_CASCADES.items():
            circuit = Circuit.from_names(cascade, 3)
            out[name] = (
                circuit.binary_permutation() == target
                and circuit.cost() == 4
                and circuit.is_reasonable()
            )
        return out

    verdicts = benchmark(check)
    assert all(verdicts.values()), verdicts
