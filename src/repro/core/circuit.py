"""Quantum circuits: immutable cascades of placed gates.

A :class:`Circuit` is an ordered cascade ``g1; g2; ...; gk`` applied left
to right -- the same order as the paper's permutation products
(``g1 * g2 * ... * gk``).  Circuits carry all three semantics:

* quaternary pattern semantics (with or without don't-care tolerance),
* label-permutation semantics on a :class:`~repro.mvl.labels.LabelSpace`,
* exact unitary semantics on the full Hilbert space.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro.errors import (
    InvalidCircuitError,
    InvalidGateError,
    NonBinaryControlError,
)
from repro.core.cost import CostModel, UNIT_COST
from repro.gates.gate import Gate
from repro.gates.kinds import GateKind
from repro.linalg.matrix import Matrix
from repro.mvl.labels import LabelSpace, label_space
from repro.mvl.patterns import Pattern, binary_patterns
from repro.perm.permutation import Permutation


class Circuit:
    """An immutable cascade of gates on a fixed register width."""

    __slots__ = ("_gates", "_n_qubits")

    def __init__(self, gates: Iterable[Gate], n_qubits: int | None = None):
        gate_tuple = tuple(gates)
        if n_qubits is None:
            if not gate_tuple:
                raise InvalidGateError("empty circuit needs an explicit n_qubits")
            n_qubits = gate_tuple[0].n_qubits
        if n_qubits < 1:
            raise InvalidGateError(f"bad register width {n_qubits}")
        if any(g.n_qubits != n_qubits for g in gate_tuple):
            raise InvalidGateError("all gates must share the circuit width")
        self._gates = gate_tuple
        self._n_qubits = n_qubits

    # -- constructors --------------------------------------------------------

    @classmethod
    def empty(cls, n_qubits: int) -> "Circuit":
        """The identity circuit."""
        return cls((), n_qubits)

    @classmethod
    def from_names(cls, names: str | Sequence[str], n_qubits: int) -> "Circuit":
        """Parse ``"V_CB F_BA V_CA V+_CB"`` (space- or ``*``-separated).

        This is the notation the paper uses for its figures, e.g. the
        Peres realization ``VCB*FBA*VCA*V+CB``.
        """
        if isinstance(names, str):
            names = names.replace("*", " ").split()
        return cls((Gate.from_name(n, n_qubits) for n in names), n_qubits)

    # -- container protocol ----------------------------------------------------

    @property
    def gates(self) -> tuple[Gate, ...]:
        return self._gates

    @property
    def n_qubits(self) -> int:
        return self._n_qubits

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Circuit(self._gates[index], self._n_qubits)
        return self._gates[index]

    def __add__(self, other: "Circuit") -> "Circuit":
        if not isinstance(other, Circuit):
            return NotImplemented
        if other.n_qubits != self._n_qubits:
            raise InvalidGateError("cannot concatenate circuits of different width")
        return Circuit(self._gates + other._gates, self._n_qubits)

    def appended(self, gate: Gate) -> "Circuit":
        """A new circuit with *gate* cascaded at the end."""
        if gate.n_qubits != self._n_qubits:
            raise InvalidGateError("gate width does not match circuit")
        return Circuit(self._gates + (gate,), self._n_qubits)

    # -- structural transforms ----------------------------------------------------

    def dagger(self) -> "Circuit":
        """The Hermitian adjoint: reversed order, each gate adjointed.

        The paper's Figures 8/9 pairs -- "swapping all control-V and
        control-V+ gates" of a *palindromic-order* implementation -- are
        instances of this when the target is self-inverse.
        """
        return Circuit(
            tuple(g.dagger() for g in reversed(self._gates)), self._n_qubits
        )

    def adjoint_swapped(self) -> "Circuit":
        """Swap every V gate with V+ *in place* (no order reversal).

        This is literally the paper's transformation between Figure 4 and
        Figure 8 ("swapping all control-V and control-V+ gates").  For
        implementations of self-inverse targets it produces the second
        member of each Hermitian-adjoint pair.
        """
        return Circuit(
            tuple(
                Gate(g.kind.adjoint_kind, g.target, g.control, g.n_qubits)
                for g in self._gates
            ),
            self._n_qubits,
        )

    def relabeled(self, wire_map: dict[int, int]) -> "Circuit":
        """Move the whole cascade to relabeled wires."""
        return Circuit(
            tuple(g.relabeled(wire_map) for g in self._gates), self._n_qubits
        )

    # -- cost -------------------------------------------------------------------

    def cost(self, model: CostModel = UNIT_COST) -> int:
        """Total quantum cost under a cost model (default: paper's unit cost)."""
        return sum(model.gate_cost(g.kind) for g in self._gates)

    @property
    def two_qubit_count(self) -> int:
        """Number of 2-qubit gates (the paper's quantum cost)."""
        return sum(1 for g in self._gates if g.kind.is_two_qubit)

    @property
    def not_count(self) -> int:
        return sum(1 for g in self._gates if g.kind is GateKind.NOT)

    # -- quaternary semantics ------------------------------------------------------

    def apply(self, pattern: Pattern) -> Pattern:
        """Cascade the pattern through all gates (don't-care tolerant)."""
        for gate in self._gates:
            pattern = gate.apply(pattern)
        return pattern

    def strict_apply(self, pattern: Pattern) -> Pattern:
        """Cascade, refusing any don't-care step.

        Raises:
            NonBinaryControlError: if any gate sees a non-binary value on
                a constrained wire -- i.e. the cascade is not *reasonable*
                for this input in the sense of Definition 1.
        """
        for gate in self._gates:
            pattern = gate.strict_apply(pattern)
        return pattern

    def is_reasonable(self) -> bool:
        """Definition 1 check over all pure binary inputs.

        True iff no gate ever sees a non-binary constrained wire when the
        circuit is driven with every binary input pattern.  Such cascades
        are exactly those FMCF enumerates, and for them the quaternary and
        unitary semantics agree on binary inputs.
        """
        try:
            for pattern in binary_patterns(self._n_qubits):
                self.strict_apply(pattern)
        except NonBinaryControlError:
            return False
        return True

    def output_patterns(self) -> tuple[Pattern, ...]:
        """Strict outputs for all binary inputs, in input order."""
        return tuple(
            self.strict_apply(p) for p in binary_patterns(self._n_qubits)
        )

    # -- permutation semantics --------------------------------------------------------

    def permutation(self, space: LabelSpace | None = None) -> Permutation:
        """The label permutation of the cascade.

        NOT gates do not preserve the *reduced* space (they can erase the
        last pure 1), so circuits containing NOT require ``reduced=False``
        spaces -- or use :meth:`binary_permutation` which handles NOT via
        the full quaternary semantics on binary inputs.
        """
        if space is None:
            space = label_space(self._n_qubits, reduced=True)
        if any(g.kind is GateKind.NOT for g in self._gates) and space.reduced:
            raise InvalidCircuitError(
                "NOT gates do not act on the reduced label space; pass a "
                "full LabelSpace or use binary_permutation()"
            )
        perm = Permutation.identity(space.size)
        for gate in self._gates:
            perm = perm * gate.permutation(space)
        return perm

    def binary_permutation(self, strict: bool = True) -> Permutation:
        """The induced permutation of the 2**n binary patterns.

        Args:
            strict: verify the cascade is reasonable and the outputs are
                pure binary (raises otherwise).  With ``strict=False`` the
                don't-care semantics are used, mirroring FMCF's internal
                convention.

        Raises:
            NonBinaryControlError: (strict) some gate hit a don't-care.
            InvalidCircuitError: outputs are not all binary -- the circuit
                is probabilistic, not reversible.
        """
        apply = self.strict_apply if strict else self.apply
        images = []
        for pattern in binary_patterns(self._n_qubits):
            out = apply(pattern)
            if not out.is_binary:
                raise InvalidCircuitError(
                    f"input {pattern} produces mixed output {out}; "
                    "the circuit is probabilistic (see express_probabilistic)"
                )
            images.append(out.binary_index())
        return Permutation.from_images(images)

    # -- unitary semantics ----------------------------------------------------------------

    def unitary(self) -> Matrix:
        """The exact 2**n x 2**n unitary of the cascade."""
        dim = 2**self._n_qubits
        result = Matrix.identity(dim)
        for gate in self._gates:
            # Cascade order: later gates multiply on the left.
            result = gate.unitary @ result
        return result

    # -- formatting ----------------------------------------------------------------------

    def names(self) -> tuple[str, ...]:
        return tuple(g.name for g in self._gates)

    def __str__(self) -> str:
        if not self._gates:
            return "(identity circuit)"
        return " * ".join(self.names())

    def __repr__(self) -> str:
        return f"Circuit.from_names({' '.join(self.names())!r}, {self._n_qubits})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Circuit):
            return NotImplemented
        return self._n_qubits == other._n_qubits and self._gates == other._gates

    def __hash__(self) -> int:
        return hash((self._n_qubits, self._gates))
