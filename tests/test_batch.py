"""Equivalence tests: BatchSynthesizer vs single-target MCE.

The batch engine answers from a precomputed remainder index; these tests
pin it to the reference implementation (:func:`express` /
:func:`express_all` / :func:`find_minimum_cost_circuits`) on randomized
targets, so the index can never drift from the level-scan semantics.
"""

import random

import pytest

from repro.errors import (
    CostBoundExceededError,
    SpecificationError,
)
from repro.core.batch import BatchSynthesizer
from repro.core.mce import express, express_all
from repro.core.search import CascadeSearch
from repro.gates import named
from repro.perm.permutation import Permutation


def _random_targets(count: int, seed: int) -> list[Permutation]:
    rnd = random.Random(seed)
    targets = []
    for _ in range(count):
        images = list(range(8))
        rnd.shuffle(images)
        targets.append(Permutation.from_images(images))
    return targets


class TestSingleTargetEquivalence:
    def test_randomized_targets_match_express(self, batch3, library3, search3):
        checked = 0
        for target in _random_targets(40, seed=1205):
            try:
                reference = express(target, library3, search=search3)
            except CostBoundExceededError:
                with pytest.raises(CostBoundExceededError):
                    batch3.synthesize(target)
                continue
            result = batch3.synthesize(target)
            assert result.cost == reference.cost
            assert result.not_mask == reference.not_mask
            assert result.circuit.gates == reference.circuit.gates
            assert result.circuit.binary_permutation() == target
            checked += 1
        assert checked >= 5  # the sample must actually exercise synthesis

    def test_named_targets_match_express_all(self, batch3, library3, search3):
        for name, target in named.TARGETS.items():
            reference = express_all(target, library3, search=search3)
            results = batch3.synthesize_all(target)
            assert [r.circuit.gates for r in results] == [
                r.circuit.gates for r in reference
            ], name

    def test_minimal_cost_matches(self, batch3, library3, search3):
        for target in _random_targets(20, seed=7):
            try:
                expected = express(target, library3, search=search3).cost
            except CostBoundExceededError:
                with pytest.raises(CostBoundExceededError):
                    batch3.minimal_cost(target)
                continue
            assert batch3.minimal_cost(target) == expected

    def test_verified_permutation_for_every_result(self, batch3):
        from repro.sim.verify import verify_synthesis

        for target in _random_targets(10, seed=42):
            try:
                result = batch3.synthesize(target)
            except CostBoundExceededError:
                continue
            assert verify_synthesis(result)

    def test_allow_not_false_matches(self, batch3, library3, search3):
        zero_fixing = named.TARGETS["toffoli"]
        reference = express(
            zero_fixing, library3, search=search3, allow_not=False
        )
        result = batch3.synthesize(zero_fixing, allow_not=False)
        assert result.circuit.gates == reference.circuit.gates
        moving = named.not_layer_permutation(5) * named.TARGETS["toffoli"]
        assert moving.inverse()(0) != 0
        with pytest.raises(SpecificationError):
            batch3.synthesize(moving, allow_not=False)

    def test_not_layer_targets_cost_zero(self, batch3):
        for mask in range(8):
            target = named.not_layer_permutation(mask)
            result = batch3.synthesize(target)
            assert result.cost == 0
            assert result.not_mask == mask
            assert result.circuit.binary_permutation() == target


class TestBatchModes:
    def test_synthesize_many_preserves_order(self, batch3):
        targets = [named.TARGETS[k] for k in ("peres", "toffoli", "swap_ab")]
        results = batch3.synthesize_many(targets)
        assert [r.target for r in results] == targets
        assert [r.cost for r in results] == [4, 5, 3]

    def test_targets_at_cost_matches_fmcf_classes(self, batch3, cost_table7):
        for cost in range(8):
            members = batch3.targets_at_cost(cost)
            assert sorted(p.images for p in members) == sorted(
                p.images for p in cost_table7.members(cost)
            )

    def test_not_layer_expansion_is_eightfold(self, batch3, cost_table7):
        coset = batch3.targets_at_cost(2, include_not_layers=True)
        assert len(coset) == 8 * len(cost_table7.members(2))
        assert len({p.images for p in coset}) == len(coset)

    def test_synthesize_level_is_exact(self, batch3):
        for result in batch3.synthesize_level(2):
            assert result.cost == 2
            assert result.circuit.binary_permutation() == result.target

    def test_synthesize_level_with_not_layers(self, batch3):
        results = batch3.synthesize_level(1, include_not_layers=True)
        assert len(results) == 48  # |S8[1]| = 8 * |G[1]|
        for result in results:
            assert result.cost == 1
            assert result.circuit.binary_permutation() == result.target

    def test_cost_table_equals_fmcf(self, batch3, cost_table7):
        table = batch3.cost_table()
        assert table.g_sizes == cost_table7.g_sizes
        assert table.b_sizes == cost_table7.b_sizes
        assert table.a_sizes == cost_table7.a_sizes
        for k in range(8):
            assert {p.images for p in table.members(k)} == {
                p.images for p in cost_table7.members(k)
            }

    def test_truncated_cost_table(self, batch3, cost_table5):
        table = batch3.cost_table(cost_bound=5)
        assert table.g_sizes == cost_table5.g_sizes


class TestBounds:
    def test_bounded_index_raises_beyond_bound(self, library3):
        search = CascadeSearch(library3, track_parents=True)
        batch = BatchSynthesizer(search, cost_bound=3)
        assert batch.cost_bound == 3
        with pytest.raises(CostBoundExceededError):
            batch.synthesize(named.TARGETS["toffoli"])  # cost 5

    def test_level_outside_index_is_an_error(self, batch3):
        with pytest.raises(SpecificationError):
            batch3.targets_at_cost(8)
        with pytest.raises(SpecificationError):
            batch3.cost_table(cost_bound=9)

    def test_fresh_search_defaults_to_paper_bound(self, library3):
        batch = BatchSynthesizer(CascadeSearch(library3, track_parents=True))
        assert batch.cost_bound == 7
