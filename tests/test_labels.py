"""Unit tests for label spaces (repro.mvl.labels) against Section 3."""

import pytest

from repro.errors import InvalidPermutationError, InvalidValueError
from repro.mvl.labels import LabelSpace, label_space
from repro.mvl.patterns import Pattern
from repro.mvl.values import Qv


class TestSizes:
    def test_reduced_three_qubit_space_has_38_labels(self):
        assert label_space(3).size == 38

    def test_full_three_qubit_space_has_64_labels(self):
        assert label_space(3, reduced=False).size == 64

    def test_full_two_qubit_space_has_16_labels(self):
        assert label_space(2, reduced=False).size == 16

    def test_reduced_two_qubit_space_has_8_labels(self):
        assert label_space(2).size == 8

    def test_reduced_four_qubit_space_size(self):
        # 4**4 - 3**4 + 1 = 176.
        assert label_space(4).size == 176

    def test_len_matches_size(self, space3):
        assert len(space3) == space3.size

    def test_zero_qubits_rejected(self):
        with pytest.raises(InvalidValueError):
            LabelSpace(0)


class TestOrdering:
    def test_binary_patterns_come_first_ascending(self, space3):
        for index in range(8):
            pattern = space3.pattern(index)
            assert pattern.is_binary
            assert pattern.binary_index() == index

    def test_paper_label_examples(self, space3):
        # Spot-check the labels used in the paper's printed permutations.
        assert space3.label(Pattern([1, 0, 0])) + 1 == 5
        assert space3.label(Pattern([1, Qv.V0, 0])) + 1 == 17
        assert space3.label(Pattern([0, 1, 0])) + 1 == 3
        assert space3.label(Pattern([Qv.V1, 1, 0])) + 1 == 33
        assert space3.label(Pattern([Qv.V0, 1, 0])) + 1 == 26
        assert space3.label(Pattern([Qv.V1, Qv.V1, 1])) + 1 == 38

    def test_mixed_patterns_ascending_after_binary(self, space3):
        mixed = space3.patterns[8:]
        assert list(mixed) == sorted(mixed)

    def test_table1_row_order_two_qubits(self, space2_full):
        # Paper Table 1 rows 5..8: (0,V0), (0,V1), (1,V0), (1,V1) --
        # shared by both orderings.
        assert space2_full.pattern(4) == Pattern([0, Qv.V0])
        assert space2_full.pattern(5) == Pattern([0, Qv.V1])
        assert space2_full.pattern(6) == Pattern([1, Qv.V0])
        assert space2_full.pattern(7) == Pattern([1, Qv.V1])

    def test_table1_grouped_ordering_matches_paper_rows(self):
        # The paper's Table 1 sorts rows 9..16 by which wire is mixed.
        space = label_space(2, reduced=False, ordering="grouped")
        expected_tail = [
            Pattern([Qv.V0, 0]),
            Pattern([Qv.V0, 1]),
            Pattern([Qv.V1, 0]),
            Pattern([Qv.V1, 1]),
            Pattern([Qv.V0, Qv.V0]),
            Pattern([Qv.V0, Qv.V1]),
            Pattern([Qv.V1, Qv.V0]),
            Pattern([Qv.V1, Qv.V1]),
        ]
        assert list(space.patterns[8:]) == expected_tail

    def test_both_orderings_give_same_ctrl_v_permutation(self):
        from repro.gates.gate import Gate

        gate = Gate.v(1, 0, 2)
        for ordering in ("value", "grouped"):
            space = label_space(2, reduced=False, ordering=ordering)
            perm = gate.permutation(space)
            assert perm.cycle_string() == "(3,7,4,8)"

    def test_unknown_ordering_rejected(self):
        with pytest.raises(InvalidValueError):
            LabelSpace(2, ordering="weird")


class TestLookups:
    def test_label_pattern_roundtrip(self, space3):
        for label in range(space3.size):
            assert space3.label(space3.pattern(label)) == label

    def test_label_of_excluded_pattern_raises(self, space3):
        with pytest.raises(InvalidValueError):
            space3.label(Pattern([0, Qv.V0, 0]))

    def test_pattern_out_of_range_raises(self, space3):
        with pytest.raises(InvalidValueError):
            space3.pattern(38)

    def test_contains(self, space3):
        assert Pattern([1, 1, 1]) in space3
        assert Pattern([Qv.V0, 0, 0]) not in space3

    def test_paper_label_conversion(self):
        assert LabelSpace.paper_label(0) == 1
        assert LabelSpace.paper_label(37) == 38


class TestBinarySubdomain:
    def test_binary_labels(self, space3):
        assert list(space3.binary_labels) == list(range(8))

    def test_s_mask(self, space3):
        assert space3.s_mask == 0xFF

    def test_n_binary(self, space3, space2_full):
        assert space3.n_binary == 8
        assert space2_full.n_binary == 4


class TestBannedSets:
    """The exact banned sets printed in Section 3."""

    def test_n_a(self, space3):
        assert space3.banned_labels([0]) == tuple(range(25, 39))

    def test_n_b(self, space3):
        assert space3.banned_labels([1]) == (
            11, 12, 17, 18, 19, 20, 21, 22, 23, 24, 30, 31, 37, 38,
        )

    def test_n_c(self, space3):
        assert space3.banned_labels([2]) == (
            9, 10, 13, 14, 15, 16, 19, 20, 23, 24, 28, 29, 35, 36,
        )

    def test_n_ab(self, space3):
        assert space3.banned_labels([0, 1]) == (
            11, 12, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29,
            30, 31, 32, 33, 34, 35, 36, 37, 38,
        )

    def test_n_ac(self, space3):
        assert space3.banned_labels([0, 2]) == (
            9, 10, 13, 14, 15, 16, 19, 20, 23, 24, 25, 26, 27, 28, 29,
            30, 31, 32, 33, 34, 35, 36, 37, 38,
        )

    def test_n_bc(self, space3):
        assert space3.banned_labels([1, 2]) == (
            9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23,
            24, 28, 29, 30, 31, 35, 36, 37, 38,
        )

    def test_banned_mask_matches_banned_labels(self, space3):
        for wires in ([0], [1], [2], [0, 1], [0, 2], [1, 2]):
            mask = space3.banned_mask(wires)
            labels = space3.banned_labels(wires)
            assert labels == tuple(
                i + 1 for i in range(space3.size) if (mask >> i) & 1
            )

    def test_banned_mask_never_touches_binary_labels(self, space3):
        for wires in ([0], [1], [2], [0, 1], [0, 2], [1, 2]):
            assert space3.banned_mask(wires) & space3.s_mask == 0

    def test_bad_wire_raises(self, space3):
        with pytest.raises(InvalidValueError):
            space3.banned_mask([3])


class TestImagesFromMap:
    def test_identity_map(self, space3):
        images = space3.images_from_map(lambda p: p)
        assert images == tuple(range(space3.size))

    def test_map_out_of_space_raises(self, space3):
        def escape(pattern):
            if pattern == Pattern([0, 0, 0]):
                return Pattern([0, Qv.V0, 0])  # unpermutable
            return pattern

        with pytest.raises(InvalidPermutationError):
            space3.images_from_map(escape)

    def test_non_bijective_map_raises(self, space3):
        def collapse(pattern):
            return space3.pattern(0)

        with pytest.raises(InvalidPermutationError):
            space3.images_from_map(collapse)


class TestCaching:
    def test_label_space_is_cached(self):
        assert label_space(3) is label_space(3)
        assert label_space(3) is not label_space(3, reduced=False)

    def test_describe_labels(self, space3):
        text = space3.describe_labels([0, 4])
        assert "1:(0, 0, 0)" in text and "5:(1, 0, 0)" in text

    def test_repr(self, space3):
        assert "reduced" in repr(space3) and "38" in repr(space3)
