"""Unit tests for JSON persistence (repro.io)."""

import json

import pytest

from repro.errors import SpecificationError
from repro.core.circuit import Circuit
from repro.core.mce import express
from repro.gates import named
from repro.io import (
    circuit_from_dict,
    circuit_to_dict,
    load_result,
    result_to_dict,
    result_circuit_from_dict,
    save_result,
)


class TestCircuitRoundTrip:
    def test_roundtrip(self):
        circuit = Circuit.from_names("V_CB F_BA V_CA V+_CB", 3)
        assert circuit_from_dict(circuit_to_dict(circuit)) == circuit

    def test_with_not_gates(self):
        circuit = Circuit.from_names("N_A F_BA", 3)
        assert circuit_from_dict(circuit_to_dict(circuit)) == circuit

    def test_missing_keys(self):
        with pytest.raises(SpecificationError):
            circuit_from_dict({"gates": ["F_BA"]})

    def test_bad_gate_name(self):
        with pytest.raises(SpecificationError):
            circuit_from_dict({"n_qubits": 3, "gates": ["Q_XY"]})


class TestResultRoundTrip:
    def test_save_and_load(self, tmp_path, library3, search3):
        result = express(named.PERES, library3, search=search3)
        path = tmp_path / "peres.json"
        save_result(result, path)
        circuit, target = load_result(path)
        assert circuit == result.circuit
        assert target == named.PERES

    def test_record_fields(self, library3, search3):
        result = express(named.TOFFOLI, library3, search=search3)
        record = result_to_dict(result)
        assert record["cost"] == 5
        assert record["target"] == "(7,8)"
        assert record["not_mask"] == 0
        assert len(record["gates"]) == 5

    def test_tampered_target_rejected(self, library3, search3):
        result = express(named.PERES, library3, search=search3)
        record = result_to_dict(result)
        record["target"] = "(7,8)"  # lie: claim it's a Toffoli
        with pytest.raises(SpecificationError):
            result_circuit_from_dict(record)

    def test_tampered_cost_rejected(self, library3, search3):
        result = express(named.PERES, library3, search=search3)
        record = result_to_dict(result)
        record["cost"] = 3
        with pytest.raises(SpecificationError):
            result_circuit_from_dict(record)

    def test_probabilistic_circuit_rejected(self):
        record = {
            "n_qubits": 3,
            "gates": ["V_BA"],
            "target": "()",
            "cost": 1,
        }
        with pytest.raises(SpecificationError):
            result_circuit_from_dict(record)

    def test_file_is_valid_json(self, tmp_path, library3, search3):
        result = express(named.G3, library3, search=search3)
        path = tmp_path / "g3.json"
        save_result(result, path)
        data = json.loads(path.read_text())
        assert data["target"] == "(3,4)(5,7)(6,8)"

    def test_not_layer_result_roundtrip(self, tmp_path, library3, search3):
        target = named.not_layer_permutation(0b110) * named.PERES
        result = express(target, library3, search=search3)
        path = tmp_path / "shifted.json"
        save_result(result, path)
        circuit, loaded_target = load_result(path)
        assert loaded_target == target
        assert circuit.binary_permutation() == target


class TestBatchFiles:
    def test_parse_target_named_and_cycles(self):
        from repro.io import parse_target

        assert parse_target("toffoli") == named.TOFFOLI
        assert parse_target("  PERES ") == named.PERES
        assert parse_target("(5,7,6,8)") == named.PERES

    def test_load_targets_skips_blanks_and_comments(self, tmp_path):
        from repro.io import load_targets

        path = tmp_path / "targets.txt"
        path.write_text("# header\n\ntoffoli\n(7,8)  # trailing comment\n")
        pairs = load_targets(path)
        assert [spec for spec, _ in pairs] == ["toffoli", "(7,8)"]
        assert pairs[0][1] == named.TOFFOLI

    def test_load_targets_bad_line_reports_lineno(self, tmp_path):
        from repro.io import load_targets

        path = tmp_path / "targets.txt"
        path.write_text("toffoli\nnot-a-target\n")
        with pytest.raises(SpecificationError, match=":2:"):
            load_targets(path)

    def test_batch_results_roundtrip(self, tmp_path, library3, search3):
        from repro.io import load_batch_results, save_batch_results

        results = [
            express(named.TARGETS[k], library3, search=search3)
            for k in ("peres", "toffoli")
        ]
        path = tmp_path / "batch.json"
        save_batch_results(results, path)
        loaded = load_batch_results(path)
        assert len(loaded) == 2
        for (circuit, target), result in zip(loaded, results):
            assert target == result.target
            assert circuit.binary_permutation() == target

    def test_batch_results_must_be_a_list(self, tmp_path):
        from repro.io import load_batch_results

        path = tmp_path / "bad.json"
        path.write_text('{"not": "a list"}')
        with pytest.raises(SpecificationError):
            load_batch_results(path)
