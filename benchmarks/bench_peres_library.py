"""E12 -- the conclusion's claim: Peres libraries need fewer gates.

Paper, Section 6: "we demonstrated ... that the number of gates using
libraries with Peres gates is smaller than using other libraries for all
3-qubit circuits", and "not only is the Peres gate the cheapest of all
NMR realized permutative gates".  We quantify both statements by
exhaustive optimal synthesis of *all 40320* reversible 3-bit functions
over three libraries (Peres gates charged their true elementary cost 4,
Toffoli 5, CNOT 1, NOT free):

* NCT  (NOT/CNOT/Toffoli),
* NCTP (NCT + the 12 Peres placements),
* PNC  (Peres + NOT/CNOT, no Toffoli at all).
"""

from repro.baselines.permlib import (
    OptimalPermutativeSynthesizer,
    nct_library,
    nctp_library,
    pnc_library,
)
from repro.gates import named
from repro.render.tables import format_table

#: measured by this reproduction (exhaustive, deterministic)
EXPECTED = {
    "NCT": {"avg_gates": 5.8655, "worst_gates": 8, "avg_qcost": 11.9831},
    "NCTP": {"avg_gates": 4.4332, "worst_gates": 6, "avg_qcost": 9.0800},
    "PNC": {"avg_gates": 4.4875, "worst_gates": 6, "avg_qcost": 9.0800},
}


def test_gate_count_comparison(benchmark):
    libraries = [nct_library(), nctp_library(), pnc_library()]

    def analyze():
        out = {}
        for library in libraries:
            synth = OptimalPermutativeSynthesizer(library, "count")
            out[library.name] = (
                synth.reachable_count(),
                synth.average_cost(),
                synth.worst_case(),
                synth.cost_distribution(),
            )
        return out

    results = benchmark.pedantic(analyze, rounds=3, iterations=1)
    rows = []
    for name, (reach, avg, worst, dist) in results.items():
        assert reach == 40320  # every library is complete
        assert abs(avg - EXPECTED[name]["avg_gates"]) < 1e-3
        assert worst == EXPECTED[name]["worst_gates"]
        rows.append([name, reach, f"{avg:.4f}", worst, dist])
    print("\n" + format_table(
        ["library", "functions", "avg gates", "worst", "distribution"], rows
    ))
    # The headline claim: Peres libraries dominate NCT on gate count.
    assert results["NCTP"][1] < results["NCT"][1]
    assert results["NCTP"][2] < results["NCT"][2]


def test_quantum_cost_comparison(benchmark):
    libraries = [nct_library(), nctp_library()]

    def analyze():
        out = {}
        for library in libraries:
            synth = OptimalPermutativeSynthesizer(library, "quantum")
            out[library.name] = (synth.average_cost(), synth.worst_case())
        return out

    results = benchmark.pedantic(analyze, rounds=3, iterations=1)
    assert abs(results["NCT"][0] - EXPECTED["NCT"]["avg_qcost"]) < 1e-3
    assert abs(results["NCTP"][0] - EXPECTED["NCTP"]["avg_qcost"]) < 1e-3
    assert results["NCTP"][0] < results["NCT"][0]
    print(f"\naverage quantum cost: NCT={results['NCT'][0]:.4f} "
          f"NCTP={results['NCTP'][0]:.4f}")


def test_named_targets_quantum_costs(benchmark):
    """Per-target minimal quantum costs over the permutative libraries."""
    synth_nct = OptimalPermutativeSynthesizer(nct_library(), "quantum")
    synth_nctp = OptimalPermutativeSynthesizer(nctp_library(), "quantum")

    targets = {name: named.TARGETS[name]
               for name in ("toffoli", "peres", "fredkin", "g2", "g3", "g4")}

    def costs():
        return {
            name: (synth_nct.optimal_cost(t), synth_nctp.optimal_cost(t))
            for name, t in targets.items()
        }

    result = benchmark(costs)
    assert result["peres"] == (6, 4)     # NCTP prices Peres at its true 4
    assert result["toffoli"] == (5, 5)
    assert result["fredkin"] == (7, 7)
    rows = [[n, a, b] for n, (a, b) in result.items()]
    print("\n" + format_table(["target", "NCT qcost", "NCTP qcost"], rows))
