"""Reservoir-sampled latency percentiles for ``healthz`` back-pressure.

Flat counters (the PR-3 ``healthz`` shape) say *how many* queries ran
but not *how long* anything waited -- the number an operator actually
needs to see back-pressure building is the tail of the queue-wait
distribution.  Keeping every sample would grow without bound on a
long-lived server, so each ``(op, dimension)`` pair keeps a fixed-size
uniform **reservoir** (Vitter's algorithm R): the first ``capacity``
observations are stored verbatim, after which each new observation
replaces a random slot with probability ``capacity / seen``.  Any
moment's reservoir is a uniform sample of everything observed so far,
so the p50/p90/p99 read off it estimate the true lifetime percentiles
with O(capacity) memory and O(1) amortized update cost.

Percentiles use the same nearest-rank rule as
``benchmarks/bench_serve.py`` (``round(q * (n - 1))`` on the sorted
sample), so a benchmark's offline numbers and a live server's
``healthz`` are directly comparable.

Thread model: observations are only recorded from the event-loop
thread (the service records them after the worker future resolves), so
no locking is needed -- mirroring the service's counter discipline.
"""

from __future__ import annotations

import random

#: Default per-(op, dimension) reservoir size.  512 float samples keep
#: the p99 estimate stable (~5 samples above the 99th rank) at a few KB
#: per op.
DEFAULT_CAPACITY = 512

#: The quantiles ``healthz`` reports, with their payload field names.
QUANTILES = (("p50", 0.50), ("p90", 0.90), ("p99", 0.99))


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile of a non-empty sample list."""
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


class Reservoir:
    """Fixed-size uniform sample of an unbounded observation stream."""

    __slots__ = ("capacity", "_samples", "_seen", "_rng")

    def __init__(self, capacity: int = DEFAULT_CAPACITY, seed: int = 0):
        if capacity < 1:
            raise ValueError("reservoir capacity must be positive")
        self.capacity = capacity
        self._samples: list[float] = []
        self._seen = 0
        # Seeded so two servers given identical traffic report identical
        # percentiles (and tests stay deterministic).
        self._rng = random.Random(seed)

    @property
    def count(self) -> int:
        """Total observations ever recorded (not the sample size)."""
        return self._seen

    def observe(self, value: float) -> None:
        self._seen += 1
        if len(self._samples) < self.capacity:
            self._samples.append(value)
            return
        slot = self._rng.randrange(self._seen)
        if slot < self.capacity:
            self._samples[slot] = value

    def summary(self, scale: float = 1.0) -> dict | None:
        """``{count, p50, p90, p99}`` (values scaled), or None if empty."""
        if not self._samples:
            return None
        payload: dict = {"count": self._seen}
        for name, q in QUANTILES:
            payload[name] = round(percentile(self._samples, q) * scale, 4)
        return payload


class OpMetrics:
    """Queue-wait and total-latency reservoirs for one operation."""

    __slots__ = ("queue_wait", "latency")

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.queue_wait = Reservoir(capacity)
        self.latency = Reservoir(capacity)


class ServiceMetrics:
    """Per-op timing metrics behind the service's ``healthz`` payload.

    ``observe`` takes seconds; ``summary`` reports milliseconds (the
    unit every duration in the access log and ``healthz`` uses).
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self._capacity = capacity
        self._ops: dict[str, OpMetrics] = {}

    def observe(self, op: str, queue_wait_s: float, latency_s: float) -> None:
        metrics = self._ops.get(op)
        if metrics is None:
            metrics = self._ops[op] = OpMetrics(self._capacity)
        metrics.queue_wait.observe(queue_wait_s)
        metrics.latency.observe(latency_s)

    def summary(self) -> dict:
        """``{"queue_wait_ms": {op: {...}}, "latency_ms": {op: {...}}}``."""
        queue_wait: dict = {}
        latency: dict = {}
        for op, metrics in sorted(self._ops.items()):
            wait = metrics.queue_wait.summary(scale=1e3)
            total = metrics.latency.summary(scale=1e3)
            if wait is not None:
                queue_wait[op] = wait
            if total is not None:
                latency[op] = total
        return {"queue_wait_ms": queue_wait, "latency_ms": latency}
