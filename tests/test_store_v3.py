"""Unit tests for store format v3: compressed chunked sections.

Complements tests/test_store_v2.py: this module pins the v3-specific
guarantees -- byte transparency against the v2 layout (decompressed
chunk concatenation is exactly the v2 section bytes, so every golden
table holds on both formats), decompress-on-touch through the
process-wide section cache, codec gating (zstd when available, zlib
fallback, forced by REPRO_NO_ZSTD=1), migration equivalence in both
directions, and rejection of corrupted chunks.  The concurrent-replace
regression test for ``_map_store`` lives here too: v2 and v3 share the
single-handle open path it pins.
"""

import json
import os

import numpy as np
import pytest

from repro.errors import StoreError
from repro.core.batch import BatchSynthesizer
from repro.core.search import CascadeSearch
from repro.core.store import (
    MAGIC_V2,
    MAGIC_V3,
    dump_search,
    load_search,
    loads_search,
    migrate_store,
    open_store,
    read_header,
    resolve_codec,
    save_search,
    section_cache_stats,
    verify_store,
)
from repro.gates import named


@pytest.fixture(scope="module")
def search5(library3):
    search = CascadeSearch(library3, track_parents=True)
    search.extend_to(5)
    return search


@pytest.fixture(scope="module")
def v2_bytes(search5):
    return dump_search(search5, format_version=2)


@pytest.fixture(scope="module")
def v3_bytes(search5):
    return dump_search(search5, format_version=3)


@pytest.fixture(scope="module")
def v3_path(search5, tmp_path_factory):
    path = tmp_path_factory.mktemp("store") / "closure_v3.rpro"
    save_search(search5, path, format_version=3)
    return path


def parse_header(data: bytes) -> dict:
    hlen = int.from_bytes(data[8:12], "little")
    return json.loads(data[12 : 12 + hlen])


class TestFormatFraming:
    def test_v3_magic_and_header(self, v3_bytes):
        assert v3_bytes[:8] == MAGIC_V3
        header = parse_header(v3_bytes)
        assert header["format"] == 3
        assert header["codec"] in ("zstd", "zlib", "raw")
        assert "sections" not in header
        for name in ("perms", "masks", "parents", "gates",
                     "rkeys", "rcosts", "rindptr", "rmatches"):
            assert name in header["chunks"]

    def test_row_sections_chunk_per_level(self, v3_bytes, search5):
        header = parse_header(v3_bytes)
        levels = search5.expanded_to + 1
        for name in ("perms", "masks", "parents", "gates"):
            assert len(header["chunks"][name]) == levels
        for name in ("rkeys", "rcosts", "rindptr", "rmatches"):
            assert len(header["chunks"][name]) == 1

    def test_chunks_are_aligned(self, v3_bytes):
        for spans in parse_header(v3_bytes)["chunks"].values():
            for offset, _stored, _raw in spans:
                assert offset % 8 == 0

    def test_compresses_below_half_of_v2(self, v2_bytes, v3_bytes):
        # The ISSUE's acceptance bar: v3 <= 0.5x the v2 file size.
        assert len(v3_bytes) <= len(v2_bytes) / 2

    def test_byte_transparency_against_v2(self, v2_bytes, v3_bytes):
        """Decompressed chunk concatenation == the v2 section bytes."""
        from repro.core.store import _codec_fns

        v2_header = parse_header(v2_bytes)
        v3_header = parse_header(v3_bytes)
        _, decompress = _codec_fns(v3_header["codec"])
        v2_start = 12 + int.from_bytes(v2_bytes[8:12], "little")
        v3_start = 12 + int.from_bytes(v3_bytes[8:12], "little")
        for name, (offset, length) in v2_header["sections"].items():
            v2_section = v2_bytes[v2_start + offset : v2_start + offset + length]
            raw = b"".join(
                decompress(v3_bytes[v3_start + off : v3_start + off + stored])
                if stored else b""
                for off, stored, _rlen in v3_header["chunks"][name]
            )
            assert raw == v2_section, f"section {name!r} not transparent"

    def test_index_digests_match_v2(self, v2_bytes, v3_bytes):
        """index_sha256 covers RAW bytes: same digests as the v2 store."""
        assert (
            parse_header(v3_bytes)["index_sha256"]
            == parse_header(v2_bytes)["index_sha256"]
        )

    def test_atomic_save_leaves_no_temp_files(self, search5, tmp_path):
        path = tmp_path / "closure.rpro"
        save_search(search5, path, format_version=3)
        assert path.exists()
        assert list(tmp_path.glob("*.tmp*")) == []

    def test_streamed_bytes_equal_dump(self, search5, v3_bytes, tmp_path):
        path = tmp_path / "streamed.rpro"
        header = save_search(search5, path, format_version=3)
        assert path.read_bytes() == v3_bytes
        assert header.payload_sha256 != "0" * 64
        verify_store(path)


class TestCodecs:
    def test_resolve_codec_auto_prefers_zstd(self):
        from repro.core.store import _zstd_module

        expected = "zstd" if _zstd_module() is not None else "zlib"
        assert resolve_codec(None) == expected
        assert resolve_codec("auto") == expected

    def test_no_zstd_env_forces_zlib(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_ZSTD", "1")
        assert resolve_codec(None) == "zlib"
        with pytest.raises(StoreError, match="zlib"):
            resolve_codec("zstd")

    def test_unknown_codec_rejected(self):
        with pytest.raises(StoreError):
            resolve_codec("lzma")

    def test_raw_codec_roundtrip(self, search5, library3):
        data = dump_search(search5, format_version=3, codec="raw")
        assert parse_header(data)["codec"] == "raw"
        loaded = loads_search(data, library3)
        assert loaded.stats().level_sizes == search5.stats().level_sizes

    def test_zlib_store_opens_regardless_of_zstd(
        self, search5, library3, monkeypatch
    ):
        """A zlib-written store must open even where zstd exists."""
        monkeypatch.setenv("REPRO_NO_ZSTD", "1")
        data = dump_search(search5, format_version=3)
        monkeypatch.delenv("REPRO_NO_ZSTD")
        assert parse_header(data)["codec"] == "zlib"
        batch = BatchSynthesizer(loads_search(data, library3))
        assert batch.synthesize(named.TARGETS["peres"]).cost == 4


class TestLazyOpen:
    def test_open_attaches_serialized_index(self, v3_path):
        header, _library, search = open_store(v3_path)
        assert header.format_version == 3
        attached = search.attached_remainder_index
        assert attached is not None and attached[0] == 5

    def test_query_results_equal_live_search(self, v3_path, search5):
        _header, _library, loaded = open_store(v3_path)
        batch = BatchSynthesizer(loaded)
        live = BatchSynthesizer(search5, cost_bound=5)
        for name in ("cnot_ba", "swap_ab", "peres", "toffoli"):
            ours = batch.synthesize_all(named.TARGETS[name])
            theirs = live.synthesize_all(named.TARGETS[name])
            assert [r.circuit.names() for r in ours] == [
                r.circuit.names() for r in theirs
            ]

    def test_results_identical_across_v2_and_v3(self, search5, library3):
        """The byte-transparency pin, observed end to end."""
        from_v2 = BatchSynthesizer(
            loads_search(dump_search(search5, format_version=2), library3)
        )
        from_v3 = BatchSynthesizer(
            loads_search(dump_search(search5, format_version=3), library3)
        )
        assert from_v2.cost_table().g_sizes == from_v3.cost_table().g_sizes
        for name in ("peres", "toffoli", "cnot_ba", "swap_bc"):
            a = from_v2.synthesize_all(named.TARGETS[name])
            b = from_v3.synthesize_all(named.TARGETS[name])
            assert [r.circuit.names() for r in a] == [
                r.circuit.names() for r in b
            ]

    def test_row_accessors_against_live(self, v3_path, search5):
        _header, _library, loaded = open_store(v3_path)
        for row in (0, 1, 100, 6561):
            assert loaded.perm_bytes_at(row) == search5.perm_bytes_at(row)
            assert loaded.cost_of_row(row) == search5.cost_of_row(row)
        for row in (5, 500, 20000):
            assert loaded.witness_indices_for_row(
                row
            ) == search5.witness_indices_for_row(row)

    def test_levels_readable(self, v3_path, search5):
        _header, _library, loaded = open_store(v3_path)
        assert loaded.level(2) == search5.level(2)
        assert loaded.level_size(5) == search5.level_size(5)

    def test_lazy_arrays_duck_type(self, v3_path, search5):
        _header, _library, loaded = open_store(v3_path)
        arrays = loaded.export_arrays()
        live = search5.export_arrays()
        assert arrays.perms.shape == live.perms.shape
        assert arrays.perms.dtype == live.perms.dtype
        assert len(arrays.parents) == len(live.parents)
        assert arrays.perms[0].tobytes() == live.perms[0].tobytes()
        assert arrays.perms[-1].tobytes() == live.perms[-1].tobytes()
        assert np.array_equal(
            np.asarray(arrays.perms[19:181]), np.asarray(live.perms[19:181])
        )
        # cross-level slice (levels 1+2) concatenates chunks
        assert np.array_equal(
            np.asarray(arrays.masks[1:181]), np.asarray(live.masks[1:181])
        )
        assert np.array_equal(np.asarray(arrays.gates), np.asarray(live.gates))

    def test_extend_after_lazy_load_matches_fresh(self, v3_path, library3):
        _header, _library, loaded = open_store(v3_path)
        loaded.extend_to(6)
        fresh = CascadeSearch(library3, track_parents=True)
        fresh.extend_to(6)
        assert loaded.stats().level_sizes == fresh.stats().level_sizes

    def test_counting_only_roundtrip(self, library3):
        search = CascadeSearch(library3, track_parents=False)
        search.extend_to(3)
        data = dump_search(search, format_version=3)
        assert "parents" not in parse_header(data)["chunks"]
        loaded = loads_search(data, library3)
        assert not loaded.tracks_parents
        batch = BatchSynthesizer(loaded)
        assert batch.minimal_cost(named.TARGETS["cnot_ba"]) == 1


class TestSectionCache:
    def test_touch_populates_cache_and_rereads_hit(self, v3_path):
        import repro.core.store as store_module

        store_module._SECTION_CACHE.clear()
        _header, _library, loaded = open_store(v3_path)
        before = section_cache_stats()
        loaded.perm_bytes_at(100)
        mid = section_cache_stats()
        assert mid["misses"] > before["misses"]
        assert mid["entries"] > before["entries"]
        loaded.perm_bytes_at(101)  # same level, same chunk
        after = section_cache_stats()
        assert after["hits"] > mid["hits"]
        assert after["bytes"] <= after["max_bytes"]

    def test_cache_is_keyed_by_file_identity(self, search5, tmp_path):
        """A replaced file's chunks never alias the old file's."""
        import repro.core.store as store_module

        path = tmp_path / "swap.rpro"
        save_search(search5, path, format_version=3)
        store_module._SECTION_CACHE.clear()
        _h, _l, first = open_store(path)
        assert first.perm_bytes_at(100) == search5.perm_bytes_at(100)
        entries_first = section_cache_stats()["entries"]
        save_search(search5, path, format_version=3)  # new inode
        _h, _l, second = open_store(path)
        assert second.perm_bytes_at(100) == search5.perm_bytes_at(100)
        assert section_cache_stats()["entries"] > entries_first


class TestMigration:
    def test_migrate_v2_to_v3_matches_direct_write(
        self, search5, v3_bytes, tmp_path
    ):
        src = tmp_path / "src.rpro"
        dst = tmp_path / "dst.rpro"
        save_search(search5, src, format_version=2)
        old, new = migrate_store(src, dst, format_version=3)
        assert (old.format_version, new.format_version) == (2, 3)
        assert dst.read_bytes() == v3_bytes

    def test_migrate_v3_to_v2_matches_direct_write(
        self, search5, v3_path, v2_bytes, tmp_path
    ):
        dst = tmp_path / "back.rpro"
        old, new = migrate_store(v3_path, dst, format_version=2)
        assert (old.format_version, new.format_version) == (3, 2)
        assert dst.read_bytes() == v2_bytes

    def test_migrated_store_serves_identical_results(
        self, v3_path, tmp_path, library3
    ):
        dst = tmp_path / "migrated.rpro"
        migrate_store(v3_path, dst, format_version=2)
        from_v3 = BatchSynthesizer(load_search(v3_path, library3))
        from_v2 = BatchSynthesizer(load_search(dst, library3))
        assert from_v3.cost_table().g_sizes == from_v2.cost_table().g_sizes
        for name in ("peres", "toffoli", "swap_bc"):
            a = from_v3.synthesize_all(named.TARGETS[name])
            b = from_v2.synthesize_all(named.TARGETS[name])
            assert [r.circuit.names() for r in a] == [
                r.circuit.names() for r in b
            ]

    def test_verify_store_accepts_v3(self, v3_path):
        assert verify_store(v3_path).format_version == 3


class TestCorruption:
    @staticmethod
    def _doctor(v3_bytes, mutate):
        """Re-frame *v3_bytes* after *mutate*(header_dict, payload)."""
        import hashlib

        hlen = int.from_bytes(v3_bytes[8:12], "little")
        header = json.loads(v3_bytes[12 : 12 + hlen])
        payload = bytearray(v3_bytes[12 + hlen :])
        mutate(header, payload)
        header["payload_sha256"] = hashlib.sha256(bytes(payload)).hexdigest()
        blob = json.dumps(header, separators=(",", ":")).encode()
        blob += b" " * ((-(12 + len(blob))) % 8)
        return (
            MAGIC_V3 + len(blob).to_bytes(4, "little") + blob + bytes(payload)
        )

    def test_truncated_rejected(self, v3_bytes, library3):
        with pytest.raises(StoreError):
            loads_search(v3_bytes[:-10], library3)

    def test_flipped_byte_fails_checksum(self, v3_bytes, library3):
        data = bytearray(v3_bytes)
        data[-3] ^= 0xFF
        with pytest.raises(StoreError, match="sha256"):
            loads_search(bytes(data), library3)

    def test_flipped_chunk_byte_fails_verify(self, v3_path, tmp_path):
        data = bytearray(v3_path.read_bytes())
        data[-3] ^= 0xFF
        bad = tmp_path / "bad.rpro"
        bad.write_bytes(bytes(data))
        with pytest.raises(StoreError, match="sha256"):
            verify_store(bad)

    def test_unknown_codec_in_header_rejected(self, v3_bytes, library3):
        def mutate(header, payload):
            header["codec"] = "lzma"

        with pytest.raises(StoreError, match="codec"):
            loads_search(self._doctor(v3_bytes, mutate), library3)

    def test_doctored_raw_length_rejected(self, v3_bytes, library3):
        def mutate(header, payload):
            spans = header["chunks"]["perms"]
            spans[0][2] += 38  # claim a different decompressed size

        with pytest.raises(StoreError):
            loads_search(self._doctor(v3_bytes, mutate), library3)

    def test_garbage_chunk_bytes_fail_on_touch(self, v3_bytes, library3):
        """Undecompressable chunk bytes raise a StoreError, not a
        bare codec exception, when the lazy array is first touched."""

        def mutate(header, payload):
            off, stored, _rlen = header["chunks"]["perms"][2]
            payload[off : off + stored] = bytes(stored)  # zeros

        doctored = self._doctor(v3_bytes, mutate)
        loaded = loads_search(doctored, library3)
        with pytest.raises(StoreError):
            loaded.perm_bytes_at(100)  # row 100 is level 2

    def test_chunk_span_outside_payload_rejected(self, v3_bytes, library3):
        def mutate(header, payload):
            header["chunks"]["rkeys"][0][0] = len(payload) + 8

        with pytest.raises(StoreError):
            loads_search(self._doctor(v3_bytes, mutate), library3)


class TestReplaceRace:
    """The _map_v2 bugfix: a store swapped between header read and
    payload map must be detected, not served half-old half-new."""

    def test_replace_between_header_and_map_detected(
        self, search5, tmp_path
    ):
        from repro.core.store import _map_store, _read_header

        path = tmp_path / "racy.rpro"
        save_search(search5, path, format_version=2)
        header, identity = _read_header(path)
        # A concurrent save (SIGHUP reload) atomically replaces the file
        # in the window between the header read and the payload map.
        other = tmp_path / "other.rpro"
        save_search(search5, other, format_version=2)
        os.replace(other, path)
        with pytest.raises(StoreError, match="replaced"):
            _map_store(path, header, expected_identity=identity)

    def test_replace_race_detected_for_v3(self, search5, tmp_path):
        from repro.core.store import _map_store, _read_header

        path = tmp_path / "racy3.rpro"
        save_search(search5, path, format_version=3)
        header, identity = _read_header(path)
        other = tmp_path / "other3.rpro"
        save_search(search5, other, format_version=3)
        os.replace(other, path)
        with pytest.raises(StoreError, match="replaced"):
            _map_store(path, header, expected_identity=identity)

    def test_unreplaced_open_is_unaffected(self, search5, tmp_path):
        from repro.core.store import _map_store, _read_header

        path = tmp_path / "calm.rpro"
        save_search(search5, path, format_version=2)
        header, identity = _read_header(path)
        payload = _map_store(path, header, expected_identity=identity)
        assert len(payload) == header.payload_size
