"""Property-based tests: random cascades keep all semantics consistent."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.circuit import Circuit
from repro.errors import NonBinaryControlError
from repro.gates.gate import Gate
from repro.gates.library import GateLibrary
from repro.mvl.labels import label_space
from repro.mvl.patterns import binary_patterns
from repro.sim.exact import ExactSimulator

_LIBRARY = GateLibrary(3)
_SPACE = label_space(3)
_GATE_NAMES = [entry.name for entry in _LIBRARY.gates]

gate_lists = st.lists(st.sampled_from(_GATE_NAMES), min_size=0, max_size=6)


def build(names):
    return Circuit.from_names(list(names), 3)


class TestSemanticConsistency:
    @given(gate_lists)
    @settings(max_examples=60, deadline=None)
    def test_permutation_equals_composed_gate_permutations(self, names):
        circuit = build(names)
        perm = circuit.permutation(_SPACE)
        expected = _LIBRARY.circuit_permutation(
            [_LIBRARY.by_name(n) for n in names]
        )
        assert perm == expected

    @given(gate_lists)
    @settings(max_examples=60, deadline=None)
    def test_label_semantics_match_pattern_semantics(self, names):
        circuit = build(names)
        perm = circuit.permutation(_SPACE)
        for label in range(0, 38, 7):
            pattern = _SPACE.pattern(label)
            assert circuit.apply(pattern) == _SPACE.pattern(perm(label))

    @given(gate_lists)
    @settings(max_examples=40, deadline=None)
    def test_strict_semantics_agree_with_exact_unitary(self, names):
        """Wherever strict simulation succeeds, the exact unitary agrees."""
        circuit = build(names)
        simulator = ExactSimulator(3)
        for pattern in binary_patterns(3):
            try:
                produced = circuit.strict_apply(pattern)
            except NonBinaryControlError:
                continue
            assert simulator.agrees_with_pattern(circuit, pattern, produced)

    @given(gate_lists)
    @settings(max_examples=40, deadline=None)
    def test_dagger_inverts_unitary(self, names):
        circuit = build(names)
        product = circuit.unitary() @ circuit.dagger().unitary()
        assert product.is_identity()

    @given(gate_lists)
    @settings(max_examples=60, deadline=None)
    def test_dagger_inverts_label_permutation(self, names):
        circuit = build(names)
        forward = circuit.permutation(_SPACE)
        backward = circuit.dagger().permutation(_SPACE)
        assert (forward * backward).is_identity

    @given(gate_lists)
    @settings(max_examples=40, deadline=None)
    def test_cost_equals_length_for_two_qubit_cascades(self, names):
        circuit = build(names)
        assert circuit.cost() == len(circuit)
        assert circuit.two_qubit_count == len(circuit)

    @given(gate_lists)
    @settings(max_examples=40, deadline=None)
    def test_unitary_always_unitary(self, names):
        assert build(names).unitary().is_unitary()


class TestRelabeling:
    @given(gate_lists, st.permutations([0, 1, 2]))
    @settings(max_examples=40, deadline=None)
    def test_relabeling_conjugates_binary_action(self, names, wires):
        """Moving a reasonable circuit to new wires conjugates its
        restricted permutation by the wire-relabeling pattern map."""
        from repro.gates import named

        circuit = build(names)
        if not circuit.is_reasonable():
            return
        try:
            base = circuit.binary_permutation()
        except Exception:
            return  # probabilistic outputs: relabeling claim not applicable
        wire_map = {w: wires[w] for w in range(3)}
        moved = circuit.relabeled(wire_map)
        relabel = named.wire_relabeling(wires)
        assert moved.binary_permutation() == base.conjugate_by(relabel)
