"""Unit tests for the MMD transformation heuristic (repro.baselines.mmd)."""

import random

import pytest

from repro.errors import SpecificationError
from repro.baselines.mmd import mmd_synthesize
from repro.baselines.nct import NCTLibrary
from repro.gates import named
from repro.perm.permutation import Permutation


@pytest.fixture(scope="module")
def lib3():
    return NCTLibrary(3)


class TestCorrectness:
    def test_identity_gives_empty_circuit(self, lib3):
        assert mmd_synthesize(named.IDENTITY3, 3) == []

    @pytest.mark.parametrize(
        "name", ["toffoli", "fredkin", "peres", "g2", "g3", "g4", "swap_bc"]
    )
    def test_named_targets_roundtrip(self, lib3, name):
        target = named.TARGETS[name]
        circuit = mmd_synthesize(target, 3)
        assert lib3.permutation_of(circuit) == target

    def test_not_layer_targets(self, lib3):
        for mask in range(8):
            target = named.not_layer_permutation(mask)
            circuit = mmd_synthesize(target, 3)
            assert lib3.permutation_of(circuit) == target
            # Pure NOT layers synthesize as pure NOT gates.
            assert all(g.kind == "NOT" for g in circuit)

    def test_exhaustive_roundtrip_random_sample(self, lib3):
        rng = random.Random(11)
        for _ in range(200):
            images = list(range(8))
            rng.shuffle(images)
            target = Permutation.from_images(images)
            circuit = mmd_synthesize(target, 3)
            assert lib3.permutation_of(circuit) == target

    def test_two_wire_targets(self):
        lib2 = NCTLibrary(2)
        import itertools

        for images in itertools.permutations(range(4)):
            target = Permutation.from_images(images)
            circuit = mmd_synthesize(target, 2)
            assert lib2.permutation_of(circuit) == target


class TestQuality:
    def test_gate_count_at_least_optimal(self, lib3, nct_synthesizer):
        rng = random.Random(21)
        for _ in range(50):
            images = list(range(8))
            rng.shuffle(images)
            target = Permutation.from_images(images)
            heuristic = len(mmd_synthesize(target, 3))
            optimal = nct_synthesizer.optimal_gate_count(target)
            assert heuristic >= optimal

    def test_heuristic_is_not_always_optimal(self, lib3, nct_synthesizer):
        # There must exist targets where MMD loses (otherwise it would
        # solve optimal synthesis in linear time).
        rng = random.Random(3)
        gaps = 0
        for _ in range(100):
            images = list(range(8))
            rng.shuffle(images)
            target = Permutation.from_images(images)
            gap = len(mmd_synthesize(target, 3)) - (
                nct_synthesizer.optimal_gate_count(target)
            )
            gaps += gap > 0
        assert gaps > 0

    def test_gate_count_bounded(self, lib3):
        # Crude worst-case bound: at most n * 2**n gates for n = 3.
        rng = random.Random(13)
        for _ in range(100):
            images = list(range(8))
            rng.shuffle(images)
            circuit = mmd_synthesize(Permutation.from_images(images), 3)
            assert len(circuit) <= 24


class TestValidation:
    def test_degree_mismatch(self):
        with pytest.raises(SpecificationError):
            mmd_synthesize(Permutation.identity(8), 2)
