"""Shared NDJSON access-log writer with rotation and visibility.

The service grew this logic inline (single log thread, fire-and-forget
submits, logrotate-style shifting between whole lines); the router now
needs an identical writer for its own access log, and the satellite
fix in PR 10 wants the writer *observable* -- today a wedged log
device drops records silently and nothing counts them.  This class is
that logic extracted verbatim, plus a metric set:

* ``<prefix>_log_records_written_total`` / ``<prefix>_log_bytes_written_total``
  -- what actually reached ``write()`` (a flatlining rate under live
  traffic is the wedged-device signal).
* ``<prefix>_log_write_errors_total`` -- records dropped because the
  device errored (the previously-silent branch).
* ``<prefix>_log_rotations_total`` and a scrape-time
  ``<prefix>_log_queue_depth`` gauge -- a growing queue means the log
  thread is falling behind the loop.

Threading contract (inherited from the service): :meth:`submit` may be
called from any thread and never blocks on I/O; all writes and
rotations happen on the writer's single thread, between whole lines,
so every file in a rotated set ends on a complete record.
"""

from __future__ import annotations

import contextlib
import json
import os
from concurrent.futures import ThreadPoolExecutor

from ..errors import SpecificationError
from .registry import MetricsRegistry

#: Default number of rotated files kept (``log.1 .. log.N``).
DEFAULT_KEEP = 3


class AccessLogWriter:
    """Appends NDJSON records to *path* on a dedicated thread.

    Args:
        path: the log file (appended; created on :meth:`start`).
        max_bytes: rotate once the file reaches this size (``None``
            never rotates).  Rotation shifts ``log -> log.1 -> ...``
            like logrotate; ``log.N`` (the oldest) falls off the end.
        keep: how many rotated files to keep (default 3).
        registry: register the writer's metric set here (optional).
        prefix: metric name prefix (default ``repro``).
    """

    def __init__(
        self,
        path: str,
        max_bytes: int | None = None,
        keep: int | None = None,
        registry: MetricsRegistry | None = None,
        prefix: str = "repro",
    ):
        if max_bytes is not None and max_bytes < 1:
            raise SpecificationError("max_bytes must be positive")
        if keep is not None and keep < 1:
            raise SpecificationError(
                "keep must retain at least one rotated file"
            )
        self.path = str(path)
        self._max_bytes = max_bytes
        self._keep = DEFAULT_KEEP if keep is None else keep
        self._file = None
        self._pool: ThreadPoolExecutor | None = None
        self._m_records = None
        if registry is not None:
            self._m_records = registry.counter(
                f"{prefix}_log_records_written_total",
                "Access-log records written to disk.",
            )
            self._m_bytes = registry.counter(
                f"{prefix}_log_bytes_written_total",
                "Access-log bytes written to disk.",
            )
            self._m_rotations = registry.counter(
                f"{prefix}_log_rotations_total",
                "Access-log rotations performed.",
            )
            self._m_errors = registry.counter(
                f"{prefix}_log_write_errors_total",
                "Access-log records dropped on write error.",
            )
            registry.gauge(
                f"{prefix}_log_queue_depth",
                "Records waiting for the access-log writer thread.",
                fn=self.queue_depth,
            )

    # -- lifecycle --------------------------------------------------------------------

    @property
    def started(self) -> bool:
        return self._pool is not None

    def start(self) -> "AccessLogWriter":
        """Open the file and spin up the writer thread (idempotent)."""
        if self._pool is None:
            self._file = open(self.path, "a", encoding="utf-8")
            self._pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-access-log"
            )
        return self

    def close(self) -> None:
        """Drain queued records and close the file (blocking).

        Callers on an event loop should run this in an executor, the
        same way the service drains its pools.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._file is not None:
            with contextlib.suppress(OSError):
                self._file.close()
            self._file = None

    def queue_depth(self) -> int:
        """Records queued behind the writer thread right now."""
        pool = self._pool
        if pool is None:
            return 0
        return pool._work_queue.qsize()

    # -- writing ----------------------------------------------------------------------

    def submit(self, record: dict) -> None:
        """Queue one record for writing (fire-and-forget, any thread).

        Serialization happens here (on the caller's thread) so the
        record dict cannot be mutated between submit and write.
        """
        if self._pool is None:
            return
        line = json.dumps(record, separators=(",", ":")) + "\n"
        # Pool shut down mid-close: drop, exactly as the service did.
        with contextlib.suppress(RuntimeError):
            self._pool.submit(self._write_line, line)

    def _write_line(self, line: str) -> None:
        # A full disk must degrade the log, never the serving path --
        # but unlike the pre-PR-10 writer, the drop is now counted.
        try:
            self._file.write(line)
            self._file.flush()
        except (OSError, ValueError):
            if self._m_records is not None:
                self._m_errors.inc()
            return
        if self._m_records is not None:
            self._m_records.inc()
            self._m_bytes.inc(len(line.encode("utf-8")))
        if (
            self._max_bytes is not None
            and self._file.tell() >= self._max_bytes
        ):
            with contextlib.suppress(OSError, ValueError):
                self._rotate()

    def _rotate(self) -> None:
        """Shift ``log -> log.1 -> ... -> log.N`` and reopen (log thread)."""
        path = self.path
        keep = self._keep
        self._file.close()
        with contextlib.suppress(OSError):
            os.unlink(f"{path}.{keep}")
        for index in range(keep - 1, 0, -1):
            source = f"{path}.{index}"
            if os.path.exists(source):
                os.replace(source, f"{path}.{index + 1}")
        os.replace(path, f"{path}.1")
        self._file = open(path, "a", encoding="utf-8")
        if self._m_records is not None:
            self._m_rotations.inc()
