"""Multiple-valued (quaternary) logic substrate.

The paper's central reduction: once every control wire is restricted to
pure binary values, each quantum wire only ever carries one of four values

    ``0``, ``1``, ``V0`` = V|0>, ``V1`` = V|1>

because ``V0 = V+ 1`` and ``V1 = V+ 0``.  This package implements that
quaternary algebra (:mod:`repro.mvl.values`), fixed-width value tuples
(:mod:`repro.mvl.patterns`) and the paper's label spaces with banned sets
(:mod:`repro.mvl.labels`).
"""

from repro.mvl.values import (
    Qv,
    ZERO,
    ONE,
    V0,
    V1,
    apply_v,
    apply_vdag,
    apply_not,
    is_binary,
    measurement_probabilities,
)
from repro.mvl.patterns import (
    Pattern,
    all_patterns,
    binary_patterns,
    pattern_from_bits,
    pattern_from_int,
    pattern_to_int,
    pattern_from_string,
)
from repro.mvl.labels import LabelSpace, label_space

__all__ = [
    "Qv",
    "ZERO",
    "ONE",
    "V0",
    "V1",
    "apply_v",
    "apply_vdag",
    "apply_not",
    "is_binary",
    "measurement_probabilities",
    "Pattern",
    "all_patterns",
    "binary_patterns",
    "pattern_from_bits",
    "pattern_from_int",
    "pattern_to_int",
    "pattern_from_string",
    "LabelSpace",
    "label_space",
]
