"""Cross-kernel equivalence: the vector engine vs the translate loop.

The NumPy kernel is only a performance change -- for any library and
cost model it must discover the same levels, in the same discovery
order, with the same parent pointers as the byte-level reference
kernel.  These tests pin that equivalence (the full cost-7 golden run
lives in tests/test_golden_tables.py), plus the kernel-internal
machinery: the dedup hash table's exactness under forced collisions and
the bulk pack/unpack adapters.
"""

import numpy as np
import pytest

from repro.core.cost import CostModel
from repro.core.kernel import (
    compute_masks,
    hash_rows,
    mask_int_to_words,
    mask_words_to_int,
    pack_rows,
)
from repro.core.search import CascadeSearch
from repro.gates.kinds import GateKind
from repro.gates.library import GateLibrary
from repro.perm.permutation import pack_images, unpack_images


def _pair(library, cost_model=None, bound=3, track_parents=True):
    kwargs = {"track_parents": track_parents}
    if cost_model is not None:
        kwargs["cost_model"] = cost_model
    vector = CascadeSearch(library, kernel="vector", **kwargs)
    translate = CascadeSearch(library, kernel="translate", **kwargs)
    vector.extend_to(bound)
    translate.extend_to(bound)
    return vector, translate


def _assert_identical(vector, translate, bound):
    assert vector.stats().level_sizes == translate.stats().level_sizes
    for cost in range(bound + 1):
        assert vector.level(cost) == translate.level(cost), (
            f"level {cost} differs between kernels"
        )
    if vector.tracks_parents:
        assert (
            vector.export_state().parents == translate.export_state().parents
        )


class TestKernelEquivalence:
    def test_three_qubit_unit_costs(self, library3):
        vector, translate = _pair(library3, bound=4)
        _assert_identical(vector, translate, 4)

    def test_two_qubit(self, library2):
        vector, translate = _pair(library2, bound=5)
        _assert_identical(vector, translate, 5)

    @pytest.mark.parametrize(
        "model",
        [
            CostModel(v_cost=1, vdag_cost=1, cnot_cost=2),
            CostModel(v_cost=2, vdag_cost=1, cnot_cost=1),
            CostModel(v_cost=2, vdag_cost=2, cnot_cost=3),
        ],
    )
    def test_non_unit_cost_models(self, library3, model):
        """Empty levels and staggered source levels, both kernels."""
        vector, translate = _pair(library3, cost_model=model, bound=4)
        _assert_identical(vector, translate, 4)

    def test_partial_gate_alphabet(self):
        """V without V+ disables the inverse back-edge filter for V."""
        library = GateLibrary(3, kinds=(GateKind.V, GateKind.CNOT))
        vector, translate = _pair(library, bound=4)
        _assert_identical(vector, translate, 4)

    def test_counting_only(self, library3):
        vector, translate = _pair(library3, bound=4, track_parents=False)
        _assert_identical(vector, translate, 4)

    def test_four_qubit_multiword_masks(self):
        """176 labels -> 3 mask words per row; kernels still agree."""
        library = GateLibrary(4)
        vector, translate = _pair(library, bound=2)
        _assert_identical(vector, translate, 2)

    def test_incremental_extension_matches_one_shot(self, library3):
        stepwise = CascadeSearch(library3, kernel="vector")
        for bound in range(5):
            stepwise.extend_to(bound)
        oneshot = CascadeSearch(library3, kernel="vector")
        oneshot.extend_to(4)
        _assert_identical(stepwise, oneshot, 4)

    def test_vector_continues_a_translate_closure(self, library3):
        """Kernel handoff: restore byte-level state, extend vectorized."""
        translate = CascadeSearch(library3, kernel="translate")
        translate.extend_to(3)
        handoff = CascadeSearch.from_state(
            library3, translate.export_state(), kernel="vector"
        )
        handoff.extend_to(5)
        reference = CascadeSearch(library3, kernel="vector")
        reference.extend_to(5)
        assert handoff.stats().level_sizes == reference.stats().level_sizes
        assert sorted(p for p, _m in handoff.level(5)) == sorted(
            p for p, _m in reference.level(5)
        )

    def test_queries_and_export_after_restored_vector_extension(
        self, library3
    ):
        """Stale byte-level dicts must not survive a vector extension.

        A from_state restore keeps seen/parents dicts; extending with
        the vector kernel must invalidate them so cost_of, witness
        extraction and a v1 re-export all cover the new levels.
        """
        base = CascadeSearch(library3, track_parents=True)
        base.extend_to(3)
        restored = CascadeSearch.from_state(library3, base.export_state())
        restored.extend_to(4)
        perm, _mask = restored.level(4)[7]
        assert restored.cost_of(perm) == 4
        assert len(restored.witness_indices(perm)) == 4
        state = restored.export_state()
        assert state.expanded_to == 4
        assert perm in state.parents
        rebuilt = CascadeSearch.from_state(library3, state)
        assert rebuilt.stats().level_sizes == restored.stats().level_sizes


class TestForcedCollisions:
    def test_constant_hash_still_exact(self, library2, monkeypatch):
        """With every hash colliding, the scalar fallback keeps dedup exact.

        This drives the deferred-verification resurrection path that a
        real 64-bit hash would exercise once per ~2^64 candidates.
        """
        import repro.core.kernel as kernel_module

        real_hash = kernel_module.hash_rows

        def degenerate(packed):
            return np.zeros(packed.shape[0], dtype=np.uint64)

        monkeypatch.setattr(kernel_module, "hash_rows", degenerate)
        colliding = CascadeSearch(library2, kernel="vector")
        colliding.extend_to(4)
        monkeypatch.setattr(kernel_module, "hash_rows", real_hash)
        reference = CascadeSearch(library2, kernel="translate")
        reference.extend_to(4)
        assert colliding.stats().level_sizes == reference.stats().level_sizes
        for cost in range(5):
            assert sorted(p for p, _m in colliding.level(cost)) == sorted(
                p for p, _m in reference.level(cost)
            )

    def test_few_hash_buckets_preserve_order_and_parents(
        self, library2, monkeypatch
    ):
        """A 2-bit hash forces heavy collisions yet exact seed parity."""
        import repro.core.kernel as kernel_module

        real_hash = kernel_module.hash_rows

        def tiny(packed):
            return real_hash(packed) & np.uint64(3)

        monkeypatch.setattr(kernel_module, "hash_rows", tiny)
        colliding = CascadeSearch(library2, kernel="vector")
        colliding.extend_to(4)
        monkeypatch.setattr(kernel_module, "hash_rows", real_hash)
        reference = CascadeSearch(library2, kernel="translate")
        reference.extend_to(4)
        # Even the discovery order and parent pointers survive, because
        # collision resolution is by candidate id.
        _assert_identical(colliding, reference, 4)


class TestKernelPrimitives:
    def test_pack_rows_pads_with_fixed_points(self):
        rows = np.arange(38, dtype=np.uint8)[None, :]
        padded = pack_rows(rows, 38)
        assert padded.shape == (1, 40)
        assert padded[0, 38] == 38 and padded[0, 39] == 39

    def test_mask_word_roundtrip(self):
        for value in (0, 1, 0xFF, (1 << 100) | 5, (1 << 175) - 1):
            words = max(1, -(-value.bit_length() // 64))
            assert mask_words_to_int(mask_int_to_words(value, words)) == value

    def test_compute_masks_matches_scalar(self, library3, search3):
        perms = pack_images([p for p, _m in search3.level(2)], 38)
        masks = compute_masks(perms, 8, 1)
        for (perm, mask), row in zip(search3.level(2), masks):
            assert int(row[0]) == mask

    def test_multiword_masks_match_scalar(self):
        library = GateLibrary(4)
        search = CascadeSearch(library, kernel="translate")
        search.extend_to(1)
        perms = pack_images([p for p, _m in search.level(1)], 176)
        masks = compute_masks(perms, 16, 3)
        for (perm, mask), row in zip(search.level(1), masks):
            assert mask_words_to_int(row) == mask

    def test_hash_is_deterministic_and_spread(self):
        rng = np.random.default_rng(42)
        rows = rng.permuted(
            np.tile(np.arange(40, dtype=np.uint8), (1000, 1)), axis=1
        )
        h1, h2 = hash_rows(rows), hash_rows(rows)
        assert (h1 == h2).all()
        assert len(np.unique(h1)) == len(np.unique(rows.view("V40")))

    def test_pack_unpack_roundtrip(self, search3):
        level = [p for p, _m in search3.level(3)]
        arr = pack_images(level, 38)
        assert arr.shape == (len(level), 38)
        assert unpack_images(arr) == level

    def test_pack_images_empty(self):
        assert pack_images([], 38).shape == (0, 38)


class TestRowAccessors:
    def test_find_matching_rows_equals_scan(self, search3, library3):
        search3.extend_to(4)
        from repro.gates import named
        from repro.core.mce import normalize_target

        _mask, remainder, _gates = normalize_target(
            named.TARGETS["peres"], library3
        )
        rows = search3.find_matching_rows(4, remainder.images)
        expected = [
            i + sum(search3.level_size(c) for c in range(4))
            for i, (perm, mask) in enumerate(search3.level(4))
            if mask == search3.s_mask
            and perm[:8] == remainder.images
        ]
        assert rows == expected
        for row in rows:
            assert search3.perm_bytes_at(row)[:8] == remainder.images

    def test_s_fixing_rows_mask_semantics(self, search3):
        rows, remainders = search3.s_fixing_rows(3)
        level3 = search3.level(3)
        offset = sum(search3.level_size(c) for c in range(3))
        expected = [
            offset + i
            for i, (_p, mask) in enumerate(level3)
            if mask == search3.s_mask
        ]
        assert rows == expected
