"""The synthesis service: one shared read-only closure, many requests.

:class:`SynthesisService` is the framing-independent middle of ``repro
serve``: it owns the open store (a frozen
:class:`~repro.core.search.CascadeSearch` wrapped by a warmed
:class:`~repro.core.batch.BatchSynthesizer`), a bounded thread pool for
the GIL-bound query work, and a coalescing queue between them.

Concurrency model
-----------------

* The asyncio event loop only ever *frames* requests and responses; no
  query math runs on it, so accepts and health checks stay responsive
  while workers chew on big batches.
* Query operations are enqueued as jobs on an ``asyncio.Queue`` with a
  bounded depth (back-pressure: a flooded server makes clients wait on
  ``write`` instead of buffering unboundedly).
* A dispatcher task drains the queue, **coalescing** everything
  currently waiting (up to ``max_batch`` jobs) into one executor call
  -- so a burst of 64 concurrent single-target requests costs one
  thread hop, not 64.  A semaphore sized to the pool keeps at most
  ``workers`` batches in flight, which bounds thread-pool queue growth.
* Workers only touch frozen, warmed state (see the thread-safety
  contract on :class:`~repro.core.batch.BatchSynthesizer`), so any
  number of in-flight batches can read the same closure.

Store reloads (SIGHUP, or :meth:`SynthesisService.reload`) are atomic:
the new store is opened, frozen and warmed off-loop, then a single
reference assignment swaps it in.  Jobs dispatched before the swap
finish against the old state object (whose memory map stays alive until
they drop it); a failed reload leaves the previous store serving and is
reported via ``healthz``.
"""

from __future__ import annotations

import asyncio
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable

from repro.errors import (
    CostBoundExceededError,
    ProtocolError,
    ServerError,
    SpecificationError,
)
from repro.core.batch import BatchSynthesizer
from repro.server.protocol import OPERATIONS, Request

#: Default worker-thread count: the kernel work is GIL-bound numpy +
#: pure Python, so a small pool is enough to overlap queries with
#: framing; more threads mostly add contention.
DEFAULT_WORKERS = 2
#: Default coalescing limit per executor dispatch.
DEFAULT_MAX_BATCH = 64


@dataclass(frozen=True)
class StoreState:
    """Everything derived from one open of the store file (immutable)."""

    path: str
    header: object  # repro.core.store.StoreHeader
    library: object  # repro.gates.library.GateLibrary
    batch: BatchSynthesizer
    cost_bound: int
    #: The full cost table, computed once per open -- the cost-table
    #: endpoint slices this instead of rebuilding ~|G| Permutation
    #: objects per request.
    table: object  # repro.core.fmcf.CostTable


class _Job:
    """One unit of query work: a thread function plus its asyncio future."""

    __slots__ = ("fn", "future", "loop")

    def __init__(self, fn: Callable[[], dict], future, loop):
        self.fn = fn
        self.future = future
        self.loop = loop


def open_store_state(path: str, cost_bound: int | None = None) -> StoreState:
    """Open, validate, freeze and warm a store for serving (blocking).

    Raises:
        StoreError / StoreMismatchError: unreadable or mismatched store.
        SpecificationError: *cost_bound* exceeds the store's bound.
    """
    from repro.io import open_store, resolve_cost_bound

    header, library, search = open_store(path)
    bound = resolve_cost_bound(cost_bound, header.expanded_to, str(path))
    search.freeze()
    batch = BatchSynthesizer(search, cost_bound=bound).warm()
    return StoreState(
        path=str(path), header=header, library=library, batch=batch,
        cost_bound=bound, table=batch.cost_table(),
    )


class SynthesisService:
    """Dispatches protocol requests against one shared store.

    Args:
        store_path: the ``repro precompute`` artifact to serve.
        cost_bound: serve only costs up to this bound (default: the
            store's full expanded bound).
        workers: worker threads for query execution.
        max_batch: coalescing limit -- the most queued jobs one executor
            dispatch may absorb.
    """

    def __init__(
        self,
        store_path: str,
        cost_bound: int | None = None,
        workers: int = DEFAULT_WORKERS,
        max_batch: int = DEFAULT_MAX_BATCH,
    ):
        if workers < 1:
            raise SpecificationError("need at least one worker thread")
        if max_batch < 1:
            raise SpecificationError("max_batch must be positive")
        self._store_path = str(store_path)
        self._requested_bound = cost_bound
        self._workers = workers
        self._max_batch = max_batch
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )
        self._state: StoreState | None = None
        self._queue: asyncio.Queue[_Job] | None = None
        self._dispatcher: asyncio.Task | None = None
        self._slots: asyncio.Semaphore | None = None
        self._reload_lock: asyncio.Lock | None = None
        self._started_monotonic = time.monotonic()
        self._closing = False
        # Counters (event-loop-thread only).
        self._queries = {op: 0 for op in OPERATIONS}
        self._batches_executed = 0
        self._jobs_coalesced = 0
        self._errors = 0
        self._reloads = 0
        self._last_reload_error: str | None = None

    # -- lifecycle ---------------------------------------------------------------------

    @property
    def state(self) -> StoreState:
        if self._state is None:
            raise ServerError("service is not started")
        return self._state

    async def start(self) -> None:
        """Open the store and start the dispatcher (idempotent)."""
        if self._dispatcher is not None:
            return
        loop = asyncio.get_running_loop()
        if self._state is None:
            self._state = await loop.run_in_executor(
                self._pool, open_store_state, self._store_path,
                self._requested_bound,
            )
        self._queue = asyncio.Queue(maxsize=4 * self._max_batch)
        self._slots = asyncio.Semaphore(self._workers)
        self._reload_lock = asyncio.Lock()
        self._dispatcher = loop.create_task(
            self._dispatch_loop(), name="repro-serve-dispatcher"
        )

    async def close(self) -> None:
        """Stop dispatching, fail queued jobs and release the pool."""
        self._closing = True
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        if self._queue is not None:
            while True:
                try:
                    job = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if not job.future.done():
                    job.future.set_exception(
                        ServerError("server is shutting down")
                    )
        await asyncio.get_running_loop().run_in_executor(
            None, self._pool.shutdown, True
        )

    async def reload(self) -> None:
        """Reopen the store file and atomically swap it in (SIGHUP).

        A failed open keeps the current store serving; the failure is
        recorded and surfaced through ``healthz``.
        """
        assert self._reload_lock is not None, "service not started"
        async with self._reload_lock:
            loop = asyncio.get_running_loop()
            try:
                state = await loop.run_in_executor(
                    self._pool, open_store_state, self._store_path,
                    self._requested_bound,
                )
            except Exception as exc:
                self._last_reload_error = f"{type(exc).__name__}: {exc}"
                return
            self._state = state  # atomic reference swap
            self._reloads += 1
            self._last_reload_error = None

    # -- dispatch ----------------------------------------------------------------------

    async def handle(self, request: Request) -> dict:
        """Execute one request; returns the result payload or raises."""
        op = request.op
        self._queries[op] = self._queries.get(op, 0) + 1
        try:
            if op == "healthz":
                return self._do_healthz()
            if op == "store-info":
                return self._do_store_info()
            state = self.state
            params = request.params
            if op == "synth":
                return await self._submit(lambda: _run_synth(state, params))
            if op == "synth-batch":
                return await self._submit(
                    lambda: _run_synth_batch(state, params)
                )
            if op == "cost-table":
                return await self._submit(
                    lambda: _run_cost_table(state, params)
                )
            raise ProtocolError(f"unknown operation {op!r}")
        except Exception:
            self._errors += 1
            raise

    async def _submit(self, fn: Callable[[], dict]) -> dict:
        if self._queue is None or self._closing:
            raise ServerError("service is not accepting queries")
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        await self._queue.put(_Job(fn, future, loop))
        return await future

    async def _dispatch_loop(self) -> None:
        assert self._queue is not None and self._slots is not None
        loop = asyncio.get_running_loop()
        while True:
            # Acquire the worker slot BEFORE popping anything: the only
            # awaits happen while no job is held, so cancellation (from
            # close()) can never strand popped jobs with unresolved
            # futures -- everything still queued is failed by close().
            await self._slots.acquire()
            try:
                job = await self._queue.get()
            except asyncio.CancelledError:
                self._slots.release()
                raise
            jobs = [job]
            while len(jobs) < self._max_batch:
                try:
                    jobs.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            self._batches_executed += 1
            self._jobs_coalesced += len(jobs)
            executor_future = loop.run_in_executor(
                self._pool, _run_jobs, jobs
            )
            executor_future.add_done_callback(
                lambda _fut: self._slots.release()
            )

    # -- inline (event-loop) operations ------------------------------------------------

    def _do_healthz(self) -> dict:
        state = self._state
        return {
            "status": "ok" if state is not None else "starting",
            "pid": os.getpid(),
            "uptime_s": round(time.monotonic() - self._started_monotonic, 3),
            "store": self._store_path,
            "expanded_to": None if state is None else state.header.expanded_to,
            "serving_cost_bound": None if state is None else state.cost_bound,
            "queries": dict(self._queries),
            "batches_executed": self._batches_executed,
            "jobs_coalesced": self._jobs_coalesced,
            "errors": self._errors,
            "reloads": self._reloads,
            "last_reload_error": self._last_reload_error,
            "workers": self._workers,
            "max_batch": self._max_batch,
        }

    def _do_store_info(self) -> dict:
        state = self.state
        header = state.header
        cm = header.cost_model
        return {
            "path": state.path,
            "format_version": header.format_version,
            "n_qubits": header.n_qubits,
            "degree": header.degree,
            "expanded_to": header.expanded_to,
            "serving_cost_bound": state.cost_bound,
            "total_seen": header.total_seen,
            "level_sizes": list(header.level_sizes),
            "track_parents": header.track_parents,
            "library_fingerprint": header.library_fingerprint,
            "cost_fingerprint": header.cost_fingerprint,
            "kernel": header.kernel,
            "writer": header.writer,
            "cost_model": {
                "v_cost": cm.v_cost,
                "vdag_cost": cm.vdag_cost,
                "cnot_cost": cm.cnot_cost,
                "not_cost": cm.not_cost,
            },
            "index_entries": len(state.batch.remainder_index),
            "gate_kinds": list(header.gate_kinds),
        }


# -- worker-thread query functions (pure reads of frozen state) ------------------------


def _run_jobs(jobs: list[_Job]) -> None:
    """Execute one coalesced batch on a worker thread.

    Results and exceptions cross back to the event loop thread through
    ``call_soon_threadsafe``; a cancelled (e.g. disconnected) waiter is
    skipped rather than poked.
    """
    for job in jobs:
        try:
            outcome: object = job.fn()
            error: BaseException | None = None
        except BaseException as exc:  # noqa: BLE001 -- forwarded to waiter
            outcome, error = None, exc
        job.loop.call_soon_threadsafe(_resolve, job.future, outcome, error)


def _resolve(future, outcome, error) -> None:
    if future.done():
        return
    if error is None:
        future.set_result(outcome)
    else:
        future.set_exception(error)


def _parse_spec(state: StoreState, spec: object):
    from repro.io import parse_target

    if not isinstance(spec, str):
        raise ProtocolError("target must be a spec string")
    return parse_target(spec, n_qubits=state.library.n_qubits)


def _check_query_bound(state: StoreState, params: dict) -> int:
    from repro.io import resolve_cost_bound

    bound = params.get("cost_bound")
    if bound is not None and (not isinstance(bound, int) or bound < 0):
        raise ProtocolError("cost_bound must be a non-negative integer")
    return resolve_cost_bound(bound, state.cost_bound, state.path)


def _synthesize_bounded(
    state: StoreState, target, bound: int, allow_not: bool, all_: bool
) -> list:
    """Synthesize under a per-query bound with local-identical errors.

    A ``CostBoundExceededError`` must cite the *resolved query* bound --
    the bound a local ``BatchSynthesizer(search, cost_bound=bound)``
    would have been built with -- not the (possibly deeper) serving
    bound, so the server-side message stays byte-identical to the
    ``--store`` path's.
    """
    description = f"permutation {target.cycle_string()}"
    try:
        if all_:
            results = state.batch.synthesize_all(target, allow_not=allow_not)
        else:
            results = [state.batch.synthesize(target, allow_not=allow_not)]
    except CostBoundExceededError:
        raise CostBoundExceededError(description, bound) from None
    kept = [result for result in results if result.cost <= bound]
    if not kept:
        raise CostBoundExceededError(description, bound)
    return kept


def _run_synth(state: StoreState, params: dict) -> dict:
    from repro.io import result_to_dict

    target = _parse_spec(state, params.get("target"))
    bound = _check_query_bound(state, params)
    allow_not = bool(params.get("allow_not", True))
    results = _synthesize_bounded(
        state, target, bound, allow_not, bool(params.get("all", False))
    )
    return {
        "target": target.cycle_string(),
        "cost": results[0].cost,
        "results": [result_to_dict(result) for result in results],
    }


def _run_synth_batch(state: StoreState, params: dict) -> dict:
    """One entry per spec, errors reported per entry, never wholesale.

    The success path is exactly
    :meth:`BatchSynthesizer.synthesize_many`'s loop body, so an all-ok
    batch returns results identical to calling it directly
    (``tests/test_server.py`` and ``benchmarks/bench_serve.py`` pin
    this); any per-target failure -- unparseable spec, over-bound cost
    -- becomes that entry's structured ``{ok: false, error}`` record
    instead of failing the sibling targets.
    """
    from repro.errors import ReproError
    from repro.io import result_to_dict
    from repro.server.protocol import error_payload

    specs = params.get("targets")
    if not isinstance(specs, list):
        raise ProtocolError("targets must be a list of spec strings")
    bound = _check_query_bound(state, params)
    allow_not = bool(params.get("allow_not", True))

    entries: list[dict] = []
    failures = 0
    for spec in specs:
        try:
            target = _parse_spec(state, spec)
            result = _synthesize_bounded(
                state, target, bound, allow_not, all_=False
            )[0]
            entries.append({"ok": True, "result": result_to_dict(result)})
        except ReproError as exc:
            failures += 1
            entries.append({"ok": False, "error": error_payload(exc)[0]})
    return {"results": entries, "count": len(entries), "failures": failures}


def _run_cost_table(state: StoreState, params: dict) -> dict:
    # Same validation and error codes as the synth endpoints; the full
    # table was built once at open, so a bound is just a slice (class
    # membership by *minimal* cost never changes with the bound).
    bound = _check_query_bound(state, params)
    table = state.table
    classes = table.classes[: bound + 1]
    payload = {
        "cost_bound": bound,
        "n_qubits": table.n_qubits,
        "g_sizes": [len(members) for members in classes],
        "b_sizes": list(table.b_sizes[: bound + 1]),
        "a_sizes": list(table.a_sizes[: bound + 1]),
    }
    if params.get("include_members", False):
        payload["members"] = [
            [perm.cycle_string() for perm in members]
            for members in classes
        ]
    return payload
