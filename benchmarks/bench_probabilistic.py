"""E9 -- Section 4 / Figure 3: probabilistic circuits and automata.

Regenerates the quantum-automata artifacts: the controlled random number
generator (synthesized from spec at the minimal cost of one controlled-V
per random bit), a probabilistic state machine with its exact Markov
chain, and HMM forward likelihoods.
"""

import random
from fractions import Fraction

from repro.automata.hmm import QuantumHMM
from repro.automata.markov import MarkovChain
from repro.automata.rng import ControlledRandomBitGenerator
from repro.automata.spec import MachineSynthesisSpec, synthesize_machine
from repro.gates.library import GateLibrary

HALF = Fraction(1, 2)


def test_rng_synthesis(benchmark, library3, shared_search):
    generator = benchmark.pedantic(
        lambda: ControlledRandomBitGenerator(
            n_random=2, library=library3, search=shared_search
        ),
        rounds=3,
        iterations=1,
    )
    assert generator.cost == 2
    dist = generator.exact_distribution(1)
    assert all(p == Fraction(1, 4) for p in dist.values())
    assert generator.exact_distribution(0) == {(0, 0, 0): Fraction(1)}
    print(f"\ncontrolled RNG: {generator.circuit} (cost {generator.cost})")


def test_rng_throughput(benchmark):
    """Random-bit generation rate of the sampled generator."""
    generator = ControlledRandomBitGenerator(n_random=2)
    rng = random.Random(1)

    bits = benchmark(lambda: generator.generate_bits(1000, rng))
    assert len(bits) == 1000


def test_machine_synthesis_and_chain(benchmark):
    rows = {
        ((0,), (0,)): (0, 0),
        ((0,), (1,)): (0, 1),
        ((1,), (0,)): (1, "?"),
        ((1,), (1,)): (1, "?"),
    }
    spec = MachineSynthesisSpec(input_wires=(0,), state_wires=(1,), rows=rows)
    library = GateLibrary(2)

    def build():
        machine, result = synthesize_machine(spec, library)
        return machine, result

    machine, result = benchmark.pedantic(build, rounds=3, iterations=1)
    assert result.cost == 1
    chain = MarkovChain.from_machine(machine, (1,))
    assert chain.matrix == ((HALF, HALF), (HALF, HALF))
    assert chain.is_irreducible()
    print(f"\nmachine circuit: {result.circuit}; "
          f"stationary = {chain.stationary_distribution()}")


def test_hmm_forward_exact(benchmark):
    rows = {
        ((0,), (0,)): (0, 0),
        ((0,), (1,)): (0, 1),
        ((1,), (0,)): (1, "?"),
        ((1,), (1,)): (1, "?"),
    }
    spec = MachineSynthesisSpec(input_wires=(0,), state_wires=(1,), rows=rows)
    machine, _result = synthesize_machine(spec, GateLibrary(2))
    hmm = QuantumHMM(machine)
    observations = [(1,)] * 8
    inputs = [(1,)] * 8

    likelihood = benchmark(
        lambda: hmm.sequence_probability(observations, inputs=inputs)
    )
    assert likelihood == 1
