"""E6 -- Figures 4 and 8: Peres synthesis at quantum cost 4.

The paper: "It took 9 CPU seconds (on a 850MHz Pentium III) to
synthesize the Peres circuit (cost = 4)" and "our synthesis algorithm
found two implementations for Peres", related by swapping every V with
V+.  This benchmark reproduces both facts and times the synthesis from a
cold search (the honest analogue of the paper's 9 s) and from a shared
warm search.
"""

from repro.core.mce import express, express_all
from repro.core.search import CascadeSearch
from repro.gates import named
from repro.gates.kinds import GateKind
from repro.render.diagram import circuit_diagram
from repro.sim.verify import verify_synthesis


def test_peres_cold_synthesis(benchmark, library3):
    """Cold run: build the BFS from scratch each time (paper: 9 s)."""

    def synthesize():
        search = CascadeSearch(library3, track_parents=True)
        return express(named.PERES, library3, search=search)

    result = benchmark.pedantic(synthesize, rounds=3, iterations=1)
    assert result.cost == 4
    assert verify_synthesis(result)
    print(f"\nPeres: {result.circuit}")
    print(circuit_diagram(result.circuit))


def test_peres_both_implementations(benchmark, library3, shared_search):
    results = benchmark(
        lambda: express_all(named.PERES, library3, search=shared_search)
    )
    assert len(results) == 2
    for result in results:
        assert result.cost == 4
        assert result.circuit.binary_permutation() == named.PERES

    # Figure 8 is Figure 4 with all V and V+ swapped.
    kinds_a = [g.kind for g in results[0].circuit.gates]
    kinds_b = [g.kind for g in results[1].circuit.gates]
    swap = {GateKind.V: GateKind.VDAG, GateKind.VDAG: GateKind.V,
            GateKind.CNOT: GateKind.CNOT}
    assert [swap[k] for k in kinds_a] == kinds_b
    print("\nPeres implementations:")
    for result in results:
        print(f"  {result.circuit}")


def test_figure4_cascade_validates(benchmark):
    """The literal printed cascade V_CB*F_BA*V_CA*V+_CB."""
    from repro.core.circuit import Circuit

    def check():
        circuit = Circuit.from_names("V_CB F_BA V_CA V+_CB", 3)
        return circuit.binary_permutation()

    perm = benchmark(check)
    assert perm == named.PERES
