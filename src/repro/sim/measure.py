"""Measurement: sampling and empirical distributions.

Measuring a quaternary pattern is exact and local: binary wires give
deterministic bits, V0/V1 wires give independent fair coins (Section 2 of
the paper: |amplitude|^2 = 1/2 on both basis states).  This module turns
that into seeded samplers and empirical-frequency helpers used by the
automata layer, the examples and the statistical tests.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from fractions import Fraction

from repro.core.circuit import Circuit
from repro.mvl.patterns import (
    Pattern,
    pattern_from_bits,
    pattern_measurement_distribution,
)


def sample_pattern(pattern: Pattern, rng: random.Random) -> tuple[int, ...]:
    """Measure every wire of a pattern once (Born rule, seeded)."""
    bits = []
    for value in pattern:
        if value.is_binary:
            bits.append(value.bit)
        else:
            bits.append(rng.randrange(2))
    return tuple(bits)


def sample_circuit(
    circuit: Circuit,
    input_bits: Sequence[int],
    rng: random.Random,
    shots: int = 1,
) -> list[tuple[int, ...]]:
    """Run a circuit on classical bits and measure, *shots* times.

    The quaternary output pattern is computed once (strict semantics);
    each shot then samples the measurement distribution independently,
    matching the physics (identical preparations, independent
    measurements).
    """
    output = circuit.strict_apply(pattern_from_bits(input_bits))
    return [sample_pattern(output, rng) for _ in range(shots)]


def empirical_distribution(
    samples: Sequence[tuple[int, ...]]
) -> dict[tuple[int, ...], float]:
    """Relative frequencies of measurement outcomes."""
    counts: dict[tuple[int, ...], int] = {}
    for s in samples:
        counts[s] = counts.get(s, 0) + 1
    total = len(samples)
    return {outcome: c / total for outcome, c in sorted(counts.items())}


def exact_output_distribution(
    circuit: Circuit, input_bits: Sequence[int]
) -> dict[tuple[int, ...], Fraction]:
    """Exact measurement distribution of a circuit on classical inputs."""
    output = circuit.strict_apply(pattern_from_bits(input_bits))
    return pattern_measurement_distribution(output)


def total_variation_distance(
    exact: dict[tuple[int, ...], Fraction],
    empirical: dict[tuple[int, ...], float],
) -> float:
    """TV distance between an exact and an empirical distribution.

    Used by statistical tests: for N samples the expected TV distance is
    O(sqrt(K/N)) for K outcomes, so tests can bound it robustly.
    """
    keys = set(exact) | set(empirical)
    return 0.5 * sum(
        abs(float(exact.get(k, 0)) - empirical.get(k, 0.0)) for k in keys
    )
