"""Cross-simulator performance: the three semantic levels.

Not a paper table -- infrastructure measurements justifying the
library's layering: the quaternary product-state path (the paper's
abstraction) is orders of magnitude faster than full statevector
simulation, which in turn dwarfs the exact dyadic oracle.  All three
agree bit-for-bit on reasonable cascades (asserted here as well).
"""

import numpy as np

from repro.core.circuit import Circuit
from repro.mvl.patterns import binary_patterns
from repro.sim.exact import ExactSimulator
from repro.sim.product_state import ProductStateSimulator
from repro.sim.statevector import StatevectorSimulator

CASCADE = Circuit.from_names(
    "V_CB F_BA V_CA V+_CB F_BA V+_CB F_BA V_CA V_CB", 3
)
PATTERNS = list(binary_patterns(3))


def test_product_state_simulation(benchmark):
    simulator = ProductStateSimulator(CASCADE)

    def run_all():
        return [simulator.run(p) for p in PATTERNS]

    outputs = benchmark(run_all)
    assert len(outputs) == 8


def test_statevector_simulation(benchmark):
    simulator = StatevectorSimulator(3)

    def run_all():
        return [simulator.run(CASCADE, p) for p in PATTERNS]

    states = benchmark(run_all)
    assert all(np.isclose(np.vdot(s, s).real, 1.0) for s in states)


def test_exact_simulation(benchmark):
    simulator = ExactSimulator(3)

    def run_all():
        return [simulator.run(CASCADE, p) for p in PATTERNS]

    states = benchmark(run_all)
    assert len(states) == 8


def test_all_three_agree():
    """Agreement assertion (outside benchmarking): exact == numpy == MV."""
    product = ProductStateSimulator(CASCADE)
    numeric = StatevectorSimulator(3)
    exact = ExactSimulator(3)
    from repro.sim.statevector import pattern_statevector

    for pattern in PATTERNS:
        mv_out = product.run(pattern)
        fast = numeric.run(CASCADE, pattern)
        slow = np.array(
            [x.to_complex() for x in exact.run(CASCADE, pattern).column_vector()]
        )
        assert np.array_equal(fast, slow)
        assert np.array_equal(fast, pattern_statevector(mv_out))
