"""E11 -- search-space growth and the paper's cb = 7 memory bound.

The paper: "The constant cb is the upper-bound cost that we can apply in
a particular computer (due to finite memory size).  In our computer,
cb = 7."  This benchmark measures |B[k]| / |A[k]| growth for the 3-qubit
library, extends one level beyond the paper (cb = 8 -- a beyond-paper
data point), and contrasts the 2-qubit search.
"""

from repro.core.search import CascadeSearch
from repro.gates.library import GateLibrary
from repro.render.tables import format_table

EXPECTED_B = [1, 18, 162, 1017, 5364, 25761, 118888, 538191]


def test_growth_to_paper_bound(benchmark, library3):
    def run():
        search = CascadeSearch(library3, track_parents=False)
        search.extend_to(7)
        return search.stats()

    stats = benchmark.pedantic(run, rounds=3, iterations=1)
    assert list(stats.level_sizes) == EXPECTED_B
    rows = [
        ["|B[k]|", *stats.level_sizes],
        ["|A[k]|", *stats.a_sizes],
    ]
    print("\n" + format_table(["k", *range(8)], rows))
    growth = [
        stats.level_sizes[k] / stats.level_sizes[k - 1] for k in range(2, 8)
    ]
    print("level growth factors:", [f"{g:.2f}" for g in growth])


def test_beyond_paper_cost_8(benchmark, library3):
    """One level past the paper's memory bound (~2.4M new cascades)."""

    def run():
        search = CascadeSearch(library3, track_parents=False)
        search.extend_to(8)
        return search

    search = benchmark.pedantic(run, rounds=1, iterations=1)
    b8 = search.level_size(8)
    assert b8 == 2_386_293
    # Extract |G[8]| -- a value the paper could not compute.
    from repro.core.fmcf import find_minimum_cost_circuits

    table = find_minimum_cost_circuits(library3, cost_bound=8, search=search)
    print(f"\n|B[8]| = {b8}, |A[8]| = {search.total_seen()}, "
          f"|G[8]| = {table.g_sizes[8]} (beyond-paper extension)")
    assert table.g_sizes == [1, 6, 24, 51, 84, 156, 398, 540, 444]
    assert table.total_synthesized() == 1704


def test_two_qubit_search_saturates(benchmark):
    """The 2-qubit search exhausts its reachable set quickly."""
    library = GateLibrary(2)

    def run():
        search = CascadeSearch(library, track_parents=False)
        search.extend_to(12)
        return search.stats()

    stats = benchmark(run)
    # Once saturated, new levels are empty.
    assert stats.level_sizes[-1] == 0
    print(f"\n2-qubit closure saturates at {stats.total_seen} cascades "
          f"(depth {max(k for k, s in enumerate(stats.level_sizes) if s)})")
