"""Trace/span ID minting for request correlation across the fleet.

One query that enters the router, trips a circuit breaker, and lands
on its second-choice replica leaves records in three places: the
router's access log, the landing replica's access log, and (on
failure) the client-visible error payload.  Correlating them needs a
shared ID minted once at the fleet edge.  :class:`TraceSource` is that
mint: the router stamps a ``trace_id`` on every request that arrives
without one, and a fresh ``span_id`` per delivery attempt, so the
attempt list in the router's record joins to the per-replica records
one-to-one.

IDs are lowercase hex (16 chars for traces, 8 for spans -- enough
entropy for log joining, short enough to read in a terminal).  By
default they come from ``os.urandom``; a seeded source draws from
``random.Random`` instead so tests and goldens get reproducible IDs.
Minting takes a lock only on the seeded path (``random.Random`` is not
thread-safe); the urandom path is lock-free.
"""

from __future__ import annotations

import os
import random
import threading

from ..errors import ProtocolError

#: Wire field / HTTP header names for trace propagation.  NDJSON uses
#: the bare names as optional top-level keys; HTTP uses the headers.
TRACE_FIELD = "trace_id"
SPAN_FIELD = "span_id"
TRACE_HEADER = "X-Repro-Trace-Id"
SPAN_HEADER = "X-Repro-Span-Id"

_MAX_ID_LEN = 128


def validate_trace_field(value, field: str):
    """Pass through a well-formed trace/span field (None or short str).

    The protocol treats these as opaque strings -- clients may bring
    their own correlation IDs -- but bounds them so a hostile frame
    cannot smuggle megabytes into every access-log record.
    """
    if value is None:
        return None
    if not isinstance(value, str) or not value:
        raise ProtocolError(f"{field} must be a non-empty string")
    if len(value) > _MAX_ID_LEN:
        raise ProtocolError(f"{field} too long (max {_MAX_ID_LEN} chars)")
    if any(c.isspace() or not c.isprintable() for c in value):
        raise ProtocolError(f"{field} must be printable with no whitespace")
    return value


class TraceSource:
    """Mints ``trace_id`` / ``span_id`` strings.

    ``seed=None`` (production) draws from ``os.urandom``; an int seed
    gives a deterministic stream for tests.
    """

    def __init__(self, seed: int | None = None):
        self._rng = None if seed is None else random.Random(seed)
        self._lock = threading.Lock()

    def _hex(self, nbytes: int) -> str:
        if self._rng is None:
            return os.urandom(nbytes).hex()
        with self._lock:
            return f"{self._rng.getrandbits(nbytes * 8):0{nbytes * 2}x}"

    def trace_id(self) -> str:
        """A new 16-hex-char trace ID."""
        return self._hex(8)

    def span_id(self) -> str:
        """A new 8-hex-char span ID (one per delivery attempt)."""
        return self._hex(4)
