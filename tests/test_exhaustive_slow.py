"""Exhaustive (slow-marked) sweeps: the strongest form of Theorem 1/3.

These tests cover *every* member of the cost classes rather than
samples.  They run in a few minutes and are marked ``slow``; CI can run
``pytest -m "not slow"`` for the quick lane.
"""

import pytest

from repro.core.mce import express
from repro.core.theorems import stabilizer_group
from repro.gates import named
from repro.sim.verify import verify_synthesis


@pytest.mark.slow
class TestExhaustiveTheorem1:
    def test_every_g_member_up_to_cost_5_resynthesizes(
        self, cost_table5, library3, search3
    ):
        """All 322 functions of cost <= 5: express() returns exactly the
        class cost and a fully verified circuit."""
        for cost in range(6):
            for target in cost_table5.members(cost):
                result = express(target, library3, search=search3)
                assert result.cost == cost
                assert result.circuit.binary_permutation() == target

    def test_every_g4_and_g5_member_verifies_exactly(
        self, cost_table5, library3, search3
    ):
        for cost in (4, 5):
            for target in cost_table5.members(cost):
                result = express(target, library3, search=search3)
                report = verify_synthesis(result)
                assert report, (target.cycle_string(), report.failures)


@pytest.mark.slow
class TestExhaustiveGroupMembership:
    def test_every_class_member_is_in_the_stabilizer_group(self, cost_table7):
        """G[k] ⊆ G = Stab(0) for every k (Schreier-Sims membership)."""
        group = stabilizer_group(3)
        for members in cost_table7.classes:
            for perm in members:
                assert perm in group

    def test_class_sizes_sum_below_group_order(self, cost_table7):
        assert cost_table7.total_synthesized() <= stabilizer_group(3).order()


@pytest.mark.slow
class TestExhaustiveCosets:
    def test_full_coset_products_distinct_at_cost_4(self, cost_table7):
        """All 8 x 84 NOT-layer products of G[4] are distinct in S8."""
        layers = named.not_group(3)
        products = {
            (a * g).images for a in layers for g in cost_table7.members(4)
        }
        assert len(products) == 8 * 84
