"""Unit tests for PermutationGroup (repro.perm.group)."""

import random

import pytest

from repro.errors import InvalidPermutationError, ReproError
from repro.perm.group import PermutationGroup
from repro.perm.named_groups import symmetric_group
from repro.perm.permutation import Permutation


class TestBasics:
    def test_order_of_s8(self):
        assert symmetric_group(8).order() == 40320

    def test_degree_and_generators(self):
        g = symmetric_group(5)
        assert g.degree == 5
        assert len(g.generators) == 2

    def test_identity_generators_dropped(self):
        g = PermutationGroup([Permutation.identity(4)], degree=4)
        assert g.generators == ()
        assert g.order() == 1
        assert g.is_trivial()

    def test_empty_needs_degree(self):
        with pytest.raises(InvalidPermutationError):
            PermutationGroup([])

    def test_mixed_degree_generators_rejected(self):
        with pytest.raises(InvalidPermutationError):
            PermutationGroup(
                [Permutation.identity(3), Permutation.transposition(4, 0, 1)]
            )


class TestMembership:
    def test_contains_products(self):
        g = symmetric_group(6)
        rng = random.Random(3)
        element = g.random_element(rng)
        assert element in g

    def test_not_contains_wrong_degree(self):
        assert Permutation.identity(5) not in symmetric_group(6)

    def test_not_contains_non_permutation(self):
        assert "x" not in symmetric_group(4)

    def test_identity_always_contained(self):
        g = PermutationGroup([], degree=9)
        assert Permutation.identity(9) in g

    def test_alternating_membership(self):
        a4 = PermutationGroup(
            [
                Permutation.from_cycles(4, [(1, 2, 3)]),
                Permutation.from_cycles(4, [(2, 3, 4)]),
            ]
        )
        assert Permutation.transposition(4, 0, 1) not in a4


class TestEnumeration:
    def test_elements_count_matches_order(self):
        g = symmetric_group(5)
        elements = list(g.elements())
        assert len(elements) == 120
        assert len(set(elements)) == 120

    def test_elements_of_trivial_group(self):
        g = PermutationGroup([], degree=3)
        assert list(g) == [Permutation.identity(3)]

    def test_enumeration_limit(self):
        # S12 has order ~4.8e8 > limit.
        with pytest.raises(ReproError):
            next(iter(symmetric_group(12).elements()))
        # but order() itself is fine
        assert symmetric_group(12).order() == 479001600

    def test_random_element_is_member_and_seeded(self):
        g = symmetric_group(7)
        a = g.random_element(random.Random(42))
        b = g.random_element(random.Random(42))
        assert a == b
        assert a in g


class TestRelations:
    def test_subgroup_relation(self):
        s4 = symmetric_group(4)
        a4 = PermutationGroup(
            [
                Permutation.from_cycles(4, [(1, 2, 3)]),
                Permutation.from_cycles(4, [(2, 3, 4)]),
            ]
        )
        assert a4.is_subgroup_of(s4)
        assert not s4.is_subgroup_of(a4)

    def test_equals(self):
        g1 = symmetric_group(4)
        g2 = PermutationGroup(
            [Permutation.transposition(4, i, i + 1) for i in range(3)]
        )
        assert g1.equals(g2) and g2.equals(g1)

    def test_subgroup_constructor_validates(self):
        s4 = symmetric_group(4)
        sub = s4.subgroup([Permutation.from_cycles(4, [(1, 2, 3)])])
        assert sub.order() == 3
        a4 = PermutationGroup(
            [
                Permutation.from_cycles(4, [(1, 2, 3)]),
                Permutation.from_cycles(4, [(2, 3, 4)]),
            ]
        )
        with pytest.raises(InvalidPermutationError):
            a4.subgroup([Permutation.transposition(4, 0, 1)])


class TestStabilizerAndOrbit:
    def test_stabilizer_of_point_in_s8(self):
        # The paper's |G| = 5040: stabilizer of the all-zero pattern.
        stab = symmetric_group(8).stabilizer(0)
        assert stab.order() == 5040
        assert all(g(0) == 0 for g in stab.generators)

    def test_stabilizer_in_cyclic_group(self):
        c = PermutationGroup([Permutation.from_cycles(5, [(1, 2, 3, 4, 5)])])
        assert c.stabilizer(0).order() == 1

    def test_stabilizer_point_out_of_range(self):
        with pytest.raises(InvalidPermutationError):
            symmetric_group(4).stabilizer(4)

    def test_stabilizer_of_trivial_group(self):
        g = PermutationGroup([], degree=4)
        assert g.stabilizer(2).order() == 1

    def test_orbit_transitive_group(self):
        assert symmetric_group(6).orbit(3) == frozenset(range(6))

    def test_orbit_intransitive_group(self):
        g = PermutationGroup([Permutation.from_cycles(6, [(1, 2), (4, 5)])])
        assert g.orbit(0) == frozenset({0, 1})
        assert g.orbit(5) == frozenset({5})

    def test_repr(self):
        assert "degree=8" in repr(symmetric_group(8))
