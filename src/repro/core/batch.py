"""Batch synthesis: many MCE queries against one shared closure.

:func:`repro.core.mce.express` scans the B[1], B[2], ... levels linearly
for every call.  When many targets are synthesized against the same
closure -- the precompute-then-serve workflow of ``repro precompute`` /
``repro synth --store`` -- that scan is redundant work: the closure is
fixed, so the *remainder index* (minimal cost and matching cascade rows
per NOT-free reversible function) can be built once and every query
becomes a dictionary lookup.

:class:`BatchSynthesizer` is that index.  It wraps any expanded
:class:`CascadeSearch` -- freshly computed or loaded from a store -- and
answers:

* single targets (:meth:`synthesize`, :meth:`synthesize_all`) with
  results identical to :func:`express` / :func:`express_all`,
* explicit batches (:meth:`synthesize_many`),
* the vectorized "everything up to the bound" modes used by FMCF:
  :meth:`synthesize_level` emits one result per G[k] (or S8[k]) member
  and :meth:`cost_table` rebuilds the paper's Table 2 from the index
  without re-scanning the closure.

The index maps remainders to *global closure rows* rather than raw
permutation bytes, so it serializes compactly (the v2 and v3 stores
embed it; see :mod:`repro.core.store`) and witness extraction walks
parent arrays without any byte-level lookup.  When a search arrives
from a store with the index already attached
(:meth:`CascadeSearch.attach_remainder_index`), construction does no
closure scan at all -- the store open plus first query costs
milliseconds instead of seconds.

Against a compressed v3 store the row accessors used here resolve
through lazy per-level chunks: each index hit or witness walk touches
one level of one section, which is decompressed on first touch and
held in the process-wide section cache
(:func:`repro.core.store.section_cache_stats`).  Queries therefore
stay O(levels touched), not O(store size), at any closure depth --
the same contract the memory-mapped v2 layout gives, paid in one
decompression instead of one page fault.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.errors import CostBoundExceededError, SpecificationError
from repro.core.fmcf import CostTable
from repro.core.mce import (
    DEFAULT_COST_BOUND,
    SynthesisResult,
    _not_layer_result,
    _results_from_rows,
    normalize_target,
)
from repro.core.search import CascadeSearch
from repro.gates.named import not_layer_permutation
from repro.perm.permutation import Permutation

#: The remainder index: remainder images -> (minimal cost, global rows
#: of the matching cascade permutations at that cost, in row order).
RemainderIndex = dict[bytes, tuple[int, Sequence[int]]]


def build_remainder_index(
    search: CascadeSearch, cost_bound: int
) -> RemainderIndex:
    """Scan levels ``1..cost_bound`` for S-fixing cascades and group them.

    The first level containing a remainder defines its minimal cost;
    every matching cascade at that cost is kept (in discovery order) so
    ``synthesize_all`` can enumerate label-level implementations.  The
    scan itself is vectorized (one mask comparison per level); only the
    S-fixing survivors -- a tiny fraction of the closure -- are touched
    in Python.
    """
    index: RemainderIndex = {}
    for cost in range(1, cost_bound + 1):
        rows, remainders = search.s_fixing_rows(cost)
        if not rows:
            continue
        if not isinstance(remainders, list):
            n, width = remainders.shape
            blob = remainders.tobytes()
            remainders = [
                blob[i : i + width] for i in range(0, n * width, width)
            ]
        for row, remainder in zip(rows, remainders):
            hit = index.get(remainder)
            if hit is None:
                index[remainder] = (cost, [row])
            elif hit[0] == cost:
                hit[1].append(row)
    return index


class BatchSynthesizer:
    """O(1)-per-query synthesis against one shared expanded closure.

    Args:
        search: the closure to serve from.  It is extended to
            *cost_bound* on construction if needed; a search loaded from
            a store at that bound is served as-is, with no re-expansion.
        cost_bound: highest cost the index covers.  Defaults to the
            search's already-expanded bound -- including a deliberate
            bound of 0 for a store-loaded search -- or the paper's
            ``cb = 7`` for a fresh, never-expanded search.

    Witness extraction (:meth:`synthesize` and friends) needs a
    parent-tracking search; counting-only stores still support
    :meth:`minimal_cost`, :meth:`targets_at_cost` and :meth:`cost_table`.

    **Thread safety.**  After construction the index itself is never
    mutated, and every query method only *reads*: the remainder
    dictionary, the wrapped search's row accessors and the library.
    Two caveats keep that from being a blanket guarantee:

    * the wrapped :class:`CascadeSearch` builds some byte-level caches
      lazily on first touch -- call :meth:`CascadeSearch.freeze` (or
      :meth:`warm`, which does it for you and exercises every query
      path once) before sharing an instance across threads;
    * the search must not be extended or re-kerneled while queries are
      in flight -- freezing makes those operations raise instead of
      racing.  For a parallel-kernel search
      (``CascadeSearch(kernel="parallel")``) the freeze also releases
      the expansion worker pool and scratch mappings, so a serving
      process never holds idle forked workers; the sharded dedup table
      stays alive (row lookups read it).

    Lazy v3 chunk decompression needs no extra care: the section cache
    is lock-protected and keyed by file identity, so concurrent worker
    threads (and reloads swapping in a replacement store at the same
    path) read consistent bytes.

    This is the contract the long-lived service (:mod:`repro.server`)
    relies on: one frozen, warmed ``BatchSynthesizer`` serves all
    worker threads, and a store reload builds a *new* instance and
    atomically swaps the reference rather than mutating the old one.
    """

    def __init__(self, search: CascadeSearch, cost_bound: int | None = None):
        if cost_bound is None:
            if search.expanded_to or search.was_restored:
                cost_bound = search.expanded_to
            else:
                cost_bound = DEFAULT_COST_BOUND
        search.extend_to(cost_bound)
        self._search = search
        self._library = search.library
        self._cost_bound = cost_bound
        attached = search.attached_remainder_index
        if attached is not None and attached[0] >= cost_bound:
            attached_bound, index = attached
            if attached_bound > cost_bound:
                index = {
                    remainder: hit
                    for remainder, hit in index.items()
                    if hit[0] <= cost_bound
                }
            self._index: RemainderIndex = index
        else:
            self._index = build_remainder_index(search, cost_bound)
        n_binary = self._library.space.n_binary
        self._identity_images = Permutation.identity(n_binary).images

    def warm(self) -> "BatchSynthesizer":
        """Freeze the search and pre-touch every query path once.

        Materializes all lazily-built state (see
        :meth:`CascadeSearch.freeze`) and runs one representative query
        per code path -- an index lookup, a witness extraction and a
        cost-table scan -- so the first real query after ``warm()``
        hits only immutable, already-faulted-in structures.  Safe to
        call more than once; returns ``self`` for chaining.
        """
        self._search.freeze()
        if self._search.tracks_parents:
            for remainder, (_cost, rows) in self._index.items():
                if remainder != self._identity_images:
                    # One witness walk faults in the parent arrays.
                    self._search.witness_indices_for_row(int(rows[0]))
                    break
        self.cost_table(min(1, self._cost_bound))
        return self

    # -- introspection -----------------------------------------------------------------

    @property
    def search(self) -> CascadeSearch:
        return self._search

    @property
    def cost_bound(self) -> int:
        return self._cost_bound

    @property
    def remainder_index(self) -> RemainderIndex:
        """The (read-only) remainder index; the v2 store serializes this."""
        return self._index

    def __len__(self) -> int:
        """Distinct NOT-free reversible functions the index can serve."""
        # The identity is served at cost 0 even though its first
        # non-trivial cascade appears deeper in the closure.
        return len(self._index) + (
            self._identity_images not in self._index
        )

    # -- single-target queries ----------------------------------------------------------

    def _lookup(
        self, remainder: Permutation, description: str
    ) -> tuple[int, Sequence[int]]:
        hit = self._index.get(remainder.images)
        if hit is None:
            raise CostBoundExceededError(description, self._cost_bound)
        return hit

    def synthesize(
        self, target: Permutation, allow_not: bool = True
    ) -> SynthesisResult:
        """One minimum-cost implementation; equals :func:`express`."""
        return self._synthesize_impl(target, allow_not, first_only=True)[0]

    def synthesize_all(
        self, target: Permutation, allow_not: bool = True
    ) -> list[SynthesisResult]:
        """All label-level implementations; equals :func:`express_all`."""
        return self._synthesize_impl(target, allow_not, first_only=False)

    def _synthesize_impl(
        self, target: Permutation, allow_not: bool, first_only: bool
    ) -> list[SynthesisResult]:
        not_mask, remainder, not_gates = normalize_target(
            target, self._library, allow_not
        )
        if remainder.is_identity:
            return [
                _not_layer_result(target, self._library, not_mask, not_gates)
            ]
        if not self._search.tracks_parents:
            raise SpecificationError(
                "closure was computed without parent tracking; it can "
                "answer costs but not witness circuits"
            )
        _cost, rows = self._lookup(
            remainder, f"permutation {target.cycle_string()}"
        )
        return _results_from_rows(
            rows,
            self._search,
            target,
            not_mask,
            not_gates,
            self._search.cost_model,
            first_only,
        )

    def minimal_cost(self, target: Permutation, allow_not: bool = True) -> int:
        """Minimal quantum cost of a target, without witness extraction."""
        _not_mask, remainder, _gates = normalize_target(
            target, self._library, allow_not
        )
        if remainder.is_identity:
            return 0
        cost, _rows = self._lookup(
            remainder, f"permutation {target.cycle_string()}"
        )
        return cost

    # -- batch queries ------------------------------------------------------------------

    def synthesize_many(
        self, targets: Iterable[Permutation], allow_not: bool = True
    ) -> list[SynthesisResult]:
        """One result per target, in input order.

        Raises on the first unsynthesizable target; pre-check with
        :meth:`minimal_cost` to triage a mixed batch.
        """
        return [self.synthesize(target, allow_not) for target in targets]

    def targets_at_cost(
        self, cost: int, include_not_layers: bool = False
    ) -> list[Permutation]:
        """All reversible functions of minimal NOT-free cost *cost*.

        With ``include_not_layers``, each G[cost] member is composed with
        every free NOT layer, enumerating the paper's S8[cost] coset
        (``2**n`` targets per member, Theorem 2).
        """
        if not 0 <= cost <= self._cost_bound:
            raise SpecificationError(
                f"cost {cost} outside the indexed range 0..{self._cost_bound}"
            )
        members: list[Permutation] = []
        if cost == 0:
            members.append(Permutation.from_images(self._identity_images))
        else:
            for remainder, (first_cost, _rows) in self._index.items():
                if first_cost == cost and remainder != self._identity_images:
                    members.append(Permutation.from_images(remainder))
        if not include_not_layers:
            return members
        if self._library.space.radix != 2:
            raise SpecificationError(
                "NOT layers are a binary (Theorem 2) notion; MV libraries "
                "have none, call targets_at_cost(include_not_layers=False)"
            )
        n_qubits = self._library.n_qubits
        layers = [
            not_layer_permutation(mask, n_qubits)
            for mask in range(2**n_qubits)
        ]
        return [layer * member for member in members for layer in layers]

    def synthesize_level(
        self, cost: int, include_not_layers: bool = False
    ) -> list[SynthesisResult]:
        """Synthesize every G[cost] (or S8[cost]) member -- FMCF, vectorized.

        One witness-backed result per target; by Theorem 3 each comes out
        at exactly minimal cost *cost* (quantum cost of the 2-qubit part).
        """
        return self.synthesize_many(
            self.targets_at_cost(cost, include_not_layers)
        )

    def cost_table(self, cost_bound: int | None = None) -> CostTable:
        """The paper's Table 2 rebuilt from the index (FMCF equivalent).

        Produces the same :class:`CostTable` as
        :func:`find_minimum_cost_circuits` (default semantics, identity
        in G[0]) without re-scanning the closure levels.
        """
        if cost_bound is None:
            cost_bound = self._cost_bound
        if not 0 <= cost_bound <= self._cost_bound:
            raise SpecificationError(
                f"cost bound {cost_bound} outside the indexed range "
                f"0..{self._cost_bound}"
            )
        classes: list[list[Permutation]] = [
            [Permutation.from_images(self._identity_images)]
        ]
        for _ in range(cost_bound):
            classes.append([])
        for remainder, (first_cost, _rows) in self._index.items():
            if remainder == self._identity_images or first_cost > cost_bound:
                continue
            classes[first_cost].append(Permutation.from_images(remainder))
        stats = self._search.stats()
        b_sizes = list(stats.level_sizes[: cost_bound + 1])
        a_sizes = list(stats.a_sizes[: cost_bound + 1])
        return CostTable(
            cost_bound=cost_bound,
            n_qubits=self._library.n_qubits,
            classes=classes,
            b_sizes=b_sizes,
            a_sizes=a_sizes,
            stats=stats,
        )
