"""Lifecycle and protocol tests for the synthesis service (repro.server).

Covers the service's whole life: start, serving under concurrency,
SIGHUP store reload (both in-process and against a real ``repro
serve`` subprocess), multi-store routing by alias/fingerprint, the
UNIX-socket transport, the NDJSON access log, healthz percentiles,
malformed requests mapping to structured errors, and the golden
guarantee that ``repro synth --server`` output is byte-identical to
``repro synth --store`` (body and ``--save`` files) over both
transports.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.cli import main
from repro.client import ServeClient, http_request, wait_until_ready
from repro.core.batch import BatchSynthesizer
from repro.core.search import CascadeSearch
from repro.core.store import save_search
from repro.errors import (
    CostBoundExceededError,
    FrozenSearchError,
    InvalidPermutationError,
    ProtocolError,
    ServerError,
    SpecificationError,
)
from repro.gates.library import GateLibrary
from repro.io import load_access_log, open_store, result_to_dict
from repro.server import BackgroundServer, parse_address, parse_endpoint
from repro.server.metrics import Reservoir, ServiceMetrics
from repro.server.protocol import error_payload, error_to_exception
from repro.server.registry import (
    StoreRegistry,
    derive_alias,
    parse_store_spec,
    resolve_specs,
)

BOUND = 4
SHALLOW_BOUND = 3


@pytest.fixture(scope="module")
def store_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("serve") / "closure.rpro"
    search = CascadeSearch(GateLibrary(3), track_parents=True)
    search.extend_to(BOUND)
    save_search(search, path)
    return str(path)


@pytest.fixture(scope="module")
def shallow_store_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("serve-shallow") / "shallow.rpro"
    search = CascadeSearch(GateLibrary(3), track_parents=True)
    search.extend_to(SHALLOW_BOUND)
    save_search(search, path)
    return str(path)


@pytest.fixture(scope="module")
def server(store_path):
    with BackgroundServer(store_path) as srv:
        yield srv


@pytest.fixture(scope="module")
def shallow_server(shallow_store_path):
    with BackgroundServer(shallow_store_path) as srv:
        yield srv


@pytest.fixture(scope="module")
def multi(store_path, shallow_store_path):
    """One server over both stores, with a UNIX socket and access log.

    Yields ``(server, unix_socket_path, access_log_path)``.  The socket
    lives under a short ``/tmp`` dir (AF_UNIX paths are length-capped).
    """
    workdir = tempfile.mkdtemp(prefix="repro-serve-")
    sock = os.path.join(workdir, "serve.sock")
    log = os.path.join(workdir, "access.ndjson")
    try:
        with BackgroundServer(
            [f"deep={store_path}", f"shallow={shallow_store_path}"],
            unix=sock,
            access_log=log,
        ) as srv:
            yield srv, sock, log
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


@pytest.fixture(scope="module")
def reference(store_path):
    """A local BatchSynthesizer over the same store (ground truth)."""
    _header, _library, search = open_store(store_path)
    return BatchSynthesizer(search)


@pytest.fixture()
def client(server):
    with ServeClient(server.address_text) as handle:
        yield handle


class TestProtocolUnits:
    def test_parse_address_forms(self):
        from repro.server.protocol import DEFAULT_PORT

        assert parse_address("1.2.3.4:99") == ("1.2.3.4", 99)
        assert parse_address(":99") == ("127.0.0.1", 99)
        assert parse_address("99") == ("127.0.0.1", 99)
        assert parse_address("myhost") == ("myhost", DEFAULT_PORT)

    def test_parse_address_rejects_bad_ports(self):
        with pytest.raises(SpecificationError):
            parse_address("host:notaport")
        with pytest.raises(SpecificationError):
            parse_address("host:99999")

    def test_cost_bound_error_roundtrips_byte_identical(self):
        original = CostBoundExceededError("permutation (7,8)", 4)
        payload, status = error_payload(original)
        assert status == 422 and payload["code"] == "cost-bound-exceeded"
        rebuilt = error_to_exception(payload)
        assert isinstance(rebuilt, CostBoundExceededError)
        assert str(rebuilt) == str(original)
        assert rebuilt.cost_bound == 4

    def test_unknown_code_becomes_server_error(self):
        exc = error_to_exception({"code": "???", "message": "boom"})
        assert isinstance(exc, ServerError) and "boom" in str(exc)

    def test_internal_errors_do_not_leak_messages(self):
        payload, status = error_payload(RuntimeError("secret detail"))
        assert status == 500
        assert "secret" not in payload["message"]

    def test_parse_endpoint_forms(self):
        assert parse_endpoint("unix:/tmp/x.sock") == ("unix", "/tmp/x.sock")
        assert parse_endpoint("1.2.3.4:99") == ("tcp", ("1.2.3.4", 99))
        assert parse_endpoint(":99") == ("tcp", ("127.0.0.1", 99))
        with pytest.raises(SpecificationError):
            parse_endpoint("unix:")


class TestMetricsUnits:
    def test_reservoir_exact_below_capacity(self):
        reservoir = Reservoir(capacity=512)
        for value in range(1, 101):
            reservoir.observe(float(value))
        summary = reservoir.summary()
        assert summary["count"] == 100
        # Nearest-rank on the exact sample: round(q * 99) + 1.
        assert summary["p50"] == 51.0
        assert summary["p90"] == 90.0
        assert summary["p99"] == 99.0

    def test_reservoir_bounds_memory(self):
        reservoir = Reservoir(capacity=8)
        for value in range(1000):
            reservoir.observe(float(value))
        assert reservoir.count == 1000
        assert len(reservoir._samples) == 8
        summary = reservoir.summary()
        assert 0.0 <= summary["p50"] <= 999.0

    def test_empty_reservoir_has_no_summary(self):
        assert Reservoir().summary() is None
        assert ServiceMetrics().summary() == {
            "queue_wait_ms": {}, "latency_ms": {},
            "queue_wait_recent_ms": {}, "latency_recent_ms": {},
        }

    def test_service_metrics_scale_to_milliseconds(self):
        metrics = ServiceMetrics()
        metrics.observe("synth", queue_wait_s=0.001, latency_s=0.002)
        summary = metrics.summary()
        assert summary["queue_wait_ms"]["synth"]["p50"] == 1.0
        assert summary["latency_ms"]["synth"]["p50"] == 2.0
        assert summary["latency_ms"]["synth"]["count"] == 1


def _fake_state(path: str, lib_fp: str, cost_fp: str, bound: int = 4):
    header = SimpleNamespace(
        library_fingerprint=lib_fp, cost_fingerprint=cost_fp,
        expanded_to=bound,
    )
    return SimpleNamespace(path=path, header=header, cost_bound=bound)


class TestRegistryUnits:
    def test_parse_store_spec_forms(self):
        assert parse_store_spec("a.rpro").path == "a.rpro"
        assert parse_store_spec("fast=a.rpro").alias == "fast"
        assert parse_store_spec("fast=a.rpro").path == "a.rpro"
        assert parse_store_spec("a.rpro").alias is None
        with pytest.raises(SpecificationError):
            parse_store_spec("bad alias=a.rpro")
        with pytest.raises(SpecificationError):
            parse_store_spec("fast=")

    def test_derive_alias_sanitizes_and_dedupes(self):
        assert derive_alias("/stores/closure.rpro", set()) == "closure"
        assert derive_alias("/stores/my store!.rpro", set()) == "my-store-"
        assert derive_alias("closure.rpro", {"closure"}) == "closure-2"
        assert derive_alias("closure.rpro", {"closure", "closure-2"}) == (
            "closure-3"
        )

    def test_resolve_specs_rejects_duplicates_and_empty(self):
        with pytest.raises(SpecificationError):
            resolve_specs(["x=a.rpro", "x=b.rpro"], None)
        with pytest.raises(SpecificationError):
            resolve_specs([], None)

    def test_resolve_sole_and_alias(self):
        registry = StoreRegistry({"only": _fake_state("a", "L1", "C1")})
        assert registry.resolve(None)[0] == "only"
        assert registry.resolve("only")[0] == "only"

    def test_resolve_without_selector_is_ambiguous(self):
        registry = StoreRegistry({
            "a": _fake_state("a", "L1", "C1"),
            "b": _fake_state("b", "L2", "C1"),
        })
        with pytest.raises(ProtocolError) as excinfo:
            registry.resolve(None)
        assert "a" in str(excinfo.value) and "b" in str(excinfo.value)

    def test_resolve_by_fingerprint_prefix(self):
        registry = StoreRegistry({
            "a": _fake_state("a", "L1abc", "C1xyz"),
            "b": _fake_state("b", "L2abc", "C1xyz"),
        })
        assert registry.resolve("L1abc:C1xyz")[0] == "a"
        assert registry.resolve("L2:C1")[0] == "b"
        with pytest.raises(ProtocolError) as excinfo:
            registry.resolve("L:C1")  # matches both libraries
        assert "ambiguous" in str(excinfo.value)

    def test_resolve_unknown_lists_aliases(self):
        registry = StoreRegistry({
            "a": _fake_state("a", "L1", "C1"),
            "b": _fake_state("b", "L2", "C1"),
        })
        with pytest.raises(ProtocolError) as excinfo:
            registry.resolve("nope")
        message = str(excinfo.value)
        assert "nope" in message and "a" in message and "b" in message
        with pytest.raises(ProtocolError):
            registry.resolve(7)


class TestFrozenSearch:
    """The thread-safety contract the service relies on."""

    def test_freeze_blocks_mutation(self, store_path):
        _h, _lib, search = open_store(store_path)
        search.freeze()
        assert search.frozen
        with pytest.raises(FrozenSearchError):
            search.extend_to(BOUND + 1)
        with pytest.raises(FrozenSearchError):
            search.use_kernel("translate")
        with pytest.raises(FrozenSearchError):
            search.attach_remainder_index(BOUND, {})
        # Within-bound extend_to stays a no-op, not an error.
        search.extend_to(BOUND)

    def test_frozen_store_search_still_serves(self, store_path, reference):
        _h, _lib, search = open_store(store_path)
        batch = BatchSynthesizer(search.freeze()).warm()
        from repro.gates import named

        want = reference.synthesize(named.TARGETS["peres"])
        got = batch.synthesize(named.TARGETS["peres"])
        assert result_to_dict(got) == result_to_dict(want)
        assert batch.cost_table().classes == reference.cost_table().classes

    def test_warm_is_idempotent(self, store_path):
        _h, _lib, search = open_store(store_path)
        batch = BatchSynthesizer(search)
        assert batch.warm() is batch
        assert batch.warm() is batch


class TestServing:
    def test_healthz(self, client, store_path):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["store"] == store_path
        assert health["expanded_to"] == BOUND

    def test_store_info_matches_header(self, client, reference):
        info = client.store_info()
        assert info["expanded_to"] == BOUND
        assert info["total_seen"] == reference.search.total_seen()
        assert info["kernel"] == "vector"
        assert info["track_parents"] is True
        assert info["index_entries"] == len(reference.remainder_index)

    def test_synth_matches_local_store(self, client, reference):
        from repro.gates import named

        payload = client.synth("peres")
        local = reference.synthesize(named.TARGETS["peres"])
        assert payload["cost"] == local.cost == 4
        assert payload["results"] == [result_to_dict(local)]

    def test_synth_all_matches_local_store(self, client, reference):
        from repro.gates import named

        payload = client.synth("peres", all=True)
        local = reference.synthesize_all(named.TARGETS["peres"])
        assert payload["results"] == [result_to_dict(r) for r in local]

    def test_synth_results_are_verified_locally(self, client):
        from repro.sim.verify import verify_synthesis

        results = client.synth_results("peres")
        assert len(results) == 1
        assert verify_synthesis(results[0])

    def test_cost_table_matches_local_store(self, client, reference):
        table = reference.cost_table()
        payload = client.cost_table()
        assert payload["g_sizes"] == [len(c) for c in table.classes]
        assert payload["b_sizes"] == list(table.b_sizes)
        assert payload["a_sizes"] == list(table.a_sizes)

    def test_cost_table_members(self, client, reference):
        payload = client.cost_table(cost_bound=2, include_members=True)
        table = reference.cost_table(2)
        assert payload["members"] == [
            [p.cycle_string() for p in members] for members in table.classes
        ]

    def test_over_bound_target_raises_cost_bound_error(self, client):
        with pytest.raises(CostBoundExceededError) as excinfo:
            client.synth("toffoli")  # cost 5 > stored bound 4
        assert excinfo.value.cost_bound == BOUND

    def test_per_query_cost_bound(self, client):
        assert client.synth("peres", cost_bound=4)["cost"] == 4
        with pytest.raises(CostBoundExceededError) as excinfo:
            client.synth("peres", cost_bound=3)
        assert excinfo.value.cost_bound == 3
        # A target missing from the index entirely must still cite the
        # *query* bound (like a local BatchSynthesizer(cost_bound=3)),
        # not the deeper serving bound.
        with pytest.raises(CostBoundExceededError) as excinfo:
            client.synth("toffoli", cost_bound=3)
        assert excinfo.value.cost_bound == 3

    def test_bad_target_is_structured_error(self, client):
        with pytest.raises(InvalidPermutationError):
            client.synth("(1,2,99)")

    def test_http_healthz_and_synth(self, server):
        status, health = http_request(server.address_text, "/healthz")
        assert status == 200 and health["status"] == "ok"
        status, payload = http_request(
            server.address_text, "/synth", method="POST",
            body={"target": "peres"},
        )
        assert status == 200 and payload["cost"] == 4

    def test_http_error_statuses(self, server):
        status, body = http_request(server.address_text, "/no-such")
        assert status == 400 and body["error"]["code"] == "protocol"
        status, body = http_request(
            server.address_text, "/synth", method="POST",
            body={"target": "toffoli"},
        )
        assert status == 422
        assert body["error"]["code"] == "cost-bound-exceeded"


class TestMalformedRequests:
    def test_bad_json_line_yields_protocol_error(self, server):
        with socket.create_connection(server.address, timeout=10) as sock:
            stream = sock.makefile("rwb")
            stream.write(b"{not json at all\n")
            stream.flush()
            import json

            reply = json.loads(stream.readline())
            assert reply["ok"] is False
            assert reply["error"]["code"] == "protocol"
            # The connection survives a malformed line.
            stream.write(
                b'{"id": 2, "op": "healthz", "params": {}}\n'
            )
            stream.flush()
            reply = json.loads(stream.readline())
            assert reply["ok"] is True and reply["id"] == 2

    def test_unknown_op_names_the_op(self, server):
        with socket.create_connection(server.address, timeout=10) as sock:
            stream = sock.makefile("rwb")
            stream.write(b'{"id": 1, "op": "bogus"}\n')
            stream.flush()
            import json

            reply = json.loads(stream.readline())
            assert reply["ok"] is False
            assert "bogus" in reply["error"]["message"]

    def test_large_request_line_is_served_not_reset(self, server):
        # Lines between the old 1 MB stream limit and MAX_BODY used to
        # be dropped with a silent connection reset; they must parse
        # (and here fail as a bad target, structurally).
        spec = "(" + "9" * (2 << 20) + ")"
        with ServeClient(server.address_text) as handle:
            with pytest.raises(InvalidPermutationError):
                handle.synth(spec)
            assert handle.healthz()["status"] == "ok"  # conn still usable

    def test_oversized_line_gets_structured_refusal(self, server):
        import json

        from repro.server.protocol import MAX_BODY

        blob = b'{"id":1,"op":"synth","params":{"target":"' + (
            b"x" * (MAX_BODY + 1024)
        )
        with socket.create_connection(server.address, timeout=30) as sock:
            sock.sendall(blob)
            reply = json.loads(sock.makefile("rb").readline())
            assert reply["ok"] is False
            assert reply["error"]["code"] == "protocol"
            assert "exceeds" in reply["error"]["message"]

    def test_http_garbage_gets_400(self, server):
        with socket.create_connection(server.address, timeout=10) as sock:
            sock.sendall(b"GARBAGE\r\n\r\n")
            assert sock.recv(200).startswith(b"HTTP/1.1 400")

    def test_client_rejects_wrong_params_type(self, client):
        with pytest.raises(ProtocolError):
            client.call("synth", target=123)


class TestConcurrency:
    def test_concurrent_clients_agree_with_local_store(
        self, server, reference
    ):
        from repro.gates import named

        specs = ["peres", "g2", "g3", "g4"]
        expected = {
            spec: result_to_dict(reference.synthesize(named.TARGETS[spec]))
            for spec in specs
        }
        errors: list = []

        def worker() -> None:
            try:
                with ServeClient(server.address_text) as handle:
                    for _round in range(5):
                        for spec in specs:
                            payload = handle.synth(spec)
                            assert payload["results"][0] == expected[spec]
            except Exception as exc:  # noqa: BLE001 -- surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors

    def test_64_target_batch_identical_to_synthesize_many(
        self, server, reference
    ):
        # 64 in-bound targets spread over every cost level, NOT layers
        # included (the S8 coset), exactly as a traffic mix would be.
        targets = []
        for cost in range(BOUND + 1):
            targets.extend(reference.targets_at_cost(cost, True))
        targets = targets[:64]
        assert len(targets) == 64
        specs = [target.cycle_string() for target in targets]
        want = [
            result_to_dict(result)
            for result in reference.synthesize_many(targets)
        ]
        with ServeClient(server.address_text) as handle:
            reply = handle.synth_batch(specs)
        assert reply["count"] == 64 and reply["failures"] == 0
        got = [entry["result"] for entry in reply["results"]]
        assert got == want

    def test_mixed_batch_reports_per_target_failures(self, client):
        reply = client.synth_batch(["peres", "toffoli", "g2"])
        oks = [entry["ok"] for entry in reply["results"]]
        assert oks == [True, False, True]
        assert reply["failures"] == 1
        error = reply["results"][1]["error"]
        assert error["code"] == "cost-bound-exceeded"

    def test_unparseable_spec_fails_only_its_entry(self, client, reference):
        from repro.gates import named

        reply = client.synth_batch(["(1,2,99)", "peres"])
        assert [entry["ok"] for entry in reply["results"]] == [False, True]
        assert reply["results"][0]["error"]["code"] == "bad-target"
        assert reply["results"][1]["result"] == result_to_dict(
            reference.synthesize(named.TARGETS["peres"])
        )


class TestReload:
    def test_in_process_reload_swaps_atomically(self, store_path):
        with BackgroundServer(store_path) as srv:
            with ServeClient(srv.address_text) as handle:
                before = handle.healthz()["reloads"]
                old = handle.synth("peres")
                srv.reload()
                health = handle.healthz()
                assert health["reloads"] == before + 1
                assert health["last_reload_error"] is None
                assert handle.synth("peres") == old

    def test_failed_reload_keeps_serving(self, store_path, tmp_path):
        import shutil

        moving = tmp_path / "moving.rpro"
        shutil.copy(store_path, moving)
        with BackgroundServer(str(moving)) as srv:
            with ServeClient(srv.address_text) as handle:
                old = handle.synth("peres")
                # Replace (never truncate!) the store with garbage: the
                # server's memmap of the old inode must stay intact, so
                # corruption arrives the way `save_search` writes --
                # atomically, via rename.
                corrupt = tmp_path / "corrupt.tmp"
                corrupt.write_bytes(b"definitely not a store")
                os.replace(corrupt, moving)
                srv.reload()
                health = handle.healthz()
                assert health["reloads"] == 0
                assert "StoreError" in health["last_reload_error"]
                # The original store keeps serving.
                assert handle.synth("peres") == old

    def test_store_dir_rescan_picks_up_new_stores(
        self, store_path, shallow_store_path, tmp_path
    ):
        directory = tmp_path / "stores"
        directory.mkdir()
        shutil.copy(store_path, directory / "deep.rpro")
        with BackgroundServer([], store_dir=str(directory)) as srv:
            with ServeClient(srv.address_text) as handle:
                assert sorted(handle.healthz()["stores"]) == ["deep"]
                shutil.copy(shallow_store_path, directory / "shallow.rpro")
                srv.reload()
                health = handle.healthz()
                assert sorted(health["stores"]) == ["deep", "shallow"]
                assert health["reloads"] == 1
                assert handle.synth("swap_bc", store="shallow")["cost"] == 3

    def test_reload_completes_while_pool_is_saturated(self, store_path):
        """Regression: store opens must not queue behind query work.

        With one worker and the pool wedged on a blocking job, a reload
        scheduled on the *query* pool would sit behind the blocker
        forever; the dedicated opener executor must finish it anyway.
        """
        from repro.server.service import SynthesisService

        async def scenario() -> None:
            service = SynthesisService(store_path, workers=1, max_batch=1)
            await service.start()
            release = threading.Event()
            entered = threading.Event()

            def blocker() -> dict:
                entered.set()
                release.wait(30)
                return {}

            trace = {"queue_wait": 0.0, "execute": 0.0}
            jobs = [
                asyncio.ensure_future(service._submit(blocker, dict(trace)))
                for _ in range(3)
            ]
            loop = asyncio.get_running_loop()
            assert await loop.run_in_executor(None, entered.wait, 10), (
                "worker never picked up the blocking job"
            )
            try:
                # Saturated pool: the sole worker is wedged on `blocker`.
                await asyncio.wait_for(service.reload(), timeout=30)
                assert service._m_reloads.value() == 1
            finally:
                release.set()
                await asyncio.gather(*jobs, return_exceptions=True)
                await service.close()

        asyncio.run(scenario())


class TestErrorSplit:
    """Client mistakes must not inflate the server-fault signal."""

    def test_client_errors_counted_separately(self, client):
        before = client.healthz()
        with pytest.raises(InvalidPermutationError):
            client.synth("(1,2,99)")
        with pytest.raises(CostBoundExceededError):
            client.synth("peres", cost_bound=0)
        after = client.healthz()
        assert after["client_errors"] == before["client_errors"] + 2
        assert after["server_errors"] == before["server_errors"]
        # The pre-split key stays as the sum for old scrapers.
        assert after["errors"] == (
            after["client_errors"] + after["server_errors"]
        )


class TestHealthzPercentiles:
    def test_latency_and_queue_wait_percentiles(self, client):
        for _ in range(5):
            client.synth("peres")
        health = client.healthz()
        for dimension in ("latency_ms", "queue_wait_ms"):
            stats = health[dimension]["synth"]
            assert stats["count"] >= 5
            assert 0.0 <= stats["p50"] <= stats["p90"] <= stats["p99"]
        # healthz itself is measured too (inline, zero queue wait).
        assert health["latency_ms"]["healthz"]["count"] >= 1
        assert health["queue_wait_ms"]["healthz"]["p99"] == 0.0


class TestMultiStore:
    def test_healthz_lists_both_stores(self, multi, store_path):
        srv, _sock, _log = multi
        with ServeClient(srv.address_text) as handle:
            health = handle.healthz()
        assert sorted(health["stores"]) == ["deep", "shallow"]
        assert health["stores"]["deep"]["path"] == store_path
        assert health["stores"]["deep"]["expanded_to"] == BOUND
        assert health["stores"]["shallow"]["expanded_to"] == SHALLOW_BOUND
        # Single-store compatibility fields go null on a multi server.
        assert health["store"] is None and health["expanded_to"] is None

    def test_routing_matches_single_store_servers(
        self, multi, server, shallow_server
    ):
        """Byte-identity bar: one two-store process == two one-store ones."""
        srv, _sock, _log = multi
        with ServeClient(srv.address_text) as both, ServeClient(
            server.address_text
        ) as deep_only, ServeClient(shallow_server.address_text) as shallow_only:
            for spec in ("peres", "g2", "swap_bc"):
                assert both.synth(spec, store="deep") == deep_only.synth(spec)
            assert both.synth("swap_bc", store="shallow") == (
                shallow_only.synth("swap_bc")
            )
            # Same closure, different bounds: the shallow alias must
            # refuse what the deep one serves.
            assert both.synth("peres", store="deep")["cost"] == 4
            with pytest.raises(CostBoundExceededError) as excinfo:
                both.synth("peres", store="shallow")
            assert excinfo.value.cost_bound == SHALLOW_BOUND
            assert both.cost_table(store="deep") == deep_only.cost_table()
            assert both.cost_table(store="shallow") == (
                shallow_only.cost_table()
            )

    def test_store_info_carries_alias(self, multi):
        srv, _sock, _log = multi
        with ServeClient(srv.address_text) as handle:
            info = handle.store_info(store="shallow")
        assert info["alias"] == "shallow"
        assert info["expanded_to"] == SHALLOW_BOUND

    def test_no_selector_is_structured_ambiguity_error(self, multi):
        srv, _sock, _log = multi
        with ServeClient(srv.address_text) as handle:
            with pytest.raises(ProtocolError) as excinfo:
                handle.synth("peres")
            message = str(excinfo.value)
            assert "deep" in message and "shallow" in message
            # The connection survives the refusal.
            assert handle.healthz()["status"] == "ok"

    def test_missing_alias_is_structured_error_not_drop(self, multi):
        srv, _sock, _log = multi
        with ServeClient(srv.address_text) as handle:
            with pytest.raises(ProtocolError) as excinfo:
                handle.synth("peres", store="nope")
            assert "nope" in str(excinfo.value)
            assert handle.healthz()["status"] == "ok"
        status, body = http_request(
            srv.address_text, "/synth?store=nope", method="POST",
            body={"target": "peres"},
        )
        assert status == 400
        assert body["error"]["code"] == "protocol"

    def test_fingerprint_routing(self, multi, server):
        srv, _sock, _log = multi
        with ServeClient(srv.address_text) as handle:
            info = handle.store_info(store="deep")
            fingerprint = (
                f"{info['library_fingerprint']}:{info['cost_fingerprint']}"
            )
            # Both stores are the same library + cost model, so the
            # full fingerprint pair is ambiguous between the aliases.
            with pytest.raises(ProtocolError) as excinfo:
                handle.synth("peres", store=fingerprint)
            assert "ambiguous" in str(excinfo.value)
        # Against the single-store server the same fingerprint resolves.
        with ServeClient(server.address_text) as handle:
            assert handle.synth("peres", store=fingerprint)["cost"] == 4

    def test_http_store_selector_via_body(self, multi):
        srv, _sock, _log = multi
        status, deep = http_request(
            srv.address_text, "/synth", method="POST",
            body={"target": "swap_bc", "store": "deep"},
        )
        status2, shallow = http_request(
            srv.address_text, "/synth?store=shallow", method="POST",
            body={"target": "swap_bc"},
        )
        assert status == status2 == 200
        assert deep == shallow  # same minimal circuit from both stores


class TestUnixTransport:
    def test_unix_and_tcp_answers_are_identical(self, multi):
        srv, sock, _log = multi
        with ServeClient(f"unix:{sock}", store="deep") as unix_handle:
            with ServeClient(srv.address_text, store="deep") as tcp_handle:
                assert unix_handle.synth("peres") == tcp_handle.synth("peres")
                assert unix_handle.synth_batch(["peres", "g2"]) == (
                    tcp_handle.synth_batch(["peres", "g2"])
                )
        assert unix_handle.address == f"unix:{sock}"

    def test_http_over_unix_socket(self, multi):
        _srv, sock, _log = multi
        status, health = http_request(f"unix:{sock}", "/healthz")
        assert status == 200 and health["status"] == "ok"

    def test_wait_until_ready_over_unix(self, multi):
        _srv, sock, _log = multi
        assert wait_until_ready(f"unix:{sock}", timeout=10)["status"] == "ok"

    def test_socket_file_vanishes_on_shutdown(self, store_path):
        workdir = tempfile.mkdtemp(prefix="repro-sock-")
        sock = os.path.join(workdir, "one.sock")
        try:
            with BackgroundServer(store_path, unix=sock) as srv:
                with ServeClient(f"unix:{sock}") as handle:
                    assert handle.synth("peres")["cost"] == 4
                assert os.path.exists(sock)
            assert not os.path.exists(sock)
        finally:
            shutil.rmtree(workdir, ignore_errors=True)

    def test_unix_only_server_skips_tcp(self, store_path):
        workdir = tempfile.mkdtemp(prefix="repro-sock-")
        sock = os.path.join(workdir, "only.sock")
        try:
            with BackgroundServer(store_path, port=None, unix=sock) as srv:
                assert srv._address is None  # no TCP listener bound
                with ServeClient(f"unix:{sock}") as handle:
                    assert handle.synth("peres")["cost"] == 4
        finally:
            shutil.rmtree(workdir, ignore_errors=True)

    def test_live_socket_is_refused_not_hijacked(self, store_path):
        from repro.errors import ReproError

        workdir = tempfile.mkdtemp(prefix="repro-sock-")
        sock = os.path.join(workdir, "live.sock")
        try:
            with BackgroundServer(store_path, unix=sock):
                with pytest.raises(ReproError) as excinfo:
                    BackgroundServer(store_path, port=None, unix=sock).start()
                assert "already accepting" in str(excinfo.value)
                # The original server's socket survived the collision.
                with ServeClient(f"unix:{sock}") as handle:
                    assert handle.healthz()["status"] == "ok"
        finally:
            shutil.rmtree(workdir, ignore_errors=True)

    def test_stale_socket_is_cleaned_up(self, store_path):
        workdir = tempfile.mkdtemp(prefix="repro-sock-")
        sock = os.path.join(workdir, "stale.sock")
        try:
            # A dead server's leftover: bound, never accepting again.
            stale = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            stale.bind(sock)
            stale.close()
            with BackgroundServer(store_path, unix=sock):
                with ServeClient(f"unix:{sock}") as handle:
                    assert handle.synth("peres")["cost"] == 4
        finally:
            shutil.rmtree(workdir, ignore_errors=True)

    def test_all_digit_alias_routes_over_http(self, store_path):
        with BackgroundServer([f"007={store_path}"]) as srv:
            status, payload = http_request(
                srv.address_text, "/synth?store=007", method="POST",
                body={"target": "peres"},
            )
            assert status == 200 and payload["cost"] == 4
            status, body = http_request(
                srv.address_text, "/synth", method="POST",
                body={"target": "peres", "store": 7},
            )
            assert status == 400  # ill-typed selector, same as NDJSON
            assert body["error"]["code"] == "protocol"


class TestAccessLog:
    @staticmethod
    def _records_when(log, predicate, timeout=5.0):
        """Poll the log until *predicate*(records) holds (writes are
        fire-and-forget on the server's log thread, so a just-answered
        request's record can trail its response by a moment)."""
        deadline = time.monotonic() + timeout
        while True:
            records = load_access_log(log)
            if predicate(records) or time.monotonic() > deadline:
                return records
            time.sleep(0.01)

    def test_one_record_per_request(self, multi):
        srv, sock, log = multi
        base = len(self._records_when(log, lambda r: False, timeout=0.2))
        with ServeClient(f"unix:{sock}", store="deep") as handle:
            handle.synth("peres")
            handle.synth_batch(["peres", "swap_bc"])
            with pytest.raises(ProtocolError):
                handle.synth("peres", store="nope")
            handle.healthz()
        records = self._records_when(
            log, lambda r: len(r) >= base + 4
        )[base:]
        assert [r["op"] for r in records] == [
            "synth", "synth-batch", "synth", "healthz",
        ]
        assert records[0]["store"] == "deep"
        assert records[0]["outcome"] == "ok"
        assert records[2]["outcome"] == "protocol"
        assert records[2]["store"] is None  # resolution failed
        for record in records:
            assert record["queue_wait_ms"] >= 0.0
            assert record["execute_ms"] >= 0.0
            # total spans queue wait + execution (rounding-tolerant).
            assert record["total_ms"] + 0.01 >= record["execute_ms"]

    def test_malformed_access_log_is_refused(self, tmp_path):
        path = tmp_path / "bad.ndjson"
        path.write_text('{"op": "synth"}\n')
        with pytest.raises(SpecificationError):
            load_access_log(path)
        path.write_text("not json\n")
        with pytest.raises(SpecificationError):
            load_access_log(path)


class TestWaitUntilReady:
    def test_fails_fast_when_server_never_comes_up(self):
        # Bind-then-close guarantees a port that refuses connections.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        started = time.monotonic()
        with pytest.raises(ServerError) as excinfo:
            wait_until_ready(f"127.0.0.1:{port}", timeout=0.4, interval=0.01)
        elapsed = time.monotonic() - started
        assert elapsed < 3.0, f"gave up after {elapsed:.1f}s, not ~0.4s"
        assert "not ready" in str(excinfo.value)

    def test_tiny_timeout_still_attempts_once(self, server):
        health = wait_until_ready(server.address_text, timeout=0.001)
        assert health["status"] == "ok"


class TestServeSubprocess:
    """The real `repro serve` process: ready line, SIGHUP, SIGTERM."""

    def test_sighup_reload_and_sigterm_shutdown(self, store_path):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", store_path,
                "--port", "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            address = None
            for _ in range(200):
                line = proc.stdout.readline()
                if not line:
                    break
                match = re.search(r"listening on (\S+) ", line)
                if match:
                    address = match.group(1)
                    break
            assert address, "server never printed its ready line"
            wait_until_ready(address, timeout=30)

            with ServeClient(address) as handle:
                assert handle.synth("peres")["cost"] == 4
                proc.send_signal(signal.SIGHUP)
                deadline = time.monotonic() + 20
                while time.monotonic() < deadline:
                    if handle.healthz()["reloads"] == 1:
                        break
                    time.sleep(0.05)
                assert handle.healthz()["reloads"] == 1
                assert handle.synth("peres")["cost"] == 4

            # An idle connection left open must not hang the graceful
            # shutdown (Python >= 3.12 wait_closed() waits on handlers).
            idle = ServeClient(address).connect()
            try:
                proc.send_signal(signal.SIGTERM)
                assert proc.wait(timeout=20) == 0
            finally:
                idle.close()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


class TestCliGolden:
    """`synth --server` output is byte-identical to `synth --store`."""

    @staticmethod
    def _body(text: str) -> str:
        """Everything after the backend banner (the first line)."""
        return text.split("\n", 1)[1]

    def test_single_target_output_identical(
        self, server, store_path, capsys, tmp_path
    ):
        store_save = tmp_path / "result.json"
        assert main(
            ["synth", "peres", "--store", store_path,
             "--save", str(store_save)]
        ) == 0
        store_out = capsys.readouterr().out
        server_save = tmp_path / "result_server.json"
        assert main(
            ["synth", "peres", "--server", server.address_text,
             "--save", str(server_save)]
        ) == 0
        server_out = capsys.readouterr().out
        assert self._body(store_out).replace(
            str(store_save), "SAVE"
        ) == self._body(server_out).replace(str(server_save), "SAVE")
        assert store_save.read_bytes() == server_save.read_bytes()

    def test_all_implementations_identical(self, server, store_path, capsys):
        assert main(["synth", "g4", "--all", "--store", store_path]) == 0
        store_out = capsys.readouterr().out
        assert main(
            ["synth", "g4", "--all", "--server", server.address_text]
        ) == 0
        server_out = capsys.readouterr().out
        assert self._body(store_out) == self._body(server_out)

    def test_batch_output_identical(
        self, server, store_path, capsys, tmp_path
    ):
        batch_file = tmp_path / "targets.txt"
        batch_file.write_text("peres\ng2\ntoffoli\n(5,7,6,8)\n")
        store_code = main(
            ["synth", "--store", store_path, "--batch", str(batch_file)]
        )
        store_out = capsys.readouterr().out
        server_code = main(
            ["synth", "--server", server.address_text,
             "--batch", str(batch_file)]
        )
        server_out = capsys.readouterr().out
        assert store_code == server_code == 1  # toffoli exceeds bound 4
        assert self._body(store_out) == self._body(server_out)

    def test_unix_transport_output_identical(self, multi, store_path, capsys):
        """The golden byte-identity bar extends to the UNIX socket."""
        _srv, sock, _log = multi
        assert main(["synth", "peres", "--store", store_path]) == 0
        store_out = capsys.readouterr().out
        assert main(
            ["synth", "peres", "--server", f"unix:{sock}",
             "--store-alias", "deep"]
        ) == 0
        unix_out = capsys.readouterr().out
        assert self._body(store_out) == self._body(unix_out)

    def test_unix_batch_output_identical(
        self, multi, store_path, capsys, tmp_path
    ):
        _srv, sock, _log = multi
        batch_file = tmp_path / "targets.txt"
        batch_file.write_text("peres\ng2\ntoffoli\n(5,7,6,8)\n")
        store_code = main(
            ["synth", "--store", store_path, "--batch", str(batch_file)]
        )
        store_out = capsys.readouterr().out
        unix_code = main(
            ["synth", "--server", f"unix:{sock}", "--store-alias", "deep",
             "--batch", str(batch_file)]
        )
        unix_out = capsys.readouterr().out
        assert store_code == unix_code == 1  # toffoli exceeds bound 4
        assert self._body(store_out) == self._body(unix_out)

    def test_store_and_server_are_mutually_exclusive(
        self, server, store_path, capsys
    ):
        assert main(
            ["synth", "peres", "--store", store_path,
             "--server", server.address_text]
        ) == 1
        assert "at most one" in capsys.readouterr().err

    def test_store_alias_requires_server(self, store_path, capsys):
        assert main(
            ["synth", "peres", "--store", store_path, "--store-alias", "x"]
        ) == 1
        assert "--store-alias requires --server" in capsys.readouterr().err

    def test_no_tcp_requires_unix(self, store_path, capsys):
        assert main(["serve", store_path, "--no-tcp"]) == 1
        assert "--no-tcp requires --unix" in capsys.readouterr().err
        assert main(
            ["serve", store_path, "--no-tcp", "--unix", "/tmp/x.sock",
             "--port", "0"]
        ) == 1
        assert "at most one of --port and --no-tcp" in capsys.readouterr().err
