"""Quantum-cost comparison: permutative baselines vs direct synthesis.

Quantifies the paper's Section 1 claim -- "finding the smallest number of
gates to synthesize a reversible circuit does not necessarily result in a
quantum implementation with the lowest cost" -- by putting three
synthesizers side by side on the same targets:

* optimal-gate-count NCT (exhaustive BFS baseline),
* MMD-style transformation heuristic (NCT, fast, suboptimal),
* this library's MCE (direct minimum quantum cost from V/V+/CNOT).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.baselines.mmd import mmd_synthesize
from repro.baselines.nct import (
    NCTCostAssignment,
    NCTSynthesizer,
    nct_quantum_cost,
)
from repro.core.mce import express
from repro.core.search import CascadeSearch
from repro.gates.library import GateLibrary
from repro.perm.permutation import Permutation


@dataclass(frozen=True)
class ComparisonRow:
    """One target's costs under the three synthesizers.

    Attributes:
        name: target label.
        nct_gate_count: optimal NCT gate count.
        nct_quantum_cost: quantum cost of that optimal-count circuit.
        mmd_gate_count: heuristic NCT gate count.
        mmd_quantum_cost: quantum cost of the heuristic circuit.
        direct_quantum_cost: minimal quantum cost (MCE).
        advantage: nct_quantum_cost - direct_quantum_cost (>= 0 whenever
            the NCT-optimal circuit is quantum-suboptimal).
    """

    name: str
    nct_gate_count: int
    nct_quantum_cost: int
    mmd_gate_count: int
    mmd_quantum_cost: int
    direct_quantum_cost: int

    @property
    def advantage(self) -> int:
        return self.nct_quantum_cost - self.direct_quantum_cost


def compare_targets(
    targets: Mapping[str, Permutation],
    library: GateLibrary | None = None,
    synthesizer: NCTSynthesizer | None = None,
    search: CascadeSearch | None = None,
    cost_bound: int = 7,
    assignment: NCTCostAssignment | None = None,
) -> list[ComparisonRow]:
    """Tabulate the three-way comparison for a set of named targets.

    Heavy state (the NCT BFS table and the cascade search) can be shared
    across calls via *synthesizer* / *search*.
    """
    library = library or GateLibrary(3)
    synthesizer = synthesizer or NCTSynthesizer()
    search = search or CascadeSearch(library, track_parents=True)
    assignment = assignment or NCTCostAssignment()
    rows = []
    for name, target in targets.items():
        nct_circuit = synthesizer.synthesize(target)
        mmd_circuit = mmd_synthesize(target, library.n_qubits)
        direct = express(target, library, cost_bound=cost_bound, search=search)
        rows.append(
            ComparisonRow(
                name=name,
                nct_gate_count=len(nct_circuit),
                nct_quantum_cost=nct_quantum_cost(nct_circuit, assignment),
                mmd_gate_count=len(mmd_circuit),
                mmd_quantum_cost=nct_quantum_cost(mmd_circuit, assignment),
                direct_quantum_cost=direct.cost,
            )
        )
    return rows
