"""The paper's primary contribution: exact minimum-cost synthesis.

* :mod:`repro.core.circuit` -- gate cascades with three semantics.
* :mod:`repro.core.cost` -- quantum cost models.
* :mod:`repro.core.search` -- the reasonable-product layered closure.
* :mod:`repro.core.kernel` -- the NumPy-vectorized expansion engine.
* :mod:`repro.core.parallel` -- sharded multi-worker expansion engine.
* :mod:`repro.core.dedup` -- disk-backed sharded dedup table.
* :mod:`repro.core.store` -- persistent closure store (precompute/serve).
* :mod:`repro.core.plan` -- resource planner for precompute runs.
* :mod:`repro.core.batch` -- batch synthesis against one shared closure.
* :mod:`repro.core.fmcf` -- Finding_Minimum_Cost_Circuits (Table 2).
* :mod:`repro.core.mce` -- Minimum_Cost_Expressing (Figures 4-9).
* :mod:`repro.core.theorems` -- machine checks of Theorems 1-3.
* :mod:`repro.core.universality` -- the G[4] / Peres-family analysis.
* :mod:`repro.core.probabilistic` -- Section 4 probabilistic synthesis.
"""

from repro.core.circuit import Circuit
from repro.core.cost import CostModel, UNIT_COST
from repro.core.search import (
    KERNELS,
    CascadeSearch,
    SearchArrays,
    SearchState,
    SearchStats,
)
from repro.core.dedup import ShardedDedupTable, parse_budget
from repro.core.parallel import RelationFilter, ShardedExpansion
from repro.core.store import (
    StoreHeader,
    cost_model_fingerprint,
    dump_search,
    library_fingerprint,
    load_search,
    loads_search,
    migrate_store,
    open_store,
    read_header,
    resolve_codec,
    save_search,
    section_cache_stats,
    verify_store,
)
from repro.core.plan import ResourcePlan, plan_resources
from repro.core.batch import BatchSynthesizer, build_remainder_index
from repro.core.fmcf import CostTable, find_minimum_cost_circuits
from repro.core.mce import (
    DEFAULT_COST_BOUND,
    SynthesisResult,
    express,
    express_all,
    minimal_cost,
    normalize_target,
)
from repro.core.probabilistic import (
    ProbabilisticSpec,
    ProbabilisticSynthesisResult,
    express_probabilistic,
)
from repro.core.theorems import (
    not_layer_circuit,
    stabilizer_group,
    paper_generator_group,
    universality_group,
    verify_theorem2,
)
from repro.core.universality import (
    G4Analysis,
    analyze_g4,
    is_universal,
    match_paper_representatives,
    wire_relabeling_orbit,
)
from repro.core.identities import (
    GatePairIdentity,
    commuting_pairs,
    commuting_feynman_pairs,
    inverse_pairs,
    cnot_emulations,
    verify_adjoint_closure,
    identity_catalog,
)
from repro.core.schedule import (
    Schedule,
    asap_schedule,
    depth,
    is_fully_sequential,
    min_depth_implementation,
)
from repro.core.canonical import (
    ImplementationFamilies,
    classify_implementations,
    xor_wires,
)

__all__ = [
    "Circuit",
    "CostModel",
    "UNIT_COST",
    "KERNELS",
    "CascadeSearch",
    "SearchArrays",
    "SearchState",
    "SearchStats",
    "ShardedDedupTable",
    "parse_budget",
    "RelationFilter",
    "ShardedExpansion",
    "StoreHeader",
    "cost_model_fingerprint",
    "dump_search",
    "library_fingerprint",
    "load_search",
    "loads_search",
    "migrate_store",
    "open_store",
    "read_header",
    "resolve_codec",
    "save_search",
    "section_cache_stats",
    "verify_store",
    "ResourcePlan",
    "plan_resources",
    "BatchSynthesizer",
    "build_remainder_index",
    "CostTable",
    "find_minimum_cost_circuits",
    "DEFAULT_COST_BOUND",
    "SynthesisResult",
    "express",
    "express_all",
    "minimal_cost",
    "normalize_target",
    "ProbabilisticSpec",
    "ProbabilisticSynthesisResult",
    "express_probabilistic",
    "not_layer_circuit",
    "stabilizer_group",
    "paper_generator_group",
    "universality_group",
    "verify_theorem2",
    "G4Analysis",
    "analyze_g4",
    "is_universal",
    "match_paper_representatives",
    "wire_relabeling_orbit",
    "GatePairIdentity",
    "commuting_pairs",
    "commuting_feynman_pairs",
    "inverse_pairs",
    "cnot_emulations",
    "verify_adjoint_closure",
    "identity_catalog",
    "Schedule",
    "asap_schedule",
    "depth",
    "is_fully_sequential",
    "min_depth_implementation",
    "ImplementationFamilies",
    "classify_implementations",
    "xor_wires",
]
