"""A2 (ablation) -- which parts of the 18-gate library earn their place?

The paper's library has three gate kinds; this ablation removes them one
at a time and re-runs FMCF/MCE:

* **no V+** (V + CNOT, 12 gates): Toffoli 5 -> 6, Peres 4 -> 5,
  Fredkin 7 -> 8 -- the adjoint gates save exactly one gate on each
  classic target;
* **no CNOT** (V + V+, 12 gates): every Feynman must be emulated by a
  V.V pair, so odd costs vanish from the CNOT-network part of G[k]
  (G[1] = 0) and Toffoli rises to 7;
* **V only** (6 gates): still universal for the binary-preserving
  functions, but Toffoli costs 9.
"""

from repro.core.fmcf import find_minimum_cost_circuits
from repro.core.mce import express
from repro.core.search import CascadeSearch
from repro.errors import CostBoundExceededError
from repro.gates import named
from repro.gates.kinds import GateKind
from repro.gates.library import GateLibrary
from repro.render.tables import format_table

ABLATIONS = {
    "full": (GateKind.V, GateKind.VDAG, GateKind.CNOT),
    "no V+": (GateKind.V, GateKind.CNOT),
    "no CNOT": (GateKind.V, GateKind.VDAG),
    "V only": (GateKind.V,),
}

#: (toffoli, peres, fredkin) minimal costs; None = beyond bound 9.
EXPECTED_COSTS = {
    "full": (5, 4, 7),
    "no V+": (6, 5, 8),
    "no CNOT": (7, 5, None),
    "V only": (9, 7, None),
}

EXPECTED_G = {
    "full": [1, 6, 24, 51, 84, 156],
    "no V+": [1, 6, 24, 51, 66, 75],
    "no CNOT": [1, 0, 6, 0, 24, 24],
    "V only": [1, 0, 6, 0, 24, 6],
}


def _costs_for(kinds) -> tuple:
    library = GateLibrary(3, kinds=kinds)
    search = CascadeSearch(library, track_parents=True)
    out = []
    for target in (named.TOFFOLI, named.PERES, named.FREDKIN):
        try:
            out.append(express(target, library, cost_bound=9, search=search).cost)
        except CostBoundExceededError:
            out.append(None)
    return tuple(out)


def test_ablation_costs(benchmark):
    def run_all():
        return {name: _costs_for(kinds) for name, kinds in ABLATIONS.items()}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for name, costs in results.items():
        assert costs == EXPECTED_COSTS[name], name
        rows.append([name, *["<=9?" if c is None else c for c in costs]])
    print("\n" + format_table(
        ["library", "toffoli", "peres", "fredkin"], rows
    ))


def test_ablation_cost_spectra(benchmark):
    def run_all():
        out = {}
        for name, kinds in ABLATIONS.items():
            library = GateLibrary(3, kinds=kinds)
            table = find_minimum_cost_circuits(library, cost_bound=5)
            out[name] = table.g_sizes
        return out

    results = benchmark.pedantic(run_all, rounds=3, iterations=1)
    for name, sizes in results.items():
        assert sizes == EXPECTED_G[name], name
    rows = [[name, *sizes] for name, sizes in results.items()]
    print("\n" + format_table(["library", *range(6)], rows))


def test_no_cnot_parity_structure(benchmark):
    """V/V+-only cascades realize CNOT networks only at even cost."""
    library = GateLibrary(3, kinds=(GateKind.V, GateKind.VDAG))

    def analyze():
        table = find_minimum_cost_circuits(library, cost_bound=5)
        return table.g_sizes

    sizes = benchmark.pedantic(analyze, rounds=3, iterations=1)
    # G[2k] for the linear part mirrors the full library's G[k]: 6 CNOTs
    # at cost 2, 24 two-CNOT networks at cost 4.
    assert sizes[1] == 0 and sizes[3] == 0
    assert sizes[2] == 6 and sizes[4] == 24
