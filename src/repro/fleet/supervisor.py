"""Closed-loop supervision: detect -> propose -> verify -> apply.

The :class:`Supervisor` keeps a fleet's replica set healthy without a
human in the loop, as four deliberately separated stages run every
*interval* seconds:

1. **Detect** -- evidence gathering only.  Each managed backend is
   probed off-loop (process liveness, a ``healthz`` round trip with a
   short timeout, a tail of its access log since the last cycle) and
   the evidence is condensed into at most one :class:`Finding` per
   backend: ``dead`` (process exited), ``unresponsive`` (healthz timed
   out -- a hang, not a crash), ``latency`` / ``queue-wait`` (recent
   percentiles over threshold), ``error-rate`` (server-fault outcomes
   in the freshly tailed access-log records), or ``recovered`` (an
   ejected backend answering healthily again).
2. **Propose** -- a pure findings->actions map, no side effects:
   dead/unresponsive backends get ``restart`` (``eject`` if the
   supervisor cannot respawn them), degraded-but-alive backends get
   ``eject``, recovered backends get ``readmit``.
3. **Verify** -- guardrails (:class:`GuardRails`) veto proposals that
   would make things worse: a per-backend action **cooldown** (no
   flapping), a **restart budget** over a sliding window (a
   crash-looping binary must not be restarted forever), and a
   **minimum healthy count** (never eject a *healthy* replica below
   the floor; dead replicas hold no such protection).
4. **Apply** -- execute approved actions against the router
   (:meth:`~repro.fleet.router.RouterService.set_admitted`,
   :meth:`~repro.fleet.router.RouterService.reset_backend`) and the
   process manager (restart).  A restarted backend comes back
   **ejected** and must earn re-admission from a later cycle's healthy
   probe -- so the ops log always shows the full
   ``detect(dead) -> restart -> recovered -> readmit`` story as
   separate, timestamped decisions.

Every decision -- including vetoed ones -- is appended as one NDJSON
record to the **ops log**, making the control loop auditable after the
fact: chaos tests and the CI smoke assert on this file, not on logs
scraped from stderr.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import time
from collections import deque
from dataclasses import dataclass

from repro.client import ServeClient
from repro.errors import ReproError, ServerError
from repro.server.protocol import SERVER_FAULT_CODES
from repro.telemetry import MetricsRegistry

DEFAULT_INTERVAL = 0.5
DEFAULT_PROBE_TIMEOUT = 2.0
#: Seconds after a (re)spawn during which latency/queue-wait/hang
#: findings are suppressed -- a cold store open is not a regression.
DEFAULT_GRACE = 10.0
DEFAULT_LATENCY_THRESHOLD_MS = 2000.0
DEFAULT_QUEUE_WAIT_THRESHOLD_MS = 1000.0
#: Server-fault outcomes tailed from one cycle's access-log delta that
#: count as an ``error-rate`` finding.
DEFAULT_FAULT_RATE = 5

#: The query ops whose recent percentiles the detector inspects
#: (``healthz`` itself is probe noise, not workload).
_QUERY_OPS = ("synth", "synth-batch", "cost-table", "store-info")


@dataclass(frozen=True)
class GuardRails:
    """The verifier's limits on automatic action.

    ``min_healthy`` is a floor on *healthy admitted* replicas: an
    eject/restart that would drop below it is vetoed unless the target
    itself is already unhealthy (a dead replica protects nothing).
    ``restart_budget`` restarts per ``restart_window_s`` sliding window
    bound crash-loop churn, and ``cooldown_s`` spaces any two actions
    on the same backend.
    """

    min_healthy: int = 1
    restart_budget: int = 3
    restart_window_s: float = 60.0
    cooldown_s: float = 2.0


@dataclass(frozen=True)
class Finding:
    """One detected condition on one backend (evidence, no judgment)."""

    backend: str
    kind: str  # dead | unresponsive | latency | queue-wait | error-rate | recovered
    detail: str


@dataclass(frozen=True)
class Proposal:
    """One proposed action for one backend."""

    backend: str
    action: str  # restart | eject | readmit
    reason: str


class _Probe:
    """Raw evidence one detector pass gathered about one backend."""

    __slots__ = ("alive", "exit_code", "health", "error", "fault_outcomes")

    def __init__(self):
        self.alive = False
        self.exit_code: int | None = None
        self.health: dict | None = None
        self.error: str | None = None
        self.fault_outcomes = 0


class Supervisor:
    """Runs the detect/propose/verify/apply loop over one fleet.

    Args:
        router: the :class:`~repro.fleet.router.RouterService` whose
            admission set the applier controls.
        manager: the process manager; needs a ``backends`` mapping of
            name -> managed backend (``endpoint``, ``access_log``,
            ``spawned_at``, ``restart_times``, ``supervised``,
            ``alive()``, ``exit_code()``) and a blocking
            ``restart(name)``.  :class:`repro.fleet.manager.FleetManager`
            provides exactly this; tests substitute fakes.
        ops_log: path for the NDJSON decision log (None: in-memory only).
        guardrails / interval / probe_timeout / grace: see above.
        latency_threshold_ms: recent p99 total latency (any query op)
            beyond which a backend counts as regressed.
        queue_wait_threshold_ms: recent p90 queue wait ditto.
        fault_rate: access-log server-fault outcomes per cycle that
            trigger an ``error-rate`` finding.
        registry: a :class:`~repro.telemetry.MetricsRegistry` to tally
            findings/actions on (``run_fleet`` passes the router's, so
            the fleet's ``/metrics`` carries the supervisor's story
            too); ``None`` keeps a private one.
    """

    def __init__(
        self,
        router,
        manager,
        ops_log: str | None = None,
        guardrails: GuardRails | None = None,
        interval: float = DEFAULT_INTERVAL,
        probe_timeout: float = DEFAULT_PROBE_TIMEOUT,
        grace: float = DEFAULT_GRACE,
        latency_threshold_ms: float = DEFAULT_LATENCY_THRESHOLD_MS,
        queue_wait_threshold_ms: float = DEFAULT_QUEUE_WAIT_THRESHOLD_MS,
        fault_rate: int = DEFAULT_FAULT_RATE,
        registry: MetricsRegistry | None = None,
    ):
        self._router = router
        self._manager = manager
        self._ops_log_path = ops_log
        self._ops_log = None
        reg = registry if registry is not None else MetricsRegistry()
        self._m_cycles = reg.counter(
            "repro_supervisor_cycles_total",
            "Completed detect/propose/verify/apply passes.",
        )
        self._m_findings = reg.counter(
            "repro_supervisor_findings_total",
            "Detector findings, by kind.",
            labels=("kind",),
        )
        self._m_actions = reg.counter(
            "repro_supervisor_actions_total",
            "Proposed actions, by action and verdict.",
            labels=("action", "verdict"),
        )
        self.guardrails = guardrails or GuardRails()
        self._interval = interval
        self._probe_timeout = probe_timeout
        self._grace = grace
        self._latency_threshold_ms = latency_threshold_ms
        self._queue_wait_threshold_ms = queue_wait_threshold_ms
        self._fault_rate = fault_rate
        self._cycle = 0
        self._last_action: dict[str, float] = {}
        self._log_offsets: dict[str, int] = {}
        self._healthy_now: set[str] = set()
        self._task: asyncio.Task | None = None
        #: Recent decision records, newest last (``fleet status`` view).
        self.decisions: deque = deque(maxlen=256)

    @property
    def cycle(self) -> int:
        return self._cycle

    # -- lifecycle ---------------------------------------------------------------------

    async def start(self) -> None:
        if self._task is not None:
            return
        if self._ops_log_path is not None and self._ops_log is None:
            self._ops_log = open(self._ops_log_path, "a", encoding="utf-8")
        self._task = asyncio.get_running_loop().create_task(
            self._run(), name="repro-fleet-supervisor"
        )

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._task
            self._task = None
        if self._ops_log is not None:
            with contextlib.suppress(OSError):
                self._ops_log.close()
            self._ops_log = None

    async def _run(self) -> None:
        while True:
            try:
                await self.run_cycle()
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 -- loop must survive
                self._record({
                    "ts": round(time.time(), 6),
                    "cycle": self._cycle,
                    "backend": None,
                    "finding": "supervisor-error",
                    "detail": f"{type(exc).__name__}: {exc}",
                    "action": None,
                    "verdict": None,
                    "applied": False,
                })
            await asyncio.sleep(self._interval)

    # -- the four stages ---------------------------------------------------------------

    async def run_cycle(self) -> list[dict]:
        """One full detect -> propose -> verify -> apply pass."""
        self._cycle += 1
        self._m_cycles.inc()
        findings = await self._detect()
        records: list[dict] = []
        for finding in findings:
            self._m_findings.inc(kind=finding.kind)
            proposal = self._propose(finding)
            if proposal is None:
                continue
            verdict, reason = self._verify(proposal)
            applied = False
            detail = finding.detail
            if verdict == "approved":
                try:
                    await self._apply(proposal)
                    applied = True
                except (ReproError, OSError) as exc:
                    verdict = "failed"
                    reason = f"{type(exc).__name__}: {exc}"
            self._m_actions.inc(action=proposal.action, verdict=verdict)
            record = {
                "ts": round(time.time(), 6),
                "cycle": self._cycle,
                "backend": finding.backend,
                "finding": finding.kind,
                "detail": detail,
                "action": proposal.action,
                "verdict": verdict,
                "reason": reason,
                "applied": applied,
            }
            self._record(record)
            records.append(record)
        return records

    async def _detect(self) -> list[Finding]:
        loop = asyncio.get_running_loop()
        managed = dict(self._manager.backends)
        probes = await asyncio.gather(*[
            loop.run_in_executor(None, self._probe_backend, backend)
            for backend in managed.values()
        ])
        now = time.monotonic()
        findings: list[Finding] = []
        self._healthy_now = set()
        for backend, probe in zip(managed.values(), probes):
            admitted = self._is_admitted(backend.name)
            if probe.health is not None:
                # Surface the replica's reported build version on the
                # router's backend view, so `fleet status` can flag
                # version skew across a partially rolled fleet.
                version = probe.health.get("version")
                if isinstance(version, str):
                    with contextlib.suppress(ReproError):
                        self._router.backend(backend.name).version = version
                if admitted:
                    self._healthy_now.add(backend.name)
            finding = self._assess(backend, probe, admitted, now)
            if finding is not None:
                findings.append(finding)
        return findings

    def _probe_backend(self, backend) -> _Probe:
        """Gather evidence about one backend (worker thread; blocking)."""
        probe = _Probe()
        probe.alive = backend.alive()
        if not probe.alive:
            probe.exit_code = backend.exit_code()
            return probe
        try:
            with ServeClient(
                backend.endpoint, timeout=self._probe_timeout
            ) as client:
                probe.health = client.healthz()
        except (OSError, ReproError) as exc:
            probe.error = str(exc) or type(exc).__name__
        probe.fault_outcomes = self._tail_faults(backend)
        return probe

    def _tail_faults(self, backend) -> int:
        """Server-fault outcomes appended to the access log this cycle."""
        path = getattr(backend, "access_log", None)
        if path is None:
            return 0
        offset = self._log_offsets.get(backend.name, 0)
        faults = 0
        try:
            with open(path, "rb") as handle:
                handle.seek(offset)
                data = handle.read()
                self._log_offsets[backend.name] = handle.tell()
        except OSError:
            return 0
        for raw in data.splitlines():
            try:
                record = json.loads(raw)
            except ValueError:
                continue  # torn final line; next cycle re-reads nothing
            if (
                isinstance(record, dict)
                and record.get("outcome") in SERVER_FAULT_CODES
            ):
                faults += 1
        return faults

    def _assess(
        self, backend, probe: _Probe, admitted: bool, now: float
    ) -> Finding | None:
        """Condense one probe into at most one finding, worst first."""
        in_grace = now - backend.spawned_at < self._grace
        if not probe.alive:
            return Finding(
                backend.name, "dead",
                f"process exited with code {probe.exit_code}",
            )
        if probe.health is None:
            if in_grace:
                return None  # still opening its stores
            return Finding(
                backend.name, "unresponsive",
                f"healthz probe failed: {probe.error}",
            )
        if not admitted:
            return Finding(
                backend.name, "recovered", "healthz ok while ejected"
            )
        if not in_grace:
            latency = self._worst_recent(probe.health, "latency_recent_ms",
                                         "p99")
            if latency is not None and latency >= self._latency_threshold_ms:
                return Finding(
                    backend.name, "latency",
                    f"recent p99 latency {latency:.1f}ms >= "
                    f"{self._latency_threshold_ms:.1f}ms",
                )
            wait = self._worst_recent(probe.health, "queue_wait_recent_ms",
                                      "p90")
            if wait is not None and wait >= self._queue_wait_threshold_ms:
                return Finding(
                    backend.name, "queue-wait",
                    f"recent p90 queue wait {wait:.1f}ms >= "
                    f"{self._queue_wait_threshold_ms:.1f}ms",
                )
            if probe.fault_outcomes >= self._fault_rate:
                return Finding(
                    backend.name, "error-rate",
                    f"{probe.fault_outcomes} server-fault outcomes in "
                    "the access log since the last cycle",
                )
        return None

    @staticmethod
    def _worst_recent(health: dict, field: str, quantile: str) -> float | None:
        """Max of one recent quantile across the query ops, if any."""
        per_op = health.get(field)
        if not isinstance(per_op, dict):
            return None
        worst: float | None = None
        for op in _QUERY_OPS:
            summary = per_op.get(op)
            if isinstance(summary, dict) and quantile in summary:
                value = float(summary[quantile])
                if worst is None or value > worst:
                    worst = value
        return worst

    def _propose(self, finding: Finding) -> Proposal | None:
        if finding.kind in ("dead", "unresponsive"):
            backend = self._manager.backends.get(finding.backend)
            supervised = backend is not None and backend.supervised
            action = "restart" if supervised else "eject"
            if action == "eject" and not self._is_admitted(finding.backend):
                return None  # already out, nothing left to do
            return Proposal(finding.backend, action, finding.detail)
        if finding.kind in ("latency", "queue-wait", "error-rate"):
            if not self._is_admitted(finding.backend):
                return None
            return Proposal(finding.backend, "eject", finding.detail)
        if finding.kind == "recovered":
            return Proposal(finding.backend, "readmit", finding.detail)
        return None

    def _verify(self, proposal: Proposal) -> tuple[str, str]:
        """Guardrail check: ``("approved", "")`` or ``("rejected", why)``."""
        rails = self.guardrails
        now = time.monotonic()
        last = self._last_action.get(proposal.backend)
        if last is not None and now - last < rails.cooldown_s:
            return "rejected", (
                f"cooldown: acted on this backend {now - last:.2f}s ago "
                f"(< {rails.cooldown_s}s)"
            )
        if proposal.action == "restart":
            backend = self._manager.backends.get(proposal.backend)
            recent = [
                ts for ts in (backend.restart_times if backend else [])
                if now - ts < rails.restart_window_s
            ]
            if len(recent) >= rails.restart_budget:
                return "rejected", (
                    f"restart-budget: {len(recent)} restarts in the last "
                    f"{rails.restart_window_s:.0f}s (budget "
                    f"{rails.restart_budget})"
                )
        if proposal.action in ("restart", "eject"):
            # Taking down a HEALTHY replica must honor the floor; an
            # unhealthy one is already lost to the fleet.
            if proposal.backend in self._healthy_now:
                remaining = len(self._healthy_now - {proposal.backend})
                if remaining < rails.min_healthy:
                    return "rejected", (
                        f"min-healthy: only {remaining} healthy replicas "
                        f"would remain (floor {rails.min_healthy})"
                    )
        return "approved", ""

    async def _apply(self, proposal: Proposal) -> None:
        name = proposal.backend
        if proposal.action == "eject":
            self._router.set_admitted(name, False)
        elif proposal.action == "readmit":
            self._router.reset_backend(name)
            self._router.set_admitted(name, True)
        elif proposal.action == "restart":
            # Ejected first so no request races the corpse; stays
            # ejected until a later cycle observes a healthy probe and
            # readmits -- the ops log keeps the stages distinct.
            self._router.set_admitted(name, False)
            self._log_offsets.pop(name, None)  # fresh process, fresh log
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self._manager.restart, name)
        else:
            raise ServerError(f"unknown proposal action {proposal.action!r}")
        self._last_action[name] = time.monotonic()

    # -- recording ---------------------------------------------------------------------

    def _is_admitted(self, name: str) -> bool:
        try:
            return self._router.backend(name).admitted
        except ReproError:
            return False

    def _record(self, record: dict) -> None:
        self.decisions.append(record)
        if self._ops_log is not None:
            with contextlib.suppress(OSError, ValueError):
                self._ops_log.write(
                    json.dumps(record, separators=(",", ":")) + "\n"
                )
                self._ops_log.flush()

    def describe(self) -> dict:
        """Status payload for ``repro fleet status``."""
        return {
            "cycle": self._cycle,
            "interval_s": self._interval,
            "guardrails": {
                "min_healthy": self.guardrails.min_healthy,
                "restart_budget": self.guardrails.restart_budget,
                "restart_window_s": self.guardrails.restart_window_s,
                "cooldown_s": self.guardrails.cooldown_s,
            },
            "decisions": list(self.decisions)[-20:],
        }
