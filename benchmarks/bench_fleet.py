"""E-fleet -- routed-fleet overhead and fault-recovery timing.

Measures what the fleet layer costs and what it buys:

* **router overhead**: p50/p99 single-target latency through a
  2-replica fleet vs a direct single server over the same store -- the
  price of one extra hop, the ring lookup, and the breaker/in-flight
  bookkeeping;
* **routed batch identity**: a 64-target ``synth-batch`` through the
  router verified byte-identical to a local
  :meth:`BatchSynthesizer.synthesize_many` (the correctness bar);
* **failover recovery**: with a seeded ``exit-after`` chaos fault on
  the preferred replica, the wall time from the crash until the
  supervisor's ops log records the restart, and until re-admission --
  while a client keeps querying and must see **zero errors**.

Acceptance bars: routed results identical, zero client-visible errors
through the crash, recovery (restart logged) under 30 s, and routed
p50 latency within 25x of direct (generous: CI boxes are noisy and
the absolute numbers are tens of microseconds).  Results land in
``BENCH_fleet.json`` at the repo root so the overhead is trendable.

Run standalone (prints a small report)::

    PYTHONPATH=src python benchmarks/bench_fleet.py

or as a pytest module (asserts the bars)::

    PYTHONPATH=src python -m pytest benchmarks/bench_fleet.py -s -m benchmark

Markers: carries ``benchmark`` (timing-sensitive; excluded from the
default tier-1 selection).
"""

from __future__ import annotations

import json
import platform
import statistics
import sys
import tempfile
import time
from pathlib import Path
from time import perf_counter

import pytest

from repro.client import ServeClient
from repro.core.batch import BatchSynthesizer
from repro.core.search import CascadeSearch
from repro.core.store import save_search
from repro.fleet.manager import BackgroundFleet
from repro.fleet.router import HashRing
from repro.fleet.supervisor import GuardRails
from repro.gates.library import GateLibrary
from repro.io import open_store, result_to_dict
from repro.server import BackgroundServer

COST_BOUND = 4
N_WARM = 300
CRASH_AFTER = 8  # requests served by the faulty replica before os._exit
OVERHEAD_BAR = 25.0
RECOVERY_BAR_S = 30.0

_REPO_ROOT = Path(__file__).resolve().parent.parent
_JSON_PATH = _REPO_ROOT / "BENCH_fleet.json"


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def _preferred_index(replicas: int = 2, key: str = "") -> int:
    ring = HashRing()
    for index in range(replicas):
        ring.add(f"backend-{index}")
    return int(ring.order(key)[0].rsplit("-", 1)[1])


def measure(work_dir: Path) -> dict:
    store_path = work_dir / "closure.rpro"
    search = CascadeSearch(GateLibrary(3), track_parents=True)
    search.extend_to(COST_BOUND)
    save_search(search, store_path)

    _header, _library, loaded = open_store(store_path)
    local_batch = BatchSynthesizer(loaded)
    targets = []
    for cost in range(local_batch.cost_bound + 1):
        targets.extend(
            local_batch.targets_at_cost(cost, include_not_layers=True)
        )
    warm_specs = [
        target.cycle_string() for target in targets[:N_WARM]
    ]
    targets64 = targets[:64]
    want64 = [
        result_to_dict(result)
        for result in local_batch.synthesize_many(targets64)
    ]

    def timed_run(address: str) -> list[float]:
        latencies = []
        with ServeClient(address) as client:
            client.healthz()
            client.synth(warm_specs[0])  # warm
            for spec in warm_specs:
                started = perf_counter()
                client.synth(spec)
                latencies.append(perf_counter() - started)
        return latencies

    with BackgroundServer(str(store_path)) as single:
        direct = timed_run(single.address_text)

    with BackgroundFleet(
        str(store_path), replicas=2, port=0, interval=0.5
    ) as fleet:
        routed = timed_run(fleet.address_text)
        with ServeClient(fleet.address_text) as client:
            reply = client.synth_batch(
                [target.cycle_string() for target in targets64]
            )
        got64 = [entry["result"] for entry in reply["results"]]
        routed_identical = got64 == want64

    # Failover: crash the preferred replica under live traffic.
    crash_index = _preferred_index(replicas=2)
    client_errors = 0
    calls_through_crash = 0
    with BackgroundFleet(
        str(store_path),
        replicas=2,
        port=0,
        faults={crash_index: f"exit-after:{CRASH_AFTER}"},
        interval=0.2,
        guardrails=GuardRails(min_healthy=1, cooldown_s=0.3),
    ) as fleet:
        crashed = f"backend-{crash_index}"
        crash_started = perf_counter()
        with ServeClient(fleet.address_text, retries=2) as client:
            for spec in warm_specs[:128]:
                try:
                    client.synth(spec)
                except Exception:  # noqa: BLE001 -- counted, asserted 0
                    client_errors += 1
                calls_through_crash += 1
        restart_s = readmit_s = None
        deadline = time.monotonic() + RECOVERY_BAR_S + 15
        while time.monotonic() < deadline:
            story = {
                (record["finding"], record["action"])
                for record in fleet.supervisor.decisions
                if record.get("backend") == crashed and record.get("applied")
            }
            if restart_s is None and ("dead", "restart") in story:
                restart_s = perf_counter() - crash_started
            if ("recovered", "readmit") in story:
                readmit_s = perf_counter() - crash_started
                break
            time.sleep(0.1)

    numbers = {
        "schema": 1,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "store_cost_bound": COST_BOUND,
        "warm_queries": N_WARM,
        "direct_p50_s": _percentile(direct, 0.50),
        "direct_p99_s": _percentile(direct, 0.99),
        "direct_mean_s": statistics.mean(direct),
        "routed_p50_s": _percentile(routed, 0.50),
        "routed_p99_s": _percentile(routed, 0.99),
        "routed_mean_s": statistics.mean(routed),
        "router_overhead_p50_x": (
            _percentile(routed, 0.50) / _percentile(direct, 0.50)
        ),
        "batch64_identical_to_synthesize_many": routed_identical,
        "crash_after_requests": CRASH_AFTER,
        "calls_through_crash": calls_through_crash,
        "client_errors_through_crash": client_errors,
        "restart_logged_s": restart_s,
        "readmit_logged_s": readmit_s,
    }
    _JSON_PATH.write_text(json.dumps(numbers, indent=2, sort_keys=True))
    return numbers


def report(numbers: dict) -> str:
    fmt = lambda value: (  # noqa: E731
        "n/a" if value is None else f"{value:.2f} s"
    )
    return (
        "fleet vs direct serving\n"
        f"direct p50/p99:   {numbers['direct_p50_s'] * 1e6:8.1f} / "
        f"{numbers['direct_p99_s'] * 1e6:8.1f} us\n"
        f"routed p50/p99:   {numbers['routed_p50_s'] * 1e6:8.1f} / "
        f"{numbers['routed_p99_s'] * 1e6:8.1f} us"
        f"   (overhead p50: {numbers['router_overhead_p50_x']:.1f}x)\n"
        f"64-target batch identical: "
        f"{numbers['batch64_identical_to_synthesize_many']}\n"
        f"crash run:        {numbers['calls_through_crash']} calls, "
        f"{numbers['client_errors_through_crash']} client errors\n"
        f"restart logged:   {fmt(numbers['restart_logged_s'])} after crash "
        f"start; readmit {fmt(numbers['readmit_logged_s'])}\n"
        f"(wrote {_JSON_PATH.name})"
    )


@pytest.mark.benchmark
def test_fleet_overhead_identity_and_recovery(tmp_path):
    numbers = measure(tmp_path)
    print("\n" + report(numbers))
    assert numbers["batch64_identical_to_synthesize_many"], (
        "routed synth-batch diverged from BatchSynthesizer.synthesize_many"
    )
    assert numbers["client_errors_through_crash"] == 0, (
        f"{numbers['client_errors_through_crash']} client-visible errors "
        "while a replica crashed; failover must hide the fault"
    )
    assert numbers["restart_logged_s"] is not None, (
        "supervisor never logged the restart of the crashed replica"
    )
    assert numbers["restart_logged_s"] <= RECOVERY_BAR_S, (
        f"restart took {numbers['restart_logged_s']:.1f}s "
        f"(bar {RECOVERY_BAR_S:.0f}s)"
    )
    assert numbers["readmit_logged_s"] is not None, (
        "crashed replica was never re-admitted"
    )
    assert numbers["router_overhead_p50_x"] <= OVERHEAD_BAR, (
        f"router adds {numbers['router_overhead_p50_x']:.1f}x p50 latency "
        f"(bar {OVERHEAD_BAR:.0f}x)"
    )


if __name__ == "__main__":
    with tempfile.TemporaryDirectory() as tmp:
        print(report(measure(Path(tmp))))
    sys.exit(0)
