"""Progress instrumentation for long precompute runs.

A Table-1 closure at degree 6 -- or the coming out-of-core 4-qubit
runs -- can hold a core for hours while ``repro precompute`` prints
nothing.  :class:`ProgressReporter` gives the kernel's phase
boundaries (plan / generate / commit, per level) somewhere cheap to
report to: an NDJSON stream a tool can follow (``repro tail``), an
optional single-line TTY status, or both.

Record schema (one JSON object per line)::

    {"event": <str>, "run": <str>, "seq": <int>, ...fields, "ts": <float>}

``seq`` is a per-reporter monotonic counter, so a resumed or merged
log still orders.  Every field except ``ts`` and ``elapsed_s`` is
**seeded-deterministic**: two runs of the same precompute emit
byte-identical records once those two wall-clock fields are stripped
(pinned by ``tests/test_telemetry.py``).  Events and their fields:

==============  =====================================================
``start``       run parameters (``degree``/``cost_bound``/``kernel``…)
``level-start`` ``level``
``plan``        ``level chunks planned kept rows`` -- candidate counts
                before/after the filter hook, source rows scanned
``generate``    ``level candidates`` -- rows materialized for dedup
``commit``      ``level accepted rows dedup_slots dedup_used`` (and
                ``dedup_spilled`` once sharded dedup spills) --
                occupancy is ``dedup_used / dedup_slots``
``level-end``   ``level size rows elapsed_s``
``spill``       ``level`` -- sharded dedup went out-of-core
``checkpoint``  ``level path`` -- resumable checkpoint written
``done``        ``levels rows elapsed_s``
==============  =====================================================

Overhead contract: engines hold ``progress = None`` by default and
guard every hook with one attribute test, so an uninstrumented run
executes zero telemetry bytecode beyond that comparison -- the golden
tables pin that instrumented and uninstrumented runs produce
byte-identical stores.
"""

from __future__ import annotations

import json
import sys
import time


class ProgressReporter:
    """Writes progress events to an NDJSON stream and/or a TTY line.

    Args:
        path: append NDJSON records to this file (optional).
        stream: write NDJSON records to this open text stream
            (optional; used over *path* if both given).
        tty: render a one-line ``\\r``-overwritten status to this
            stream (commonly ``sys.stderr``); ``None`` disables it.
        run_id: stamped into every record's ``run`` field so merged
            logs from several runs stay separable.
    """

    def __init__(
        self,
        path: str | None = None,
        stream=None,
        tty=None,
        run_id: str = "precompute",
    ):
        self._file = None
        if stream is not None:
            self._stream = stream
        elif path is not None:
            self._file = open(path, "a", encoding="utf-8")
            self._stream = self._file
        else:
            self._stream = None
        self._tty = tty
        self._tty_dirty = False
        self.run_id = str(run_id)
        self._seq = 0
        self._levels_done = 0
        self._rows = 0

    # -- emission ---------------------------------------------------------------------

    def emit(self, event: str, **fields) -> None:
        """Append one record; *fields* order is preserved as given."""
        record = {"event": event, "run": self.run_id, "seq": self._seq}
        record.update(fields)
        record["ts"] = round(time.time(), 6)
        self._seq += 1
        if self._stream is not None:
            try:
                self._stream.write(
                    json.dumps(record, separators=(",", ":")) + "\n"
                )
                self._stream.flush()
            except (OSError, ValueError):
                pass  # progress must never fail the run
        if self._tty is not None:
            self._render_tty(event, fields)

    def _render_tty(self, event: str, fields: dict) -> None:
        if event == "level-end":
            self._levels_done += 1
            self._rows = fields.get("rows", self._rows)
            line = (
                f"[precompute] level {fields.get('level')}: "
                f"{fields.get('size'):,} new, {self._rows:,} total rows "
                f"({fields.get('elapsed_s')}s)"
            )
        elif event == "commit":
            used = fields.get("dedup_used")
            slots = fields.get("dedup_slots")
            occupancy = f" dedup {used / slots:.0%}" if slots else ""
            line = (
                f"[precompute] level {fields.get('level')}: committing "
                f"{fields.get('accepted'):,} rows{occupancy}"
            )
        elif event in ("spill", "checkpoint"):
            line = f"[precompute] level {fields.get('level')}: {event}"
        elif event == "done":
            line = (
                f"[precompute] done: {fields.get('levels')} levels, "
                f"{fields.get('rows'):,} rows in {fields.get('elapsed_s')}s"
            )
        else:
            return
        try:
            self._tty.write("\r\x1b[K" + line)
            if event == "done":
                self._tty.write("\n")
                self._tty_dirty = False
            else:
                self._tty_dirty = True
            self._tty.flush()
        except (OSError, ValueError):
            self._tty = None

    def close(self) -> None:
        """Finish the TTY line and close an owned file."""
        if self._tty is not None and self._tty_dirty:
            try:
                self._tty.write("\n")
                self._tty.flush()
            except (OSError, ValueError):
                pass
            self._tty_dirty = False
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
            self._stream = None

    def __enter__(self) -> "ProgressReporter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def strip_nondeterministic(record: dict) -> dict:
    """Drop the wall-clock fields (``ts``/``elapsed_s``) from a record.

    What remains is the seeded-deterministic part two identical runs
    must agree on byte-for-byte; tests and goldens compare through
    this.
    """
    return {
        key: value for key, value in record.items()
        if key not in ("ts", "elapsed_s")
    }


def make_tty(enabled: bool):
    """``sys.stderr`` when *enabled* (factored for CLI wiring/tests)."""
    return sys.stderr if enabled else None
