"""Exact linear algebra over the dyadic Gaussian ring Z[i, 1/2].

Every matrix entry that appears anywhere in the paper's gate algebra --
V, V+, NOT, CNOT, their controlled versions, tensor products and cascades
-- lives in the ring of complex numbers ``(a + b i) / 2**k`` with integer
``a, b``.  Implementing that ring exactly lets the test-suite verify
identities such as ``V * V == NOT`` and the consistency of the
multiple-valued abstraction with *zero* floating-point tolerance.

:mod:`repro.linalg.dyadic` implements the scalars,
:mod:`repro.linalg.matrix` dense matrices over them, and
:mod:`repro.linalg.constants` the concrete gate matrices and the state
vectors of the four quaternary wire values.
"""

from repro.linalg.dyadic import DyadicComplex
from repro.linalg.matrix import Matrix
from repro.linalg.constants import (
    I2,
    X,
    V,
    VDAG,
    value_state,
    pattern_state,
    controlled,
    cnot_matrix,
    single_qubit,
)

__all__ = [
    "DyadicComplex",
    "Matrix",
    "I2",
    "X",
    "V",
    "VDAG",
    "value_state",
    "pattern_state",
    "controlled",
    "cnot_matrix",
    "single_qubit",
]
