"""Unit tests for generalized permutative libraries (repro.baselines.permlib)."""

import pytest

from repro.errors import InvalidGateError, InvalidValueError, SynthesisError
from repro.baselines.permlib import (
    OptimalPermutativeSynthesizer,
    PermutativeGate,
    PermutativeLibrary,
    nct_library,
    nctp_library,
    peres_gates,
    pnc_library,
)
from repro.gates import named
from repro.perm.permutation import Permutation


class TestLibraryConstruction:
    def test_nct_library(self):
        lib = nct_library()
        assert lib.name == "NCT" and len(lib) == 12

    def test_peres_gates_are_12_distinct(self):
        gates = peres_gates()
        assert len(gates) == 12
        assert len({g.permutation for g in gates}) == 12
        assert all(g.quantum_cost == 4 for g in gates)

    def test_peres_gates_include_g1(self):
        perms = {g.permutation for g in peres_gates()}
        assert named.PERES in perms
        assert named.PERES.inverse() in perms

    def test_nctp_and_pnc_sizes(self):
        assert len(nctp_library()) == 24
        assert len(pnc_library()) == 21

    def test_duplicate_names_rejected(self):
        g = PermutativeGate("x", Permutation.identity(8), 1)
        with pytest.raises(InvalidGateError):
            PermutativeLibrary("bad", [g, g])

    def test_mixed_degrees_rejected(self):
        a = PermutativeGate("a", Permutation.identity(8), 1)
        b = PermutativeGate("b", Permutation.identity(4), 1)
        with pytest.raises(InvalidGateError):
            PermutativeLibrary("bad", [a, b])

    def test_empty_rejected(self):
        with pytest.raises(InvalidGateError):
            PermutativeLibrary("empty", [])

    def test_negative_cost_rejected(self):
        with pytest.raises(InvalidValueError):
            PermutativeGate("x", Permutation.identity(8), -1)

    def test_by_name(self):
        lib = nct_library()
        assert lib.by_name("TOF_C(AB)").permutation == named.TOFFOLI
        with pytest.raises(InvalidGateError):
            lib.by_name("missing")

    def test_circuit_helpers(self):
        lib = nct_library()
        circuit = [lib.by_name("TOF_C(AB)"), lib.by_name("CNOT_BA")]
        assert lib.permutation_of(circuit) == named.TOFFOLI * named.cnot_target(1, 0)
        assert lib.quantum_cost_of(circuit) == 6

    def test_peres_placements_need_three_wires(self):
        with pytest.raises(InvalidValueError):
            peres_gates(4)


class TestCountObjective:
    @pytest.fixture(scope="class")
    def synth(self):
        return OptimalPermutativeSynthesizer(nctp_library(), "count")

    def test_complete(self, synth):
        assert synth.reachable_count() == 40320

    def test_peres_is_one_gate(self, synth):
        assert synth.optimal_cost(named.PERES) == 1

    def test_worst_case_six(self, synth):
        assert synth.worst_case() == 6

    def test_distribution_sums_to_total(self, synth):
        assert sum(synth.cost_distribution().values()) == 40320

    def test_synthesis_roundtrip(self, synth):
        import random

        lib = synth.library
        rng = random.Random(17)
        for _ in range(20):
            images = list(range(8))
            rng.shuffle(images)
            target = Permutation.from_images(images)
            circuit = synth.synthesize(target)
            assert lib.permutation_of(circuit) == target
            assert len(circuit) == synth.optimal_cost(target)

    def test_average_below_nct(self, synth):
        nct = OptimalPermutativeSynthesizer(nct_library(), "count")
        assert synth.average_cost() < nct.average_cost()


class TestQuantumObjective:
    @pytest.fixture(scope="class")
    def synth(self):
        return OptimalPermutativeSynthesizer(nct_library(), "quantum")

    def test_free_not_gates(self, synth):
        # A NOT layer costs 0 under the quantum objective.
        assert synth.optimal_cost(named.not_layer_permutation(0b111)) == 0

    def test_toffoli_quantum_cost(self, synth):
        assert synth.optimal_cost(named.TOFFOLI) == 5

    def test_peres_quantum_cost_via_nct(self, synth):
        assert synth.optimal_cost(named.PERES) == 6

    def test_quantum_cost_of_witness_matches(self, synth):
        circuit = synth.synthesize(named.PERES)
        assert synth.library.quantum_cost_of(circuit) == 6

    def test_unreachable_raises(self, synth):
        with pytest.raises(SynthesisError):
            synth.optimal_cost(Permutation.identity(4))
        with pytest.raises(SynthesisError):
            synth.synthesize(Permutation.identity(4))

    def test_unknown_objective_rejected(self):
        with pytest.raises(InvalidValueError):
            OptimalPermutativeSynthesizer(nct_library(), "speed")

    def test_quantum_never_below_count_times_min_gate_cost(self):
        count = OptimalPermutativeSynthesizer(nctp_library(), "count")
        quantum = OptimalPermutativeSynthesizer(nctp_library(), "quantum")
        for name in ("toffoli", "peres", "fredkin", "g3"):
            target = named.TARGETS[name]
            assert quantum.optimal_cost(target) <= (
                4 * count.optimal_cost(target) + 1
            )
