"""Quaternary patterns: fixed-width tuples of wire values.

A *pattern* is the joint value of all n wires of a circuit at some time
step, e.g. ``(1, V0, 0)`` for qubits (A, B, C).  Wire 0 is the paper's
qubit A (most significant in the sorting order "from small to big").

Patterns are plain tuples of :class:`~repro.mvl.values.Qv` wrapped in a
lightweight immutable class providing the operations the synthesis core
needs: binary tests, per-wire substitution, integer encoding (base 4,
qubit A most significant) and parsing/formatting.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from fractions import Fraction

from repro.errors import InvalidValueError
from repro.mvl.values import Qv, measurement_probabilities


class Pattern(tuple):
    """An immutable tuple of quaternary wire values.

    Subclasses ``tuple`` so patterns hash, compare and sort exactly like
    the underlying value tuples -- the tuple ordering *is* the paper's
    "from small to big" row ordering because of the Qv integer codes.
    """

    __slots__ = ()

    def __new__(cls, values: Iterable[Qv | int]) -> "Pattern":
        vals = tuple(Qv(v) for v in values)
        return super().__new__(cls, vals)

    # -- predicates --------------------------------------------------------

    @property
    def n_qubits(self) -> int:
        """Number of wires in the pattern."""
        return len(self)

    @property
    def is_binary(self) -> bool:
        """True when every wire is a pure 0/1 state."""
        return all(v.is_binary for v in self)

    @property
    def has_one(self) -> bool:
        """True when some wire carries the pure value 1.

        The paper observes that a pattern with no ``1`` anywhere is fixed
        by every gate in the library (no control can fire, no Feynman can
        flip), which is what lets 26 of the 64 three-qubit patterns be
        dropped from the permutation domain.
        """
        return any(v is Qv.ONE for v in self)

    @property
    def is_permutable(self) -> bool:
        """True if the pattern belongs to the reduced label domain.

        Permutable patterns are those containing a ``1`` plus the all-zero
        pattern (kept so the binary patterns are complete; it is label 1
        in the paper and anchors Theorem 2).
        """
        return self.has_one or all(v is Qv.ZERO for v in self)

    # -- transformations ---------------------------------------------------

    def with_value(self, wire: int, value: Qv) -> "Pattern":
        """Return a copy with *wire* replaced by *value*."""
        vals = list(self)
        vals[wire] = Qv(value)
        return Pattern(vals)

    def bits(self) -> tuple[int, ...]:
        """Classical bit tuple for a binary pattern.

        Raises:
            InvalidValueError: if any wire is non-binary.
        """
        return tuple(v.bit for v in self)

    def binary_index(self) -> int:
        """Integer of the classical bits, qubit A (wire 0) most significant."""
        index = 0
        for v in self:
            index = index * 2 + v.bit
        return index

    # -- formatting --------------------------------------------------------

    def __repr__(self) -> str:
        return f"Pattern({', '.join(str(v) for v in self)})"

    def __str__(self) -> str:
        return "(" + ", ".join(str(v) for v in self) + ")"


def pattern_from_int(code: int, n_qubits: int) -> Pattern:
    """Decode a base-4 integer (wire 0 most significant) to a pattern."""
    if not 0 <= code < 4**n_qubits:
        raise InvalidValueError(
            f"pattern code {code} out of range for {n_qubits} qubits"
        )
    digits = []
    for _ in range(n_qubits):
        digits.append(Qv(code % 4))
        code //= 4
    return Pattern(reversed(digits))


def pattern_to_int(pattern: Pattern) -> int:
    """Encode a pattern as a base-4 integer (wire 0 most significant)."""
    code = 0
    for v in pattern:
        code = code * 4 + int(v)
    return code


def pattern_from_bits(bits: Iterable[int]) -> Pattern:
    """Build a pure binary pattern from an iterable of classical bits."""
    vals = []
    for b in bits:
        if b not in (0, 1):
            raise InvalidValueError(f"bit {b!r} is not 0 or 1")
        vals.append(Qv(b))
    return Pattern(vals)


def pattern_from_string(text: str) -> Pattern:
    """Parse ``"1,V0,0"`` or ``"1 V0 0"`` into a pattern."""
    parts = text.replace(",", " ").split()
    if not parts:
        raise InvalidValueError("empty pattern string")
    return Pattern(Qv.from_string(p) for p in parts)


def all_patterns(n_qubits: int) -> Iterator[Pattern]:
    """All 4**n patterns in ascending (paper) order."""
    for code in range(4**n_qubits):
        yield pattern_from_int(code, n_qubits)


def binary_patterns(n_qubits: int) -> Iterator[Pattern]:
    """All 2**n pure binary patterns in ascending order."""
    for index in range(2**n_qubits):
        bits = [(index >> (n_qubits - 1 - w)) & 1 for w in range(n_qubits)]
        yield pattern_from_bits(bits)


def digit_pattern_from_int(
    code: int, width: int, radix: int
) -> tuple[int, ...]:
    """Decode a base-*radix* integer (wire 0 most significant) to digits.

    The radix-generic analogue of :func:`pattern_from_int`: digit spaces
    (radix 3 qutrits, radix 4 ququarts) carry plain classical digit
    tuples rather than :class:`~repro.mvl.values.Qv` superposition
    values, so the codec returns a bare ``tuple`` of ints.
    """
    if radix < 2:
        raise InvalidValueError(f"radix {radix} must be at least 2")
    if not 0 <= code < radix**width:
        raise InvalidValueError(
            f"pattern code {code} out of range for {width} radix-{radix} wires"
        )
    digits = []
    for _ in range(width):
        digits.append(code % radix)
        code //= radix
    return tuple(reversed(digits))


def digit_pattern_to_int(pattern: Iterable[int], radix: int) -> int:
    """Encode a digit tuple as a base-*radix* integer (wire 0 most
    significant); the inverse of :func:`digit_pattern_from_int`."""
    code = 0
    for v in pattern:
        v = int(v)
        if not 0 <= v < radix:
            raise InvalidValueError(f"digit {v} out of range for radix {radix}")
        code = code * radix + v
    return code


def all_digit_patterns(width: int, radix: int) -> Iterator[tuple[int, ...]]:
    """All radix**width digit tuples in ascending (label) order."""
    for code in range(radix**width):
        yield digit_pattern_from_int(code, width, radix)


def pattern_measurement_distribution(
    pattern: Pattern,
) -> dict[tuple[int, ...], Fraction]:
    """Exact joint Born distribution of measuring every wire of *pattern*.

    Under the paper's binary-control discipline the register is always a
    *product* of single-wire states, so the joint law is the product of
    per-wire distributions: binary wires are deterministic, V0/V1 wires
    are independent fair coins.  Zero-probability outcomes are omitted.
    """
    dist: dict[tuple[int, ...], Fraction] = {(): Fraction(1)}
    for value in pattern:
        wire_dist = measurement_probabilities(value)
        dist = {
            bits + (bit,): p * q
            for bits, p in dist.items()
            for bit, q in wire_dist.items()
            if q
        }
    return dist
