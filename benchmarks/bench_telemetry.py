"""E-telemetry -- what the observability layer costs.

PR 10 threads tracing, a metrics registry and access-log telemetry
through the serving path, and progress hooks through precompute.  The
contract is that none of it costs anything a user can feel:

* **served p50 vs the PR 7 baseline**: routed single-target latency
  through a 2-replica fleet with the full telemetry stack on (trace
  minting, per-attempt spans, metric counters/histograms, access-log
  records with trace ids) compared against ``BENCH_fleet.json``,
  recorded before telemetry existed.  The raw ratio confounds the
  telemetry cost with machine drift between the two recordings, so
  the pinned number is the drift-cancelling ratio of ratios: the
  router-overhead multiple (routed p50 / direct p50) now vs the same
  multiple in the baseline -- both paths carry the telemetry today,
  but the router side carries almost all of it (trace + span minting,
  attempt histograms, a second access-log record), so the multiple
  growing is telemetry cost and the machine's absolute speed cancels.
  Bar: within **5 %** -- asserted strictly on >= 4-CPU machines (the
  baseline convention set by the parallel bench: smaller runners get
  report-only numbers, the artifact stays honest either way).
* **scrape cost**: p50 of a full ``GET /metrics`` round trip, and the
  render parsed back to prove the exposition stays valid under load.
* **progress instrumentation**: a cost-bound-4 closure expansion with
  an NDJSON :class:`~repro.telemetry.progress.ProgressReporter`
  attached vs the same run with no reporter (the default ``None``
  no-op path).  Bar: within 25 % -- the hooks are one attribute check
  per phase boundary plus a few dict writes per level, far below the
  kernel's own noise floor.

Results land in ``BENCH_telemetry.json`` at the repo root.

Run standalone (prints a small report)::

    PYTHONPATH=src python benchmarks/bench_telemetry.py

or as a pytest module (asserts the bars)::

    PYTHONPATH=src python -m pytest benchmarks/bench_telemetry.py -s -m benchmark

Markers: carries ``benchmark`` (timing-sensitive; excluded from the
default tier-1 selection).
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import sys
import tempfile
from pathlib import Path
from time import perf_counter

import pytest

from repro.client import ServeClient, fetch_metrics
from repro.core.batch import BatchSynthesizer
from repro.core.search import CascadeSearch
from repro.core.store import save_search
from repro.fleet.manager import BackgroundFleet
from repro.gates.library import GateLibrary
from repro.io import open_store
from repro.server import BackgroundServer
from repro.telemetry import ProgressReporter, parse_prometheus_text

COST_BOUND = 4
N_WARM = 300
N_SCRAPES = 50
SERVE_OVERHEAD_BAR_X = 1.05
PROGRESS_OVERHEAD_BAR_X = 1.25

_REPO_ROOT = Path(__file__).resolve().parent.parent
_JSON_PATH = _REPO_ROOT / "BENCH_telemetry.json"
_FLEET_BASELINE = _REPO_ROOT / "BENCH_fleet.json"


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def measure(work_dir: Path) -> dict:
    store_path = work_dir / "closure.rpro"
    search = CascadeSearch(GateLibrary(3), track_parents=True)
    search.extend_to(COST_BOUND)
    save_search(search, store_path)

    _header, _library, loaded = open_store(store_path)
    local_batch = BatchSynthesizer(loaded)
    targets = []
    for cost in range(local_batch.cost_bound + 1):
        targets.extend(
            local_batch.targets_at_cost(cost, include_not_layers=True)
        )
    warm_specs = [target.cycle_string() for target in targets[:N_WARM]]

    def timed_run(address: str) -> list[float]:
        latencies = []
        with ServeClient(address) as client:
            client.healthz()
            client.synth(warm_specs[0])  # warm
            for spec in warm_specs:
                started = perf_counter()
                client.synth(spec)
                latencies.append(perf_counter() - started)
        return latencies

    # Direct single server: the same-machine denominator that lets the
    # routed number be compared against a baseline recorded elsewhere.
    with BackgroundServer(str(store_path)) as single:
        direct = timed_run(single.address_text)

    # Served path: same protocol, same store, same query mix as
    # bench_fleet -- the only delta vs its recorded baseline is the
    # telemetry now threaded through every hop.
    with BackgroundFleet(
        str(store_path), replicas=2, port=0, interval=0.5
    ) as fleet:
        latencies = timed_run(fleet.address_text)
        scrape_times = []
        families = 0
        for _ in range(N_SCRAPES):
            started = perf_counter()
            status, text = fetch_metrics(fleet.address_text)
            scrape_times.append(perf_counter() - started)
            assert status == 200
        samples = parse_prometheus_text(text)
        families = len({name for name, _labels in samples})

    baseline_p50 = baseline_direct_p50 = None
    if _FLEET_BASELINE.exists():
        baseline = json.loads(_FLEET_BASELINE.read_text())
        baseline_p50 = baseline.get("routed_p50_s")
        baseline_direct_p50 = baseline.get("direct_p50_s")
    routed_p50 = _percentile(latencies, 0.50)
    direct_p50 = _percentile(direct, 0.50)
    overhead_x = normalized_x = None
    if baseline_p50:
        overhead_x = routed_p50 / baseline_p50
    if baseline_p50 and baseline_direct_p50:
        normalized_x = (routed_p50 / direct_p50) / (
            baseline_p50 / baseline_direct_p50
        )

    # Progress instrumentation: full NDJSON reporter vs the no-op
    # default.  Fresh searches both times; same library, same bound.
    def timed_expand(reporter: ProgressReporter | None) -> float:
        fresh = CascadeSearch(GateLibrary(3), track_parents=True)
        if reporter is not None:
            fresh.set_progress(reporter)
        started = perf_counter()
        fresh.extend_to(COST_BOUND)
        return perf_counter() - started

    timed_expand(None)  # warm the numpy/jit-free paths once
    plain_s = min(timed_expand(None) for _ in range(3))
    progress_log = work_dir / "progress.ndjson"
    events = 0
    instrumented_times = []
    for _ in range(3):
        with open(progress_log, "w") as handle:
            pass  # truncate between repeats
        reporter = ProgressReporter(path=progress_log)
        instrumented_times.append(timed_expand(reporter))
        reporter.close()
    instrumented_s = min(instrumented_times)
    events = sum(
        1 for line in open(progress_log) if line.strip()
    )

    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:
        cpus = os.cpu_count() or 1
    numbers = {
        "schema": 1,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": cpus,
        "store_cost_bound": COST_BOUND,
        "warm_queries": N_WARM,
        "direct_p50_s": direct_p50,
        "routed_p50_s": routed_p50,
        "routed_p99_s": _percentile(latencies, 0.99),
        "routed_mean_s": statistics.mean(latencies),
        "fleet_baseline_p50_s": baseline_p50,
        "fleet_baseline_direct_p50_s": baseline_direct_p50,
        "overhead_vs_fleet_baseline_x": overhead_x,
        "normalized_overhead_x": normalized_x,
        "metrics_scrape_p50_s": _percentile(scrape_times, 0.50),
        "metrics_families": families,
        "precompute_plain_s": plain_s,
        "precompute_progress_s": instrumented_s,
        "progress_overhead_x": instrumented_s / plain_s,
        "progress_events": events,
    }
    _JSON_PATH.write_text(json.dumps(numbers, indent=2, sort_keys=True))
    return numbers


def report(numbers: dict) -> str:
    baseline = numbers["fleet_baseline_p50_s"]
    overhead = numbers["overhead_vs_fleet_baseline_x"]
    normalized = numbers["normalized_overhead_x"]
    versus = (
        f"{baseline * 1e6:8.1f} us baseline (raw {overhead:.3f}x, "
        f"drift-normalized {normalized:.3f}x)"
        if baseline and normalized
        else "no BENCH_fleet.json baseline"
    )
    return (
        "telemetry overhead\n"
        f"direct p50:       {numbers['direct_p50_s'] * 1e6:8.1f} us\n"
        f"routed p50/p99:   {numbers['routed_p50_s'] * 1e6:8.1f} / "
        f"{numbers['routed_p99_s'] * 1e6:8.1f} us   vs {versus}\n"
        f"/metrics scrape:  {numbers['metrics_scrape_p50_s'] * 1e6:8.1f} us "
        f"p50, {numbers['metrics_families']} families\n"
        f"precompute:       plain {numbers['precompute_plain_s']:.3f} s, "
        f"with progress {numbers['precompute_progress_s']:.3f} s "
        f"({numbers['progress_overhead_x']:.3f}x, "
        f"{numbers['progress_events']} events)\n"
        f"(wrote {_JSON_PATH.name})"
    )


@pytest.mark.benchmark
def test_telemetry_overhead(tmp_path):
    numbers = measure(tmp_path)
    print("\n" + report(numbers))
    assert numbers["metrics_families"] >= 15, (
        f"only {numbers['metrics_families']} metric families rendered; "
        "the router registry should expose the full inventory"
    )
    assert numbers["progress_overhead_x"] <= PROGRESS_OVERHEAD_BAR_X, (
        f"progress reporter costs {numbers['progress_overhead_x']:.2f}x "
        f"(bar {PROGRESS_OVERHEAD_BAR_X}x)"
    )
    normalized = numbers["normalized_overhead_x"]
    if normalized is None:
        pytest.skip("no BENCH_fleet.json baseline to compare against")
    if numbers["cpus"] >= 4:
        assert normalized <= SERVE_OVERHEAD_BAR_X, (
            f"telemetry adds {(normalized - 1) * 100:.1f}% to the "
            f"router-overhead multiple "
            f"(bar {(SERVE_OVERHEAD_BAR_X - 1) * 100:.0f}%)"
        )
    else:
        # Few-CPU runners share one core between client, router,
        # replicas and the supervisor; the recorded ratios are
        # context, not a bar.
        print(
            f"(report-only on {numbers['cpus']} cpus: raw "
            f"{numbers['overhead_vs_fleet_baseline_x']:.3f}x, "
            f"normalized {normalized:.3f}x vs baseline)"
        )


if __name__ == "__main__":
    with tempfile.TemporaryDirectory() as tmp:
        print(report(measure(Path(tmp))))
    sys.exit(0)
