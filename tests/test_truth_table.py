"""Unit tests for truth tables (repro.gates.truth_table) -- Table 1."""

import pytest

from repro.errors import InvalidPermutationError, SpecificationError
from repro.gates.gate import Gate
from repro.gates.truth_table import TruthTable
from repro.mvl.labels import label_space
from repro.mvl.patterns import Pattern
from repro.mvl.values import Qv
from repro.perm.permutation import Permutation

#: The paper's Table 1, row for row: (label, A, B, P, Q, out-label),
#: in the paper's grouped row ordering.
PAPER_TABLE_1 = [
    (1, "0", "0", "0", "0", 1),
    (2, "0", "1", "0", "1", 2),
    (3, "1", "0", "1", "V0", 7),
    (4, "1", "1", "1", "V1", 8),
    (5, "0", "V0", "0", "V0", 5),
    (6, "0", "V1", "0", "V1", 6),
    (7, "1", "V0", "1", "1", 4),
    (8, "1", "V1", "1", "0", 3),
    (9, "V0", "0", "V0", "0", 9),
    (10, "V0", "1", "V0", "1", 10),
    (11, "V1", "0", "V1", "0", 11),
    (12, "V1", "1", "V1", "1", 12),
    (13, "V0", "V0", "V0", "V0", 13),
    (14, "V0", "V1", "V0", "V1", 14),
    (15, "V1", "V0", "V1", "V0", 15),
    (16, "V1", "V1", "V1", "V1", 16),
]


@pytest.fixture(scope="module")
def table1():
    space = label_space(2, reduced=False, ordering="grouped")
    return TruthTable.from_gate(Gate.v(1, 0, 2), space)


class TestPaperTable1:
    def test_every_row_matches_the_paper(self, table1):
        rows = table1.rows()
        assert len(rows) == 16
        for row, expected in zip(rows, PAPER_TABLE_1):
            label, a, b, p, q, out_label = expected
            assert row.input_label == label
            assert [str(v) for v in row.input_pattern] == [a, b]
            assert [str(v) for v in row.output_pattern] == [p, q]
            assert row.output_label == out_label

    def test_permutation_representation(self, table1):
        assert table1.permutation().cycle_string() == "(3,7,4,8)"

    def test_binary_rows_enumerated_first(self, table1):
        for row in table1.rows()[:4]:
            assert row.input_pattern.is_binary


class TestConstruction:
    def test_from_map(self, space3):
        table = TruthTable.from_map(space3, lambda p: p)
        assert table.permutation().is_identity

    def test_from_permutation(self, space3):
        perm = Gate.v(1, 0, 3).permutation(space3)
        table = TruthTable.from_permutation(space3, perm)
        assert table.permutation() == perm

    def test_from_permutation_degree_mismatch(self, space3):
        with pytest.raises(SpecificationError):
            TruthTable.from_permutation(space3, Permutation.identity(8))

    def test_bad_images_rejected(self, space3):
        with pytest.raises(SpecificationError):
            TruthTable(space3, [0] * space3.size)


class TestQueries:
    def test_output_label(self, table1):
        assert table1.output_label(2) == 6  # row 3 -> row 7 (0-based)

    def test_output_pattern(self, table1):
        out = table1.output_pattern(Pattern([1, 0]))
        assert out == Pattern([1, Qv.V0])

    def test_is_binary_preserving_false_for_ctrl_v(self, table1):
        assert not table1.is_binary_preserving()

    def test_is_binary_preserving_true_for_cnot(self, space3):
        table = TruthTable.from_gate(Gate.cnot(1, 0, 3), space3)
        assert table.is_binary_preserving()

    def test_restricted_to_binary_of_cnot(self, space3):
        table = TruthTable.from_gate(Gate.cnot(1, 0, 3), space3)
        restricted = table.restricted_to_binary()
        assert restricted.degree == 8
        # B ^= A swaps (1,0,c) and (1,1,c): labels 5<->7 and 6<->8.
        assert restricted.cycle_string() == "(5,7)(6,8)"

    def test_restricted_to_binary_raises_for_ctrl_v(self, table1):
        with pytest.raises(InvalidPermutationError):
            table1.restricted_to_binary()

    def test_equality_and_hash(self, space3):
        a = TruthTable.from_gate(Gate.cnot(1, 0, 3), space3)
        b = TruthTable.from_gate(Gate.cnot(1, 0, 3), space3)
        c = TruthTable.from_gate(Gate.cnot(0, 1, 3), space3)
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_repr(self, table1):
        assert "TruthTable" in repr(table1)
