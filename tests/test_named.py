"""Unit tests for named reversible targets (repro.gates.named)."""

import pytest

from repro.errors import SpecificationError
from repro.gates import named
from repro.perm.permutation import Permutation


class TestPaperCycleForms:
    """The cycle representations printed in Section 5."""

    def test_toffoli(self):
        assert named.TOFFOLI.cycle_string() == "(7,8)"

    def test_fredkin(self):
        assert named.FREDKIN.cycle_string() == "(6,7)"

    def test_peres_g1(self):
        assert named.PERES.cycle_string() == "(5,7,6,8)"

    def test_g2(self):
        assert named.G2.cycle_string() == "(5,8,7,6)"

    def test_g3(self):
        assert named.G3.cycle_string() == "(3,4)(5,7)(6,8)"

    def test_g4(self):
        assert named.G4.cycle_string() == "(3,4)(5,8)(6,7)"

    def test_g1_to_g4_pairwise_distinct(self):
        gates = [named.PERES, named.G2, named.G3, named.G4]
        assert len(set(gates)) == 4


class TestFunctionForms:
    """Cycle forms must equal the paper's printed Boolean equations."""

    @pytest.mark.parametrize(
        "perm,functions",
        [
            (named.TOFFOLI, named.TOFFOLI_FUNCTIONS),
            (named.PERES, named.PERES_FUNCTIONS),
            (named.G2, named.G2_FUNCTIONS),
            (named.G3, named.G3_FUNCTIONS),
            (named.G4, named.G4_FUNCTIONS),
        ],
    )
    def test_cycle_equals_boolean_spec(self, perm, functions):
        assert named.from_output_functions(3, list(functions)) == perm

    def test_fredkin_functions(self):
        fredkin = named.from_output_functions(
            3,
            [
                lambda b: b[0],
                lambda b: b[2] if b[0] else b[1],
                lambda b: b[1] if b[0] else b[2],
            ],
        )
        assert fredkin == named.FREDKIN


class TestFromOutputFunctions:
    def test_wrong_arity_rejected(self):
        with pytest.raises(SpecificationError):
            named.from_output_functions(3, [lambda b: b[0]])

    def test_irreversible_rejected(self):
        with pytest.raises(SpecificationError):
            named.from_output_functions(
                2, [lambda b: b[0], lambda b: b[0]]
            )

    def test_identity(self):
        perm = named.from_output_functions(
            2, [lambda b: b[0], lambda b: b[1]]
        )
        assert perm.is_identity


class TestNotLayers:
    def test_involutions(self):
        for mask in range(8):
            layer = named.not_layer_permutation(mask)
            assert (layer * layer).is_identity

    def test_xor_action(self):
        layer = named.not_layer_permutation(0b101)
        assert layer(0b000) == 0b101
        assert layer(0b110) == 0b011

    def test_group_closure(self):
        layers = named.not_group(3)
        assert len(layers) == 8
        products = {a * b for a in layers for b in layers}
        assert products == set(layers)

    def test_distinct_products_condition(self):
        # Paper: for a, b in N, a*b = () iff a = b.
        layers = named.not_group(3)
        for a in layers:
            for b in layers:
                assert ((a * b).is_identity) == (a == b)

    def test_mask_out_of_range(self):
        with pytest.raises(SpecificationError):
            named.not_layer_permutation(8, 3)


class TestWireRelabeling:
    def test_identity_relabeling(self):
        assert named.wire_relabeling([0, 1, 2]).is_identity

    def test_swap_ab_moves_patterns(self):
        perm = named.wire_relabeling([1, 0, 2])
        # (1,0,0) -> (0,1,0): index 4 -> 2.
        assert perm(4) == 2

    def test_homomorphism(self):
        # relabel(p) * relabel(q) corresponds to composing wire maps.
        p = [1, 2, 0]
        q = [2, 0, 1]
        composed = [q[p[w]] for w in range(3)]
        assert (
            named.wire_relabeling(p) * named.wire_relabeling(q)
            == named.wire_relabeling(composed)
        )

    def test_invalid_relabeling(self):
        with pytest.raises(SpecificationError):
            named.wire_relabeling([0, 0, 1])


class TestTargetBuilders:
    def test_cnot_target(self):
        perm = named.cnot_target(1, 0)
        assert perm.cycle_string() == "(5,7)(6,8)"

    def test_swap_target(self):
        perm = named.swap_target(1, 2)
        # (0,1,0) <-> (0,0,1) and (1,1,0) <-> (1,0,1).
        assert perm.cycle_string() == "(2,3)(6,7)"

    def test_swap_is_involution(self):
        assert (named.swap_target(0, 2) * named.swap_target(0, 2)).is_identity

    def test_registry_contents(self):
        assert named.TARGETS["toffoli"] == named.TOFFOLI
        assert named.TARGETS["g1"] == named.PERES
        assert all(
            isinstance(p, Permutation) and p.degree == 8
            for p in named.TARGETS.values()
        )

    def test_identity3(self):
        assert named.IDENTITY3.is_identity
