"""repro: exact synthesis of 3-qubit quantum circuits from non-binary gates.

A from-scratch reproduction of Yang, Hung, Song & Perkowski, *"Exact
Synthesis of 3-qubit Quantum Circuits from Non-binary Quantum Gates Using
Multiple-Valued Logic and Group Theory"* (DATE 2005).

Quickstart::

    from repro import GateLibrary, express, named

    library = GateLibrary(n_qubits=3)
    result = express(named.TOFFOLI, library)
    print(result.circuit)        # 5-gate V/V+/CNOT cascade
    print(result.cost)           # 5

See README.md for the full tour and DESIGN.md for the architecture.
"""

from repro._version import __version__

from repro.errors import (
    ReproError,
    InvalidValueError,
    InvalidGateError,
    InvalidCircuitError,
    InvalidPermutationError,
    SynthesisError,
    CostBoundExceededError,
    SpecificationError,
    SimulationError,
    NonBinaryControlError,
)
from repro.mvl import Qv, Pattern, LabelSpace, label_space
from repro.linalg import DyadicComplex, Matrix
from repro.perm import Permutation, PermutationGroup, symmetric_group
from repro.gates import Gate, GateKind, GateLibrary, TruthTable, named
from repro.core import (
    Circuit,
    CostModel,
    CascadeSearch,
    CostTable,
    find_minimum_cost_circuits,
    express,
    express_all,
    express_probabilistic,
    ProbabilisticSpec,
    SynthesisResult,
)

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "InvalidValueError",
    "InvalidGateError",
    "InvalidCircuitError",
    "InvalidPermutationError",
    "SynthesisError",
    "CostBoundExceededError",
    "SpecificationError",
    "SimulationError",
    "NonBinaryControlError",
    # substrates
    "Qv",
    "Pattern",
    "LabelSpace",
    "label_space",
    "DyadicComplex",
    "Matrix",
    "Permutation",
    "PermutationGroup",
    "symmetric_group",
    # gates
    "Gate",
    "GateKind",
    "GateLibrary",
    "TruthTable",
    "named",
    # core
    "Circuit",
    "CostModel",
    "CascadeSearch",
    "CostTable",
    "find_minimum_cost_circuits",
    "express",
    "express_all",
    "express_probabilistic",
    "ProbabilisticSpec",
    "SynthesisResult",
]
