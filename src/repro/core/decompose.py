"""Decomposition-based MV synthesis: a second, search-free backend.

Khan & Perkowski (arXiv:quant-ph/0511041) synthesize ternary reversible
functions *constructively*: instead of searching the cascade closure,
the target permutation is factored into elementary operations that are
realized gate by gate.  This module implements that shape for the
two-wire Muthukrishnan--Stroud libraries (:mod:`repro.gates.ternary`,
:mod:`repro.gates.quaternary`):

1. the target permutation of the ``r**2`` digit labels is factored into
   label transpositions (one chain per cycle);
2. a transposition of two labels sharing a digit is realized by
   *conjugation* -- a self-inverse single-qudit gate moves the shared
   coordinate onto the MS control digit ``r-1``, a controlled
   transposition swaps exactly the two conjugated labels, and the single
   gate undoes the move;
3. a transposition of two labels differing on both wires is the standard
   three-transposition product through the intermediate label that
   shares one digit with each end.

The output is exact but deliberately *not* minimal -- that is the point:
it is an independently-derived witness whose permutation must equal the
cascade-search result's, and whose cost upper-bounds the search's
minimal cost.  ``tests/test_ternary.py`` and the CI ternary smoke leg
cross-check the two backends on pinned targets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.circuit import Circuit
from repro.errors import SpecificationError
from repro.gates.library import GateLibrary
from repro.gates.mv import MVGate, MVGateKind
from repro.perm.permutation import Permutation


@dataclass(frozen=True)
class DecompositionResult:
    """A constructive (non-minimal) realization of an MV target.

    Attributes:
        target: the label permutation that was decomposed.
        circuit: the realizing cascade of library gates.
        cost: total gate cost under the library's (Di & Wei) convention.
    """

    target: Permutation
    circuit: Circuit
    cost: int


def _transposition(i: int, j: int, radix: int) -> tuple[int, ...]:
    images = list(range(radix))
    images[i], images[j] = j, i
    return tuple(images)


def _swap_pair_gates(
    x: tuple[int, int], y: tuple[int, int], radix: int, width: int
) -> list[MVGate]:
    """Gates transposing digit labels *x* and *y*, in cascade order."""
    if x == y:
        return []
    top = radix - 1
    if x[0] == y[0] or x[1] == y[1]:
        # The labels share one coordinate: conjugate that coordinate
        # onto the MS control digit, fire a controlled transposition of
        # the differing coordinate, undo.  The conjugating single-qudit
        # gate is a transposition, hence self-inverse.
        if x[1] == y[1]:
            control, target = 1, 0
            shared, lo, hi = x[1], x[0], y[0]
        else:
            control, target = 0, 1
            shared, lo, hi = x[0], x[1], y[1]
        controlled = MVGate(
            MVGateKind(_transposition(lo, hi, radix), True, radix),
            target,
            control,
            width,
        )
        if shared == top:
            return [controlled]
        mover = MVGate(
            MVGateKind(_transposition(shared, top, radix), False, radix),
            control,
            None,
            width,
        )
        return [mover, controlled, mover]
    # Both coordinates differ: route through the intermediate label that
    # shares wire 0 with x and wire 1 with y ((x z)(z y)(x z) == (x y)).
    z = (x[0], y[1])
    via = _swap_pair_gates(x, z, radix, width)
    return via + _swap_pair_gates(z, y, radix, width) + via


def decompose_target(
    target: Permutation, library: GateLibrary
) -> DecompositionResult:
    """Constructively synthesize *target* over a two-wire MV library.

    The result is verified internally: the returned circuit's label
    permutation is recomputed on the library's space and must equal the
    target, and every emitted gate is confirmed to be a library member.

    Raises:
        SpecificationError: wrong target degree, a non-MV (radix 2)
            library, or a register wider than the two wires this
            decomposition handles.
    """
    space = library.space
    if space.radix == 2:
        raise SpecificationError(
            "decompose_target handles MV digit libraries; use the "
            "cascade search (repro.core.mce) for the binary library"
        )
    if space.n_qubits != 2:
        raise SpecificationError(
            "the Khan-Perkowski-style decomposition is implemented for "
            f"2-wire registers; library spans {space.n_qubits}"
        )
    if target.degree != space.size:
        raise SpecificationError(
            f"target degree {target.degree} != {space.size} labels of "
            f"{space!r}"
        )
    radix = space.radix
    gates: list[MVGate] = []
    # Factor the target into transpositions, one chain per cycle.  A
    # cycle (a1 .. ak) -- under this repo's apply-first-to-last product
    # -- is the cascade of (a(k-1) ak), (a(k-2) a(k-1)), ..., (a1 a2).
    for cycle in target.cycles():
        labels = [tuple(space.pattern(lbl)) for lbl in cycle]
        for first, second in zip(labels[-2::-1], labels[:0:-1]):
            gates.extend(_swap_pair_gates(first, second, radix, 2))
    circuit = Circuit(tuple(gates), 2)
    realized = circuit.permutation(space)
    if realized != target:
        raise SpecificationError(
            "decomposition bug: produced a cascade realizing "
            f"{realized.cycle_string()} instead of {target.cycle_string()}"
        )
    cost = 0
    for gate in gates:
        cost += library.by_name(gate.name).cost
    return DecompositionResult(target=target, circuit=circuit, cost=cost)
