"""The asyncio front end of ``repro serve``.

:class:`ReproServer` binds one TCP listener (``asyncio.start_server``)
and, optionally, one UNIX-socket listener
(``asyncio.start_unix_server``, the ``--unix PATH`` flag); both speak
the same sniffed HTTP/NDJSON framings of :mod:`repro.server.protocol`,
per connection from the first line.  :func:`run_server` is the blocking
entry point the CLI uses (signal handling included), and
:class:`BackgroundServer` runs the same stack on a daemon thread for
tests, benchmarks and embedding.

Signals (installed only when running on the main thread):

* ``SIGHUP`` -- graceful registry reload: reopen every store, re-scan
  ``--store-dir``, swap the registry in atomically, keep serving
  throughout (see
  :meth:`~repro.server.service.SynthesisService.reload`).
* ``SIGINT`` / ``SIGTERM`` -- graceful drain: stop accepting, let every
  request already being processed finish and get its response (bounded
  by ``--drain-timeout``), then exit 0.  A mid-batch SIGTERM loses zero
  accepted requests; only stragglers past the drain deadline are
  aborted.

Chaos: an optional :class:`~repro.fleet.chaos.FaultInjector`
(``repro serve --fault exit-after:N|hang:OP|slow:MS|reset-conn:P``)
is consulted once per decoded request, so crash/hang/brown-out/reset
behavior can be injected deterministically inside an otherwise real
server -- the fleet test suite and CI chaos smoke drive it.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import signal
import socket
import stat
import threading
from typing import Callable, Sequence

from dataclasses import replace

from repro.errors import ProtocolError, ReproError
from repro.fleet.chaos import ConnectionResetFault, build_injector
from repro.server.protocol import (
    MAX_BODY,
    Request,
    decode_request_line,
    encode_response,
    error_payload,
    http_response,
    http_text_response,
    read_http_request,
)
from repro.server.service import SynthesisService
from repro.telemetry.trace import TRACE_HEADER

#: Default bound on the graceful drain: how long close() waits for
#: in-flight requests to finish before aborting their transports.
DEFAULT_DRAIN_TIMEOUT = 5.0


def _remove_stale_socket(path: str) -> None:
    """Unlink a leftover socket file so rebinding after a crash works.

    Only *dead* socket files are removed: a connect probe that anything
    accepts means another server is live on this path, which is refused
    loudly rather than hijacked (unlinking a live listener would strand
    it invisibly).  Non-socket files are left in place for ``bind`` to
    fail on.

    Raises:
        ReproError: another process is accepting connections at *path*.
    """
    try:
        if not stat.S_ISSOCK(os.stat(path).st_mode):
            return
    except OSError:
        return  # nothing there; bind will create it
    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    probe.settimeout(0.25)
    try:
        probe.connect(path)
    except (ConnectionRefusedError, FileNotFoundError):
        with contextlib.suppress(OSError):
            os.unlink(path)  # genuinely stale: no listener behind it
    except OSError:
        pass  # can't prove it's dead; leave it for bind to report
    else:
        raise ReproError(
            f"unix socket {path} is already accepting connections; "
            "is another `repro serve` running?"
        )
    finally:
        probe.close()


class ReproServer:
    """TCP and/or UNIX-socket listeners over one service.

    ``port=None`` skips the TCP listener entirely (UNIX-socket-only
    serving); at least one of the two listeners must be configured.
    """

    def __init__(
        self,
        service: SynthesisService,
        host: str = "127.0.0.1",
        port: int | None = 0,
        unix_path: str | None = None,
        fault_injector=None,
        drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
        trace_source=None,
    ):
        if port is None and unix_path is None:
            raise ReproError("server needs a TCP port or a unix socket path")
        self._service = service
        self._host = host
        self._port = port
        self._unix_path = unix_path
        self._fault_injector = fault_injector
        #: A :class:`~repro.telemetry.trace.TraceSource` makes this
        #: server a tracing *edge*: requests arriving without a
        #: ``trace_id`` get one minted here (the fleet wires this on
        #: the router's front end).  ``None`` -- the default -- only
        #: propagates IDs clients bring, keeping untraced traffic
        #: byte-identical to the pre-tracing wire format.
        self._trace_source = trace_source
        self._drain_timeout = max(0.0, drain_timeout)
        self._server: asyncio.AbstractServer | None = None
        self._unix_server: asyncio.AbstractServer | None = None
        self._connections: set = set()
        #: Writers with a request currently being processed (accepted
        #: but unanswered).  close() drains these before touching them.
        self._busy: set = set()
        self._draining = False

    @property
    def service(self) -> SynthesisService:
        return self._service

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0`` ephemerals)."""
        if self._server is None or not self._server.sockets:
            raise ReproError("server has no TCP listener")
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    @property
    def unix_path(self) -> str | None:
        """The UNIX-socket path, or None when only TCP is bound."""
        return self._unix_path if self._unix_server is not None else None

    async def start(self) -> None:
        await self._service.start()
        if self._port is not None:
            self._server = await asyncio.start_server(
                self._on_connection, self._host, self._port, limit=MAX_BODY
            )
        if self._unix_path is not None:
            _remove_stale_socket(self._unix_path)
            self._unix_server = await asyncio.start_unix_server(
                self._on_connection, path=self._unix_path, limit=MAX_BODY
            )

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
        if self._unix_server is not None:
            self._unix_server.close()
        # Stop accepting, then DRAIN: every request already accepted
        # (decoded and handed to the service) finishes and gets its
        # response before its connection is touched.  Handlers observe
        # the flag after each response and bow out on their own.
        self._draining = True
        # One yield so handlers of just-accepted connections get to
        # register themselves before the nudge below.
        await asyncio.sleep(0)
        # Nudge IDLE keep-alive connections off their reads BEFORE
        # awaiting wait_closed(): on Python >= 3.12 wait_closed() waits
        # for every connection handler, so an idle client would hang
        # the shutdown forever if its writer were closed only
        # afterwards.  Busy connections are left alone -- cutting them
        # here is exactly the lost-request bug the drain exists to fix.
        for writer in list(self._connections):
            if writer not in self._busy:
                with contextlib.suppress(Exception):
                    writer.close()
        deadline = asyncio.get_running_loop().time() + self._drain_timeout
        while self._busy and asyncio.get_running_loop().time() < deadline:
            await asyncio.sleep(0.02)
        # Whatever is still busy is past the drain budget (wedged
        # worker, injected hang): close it like an idle connection and
        # let the abort path below finish the job.
        for writer in list(self._connections):
            with contextlib.suppress(Exception):
                writer.close()
        await asyncio.sleep(0)
        for server in (self._server, self._unix_server):
            if server is None:
                continue
            try:
                await asyncio.wait_for(server.wait_closed(), timeout=5.0)
            except asyncio.TimeoutError:
                # Stragglers stuck mid-transfer: abort their transports
                # rather than hang the shutdown.  A handler wedged off
                # the transport entirely (an injected hang fault) won't
                # notice even that -- give it a bounded grace and move
                # on; the process is exiting anyway.
                for writer in list(self._connections):
                    with contextlib.suppress(Exception):
                        writer.transport.abort()
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(server.wait_closed(), timeout=5.0)
        self._server = None
        if self._unix_server is not None:
            self._unix_server = None
            with contextlib.suppress(OSError):
                os.unlink(self._unix_path)
        await self._service.close()

    # -- connection handling -----------------------------------------------------------

    async def _on_connection(self, reader, writer) -> None:
        self._connections.add(writer)
        try:
            first = await self._read_line(reader, writer)
            if not first:
                return
            if first.lstrip().startswith(b"{"):
                await self._serve_ndjson(first, reader, writer)
            else:
                await self._serve_http(first, reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer went away mid-request; nothing to save
        finally:
            self._connections.discard(writer)
            with contextlib.suppress(ConnectionError):
                writer.close()
                await writer.wait_closed()

    async def _read_line(self, reader, writer) -> bytes:
        """One framing line; oversized input gets a structured refusal.

        The stream limit makes ``readline`` raise ``ValueError`` /
        ``LimitOverrunError`` past ``MAX_BODY``; swallowing that would
        silently reset flooding-but-honest clients, so they get one
        protocol-error line (valid JSON for NDJSON peers, readable in
        an HTTP client's error too) before the connection closes.
        """
        try:
            return await reader.readline()
        except (asyncio.LimitOverrunError, ValueError):
            payload, _status = error_payload(
                ProtocolError(f"request line exceeds {MAX_BODY} bytes")
            )
            with contextlib.suppress(ConnectionError):
                writer.write(encode_response(None, None, payload))
                await writer.drain()
            return b""

    def _assign_trace(self, request: Request) -> Request:
        """Mint a ``trace_id`` at a tracing edge; pass-through otherwise."""
        if self._trace_source is not None and request.trace_id is None:
            return replace(request, trace_id=self._trace_source.trace_id())
        return request

    async def _serve_ndjson(self, first: bytes, reader, writer) -> None:
        line = first
        while line:
            request_id: object = None
            trace_id: str | None = None
            try:
                request = self._assign_trace(decode_request_line(line))
                request_id = request.id
                trace_id = request.trace_id
                # Accepted: from here this request is owed a response,
                # even through a graceful drain.
                self._busy.add(writer)
                if self._fault_injector is not None:
                    await self._fault_injector.before_handle(request.op)
                result = await self._service.handle(request)
                response = encode_response(request_id, result,
                                           trace_id=trace_id)
            except ConnectionResetFault:
                self._busy.discard(writer)
                writer.transport.abort()
                return
            except Exception as exc:  # noqa: BLE001 -- mapped to wire error
                payload, _status = error_payload(exc)
                if trace_id is not None:
                    payload["trace_id"] = trace_id
                response = encode_response(request_id, None, payload,
                                           trace_id=trace_id)
            try:
                writer.write(response)
                await writer.drain()
            finally:
                self._busy.discard(writer)
            if self._draining:
                return
            line = await self._read_line(reader, writer)

    async def _serve_http(self, first: bytes, reader, writer) -> None:
        request_line = first
        while request_line not in (b"", b"\r\n", b"\n"):
            keep_alive = False
            trace_id: str | None = None
            try:
                request = await read_http_request(reader, request_line)
                request = self._assign_trace(request)
                keep_alive = request.keep_alive
                trace_id = request.trace_id
                headers = (
                    None if trace_id is None else {TRACE_HEADER: trace_id}
                )
                self._busy.add(writer)
                if self._fault_injector is not None:
                    await self._fault_injector.before_handle(request.op)
                result = await self._service.handle(request)
                if (
                    request.op == "metrics"
                    and isinstance(result, dict)
                    and isinstance(result.get("text"), str)
                ):
                    # The one non-JSON response: raw exposition text,
                    # so curl/Prometheus scrape the standard format.
                    response = http_text_response(
                        200, result["text"],
                        content_type=result.get(
                            "content_type", "text/plain; charset=utf-8"
                        ),
                        keep_alive=keep_alive, extra_headers=headers,
                    )
                else:
                    response = http_response(200, result, keep_alive,
                                             extra_headers=headers)
            except ConnectionResetFault:
                self._busy.discard(writer)
                writer.transport.abort()
                return
            except ProtocolError as exc:
                payload, status = error_payload(exc)
                if trace_id is not None:
                    payload["trace_id"] = trace_id
                response = http_response(status, {"error": payload}, False)
                keep_alive = False
            except (asyncio.LimitOverrunError, ValueError):
                # Stream-limit overflow inside the header/body read
                # (ProtocolError, though a ValueError, matched above).
                payload, status = error_payload(
                    ProtocolError(f"request exceeds {MAX_BODY} bytes")
                )
                response = http_response(status, {"error": payload}, False)
                keep_alive = False
            except Exception as exc:  # noqa: BLE001 -- mapped to wire error
                payload, status = error_payload(exc)
                if trace_id is not None:
                    payload["trace_id"] = trace_id
                headers = (
                    None if trace_id is None else {TRACE_HEADER: trace_id}
                )
                response = http_response(status, {"error": payload},
                                         keep_alive, extra_headers=headers)
            try:
                writer.write(response)
                await writer.drain()
            finally:
                self._busy.discard(writer)
            if not keep_alive or self._draining:
                return
            try:
                request_line = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                payload, _status = error_payload(
                    ProtocolError(f"request line exceeds {MAX_BODY} bytes")
                )
                writer.write(http_response(400, {"error": payload}, False))
                await writer.drain()
                return


async def run_server(
    stores: str | Sequence[str],
    host: str = "127.0.0.1",
    port: int | None = 0,
    cost_bound: int | None = None,
    workers: int | None = None,
    max_batch: int | None = None,
    ready: Callable[[tuple[str, int], SynthesisService], None] | None = None,
    stop_event: asyncio.Event | None = None,
    unix: str | None = None,
    store_dir: str | None = None,
    access_log: str | None = None,
    access_log_max_bytes: int | None = None,
    access_log_keep: int | None = None,
    fault: str | None = None,
    fault_seed: int = 0,
    drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
) -> int:
    """Run the service until stopped; the CLI's ``repro serve`` body.

    *stores* is one store path or a sequence of ``PATH`` /
    ``ALIAS=PATH`` specs; *store_dir* adds every ``*.rpro`` under a
    directory; *unix* additionally binds a UNIX-socket listener at the
    given path (with ``port=None`` it is the *only* listener);
    *access_log* appends one NDJSON record per request, rotated at
    *access_log_max_bytes* keeping *access_log_keep* old files.
    *fault* / *fault_seed* inject deterministic chaos faults
    (:mod:`repro.fleet.chaos`); *drain_timeout* bounds the graceful
    SIGTERM drain.  *ready* is called once with the bound TCP address
    -- or ``None`` when serving UNIX-only -- after the listeners are
    up (the CLI prints its "listening on" line from it).  Returns the
    process exit code.
    """
    from repro.server.service import DEFAULT_MAX_BATCH, DEFAULT_WORKERS

    service = SynthesisService(
        stores,
        cost_bound=cost_bound,
        workers=DEFAULT_WORKERS if workers is None else workers,
        max_batch=DEFAULT_MAX_BATCH if max_batch is None else max_batch,
        store_dir=store_dir,
        access_log=access_log,
        access_log_max_bytes=access_log_max_bytes,
        access_log_keep=access_log_keep,
    )
    server = ReproServer(
        service,
        host,
        port,
        unix_path=unix,
        fault_injector=build_injector(fault, seed=fault_seed),
        drain_timeout=drain_timeout,
    )
    await server.start()

    loop = asyncio.get_running_loop()
    stop = stop_event or asyncio.Event()
    installed: list[int] = []
    if threading.current_thread() is threading.main_thread():
        with contextlib.suppress(NotImplementedError, ValueError):
            loop.add_signal_handler(
                signal.SIGHUP,
                lambda: loop.create_task(service.reload()),
            )
            installed.append(signal.SIGHUP)
            for signum in (signal.SIGINT, signal.SIGTERM):
                loop.add_signal_handler(signum, stop.set)
                installed.append(signum)
    try:
        if ready is not None:
            ready(server.address if port is not None else None, service)
        await stop.wait()
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)
        await server.close()
    return 0


class BackgroundServer:
    """A ``repro serve`` stack on a daemon thread (tests/benchmarks).

    Usage::

        with BackgroundServer("closure.rpro") as server:
            client = ServeClient(server.address_text)
            ...

        with BackgroundServer(["fast=a.rpro", "deep=b.rpro"],
                              unix="/tmp/repro.sock") as server:
            client = ServeClient("unix:/tmp/repro.sock", store="deep")

    The server binds an ephemeral port by default; keyword arguments
    pass through to :func:`run_server` (``unix``, ``store_dir``,
    ``access_log``, ...).  Signals are *not* installed (they require
    the main thread); use :meth:`reload` for the SIGHUP path.
    """

    def __init__(self, stores: str | Sequence[str], **kwargs):
        if isinstance(stores, (str, os.PathLike)):
            self._stores: list[str] = [str(stores)]
        else:
            self._stores = [str(spec) for spec in stores]
        self._kwargs = kwargs
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._service: SynthesisService | None = None
        self._stop: asyncio.Event | None = None
        self._ready = threading.Event()
        self._started = False
        self._address: tuple[str, int] | None = None
        self._error: BaseException | None = None

    @property
    def address(self) -> tuple[str, int]:
        assert self._address is not None, "server not started or unix-only"
        return self._address

    @property
    def address_text(self) -> str:
        host, port = self.address
        return f"{host}:{port}"

    @property
    def unix_address_text(self) -> str:
        """The ``unix:PATH`` endpoint (requires ``unix=`` at construction)."""
        path = self._kwargs.get("unix")
        assert path is not None, "server has no unix listener"
        return f"unix:{path}"

    @property
    def service(self) -> SynthesisService:
        assert self._service is not None, "server not started"
        return self._service

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=60)
        if self._error is not None:
            raise self._error
        if not self._started:
            raise ReproError("server failed to start within 60s")
        return self

    def reload(self, timeout: float = 30.0) -> None:
        """Synchronously run the SIGHUP store-reload path."""
        assert self._loop is not None and self._service is not None
        asyncio.run_coroutine_threadsafe(
            self._service.reload(), self._loop
        ).result(timeout)

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()

            def on_ready(address, service):
                self._address = address  # None when serving UNIX-only
                self._service = service
                self._started = True
                self._ready.set()

            await run_server(
                self._stores,
                ready=on_ready,
                stop_event=self._stop,
                **self._kwargs,
            )

        try:
            asyncio.run(main())
        except BaseException as exc:  # noqa: BLE001 -- reported to starter
            self._error = exc
        finally:
            self._ready.set()
