"""Unit tests for the product-state simulator (repro.sim.product_state)."""

import pytest

from repro.errors import NonBinaryControlError
from repro.core.circuit import Circuit
from repro.mvl.patterns import Pattern
from repro.mvl.values import Qv
from repro.sim.product_state import ProductStateSimulator


@pytest.fixture
def peres_sim():
    return ProductStateSimulator(Circuit.from_names("V_CB F_BA V_CA V+_CB", 3))


class TestRun:
    def test_run_binary_input(self, peres_sim):
        out = peres_sim.run(Pattern([1, 1, 0]))
        assert out == Pattern([1, 0, 1])

    def test_run_bits(self, peres_sim):
        assert peres_sim.run_bits((1, 1, 0)) == Pattern([1, 0, 1])

    def test_run_strict_raises_on_unreasonable(self):
        sim = ProductStateSimulator(Circuit.from_names("V_BA F_BA", 3))
        with pytest.raises(NonBinaryControlError):
            sim.run(Pattern([1, 0, 0]))

    def test_circuit_property(self, peres_sim):
        assert len(peres_sim.circuit) == 4


class TestTrace:
    def test_trace_length(self, peres_sim):
        steps = peres_sim.trace(Pattern([1, 1, 0]))
        assert len(steps) == 4
        assert [s.gate.name for s in steps] == ["V_CB", "F_BA", "V_CA", "V+_CB"]

    def test_trace_shows_intermediate_mixed_value(self, peres_sim):
        # Input (1,1,0): V_CB fires (B=1) putting C into V0 -- the
        # signature non-classical intermediate state of the Peres cascade.
        steps = peres_sim.trace(Pattern([1, 1, 0]))
        assert steps[0].pattern == Pattern([1, 1, Qv.V0])
        assert steps[-1].pattern.is_binary

    def test_trace_matches_run(self, peres_sim):
        pattern = Pattern([1, 0, 1])
        steps = peres_sim.trace(pattern)
        assert steps[-1].pattern == peres_sim.run(pattern)

    def test_wire_history_includes_input(self, peres_sim):
        history = peres_sim.wire_history(Pattern([0, 1, 0]))
        assert len(history) == 5
        assert history[0] == (Qv.ZERO, Qv.ONE, Qv.ZERO)

    def test_empty_circuit_trace(self):
        sim = ProductStateSimulator(Circuit.empty(3))
        assert sim.trace(Pattern([1, 0, 1])) == []
