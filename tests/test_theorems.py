"""Unit tests for the paper's theorems (repro.core.theorems)."""

import pytest

from repro.core.theorems import (
    coset_cost_is_invariant,
    not_layer_circuit,
    paper_generator_group,
    stabilizer_group,
    universality_group,
    verify_theorem1_consistency,
    verify_theorem2,
)
from repro.gates import named
from repro.perm.permutation import Permutation


class TestGroupFacts:
    def test_stabilizer_group_order_is_5040(self):
        # |G| = 5040 (Section 3).
        assert stabilizer_group(3).order() == 5040

    def test_paper_generators_give_the_same_group(self):
        # G = <F_AB, F_BA, F_BC, F_CB, Peres_AB>, |G| = 5040.
        g = paper_generator_group()
        assert g.order() == 5040
        assert g.equals(stabilizer_group(3))

    def test_paper_generator_group_needs_three_qubits(self):
        with pytest.raises(ValueError):
            paper_generator_group(2)

    def test_universality_group_of_toffoli_is_s8(self):
        # <Toffoli, NOT, CNOT> is classically universal on 3 bits.
        assert universality_group(named.TOFFOLI).order() == 40320

    def test_universality_group_of_cnot_is_linear_only(self):
        # CNOT adds nothing beyond the affine group: 8 * 168 = 1344.
        assert universality_group(named.cnot_target(1, 0)).order() == 1344

    def test_universality_group_of_peres_is_s8(self):
        assert universality_group(named.PERES).order() == 40320


class TestTheorem2:
    def test_verify_theorem2_for_three_qubits(self):
        summary = verify_theorem2(3)
        assert summary["g_order"] == 5040
        assert summary["h_order"] == 40320
        assert summary["n_cosets"] == 8
        assert summary["coset_size"] == 5040

    def test_verify_theorem2_for_two_qubits(self):
        summary = verify_theorem2(2)
        assert summary["g_order"] == 6
        assert summary["h_order"] == 24
        assert summary["n_cosets"] == 4

    def test_coset_cost_invariance_on_table(self, cost_table5):
        assert coset_cost_is_invariant(cost_table5)

    def test_theorem1_consistency(self, cost_table5, library3):
        assert verify_theorem1_consistency(cost_table5, library3)


class TestNotLayerCircuit:
    def test_empty_mask(self):
        circuit = not_layer_circuit(0)
        assert len(circuit) == 0

    def test_full_mask(self):
        circuit = not_layer_circuit(0b111)
        assert circuit.names() == ("N_A", "N_B", "N_C")

    def test_circuit_action_matches_permutation(self):
        for mask in range(8):
            circuit = not_layer_circuit(mask)
            expected = named.not_layer_permutation(mask)
            assert circuit.binary_permutation() == expected

    def test_wire_zero_is_most_significant(self):
        circuit = not_layer_circuit(0b100)
        assert circuit.names() == ("N_A",)
        assert circuit.binary_permutation()(0) == 4
