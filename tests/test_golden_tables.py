"""Golden regression suite: the paper's tables, pinned number by number.

These tests freeze the exact outputs of the search/FMCF engine -- the
Table 1 permutation and every |B[k]| / |A[k]| / |G[k]| / |S8[k]| count
through the paper's cost bound cb = 7 -- so a refactor of the engine
cannot silently change results.  If a change legitimately alters these
numbers, that is a results change, not a refactor: update the constants
here in the same commit and say why.

Every closure-level assertion runs five ways -- against the live vector
search, the byte-level ``translate`` reference kernel, the sharded
``parallel`` engine, and store-roundtripped copies in both the legacy
v1 and memory-mapped v2 formats (``dump_search``/``loads_search``) --
so all three expansion kernels and both persistence formats are held to
the same golden values.

Documented deviations from the published Table 2 (see bench_table2.py):
|G[2]| = 24 vs the paper's 30 and |G[3]| = 51 vs 52; the
``paper_pseudocode=True`` variant reproduces the published 52.
"""

import pytest

from repro.core.batch import BatchSynthesizer
from repro.core.fmcf import find_minimum_cost_circuits
from repro.core.store import dump_search, loads_search

#: |B[k]|: distinct cascade permutations of minimal cost exactly k.
GOLDEN_B = [1, 18, 162, 1017, 5364, 25761, 118888, 538191]
#: |A[k]| = |B[0]| + ... + |B[k]| (cumulative closure sizes).
GOLDEN_A = [1, 19, 181, 1198, 6562, 32323, 151211, 689402]
#: |G[k]|: reversible 3-qubit functions of minimal NOT-free cost k.
GOLDEN_G = [1, 6, 24, 51, 84, 156, 398, 540]
#: |S8[k]| = 8 |G[k]| (Theorem 2's free NOT layers).
GOLDEN_S8 = [8, 48, 192, 408, 672, 1248, 3184, 4320]
#: The published pseudocode variant (no G[0] subtraction): |G[3]| = 52.
GOLDEN_G_PAPER_PSEUDOCODE = [1, 6, 24, 52, 84]

#: Minimal cost and implementation count per named target (cb = 7).
GOLDEN_NAMED = {
    "identity": (0, 1),
    "cnot_ba": (1, 1),
    "cnot_cb": (1, 1),
    "swap_ab": (3, 1),
    "swap_ac": (3, 1),
    "swap_bc": (3, 1),
    "g1": (4, 2),
    "g2": (4, 2),
    "g3": (4, 2),
    "g4": (4, 2),
    "peres": (4, 2),
    "toffoli": (5, 4),
    "fredkin": (7, 16),
}


@pytest.fixture(
    scope="module",
    params=[
        "live", "translate-kernel", "parallel-kernel",
        "store-v1", "store-v2", "store-v3",
    ],
)
def closure(request, search3, library3):
    """The cost-7 closure: all three kernels and every store format."""
    search3.extend_to(7)
    if request.param == "live":
        return search3
    if request.param in ("translate-kernel", "parallel-kernel"):
        from repro.core.search import CascadeSearch

        search = CascadeSearch(
            library3,
            track_parents=True,
            kernel=request.param.removesuffix("-kernel"),
        )
        search.extend_to(7)
        return search
    version = {"store-v1": 1, "store-v2": 2, "store-v3": 3}[request.param]
    return loads_search(
        dump_search(search3, format_version=version), library3
    )


@pytest.fixture(scope="module")
def closure_batch(closure):
    """One batch index per closure flavor (building it scans the closure)."""
    return BatchSynthesizer(closure, cost_bound=7)


class TestTable1:
    """Table 1: the controlled-V truth table on the grouped 2-qubit space."""

    def test_ctrl_v_permutation_is_pinned(self):
        from repro.gates.gate import Gate
        from repro.gates.truth_table import TruthTable
        from repro.mvl.labels import label_space

        space = label_space(2, reduced=False, ordering="grouped")
        table = TruthTable.from_gate(Gate.v(1, 0, 2), space)
        permutation = table.permutation()
        assert permutation.cycle_string() == "(3,7,4,8)"
        assert tuple(permutation.images) == (
            0, 1, 6, 7, 4, 5, 3, 2, 8, 9, 10, 11, 12, 13, 14, 15
        )

    def test_ctrl_v_moves_only_controlled_rows(self):
        """Rows with control A = 1 change; control A = 0 rows are fixed."""
        from repro.gates.gate import Gate
        from repro.gates.truth_table import TruthTable
        from repro.mvl.labels import label_space
        from repro.mvl.values import Qv

        space = label_space(2, reduced=False, ordering="grouped")
        table = TruthTable.from_gate(Gate.v(1, 0, 2), space)
        for label, pattern in enumerate(space.patterns):
            image = table.permutation()(label)
            if pattern[0] in (Qv.ZERO,):
                assert image == label, f"control-0 row {pattern} moved"


class TestTable2Closure:
    """|B[k]| and |A[k]| -- the raw closure sizes behind Table 2."""

    def test_level_sizes_are_pinned(self, closure):
        stats = closure.stats()
        assert list(stats.level_sizes) == GOLDEN_B

    def test_cumulative_sizes_are_pinned(self, closure):
        stats = closure.stats()
        assert list(stats.a_sizes) == GOLDEN_A
        assert closure.total_seen() == GOLDEN_A[-1]

    def test_level_queries_match_stats(self, closure):
        for cost, size in enumerate(GOLDEN_B):
            assert closure.level_size(cost) == size


class TestTable2Functions:
    """|G[k]| and |S8[k]| -- Table 2 proper, live FMCF and store-served."""

    def test_fmcf_sizes_are_pinned(self, cost_table7):
        assert cost_table7.g_sizes == GOLDEN_G
        assert cost_table7.s8_sizes == GOLDEN_S8
        assert cost_table7.b_sizes == GOLDEN_B
        assert cost_table7.a_sizes == GOLDEN_A

    def test_fmcf_from_closure_matches(self, closure, library3):
        table = find_minimum_cost_circuits(library3, cost_bound=7, search=closure)
        assert table.g_sizes == GOLDEN_G
        assert table.s8_sizes == GOLDEN_S8

    def test_batch_cost_table_matches(self, closure_batch):
        table = closure_batch.cost_table()
        assert table.g_sizes == GOLDEN_G
        assert table.s8_sizes == GOLDEN_S8
        assert table.b_sizes == GOLDEN_B
        assert table.a_sizes == GOLDEN_A

    def test_paper_pseudocode_variant_is_pinned(self, library3):
        table = find_minimum_cost_circuits(
            library3, cost_bound=4, paper_pseudocode=True
        )
        assert table.g_sizes == GOLDEN_G_PAPER_PSEUDOCODE


class TestNamedTargets:
    """Minimal costs and implementation counts of the paper's targets."""

    @pytest.mark.parametrize("name", sorted(GOLDEN_NAMED))
    def test_cost_and_implementation_count(self, name, closure, library3):
        from repro.core.mce import express_all
        from repro.gates import named

        cost, n_impls = GOLDEN_NAMED[name]
        results = express_all(
            named.TARGETS[name], library3, cost_bound=7, search=closure
        )
        assert results[0].cost == cost
        assert len(results) == n_impls

    @pytest.mark.parametrize("name", sorted(GOLDEN_NAMED))
    def test_batch_agrees(self, name, closure_batch):
        from repro.gates import named

        cost, n_impls = GOLDEN_NAMED[name]
        assert closure_batch.minimal_cost(named.TARGETS[name]) == cost
        assert len(closure_batch.synthesize_all(named.TARGETS[name])) == n_impls


#: Ternary width-2 |B[k]| through bound 4 (Di-Wei library, MS controls).
GOLDEN_TERNARY_B = [1, 10, 35, 140, 571]
#: Ternary cumulative closure sizes |A[k]|.
GOLDEN_TERNARY_A = [1, 11, 46, 186, 757]
#: Quaternary width-2 |B[k]| through bound 3.
GOLDEN_QUATERNARY_B = [1, 18, 127, 708]

#: (minimal cost, implementation count) per pinned ternary target spec.
GOLDEN_TERNARY_TARGETS = {
    "(8,9)": (2, 1),
    "(1,2)": (4, 1),
    "(1,2,3)": (4, 1),
    "(1,4,7)": (4, 1),
    "(1,2)(4,5)(7,8)": (1, 1),
}


@pytest.fixture(scope="module")
def ternary_library2():
    from repro.gates.ternary import ternary_library

    return ternary_library(2)


@pytest.fixture(
    scope="module",
    params=[
        "live", "translate-kernel", "parallel-kernel",
        "store-v2", "store-v3",
    ],
)
def ternary_closure(request, ternary_library2):
    """The ternary bound-4 closure: every kernel and mmap store format."""
    from repro.core.search import CascadeSearch

    if request.param in ("live", "store-v2", "store-v3"):
        search = CascadeSearch(ternary_library2, track_parents=True)
    else:
        search = CascadeSearch(
            ternary_library2,
            track_parents=True,
            kernel=request.param.removesuffix("-kernel"),
        )
    search.extend_to(4)
    if request.param.startswith("store-"):
        version = {"store-v2": 2, "store-v3": 3}[request.param]
        return loads_search(
            dump_search(search, format_version=version), ternary_library2
        )
    return search


class TestTernaryClosure:
    """Pinned ternary closure counts -- the MV analog of Table 2."""

    def test_level_sizes_are_pinned(self, ternary_closure):
        stats = ternary_closure.stats()
        assert list(stats.level_sizes) == GOLDEN_TERNARY_B
        assert list(stats.a_sizes) == GOLDEN_TERNARY_A
        assert ternary_closure.total_seen() == GOLDEN_TERNARY_A[-1]

    def test_fmcf_has_no_free_not_layer(self, ternary_closure, ternary_library2):
        """MV G[k] == B[k]: without Theorem 2 every member is its own class."""
        table = find_minimum_cost_circuits(
            ternary_library2, cost_bound=4, search=ternary_closure
        )
        assert table.g_sizes == GOLDEN_TERNARY_B
        assert table.b_sizes == GOLDEN_TERNARY_B
        assert table.a_sizes == GOLDEN_TERNARY_A

    @pytest.mark.parametrize("spec", sorted(GOLDEN_TERNARY_TARGETS))
    def test_pinned_target_costs(self, spec, ternary_closure):
        from repro.io import parse_target
        from repro.sim.verify import verify_synthesis

        cost, n_impls = GOLDEN_TERNARY_TARGETS[spec]
        batch = BatchSynthesizer(ternary_closure, cost_bound=4)
        target = parse_target(spec, n_qubits=2, radix=3)
        results = batch.synthesize_all(target)
        assert results[0].cost == cost
        assert len(results) == n_impls
        assert verify_synthesis(results[0])


class TestQuaternaryClosure:
    """Pinned quaternary closure counts (vector kernel)."""

    def test_level_sizes_are_pinned(self):
        from repro.core.search import CascadeSearch
        from repro.gates.quaternary import quaternary_library

        search = CascadeSearch(quaternary_library(2), track_parents=True)
        search.extend_to(3)
        assert list(search.stats().level_sizes) == GOLDEN_QUATERNARY_B
