"""Verified algebraic identities of the gate library.

The paper's algebra rests on a handful of cascade identities (V.V = NOT
under a shared control, V.V+ = identity, Hermitian-adjoint symmetry,
commuting Feynman pairs).  This module *derives and verifies* them from
the permutation representation rather than assuming them, and exposes
the results as queryable structure:

* :func:`commuting_pairs` -- which library gates commute as label
  permutations.  The six commuting Feynman pairs (shared control or
  shared target) are exactly the collisions that make |G[2]| = 24
  rather than the paper's 30.
* :func:`inverse_pairs` -- gates that cancel (V_xy with V+_xy; every
  Feynman gate with itself).
* :func:`cnot_emulations` -- V.V pairs whose *restriction to the binary
  patterns* equals a Feynman gate (the reason CNOT is redundant-in-
  principle but cost-saving-in-practice; see the library ablations).
* :func:`verify_adjoint_closure` -- the V <-> V+ swap is a cost-
  preserving automorphism of the library, which is why implementations
  come in Hermitian-adjoint pairs (Figures 8 and 9).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gates.kinds import GateKind
from repro.gates.library import GateLibrary, LibraryGate


@dataclass(frozen=True)
class GatePairIdentity:
    """A verified relation between two library gates."""

    left: str
    right: str
    relation: str  # "commute" | "inverse" | "cnot-emulation"


def commuting_pairs(library: GateLibrary) -> list[GatePairIdentity]:
    """All unordered pairs of distinct gates that commute as label perms."""
    out = []
    gates = library.gates
    for i, a in enumerate(gates):
        for b in gates[i + 1:]:
            if a.permutation * b.permutation == b.permutation * a.permutation:
                out.append(GatePairIdentity(a.name, b.name, "commute"))
    return out


def commuting_feynman_pairs(library: GateLibrary) -> list[GatePairIdentity]:
    """The Feynman-Feynman commuting pairs (the |G[2]| collision set)."""
    return [
        identity
        for identity in commuting_pairs(library)
        if identity.left.startswith("F") and identity.right.startswith("F")
    ]


def inverse_pairs(library: GateLibrary) -> list[GatePairIdentity]:
    """Unordered pairs (including self-pairs) whose product is identity."""
    out = []
    gates = library.gates
    for i, a in enumerate(gates):
        for b in gates[i:]:
            if (a.permutation * b.permutation).is_identity:
                out.append(GatePairIdentity(a.name, b.name, "inverse"))
    return out


def cnot_emulations(library: GateLibrary) -> list[GatePairIdentity]:
    """V.V (and V+.V+) squares that act as a Feynman gate on binary inputs.

    The squares differ from the true Feynman gate on mixed labels (which
    is why they are distinct elements of the 38-label monoid) but agree
    on the binary sub-domain -- the identity `controlled-V squared =
    CNOT` of Section 2 at the label level.
    """
    out = []
    binary = list(library.space.binary_labels)
    feynman_restricted = {}
    for entry in library.gates:
        if entry.gate.kind is GateKind.CNOT:
            feynman_restricted[
                entry.permutation.restricted(binary)
            ] = entry.name
    for entry in library.gates:
        if not entry.gate.kind.is_controlled:
            continue
        square = entry.permutation * entry.permutation
        if not square.fixes(binary):
            continue
        restricted = square.restricted(binary)
        name = feynman_restricted.get(restricted)
        if name is not None:
            out.append(
                GatePairIdentity(f"{entry.name}^2", name, "cnot-emulation")
            )
    return out


def verify_adjoint_closure(library: GateLibrary) -> bool:
    """The V <-> V+ swap maps the library onto itself, inverting each
    controlled gate's permutation and preserving cost and banned mask."""
    for entry in library.gates:
        adjoint = library.adjoint_entry(entry)
        if adjoint.cost != entry.cost or adjoint.banned_mask != entry.banned_mask:
            return False
        if entry.gate.kind.is_controlled:
            if adjoint.permutation != entry.permutation.inverse():
                return False
        else:
            if adjoint.permutation != entry.permutation:
                return False
    return True


def identity_catalog(library: GateLibrary) -> dict[str, list[GatePairIdentity]]:
    """All verified identities, grouped by relation kind."""
    return {
        "commute": commuting_pairs(library),
        "inverse": inverse_pairs(library),
        "cnot-emulation": cnot_emulations(library),
    }
