"""The reasonable-product cascade search (shared FMCF/MCE engine).

This is the computational heart of the paper: a layered breadth-first
closure over cascades of library gates, where a gate may extend a cascade
``f`` only when ``f(S)`` avoids the gate's banned set (Definition 1's
*reasonable product*).  Levels are indexed by accumulated quantum cost, so
with non-unit cost models the search is a Dijkstra-style layered
expansion; with the paper's unit costs it degenerates to plain BFS and the
level sets are exactly the paper's ``B[k]`` (and their union ``A[k]``).

Two interchangeable kernels drive the expansion:

* ``kernel="vector"`` (default): the NumPy engine of
  :mod:`repro.core.kernel` -- levels are contiguous uint8 arrays, a gate
  application is one mask filter plus one fancy-indexing composition, and
  dedup runs through a vectorized hash table.  This is several times
  faster than the byte-level loop and is the representation the v2
  closure store serializes directly.
* ``kernel="translate"``: the original pure-Python loop (one
  ``bytes.translate`` per candidate, dict-based dedup), kept as the
  reference implementation and benchmark baseline
  (``benchmarks/bench_kernel.py``).
* ``kernel="parallel"``: the sharded expansion engine of
  :mod:`repro.core.parallel` -- relation-filtered candidate generation,
  optionally fanned out to a ``multiprocessing`` worker pool, merged
  through a disk-backed sharded dedup table.  Tunables (worker count,
  shard bits, dedup memory budget, checkpoint directory) arrive via
  ``kernel_options``.

All kernels produce identical levels in identical discovery order with
identical parent pointers; ``tests/test_kernels.py`` and
``tests/test_parallel.py`` pin that equivalence.  Optional parent pointers give O(cost) witness extraction
for MCE, and row-based accessors (:meth:`CascadeSearch.perm_bytes_at`,
:meth:`CascadeSearch.witness_indices_for_row`) let index-serving layers
avoid byte-level lookups entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

from repro.errors import InvalidValueError
from repro.core.circuit import Circuit
from repro.core.cost import CostModel, UNIT_COST
from repro.gates.library import GateLibrary
from repro.perm.permutation import Permutation

try:  # numpy is a core dependency, but the translate kernel works without
    import numpy as _np
except ImportError:  # pragma: no cover - the container ships numpy
    _np = None

#: Kernel names accepted by :class:`CascadeSearch`.
KERNELS = ("vector", "translate", "parallel")
#: Kernels whose closure state is the array engine of repro.core.kernel.
_ARRAY_KERNELS = ("vector", "parallel")


@dataclass(frozen=True)
class SearchState:
    """Complete byte-level snapshot of an expanded :class:`CascadeSearch`.

    This is the legacy export surface consumed by the v1 closure store
    (:mod:`repro.core.store`): everything the search accumulated --
    level sets, S-image masks, parent pointers -- without any of the
    library-derived data that is cheaper to rebuild than to ship.  The
    array-backed sibling used by the v2 store is :class:`SearchArrays`.

    Attributes:
        expanded_to: highest fully-computed cost level.
        levels: ``levels[k]`` is the B[k] level as a tuple of
            ``(permutation bytes, S-image mask)`` pairs in discovery
            order; empty levels (possible with non-unit cost models) are
            present as empty tuples.
        parents: one ``perm -> (predecessor perm, library gate index)``
            entry per non-identity permutation, or None when the search
            was counting-only (``track_parents=False``).
        elapsed_seconds: accumulated expansion wall time.
    """

    expanded_to: int
    levels: tuple[tuple[tuple[bytes, int], ...], ...]
    parents: dict[bytes, tuple[bytes, int]] | None
    elapsed_seconds: float

    @property
    def total_seen(self) -> int:
        return sum(len(level) for level in self.levels)

    @property
    def level_sizes(self) -> tuple[int, ...]:
        return tuple(len(level) for level in self.levels)


@dataclass
class SearchArrays:
    """Array-backed snapshot of an expanded search (the v2 store form).

    Rows appear in level-major discovery order, so a row index is the
    permutation's *global index*; level ``k`` occupies rows
    ``level_offsets[k]:level_offsets[k+1]``.  All arrays may be plain
    ndarrays or read-only ``np.memmap`` views -- treat them as immutable.

    Attributes:
        expanded_to: highest fully-computed cost level.
        degree: label-space size (row width of *perms*).
        n_binary: number of binary labels (the paper's set S).
        mask_words: uint64 words per S-image mask row.
        level_offsets: ``(expanded_to + 2,)`` int64 row offsets.
        perms: ``(n, degree)`` uint8 image arrays.
        masks: ``(n, mask_words)`` uint64 S-image masks.
        parents: ``(n,)`` int32 parent global rows (row 0 = -1), or None
            for counting-only closures.
        gates: ``(n,)`` int32 appended-gate indices (row 0 = -1), or
            None alongside *parents*.
        elapsed_seconds: accumulated expansion wall time.
    """

    expanded_to: int
    degree: int
    n_binary: int
    mask_words: int
    level_offsets: "_np.ndarray"
    perms: "_np.ndarray"
    masks: "_np.ndarray"
    parents: "_np.ndarray | None"
    gates: "_np.ndarray | None"
    elapsed_seconds: float

    @property
    def n_rows(self) -> int:
        return int(self.level_offsets[-1])

    @property
    def level_sizes(self) -> tuple[int, ...]:
        return tuple(
            int(self.level_offsets[k + 1] - self.level_offsets[k])
            for k in range(self.expanded_to + 1)
        )

    def level_rows(self, cost: int) -> tuple[int, int]:
        """``(start, stop)`` global-row range of one level."""
        return int(self.level_offsets[cost]), int(self.level_offsets[cost + 1])


@dataclass(frozen=True)
class SearchStats:
    """Size/timing snapshot of an expanded search."""

    cost_bound: int
    level_sizes: tuple[int, ...]
    total_seen: int
    elapsed_seconds: float

    @property
    def a_sizes(self) -> tuple[int, ...]:
        """Cumulative sizes |A[k]| = |B[0]| + ... + |B[k]|."""
        out = []
        acc = 0
        for size in self.level_sizes:
            acc += size
            out.append(acc)
        return tuple(out)


class CascadeSearch:
    """Incremental layered closure over reasonable cascades.

    Args:
        library: gate library to search over.
        cost_model: integer gate costs (default: the paper's unit model).
        track_parents: keep one predecessor pointer per discovered
            permutation, enabling :meth:`witness_circuit`.  Costs memory
            proportional to the closure size; disable for counting-only
            runs such as Table 2.
        kernel: ``"vector"`` (NumPy engine, default), ``"translate"``
            (the reference pure-Python loop) or ``"parallel"`` (the
            sharded multi-worker engine).  All produce identical
            closures; see the module docstring.
        kernel_options: tunables for the parallel kernel -- ``jobs``,
            ``shard_bits``, ``memory_budget``, ``checkpoint_dir``,
            ``relation_filter`` (see
            :class:`repro.core.parallel.ShardedExpansion`).  Ignored by
            the other kernels.
    """

    def __init__(
        self,
        library: GateLibrary,
        cost_model: CostModel = UNIT_COST,
        track_parents: bool = True,
        kernel: str = "vector",
        kernel_options: dict | None = None,
    ):
        if kernel not in KERNELS:
            raise InvalidValueError(
                f"unknown kernel {kernel!r}; pick one of {KERNELS}"
            )
        if kernel in _ARRAY_KERNELS and _np is None:
            kernel = "translate"
        self._kernel_options = dict(kernel_options or {})
        self._library = library
        self._cost_model = cost_model
        self._track_parents = track_parents
        self._kernel = kernel
        space = library.space
        self._degree = space.size
        self._n_binary = space.n_binary
        self._s_mask = space.s_mask
        self._identity = bytes(range(self._degree))
        # Hot-path gate rows for the translate kernel:
        # (translate table, banned mask, cost, index).
        self._rows = tuple(
            (
                entry.table,
                entry.banned_mask,
                cost_model.gate_cost(entry.gate.kind),
                entry.index,
            )
            for entry in library.gates
        )
        self._expanded_to = 0
        self._elapsed = 0.0
        self._restored = False
        self._frozen = False
        self._attached_index: tuple[int, dict] | None = None
        # Optional progress sink (duck-typed ProgressReporter),
        # forwarded onto whichever engine runs the expansion.
        self._progress = None

        # Byte-level (legacy) form: complete for translate-kernel
        # searches, per-level lazy cache otherwise.
        self._level_cache: dict[int, list[tuple[bytes, int]]] = {}
        self._seen: dict[bytes, int] | None = None
        self._parents: dict[bytes, tuple[bytes, int]] | None = None
        # Array form: the vector engine (authoritative when present) or
        # a raw SearchArrays snapshot (store-loaded, possibly memmapped).
        self._engine = None
        self._raw: SearchArrays | None = None

        if kernel == "translate":
            self._seen = {self._identity: 0}
            self._level_cache[0] = [
                (self._identity, self._mask_of(self._identity))
            ]
            self._parents = {} if track_parents else None
        else:
            self._engine = self._new_engine()
            self._engine.seed_identity()
            if kernel == "parallel" and self._kernel_options.get(
                "checkpoint_dir"
            ):
                resumed = self._engine.try_resume()
                if resumed:
                    self._expanded_to = resumed
                    self._restored = True

    # -- infrastructure ----------------------------------------------------------------

    def _gate_rows(self):
        from repro.core.kernel import GateRows, mask_word_count

        inverse = []
        for entry in self._library.gates:
            try:
                inverse.append(self._library.adjoint_entry(entry).index)
            except Exception:
                inverse.append(-1)
        return GateRows(
            [row[0] for row in self._rows],
            [row[1] for row in self._rows],
            [row[2] for row in self._rows],
            inverse,
            mask_words=mask_word_count(self._degree),
        )

    def _new_engine(self):
        if self._kernel == "parallel":
            from repro.core.parallel import ShardedExpansion

            options = dict(self._kernel_options)
            provenance = options.pop("provenance", None)
            if provenance is None and options.get("checkpoint_dir"):
                from repro.core.store import (
                    cost_model_fingerprint,
                    library_fingerprint,
                )

                provenance = {
                    "library_fingerprint": library_fingerprint(self._library),
                    "cost_fingerprint": cost_model_fingerprint(
                        self._cost_model
                    ),
                }
            return ShardedExpansion(
                self._degree,
                self._n_binary,
                self._gate_rows(),
                track_parents=self._track_parents,
                provenance=provenance,
                **options,
            )
        from repro.core.kernel import VectorEngine

        return VectorEngine(
            self._degree,
            self._n_binary,
            self._gate_rows(),
            track_parents=self._track_parents,
        )

    def _mask_of(self, perm: bytes) -> int:
        """Bitmask of the images of the binary labels under *perm*."""
        mask = 0
        for image in perm[: self._n_binary]:
            mask |= 1 << image
        return mask

    @property
    def library(self) -> GateLibrary:
        return self._library

    @property
    def cost_model(self) -> CostModel:
        return self._cost_model

    @property
    def expanded_to(self) -> int:
        """Highest cost level fully computed so far."""
        return self._expanded_to

    @property
    def tracks_parents(self) -> bool:
        return self._track_parents

    @property
    def kernel(self) -> str:
        """The expansion kernel this search uses."""
        return self._kernel

    def set_progress(self, reporter) -> None:
        """Attach a progress reporter (or detach with ``None``).

        The reporter (duck-typed
        :class:`~repro.telemetry.ProgressReporter`) receives
        level-start/level-end events from :meth:`extend_to` and
        plan/generate/commit (plus spill/checkpoint) events from the
        array engines.  Expansion results are byte-identical with or
        without one attached.
        """
        self._progress = reporter
        if self._engine is not None:
            self._engine.progress = reporter

    def use_kernel(self, kernel: str, kernel_options: dict | None = None) -> None:
        """Switch the expansion kernel for future :meth:`extend_to` calls.

        Any kernel can pick up a closure another one built -- the
        byte-level and array forms convert lazily -- so switching is
        cheap until the next expansion actually runs.  *kernel_options*
        replaces the parallel-kernel tunables when given.
        """
        if self._frozen:
            from repro.errors import FrozenSearchError

            raise FrozenSearchError(
                "search is frozen for serving; kernels cannot be switched"
            )
        if kernel not in KERNELS:
            raise InvalidValueError(
                f"unknown kernel {kernel!r}; pick one of {KERNELS}"
            )
        if kernel in _ARRAY_KERNELS and _np is None:
            raise InvalidValueError(f"the {kernel} kernel needs numpy")
        self._kernel = kernel
        if kernel_options is not None:
            self._kernel_options = dict(kernel_options)

    @property
    def frozen(self) -> bool:
        """True once :meth:`freeze` has pinned this search for serving."""
        return self._frozen

    def freeze(self) -> "CascadeSearch":
        """Pin the closure for concurrent read-only serving.

        The long-lived service (:mod:`repro.server`) hands one search to
        a pool of worker threads.  Most query accessors only read state
        that never changes after expansion -- the engine's arrays, a
        store's memory-mapped :class:`SearchArrays`, the byte-level
        level lists -- but a few paths *build* that state lazily on
        first touch (:meth:`_ensure_level_lists`,
        :meth:`_ensure_seen`, :meth:`_ensure_parents_dict`,
        :meth:`_ensure_engine`), and :meth:`extend_to` /
        :meth:`use_kernel` mutate it outright.  ``freeze()`` makes the
        concurrency contract explicit:

        * every lazily-built structure the query paths can touch is
          materialized *now*, on the calling thread -- for a
          store-loaded (array-backed) search this is a no-op beyond a
          handful of cheap probes, for a translate-kernel search it
          materializes the byte-level dictionaries;
        * mutating operations (:meth:`extend_to` beyond the expanded
          bound, :meth:`use_kernel`, :meth:`attach_remainder_index`)
          raise :class:`~repro.errors.FrozenSearchError` afterwards.

        After ``freeze()`` returns, these methods are safe to call from
        any number of threads concurrently: :meth:`perm_bytes_at`,
        :meth:`cost_of_row`, :meth:`witness_indices_for_row`,
        :meth:`witness_indices`, :meth:`witness_circuit`,
        :meth:`find_matching_rows`, :meth:`s_fixing_rows`,
        :meth:`cost_of`, :meth:`level`, :meth:`level_size`,
        :meth:`total_seen` and :meth:`stats` (all for costs within the
        frozen bound).  Returns ``self`` for chaining.
        """
        if self._frozen:
            return self
        if self._engine is None and self._raw is None:
            # Byte-level (translate) search: the witness and lookup
            # paths run through the seen/parents dictionaries.
            self._ensure_level_lists(self._expanded_to)
            self._ensure_seen()
            if self._track_parents:
                self._ensure_parents_dict()
        # Level starts and stats tables are pure reads for the array
        # forms; touch them once so any one-off conversion cost (and any
        # latent inconsistency) surfaces here instead of mid-query.
        self.stats()
        for cost in range(self._expanded_to + 1):
            self._level_start(cost)
        if self._engine is not None and hasattr(self._engine, "release_workers"):
            # A parallel-kernel search keeps no idle worker processes
            # once pinned for serving (the dedup table stays for
            # row lookups).
            self._engine.release_workers()
        self._frozen = True
        return self

    def shard_layout(self) -> dict | None:
        """Dedup-shard layout, when the parallel kernel holds this closure.

        ``None`` for the other kernels; the v2 store writer embeds a
        non-None layout into the header so `repro store shards` can
        report it.
        """
        engine = self._engine
        if engine is not None and hasattr(engine, "dedup_table"):
            return engine.dedup_table.layout()
        return None

    @property
    def was_restored(self) -> bool:
        """True when this search was rebuilt from a snapshot or store.

        A restored search expanded to level 0 represents a deliberate
        bound of 0, unlike a fresh level-0 search that simply has not
        been extended yet -- :class:`~repro.core.batch.BatchSynthesizer`
        uses the distinction to pick its default bound.
        """
        return self._restored

    # -- form conversions --------------------------------------------------------------

    def _ensure_level_lists(self, up_to: int) -> None:
        """Materialize the byte-level cache for levels ``0..up_to``."""
        for cost in range(up_to + 1):
            if cost not in self._level_cache:
                self._level_cache[cost] = self._build_level_list(cost)

    def _build_level_list(self, cost: int) -> list[tuple[bytes, int]]:
        from repro.core.kernel import mask_words_to_int
        from repro.perm.permutation import unpack_images

        perms, masks = self._level_arrays(cost)
        if perms is None:
            return []
        images = unpack_images(perms)
        if masks.shape[1] == 1:
            ints = masks[:, 0].tolist()
        else:
            ints = [mask_words_to_int(row) for row in masks]
        return list(zip(images, ints))

    def _level_arrays(self, cost: int):
        """``(perms (n, degree) u8, masks (n, W) u64)`` for one level."""
        if self._engine is not None:
            return (
                self._engine.level_perms_raw(cost),
                self._engine.level_masks[cost],
            )
        if self._raw is not None and cost <= self._raw.expanded_to:
            start, stop = self._raw.level_rows(cost)
            return self._raw.perms[start:stop], self._raw.masks[start:stop]
        if _np is not None and cost in self._level_cache:
            from repro.core.kernel import compute_masks, mask_word_count
            from repro.perm.permutation import pack_images

            level = self._level_cache[cost]
            perms = pack_images(
                [perm for perm, _mask in level], self._degree
            )
            masks = compute_masks(
                perms, self._n_binary, mask_word_count(self._degree)
            )
            return perms, masks
        return None, None

    def _ensure_seen(self) -> dict[bytes, int]:
        if self._seen is None:
            self._ensure_level_lists(self._expanded_to)
            seen: dict[bytes, int] = {}
            for cost in range(self._expanded_to + 1):
                for perm, _mask in self._level_cache[cost]:
                    seen[perm] = cost
            self._seen = seen
        return self._seen

    def _ensure_parents_dict(self) -> dict[bytes, tuple[bytes, int]]:
        if self._parents is None:
            if not self._track_parents:
                raise InvalidValueError(
                    "search was built with track_parents=False; no witnesses"
                )
            self._ensure_level_lists(self._expanded_to)
            by_row: list[bytes] = []
            for cost in range(self._expanded_to + 1):
                by_row.extend(p for p, _m in self._level_cache[cost])
            parents: dict[bytes, tuple[bytes, int]] = {}
            row = 0
            for cost in range(self._expanded_to + 1):
                for perm, _mask in self._level_cache[cost]:
                    if row:
                        parent_row, gate_index = self._parent_of_row(row)
                        parents[perm] = (by_row[parent_row], gate_index)
                    row += 1
            self._parents = parents
        return self._parents

    def _ensure_engine(self):
        """Materialize the vector engine (pads rows, builds the table)."""
        if self._engine is not None:
            return self._engine
        if self._frozen:
            from repro.errors import FrozenSearchError

            raise FrozenSearchError(
                "search is frozen for serving; materializing the vector "
                "engine now would race against concurrent readers"
            )
        if _np is None:
            raise InvalidValueError(
                "the vector engine needs numpy; this search can only use "
                "the translate kernel"
            )
        engine = self._new_engine()
        if self._raw is not None:
            raw = self._raw
            for cost in range(raw.expanded_to + 1):
                start, stop = raw.level_rows(cost)
                engine.load_level(
                    raw.perms[start:stop],
                    raw.masks[start:stop],
                    raw.parents[start:stop] if raw.parents is not None else None,
                    raw.gates[start:stop] if raw.gates is not None else None,
                )
            # The engine copied everything out of the snapshot; drop the
            # raw reference so a memory-mapped store file is no longer
            # pinned (re-saving over it must work on every platform).
            self._raw = None
        else:
            self._ensure_level_lists(self._expanded_to)
            from repro.perm.permutation import pack_images

            row_of: dict[bytes, int] = {}
            for cost in range(self._expanded_to + 1):
                level = self._level_cache[cost]
                for perm, _mask in level:
                    row_of[perm] = len(row_of)
                perms = pack_images([p for p, _m in level], self._degree)
                parents = gates = None
                if self._parents is not None and cost > 0:
                    parents = _np.empty(len(level), dtype=_np.int32)
                    gates = _np.empty(len(level), dtype=_np.int32)
                    for i, (perm, _mask) in enumerate(level):
                        parent, gate_index = self._parents[perm]
                        parents[i] = row_of[parent]
                        gates[i] = gate_index
                engine.load_level(perms, None, parents, gates)
        self._engine = engine
        return engine

    def _upgrade_engine_if_needed(self, engine):
        """Swap in a sharded engine when the parallel kernel is selected.

        A :class:`~repro.core.parallel.ShardedExpansion` *is* a
        ``VectorEngine``, so a search that switches ``parallel ->
        vector`` keeps its engine; only the opposite switch replays the
        levels into a fresh sharded engine (O(closure size), once).
        """
        if self._kernel != "parallel":
            return engine
        from repro.core.parallel import ShardedExpansion

        if isinstance(engine, ShardedExpansion):
            return engine
        upgraded = self._new_engine()
        for cost in range(engine.n_levels):
            upgraded.load_level(
                engine.level_perms_raw(cost),
                engine.level_masks[cost],
                engine.level_parents[cost]
                if engine.level_parents[cost].shape[0]
                else None,
                engine.level_gates[cost]
                if engine.level_gates[cost].shape[0]
                else None,
            )
        self._engine = upgraded
        return upgraded

    def close(self) -> None:
        """Release kernel resources (worker pools, dedup slabs, scratch).

        Only the parallel kernel holds any; calling this on other
        kernels (or twice) is a no-op.  After closing, level reads and
        witness walks keep working (they read the engine's arrays), but
        exact row lookups (:meth:`cost_of` / ``find_row`` on a
        parallel-kernel engine) need the dedup slabs and raise a clean
        :class:`~repro.errors.InvalidValueError`.  To keep a search
        fully queryable while only shedding worker processes, use
        :meth:`freeze` instead.
        """
        engine = self._engine
        if engine is not None and hasattr(engine, "close"):
            engine.close()

    # -- expansion ---------------------------------------------------------------------

    def extend_to(self, cost_bound: int) -> None:
        """Ensure all levels up to *cost_bound* are computed."""
        if cost_bound < 0:
            raise InvalidValueError("cost bound must be non-negative")
        if cost_bound <= self._expanded_to:
            return
        if self._frozen:
            from repro.errors import FrozenSearchError

            raise FrozenSearchError(
                f"search is frozen for serving at cost bound "
                f"{self._expanded_to}; cannot extend to {cost_bound}"
            )
        started = perf_counter()
        progress = self._progress
        if self._kernel in _ARRAY_KERNELS:
            engine = self._ensure_engine()
            engine = self._upgrade_engine_if_needed(engine)
            engine.progress = progress
            for cost in range(self._expanded_to + 1, cost_bound + 1):
                if progress is not None:
                    progress.emit("level-start", level=cost)
                    level_started = perf_counter()
                engine.expand_level(cost)
                self._expanded_to = cost
                if progress is not None:
                    progress.emit(
                        "level-end",
                        level=cost,
                        size=int(engine.level_size(cost)),
                        rows=int(engine.n_rows),
                        elapsed_s=round(perf_counter() - level_started, 6),
                    )
            # Byte-level dicts (a from_state restore or an earlier
            # translate run) no longer cover the new levels; drop them
            # so queries rebuild from the engine instead of silently
            # missing the extension.
            self._seen = None
            self._parents = None
        else:
            self._extend_translate(cost_bound)
        # An attached store index only describes the pre-extension
        # closure file; release it (and its memmap pin) -- it is
        # rebuilt from the arrays on the next BatchSynthesizer.
        self._attached_index = None
        self._elapsed += perf_counter() - started

    def _extend_translate(self, cost_bound: int) -> None:
        """The reference byte-level kernel (the seed implementation)."""
        self._ensure_level_lists(self._expanded_to)
        seen = self._ensure_seen()
        if self._track_parents:
            parents = self._ensure_parents_dict()
        else:
            parents = None
        # Extending through the byte-level path invalidates any array
        # form; it is rebuilt on demand.
        self._engine = None
        self._raw = None
        progress = self._progress
        for cost in range(self._expanded_to + 1, cost_bound + 1):
            if progress is not None:
                progress.emit("level-start", level=cost)
                level_started = perf_counter()
            frontier: list[tuple[bytes, int]] = []
            for table, banned, gate_cost, gate_index in self._rows:
                source = self._level_cache.get(cost - gate_cost)
                if not source:
                    continue
                for perm, mask in source:
                    if mask & banned:
                        continue
                    product = perm.translate(table)
                    if product in seen:
                        continue
                    seen[product] = cost
                    frontier.append((product, self._mask_of(product)))
                    if parents is not None:
                        parents[product] = (perm, gate_index)
            self._level_cache[cost] = frontier
            self._expanded_to = cost
            if progress is not None:
                progress.emit(
                    "level-end",
                    level=cost,
                    size=len(frontier),
                    rows=len(seen),
                    elapsed_s=round(perf_counter() - level_started, 6),
                )

    # -- queries -----------------------------------------------------------------------

    def level(self, cost: int) -> list[tuple[bytes, int]]:
        """The ``B[cost]`` level: list of (permutation bytes, S-image mask).

        Expands the search on demand.
        """
        if cost > self._expanded_to:
            self.extend_to(cost)
        cached = self._level_cache.get(cost)
        if cached is None:
            cached = self._build_level_list(cost)
            self._level_cache[cost] = cached
        return cached

    def level_size(self, cost: int) -> int:
        if cost > self._expanded_to:
            self.extend_to(cost)
        if self._engine is not None:
            return self._engine.level_size(cost)
        if self._raw is not None and cost <= self._raw.expanded_to:
            start, stop = self._raw.level_rows(cost)
            return stop - start
        return len(self._level_cache.get(cost, ()))

    def total_seen(self) -> int:
        """|A[expanded_to]|: all distinct cascade permutations found."""
        if self._engine is not None:
            return self._engine.n_rows
        if self._raw is not None:
            return self._raw.n_rows
        return len(self._ensure_seen())

    def cost_of(self, perm: bytes | Permutation) -> int | None:
        """Minimal cost of a full label permutation, if discovered so far."""
        key = perm.images if isinstance(perm, Permutation) else bytes(perm)
        if len(key) != self._degree:
            return None
        if self._seen is not None:
            return self._seen.get(key)
        row = self._find_row(key)
        return None if row < 0 else self._level_of_row(row)

    def _find_row(self, key: bytes) -> int:
        if self._engine is None and self._raw is not None:
            # Store-loaded search: a vectorized scan, level by level,
            # instead of copying the whole closure into an engine hash
            # table.  O(n) per call, but it keeps the lazy open lazy --
            # levels are fetched through the store's row accessors (for
            # a v3 store, one decompressed chunk at a time through the
            # section cache) -- and it never mutates, so frozen searches
            # can serve cost_of() concurrently.
            wanted = _np.frombuffer(key, dtype=_np.uint8)
            raw = self._raw
            for cost in range(raw.expanded_to + 1):
                start, stop = raw.level_rows(cost)
                if start == stop:
                    continue
                level = raw.perms[start:stop]
                hits = _np.flatnonzero(
                    (level == wanted[None, :]).all(axis=1)
                )
                if hits.size:
                    return start + int(hits[0])
            return -1
        engine = self._ensure_engine()
        return engine.find_row(key)

    def _level_of_row(self, row: int) -> int:
        if self._engine is not None:
            return self._engine.level_of_row(row)
        import bisect

        return bisect.bisect_right(self._raw.level_offsets.tolist(), row) - 1

    @property
    def s_mask(self) -> int:
        """The mask identifying binary-preserving cascades (b(S) = S)."""
        return self._s_mask

    def stats(self) -> SearchStats:
        return SearchStats(
            cost_bound=self._expanded_to,
            level_sizes=tuple(
                self.level_size(c) for c in range(self._expanded_to + 1)
            ),
            total_seen=self.total_seen(),
            elapsed_seconds=self._elapsed,
        )

    # -- row-based accessors (index-serving layers) ------------------------------------

    def n_rows(self) -> int:
        """Total rows (= :meth:`total_seen`), for row-based consumers."""
        return self.total_seen()

    def perm_bytes_at(self, row: int) -> bytes:
        """The image bytes of the permutation at a global row index."""
        if self._engine is not None:
            return self._engine.row_bytes(row)
        if self._raw is not None and 0 <= row < self._raw.n_rows:
            return self._raw.perms[row].tobytes()
        if not 0 <= row < self.total_seen():
            raise InvalidValueError(f"row {row} outside the closure")
        return self._row_bytes_from_lists(row)

    def _row_bytes_from_lists(self, row: int) -> bytes:
        self._ensure_level_lists(self._expanded_to)
        for cost in range(self._expanded_to + 1):
            level = self._level_cache[cost]
            if row < len(level):
                return level[row][0]
            row -= len(level)
        raise InvalidValueError("row outside the closure")

    def cost_of_row(self, row: int) -> int:
        """The level (= minimal cost) of a global row index."""
        if self._engine is None and self._raw is None:
            self._export_raw_from_lists()
        return self._level_of_row(row)

    def _parent_of_row(self, row: int) -> tuple[int, int]:
        if self._engine is not None:
            return self._engine.parent_of(row)
        if self._raw is not None and self._raw.parents is not None:
            return int(self._raw.parents[row]), int(self._raw.gates[row])
        raise InvalidValueError(
            "no parent arrays available for row-based witness extraction"
        )

    def witness_indices_for_row(self, row: int) -> list[int]:
        """Gate indices of the minimal cascade ending at a global row.

        The row-based twin of :meth:`witness_indices`: used by the batch
        index (and the v2 store's serialized remainder index) to extract
        witnesses without any byte-level lookup.
        """
        if not self._track_parents:
            raise InvalidValueError(
                "search was built with track_parents=False; no witnesses"
            )
        if self._engine is None and self._raw is None:
            if self._parents is not None:
                # Byte-level search: resolve the row through the parents
                # dict without materializing the array engine.
                return self.witness_indices(self._row_bytes_from_lists(row))
            self._ensure_engine()
        indices: list[int] = []
        while row:
            row, gate_index = self._parent_of_row(row)
            indices.append(gate_index)
            if len(indices) > self._expanded_to or not (
                0 <= gate_index < len(self._library)
            ):
                # Unit-or-heavier gate costs bound a minimal cascade's
                # length by its level; anything longer (or a bad gate
                # id) means corrupted parent data.
                raise InvalidValueError(
                    "parent walk exceeds the closure bound; the parent "
                    "arrays are corrupted"
                )
        indices.reverse()
        return indices

    def find_matching_rows(self, cost: int, remainder: bytes) -> list[int]:
        """Global rows at *cost* that fix S and restrict to *remainder*.

        The vectorized core of MCE's level scan: one boolean reduction
        over the level's arrays instead of a Python loop over its
        permutations.
        """
        if cost > self._expanded_to:
            self.extend_to(cost)
        perms, masks = self._level_arrays(cost)
        start = self._level_start(cost)
        if perms is None or _np is None:
            out = []
            for i, (perm, mask) in enumerate(self.level(cost)):
                if mask == self._s_mask and perm[: self._n_binary] == remainder:
                    out.append(start + i)
            return out
        if not perms.shape[0]:
            return []
        wanted = _np.frombuffer(remainder, dtype=_np.uint8)
        hits = (perms[:, : self._n_binary] == wanted[None, :]).all(axis=1)
        hits &= self._s_fixing_mask(masks)
        return [start + int(i) for i in _np.flatnonzero(hits)]

    def s_fixing_rows(self, cost: int):
        """``(global rows, remainders (n, n_binary) u8)`` fixing S at *cost*."""
        if cost > self._expanded_to:
            self.extend_to(cost)
        perms, masks = self._level_arrays(cost)
        start = self._level_start(cost)
        if perms is None or _np is None:
            rows, remainders = [], []
            for i, (perm, mask) in enumerate(self.level(cost)):
                if mask == self._s_mask:
                    rows.append(start + i)
                    remainders.append(perm[: self._n_binary])
            return rows, remainders
        local = _np.flatnonzero(self._s_fixing_mask(masks))
        remainders = perms[local, : self._n_binary]
        return (start + local).tolist(), remainders

    def _s_fixing_mask(self, masks):
        from repro.core.kernel import mask_int_to_words

        s_words = mask_int_to_words(self._s_mask, masks.shape[1])
        if masks.shape[1] == 1:
            return masks[:, 0] == s_words[0]
        return (masks == s_words[None, :]).all(axis=1)

    def _level_start(self, cost: int) -> int:
        if self._engine is not None:
            return self._engine.offsets[cost]
        if self._raw is not None and cost <= self._raw.expanded_to:
            return int(self._raw.level_offsets[cost])
        return sum(len(self.level(c)) for c in range(cost))

    def attach_remainder_index(self, cost_bound: int, index: dict) -> None:
        """Attach a precomputed remainder index (deserialized from a store).

        :class:`~repro.core.batch.BatchSynthesizer` picks this up and
        skips its closure scan entirely.
        """
        if self._frozen:
            from repro.errors import FrozenSearchError

            raise FrozenSearchError(
                "search is frozen for serving; cannot swap its index"
            )
        self._attached_index = (cost_bound, index)

    @property
    def attached_remainder_index(self) -> tuple[int, dict] | None:
        return self._attached_index

    # -- state export / restore --------------------------------------------------------

    def export_state(self) -> SearchState:
        """Snapshot the accumulated closure as an immutable byte-level value.

        The snapshot is independent of this instance: later
        :meth:`extend_to` calls do not mutate it.
        """
        self._ensure_level_lists(self._expanded_to)
        parents = None
        if self._track_parents:
            parents = dict(self._ensure_parents_dict())
        return SearchState(
            expanded_to=self._expanded_to,
            levels=tuple(
                tuple(self._level_cache.get(cost, ()))
                for cost in range(self._expanded_to + 1)
            ),
            parents=parents,
            elapsed_seconds=self._elapsed,
        )

    def export_arrays(self) -> SearchArrays:
        """Snapshot the closure in array form (the v2 store layout).

        Returns views of the live arrays where possible -- treat the
        result as read-only.
        """
        if _np is None:
            raise InvalidValueError("array export needs numpy")
        if self._engine is None and self._raw is not None:
            return self._raw
        if self._engine is None:
            return self._export_raw_from_lists()
        engine = self._engine
        parents = gates = None
        if self._track_parents:
            parents = _np.concatenate(
                [lvl.astype(_np.int32) for lvl in engine.level_parents]
            )
            gates = _np.concatenate(
                [lvl.astype(_np.int32) for lvl in engine.level_gates]
            )
        return SearchArrays(
            expanded_to=self._expanded_to,
            degree=self._degree,
            n_binary=self._n_binary,
            mask_words=engine.mask_words,
            level_offsets=_np.asarray(engine.offsets, dtype=_np.int64),
            perms=engine.all_perms_raw(),
            masks=_np.concatenate(engine.level_masks),
            parents=parents,
            gates=gates,
            elapsed_seconds=self._elapsed,
        )

    def _export_raw_from_lists(self) -> SearchArrays:
        """Build (and cache) a SearchArrays snapshot from the byte form."""
        self._ensure_engine()
        self._raw = None
        return self.export_arrays()

    @classmethod
    def from_state(
        cls,
        library: GateLibrary,
        state: SearchState,
        cost_model: CostModel = UNIT_COST,
        kernel: str = "vector",
        kernel_options: dict | None = None,
    ) -> "CascadeSearch":
        """Rebuild a search from an exported snapshot in O(closure size).

        The result behaves exactly like the search the state was exported
        from: queries answer without re-expansion, and :meth:`extend_to`
        continues the closure past the stored bound.

        Raises:
            InvalidValueError: if the state is structurally inconsistent
                with *library* (wrong degree, missing identity level,
                duplicate permutations, or dangling parent pointers).
        """
        if state.expanded_to != len(state.levels) - 1:
            raise InvalidValueError(
                f"state claims bound {state.expanded_to} but carries "
                f"{len(state.levels)} levels"
            )
        search = cls(
            library,
            cost_model,
            track_parents=state.parents is not None,
            kernel=kernel,
            kernel_options=kernel_options,
        )
        degree = search._degree
        if not state.levels or state.levels[0] != (
            (search._identity, search._mask_of(search._identity)),
        ):
            raise InvalidValueError(
                "state level 0 is not the identity singleton"
            )
        seen: dict[bytes, int] = {}
        levels: dict[int, list[tuple[bytes, int]]] = {}
        for cost, level in enumerate(state.levels):
            for perm, _mask in level:
                if len(perm) != degree:
                    raise InvalidValueError(
                        f"permutation of degree {len(perm)} in a state "
                        f"for a degree-{degree} space"
                    )
                if perm in seen:
                    raise InvalidValueError(
                        "duplicate permutation across state levels"
                    )
                seen[perm] = cost
            levels[cost] = list(level)
        parents = state.parents
        if parents is not None:
            if len(parents) != len(seen) - 1:
                raise InvalidValueError(
                    f"state has {len(parents)} parent pointers for "
                    f"{len(seen) - 1} non-identity permutations"
                )
            n_gates = len(library)
            for child, (parent, gate_index) in parents.items():
                child_cost = seen.get(child)
                parent_cost = seen.get(parent)
                if child_cost is None or parent_cost is None:
                    raise InvalidValueError("dangling parent pointer in state")
                if not 0 <= gate_index < n_gates:
                    raise InvalidValueError(
                        f"parent gate index {gate_index} outside the "
                        f"{n_gates}-gate library"
                    )
                if parent_cost >= child_cost:
                    raise InvalidValueError(
                        "parent pointer does not decrease cost"
                    )
            search._parents = dict(parents)
        # Adopt the byte-level form as primary; array forms are rebuilt
        # lazily if the vector kernel or row-based accessors need them.
        search._engine = None
        search._seen = seen
        search._level_cache = levels
        search._expanded_to = state.expanded_to
        search._elapsed = state.elapsed_seconds
        search._restored = True
        return search

    @classmethod
    def from_arrays(
        cls,
        library: GateLibrary,
        arrays: SearchArrays,
        cost_model: CostModel = UNIT_COST,
        kernel: str = "vector",
        validate: bool = True,
        kernel_options: dict | None = None,
    ) -> "CascadeSearch":
        """Rebuild a search from an array snapshot without copying rows.

        This is the O(levels touched) load path of the v2 closure store:
        the arrays (typically ``np.memmap`` views) are adopted as-is, and
        nothing is read until a query touches it.  Operations that need
        the full closure in memory -- :meth:`extend_to`,
        :meth:`cost_of`, :meth:`witness_indices` by permutation --
        materialize the vector engine on first use.

        Args:
            validate: run structural sanity checks (shape/offset
                consistency and the identity row).  Skippable for
                payloads already guarded by a checksum.
        """
        if _np is None:
            raise InvalidValueError("array restore needs numpy")
        search = cls(
            library,
            cost_model,
            track_parents=arrays.parents is not None,
            kernel=kernel,
            kernel_options=kernel_options,
        )
        if validate:
            search._validate_arrays(arrays)
        search._engine = None
        search._raw = arrays
        search._expanded_to = arrays.expanded_to
        search._elapsed = arrays.elapsed_seconds
        search._restored = True
        return search

    def _validate_arrays(self, arrays: SearchArrays) -> None:
        if arrays.degree != self._degree:
            raise InvalidValueError(
                f"arrays have degree {arrays.degree}, library space has "
                f"{self._degree}"
            )
        if arrays.expanded_to + 2 != len(arrays.level_offsets):
            raise InvalidValueError(
                f"arrays claim bound {arrays.expanded_to} but carry "
                f"{len(arrays.level_offsets)} level offsets"
            )
        offsets = arrays.level_offsets
        if int(offsets[0]) != 0 or (_np.diff(offsets) < 0).any():
            raise InvalidValueError("level offsets are not monotonic from 0")
        n = arrays.n_rows
        if arrays.perms.shape != (n, self._degree):
            raise InvalidValueError(
                f"perms array has shape {arrays.perms.shape}, expected "
                f"({n}, {self._degree})"
            )
        if int(offsets[1]) != 1 or arrays.perms[0].tobytes() != self._identity:
            raise InvalidValueError(
                "arrays level 0 is not the identity singleton"
            )
        if arrays.parents is not None:
            if arrays.parents.shape[0] != n or arrays.gates is None:
                raise InvalidValueError("parent/gate arrays are inconsistent")

    # -- witnesses ---------------------------------------------------------------------

    def witness_indices(self, perm: bytes | Permutation) -> list[int]:
        """Library gate indices of one minimal cascade realizing *perm*.

        Raises:
            InvalidValueError: if parents are not tracked or the
                permutation has not been discovered yet.
        """
        if not self._track_parents:
            raise InvalidValueError(
                "search was built with track_parents=False; no witnesses"
            )
        key = perm.images if isinstance(perm, Permutation) else bytes(perm)
        if self._parents is not None and self._seen is not None:
            if key not in self._seen:
                raise InvalidValueError(
                    "permutation not discovered at current bound"
                )
            indices: list[int] = []
            while key != self._identity:
                key, gate_index = self._parents[key]
                indices.append(gate_index)
            indices.reverse()
            return indices
        row = self._find_row(key)
        if row < 0:
            raise InvalidValueError("permutation not discovered at current bound")
        return self.witness_indices_for_row(row)

    def witness_circuit(self, perm: bytes | Permutation) -> Circuit:
        """One minimal-cost circuit realizing *perm* (cascade order)."""
        gates = [
            self._library[i].gate for i in self.witness_indices(perm)
        ]
        return Circuit(gates, self._library.n_qubits)
