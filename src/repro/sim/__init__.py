"""Simulation and verification of synthesized circuits.

Three simulators at different abstraction levels, cross-validated against
each other by the test-suite:

* :mod:`repro.sim.product_state` -- the quaternary per-wire simulator
  (the paper's abstraction, fastest, strict about don't-cares);
* :mod:`repro.sim.statevector` -- numpy complex128 statevectors on the
  full Hilbert space (fast numeric path);
* :mod:`repro.sim.exact` -- exact dyadic-Gaussian unitaries (slow,
  tolerance-free oracle).

Plus measurement sampling (:mod:`repro.sim.measure`) and end-to-end
verification of synthesis results (:mod:`repro.sim.verify`).
"""

from repro.sim.product_state import ProductStateSimulator, StepTrace
from repro.sim.statevector import (
    StatevectorSimulator,
    gate_unitary_numpy,
    circuit_unitary_numpy,
    pattern_statevector,
)
from repro.sim.exact import ExactSimulator
from repro.sim.measure import (
    sample_pattern,
    sample_circuit,
    empirical_distribution,
)
from repro.sim.verify import (
    VerificationReport,
    verify_synthesis,
    verify_probabilistic_synthesis,
    verify_gate_representation,
    verify_circuit_against_permutation,
)

__all__ = [
    "ProductStateSimulator",
    "StepTrace",
    "StatevectorSimulator",
    "gate_unitary_numpy",
    "circuit_unitary_numpy",
    "pattern_statevector",
    "ExactSimulator",
    "sample_pattern",
    "sample_circuit",
    "empirical_distribution",
    "VerificationReport",
    "verify_synthesis",
    "verify_probabilistic_synthesis",
    "verify_gate_representation",
    "verify_circuit_against_permutation",
]
