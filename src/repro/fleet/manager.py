"""Fleet process management: spawn, watch, restart, tear down.

:class:`FleetManager` owns N real ``repro serve`` subprocesses, each
serving the same stores on its own UNIX socket under one **run
directory** (sockets, per-backend access logs, per-backend stdout
captures, the supervisor's ops log -- everything a post-mortem needs
in one place).  :func:`run_fleet` is the blocking entry point behind
``repro fleet serve``: it spawns the backends, fronts them with a
:class:`~repro.fleet.router.RouterService` inside the ordinary
:class:`~repro.server.app.ReproServer` (so the fleet speaks the exact
single-server wire protocol, graceful drain included), and runs the
:class:`~repro.fleet.supervisor.Supervisor` loop beside them.
:class:`BackgroundFleet` is the daemon-thread wrapper the tests and
benchmarks use, mirroring
:class:`~repro.server.app.BackgroundServer`.

Chaos wiring: ``faults={index: spec}`` hands a
:mod:`repro.fleet.chaos` fault spec to chosen backends' **first**
spawn only -- a supervised restart deliberately relaunches without the
fault flags, because the restart models replacing a crashed process
with a healthy one (and makes recovery assertions deterministic).
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import subprocess
import sys
import tempfile
import time
from typing import Callable, Sequence

from repro.client import wait_until_ready
from repro.errors import ReproError, SpecificationError
from repro.fleet.router import (
    DEFAULT_ATTEMPT_TIMEOUT,
    DEFAULT_BREAKER_COOLDOWN,
    DEFAULT_BREAKER_THRESHOLD,
    DEFAULT_MAX_INFLIGHT,
    DEFAULT_RETRIES,
    RouterService,
)
from repro.fleet.supervisor import (
    DEFAULT_INTERVAL,
    DEFAULT_PROBE_TIMEOUT,
    GuardRails,
    Supervisor,
)
from repro.server.app import DEFAULT_DRAIN_TIMEOUT, ReproServer
from repro.telemetry import TraceSource

DEFAULT_REPLICAS = 2
#: Seconds a backend gets to terminate after SIGTERM before SIGKILL.
TERMINATE_GRACE = 5.0
#: Seconds to wait for the initial replica set to answer healthz.
DEFAULT_READY_TIMEOUT = 120.0


class ManagedBackend:
    """One supervised ``repro serve`` subprocess and its run files."""

    def __init__(
        self,
        name: str,
        argv: list[str],
        endpoint: str,
        access_log: str,
        stdout_path: str,
        env: dict | None = None,
        fault: str | None = None,
        fault_seed: int = 0,
    ):
        self.name = name
        self.argv = list(argv)
        self.endpoint = endpoint
        self.access_log = access_log
        self.stdout_path = stdout_path
        self.env = env
        self.fault = fault
        self.fault_seed = fault_seed
        #: The supervisor may restart this backend (False for adopted
        #: externally-managed endpoints: eject is the only remedy).
        self.supervised = True
        self.proc: subprocess.Popen | None = None
        self.spawned_at = time.monotonic()
        #: Monotonic timestamps of supervised restarts (budget window).
        self.restart_times: list[float] = []
        self._stdout = None

    def spawn(self, with_fault: bool = True) -> None:
        """Launch (or relaunch) the subprocess.  Never blocks on it."""
        argv = list(self.argv)
        if with_fault and self.fault is not None:
            argv += [
                "--fault", self.fault, "--fault-seed", str(self.fault_seed),
            ]
        self._close_stdout()
        self._stdout = open(self.stdout_path, "ab")
        self.proc = subprocess.Popen(
            argv,
            stdout=self._stdout,
            stderr=subprocess.STDOUT,
            env=self.env,
        )
        self.spawned_at = time.monotonic()

    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    def exit_code(self) -> int | None:
        return None if self.proc is None else self.proc.poll()

    def terminate(self, grace: float = TERMINATE_GRACE) -> None:
        """SIGTERM (graceful drain), escalate to SIGKILL past *grace*."""
        if self.proc is not None and self.proc.poll() is None:
            with contextlib.suppress(OSError):
                self.proc.terminate()
            try:
                self.proc.wait(timeout=grace)
            except subprocess.TimeoutExpired:
                with contextlib.suppress(OSError):
                    self.proc.kill()
                with contextlib.suppress(subprocess.TimeoutExpired):
                    self.proc.wait(timeout=5.0)
        self._close_stdout()

    def _close_stdout(self) -> None:
        if self._stdout is not None:
            with contextlib.suppress(OSError):
                self._stdout.close()
            self._stdout = None


class FleetManager:
    """Spawns and owns the replica subprocesses of one fleet.

    Args:
        stores: the store specs every replica serves (``PATH`` /
            ``ALIAS=PATH``), exactly as ``repro serve`` takes them.
        replicas: how many backend processes to run.
        run_dir: directory for sockets/logs (created; a ``mkdtemp``
            under the system temp dir when None -- UNIX socket paths
            are length-capped, so short beats descriptive).
        store_dir / cost_bound / workers / max_batch: forwarded to
            every backend's ``repro serve`` flags.
        faults: ``{replica_index: fault_spec}`` chaos injection for
            the first spawn of chosen replicas.
        fault_seed: seed forwarded with every fault spec.
    """

    def __init__(
        self,
        stores: Sequence[str],
        replicas: int = DEFAULT_REPLICAS,
        run_dir: str | None = None,
        store_dir: str | None = None,
        cost_bound: int | None = None,
        workers: int | None = None,
        max_batch: int | None = None,
        faults: dict[int, str] | None = None,
        fault_seed: int = 0,
    ):
        if replicas < 1:
            raise SpecificationError("a fleet needs at least one replica")
        stores = [str(spec) for spec in stores]
        if not stores and store_dir is None:
            raise SpecificationError(
                "nothing to serve: give store files and/or store_dir"
            )
        if run_dir is None:
            run_dir = tempfile.mkdtemp(prefix="repro-fleet-")
        else:
            os.makedirs(run_dir, exist_ok=True)
        self.run_dir = run_dir
        faults = dict(faults or {})
        unknown = [i for i in faults if not 0 <= i < replicas]
        if unknown:
            raise SpecificationError(
                f"fault spec for nonexistent replica index {unknown[0]} "
                f"(fleet has {replicas})"
            )
        # The child must import the same repro package the parent runs,
        # regardless of the working directory it inherits.
        package_root = os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        )
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root if not existing
            else package_root + os.pathsep + existing
        )
        self.backends: dict[str, ManagedBackend] = {}
        for index in range(replicas):
            name = f"backend-{index}"
            socket_path = os.path.join(run_dir, f"b{index}.sock")
            access_log = os.path.join(run_dir, f"b{index}.access.ndjson")
            argv = [
                sys.executable, "-m", "repro", "serve", *stores,
                "--no-tcp", "--unix", socket_path,
                "--access-log", access_log,
            ]
            if store_dir is not None:
                argv += ["--store-dir", str(store_dir)]
            if cost_bound is not None:
                argv += ["--cost-bound", str(cost_bound)]
            if workers is not None:
                argv += ["--workers", str(workers)]
            if max_batch is not None:
                argv += ["--max-batch", str(max_batch)]
            self.backends[name] = ManagedBackend(
                name,
                argv,
                endpoint=f"unix:{socket_path}",
                access_log=access_log,
                stdout_path=os.path.join(run_dir, f"b{index}.log"),
                env=env,
                fault=faults.get(index),
                fault_seed=fault_seed,
            )

    def endpoints(self) -> dict[str, str]:
        return {
            name: backend.endpoint
            for name, backend in self.backends.items()
        }

    def spawn_all(self) -> None:
        for backend in self.backends.values():
            backend.spawn()

    def await_ready(self, name: str, timeout: float) -> dict:
        """Block until one backend answers healthz (worker thread)."""
        return wait_until_ready(self.backends[name].endpoint, timeout=timeout)

    def restart(self, name: str) -> None:
        """Terminate and respawn one backend (blocking; supervisor path).

        The respawn drops any chaos fault flags: a restart replaces a
        faulty process with a healthy one.  Readiness is *not* awaited
        here -- the supervisor's next healthy probe re-admits it.
        """
        backend = self.backends[name]
        backend.terminate()
        backend.restart_times.append(time.monotonic())
        backend.spawn(with_fault=False)

    def shutdown(self) -> None:
        for backend in self.backends.values():
            backend.terminate()


class FleetHandle:
    """What ``run_fleet`` exposes to its ``ready`` callback and tests."""

    def __init__(
        self,
        router: RouterService,
        supervisor: Supervisor,
        manager: FleetManager,
        ops_log: str,
        router_access_log: str | None = None,
    ):
        self.router = router
        self.supervisor = supervisor
        self.manager = manager
        self.ops_log = ops_log
        self.router_access_log = router_access_log


async def run_fleet(
    stores: str | Sequence[str],
    replicas: int = DEFAULT_REPLICAS,
    host: str = "127.0.0.1",
    port: int | None = 0,
    unix: str | None = None,
    store_dir: str | None = None,
    cost_bound: int | None = None,
    workers: int | None = None,
    max_batch: int | None = None,
    run_dir: str | None = None,
    faults: dict[int, str] | None = None,
    fault_seed: int = 0,
    retries: int = DEFAULT_RETRIES,
    attempt_timeout: float = DEFAULT_ATTEMPT_TIMEOUT,
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
    breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
    breaker_cooldown: float = DEFAULT_BREAKER_COOLDOWN,
    guardrails: GuardRails | None = None,
    interval: float = DEFAULT_INTERVAL,
    probe_timeout: float = DEFAULT_PROBE_TIMEOUT,
    latency_threshold_ms: float | None = None,
    queue_wait_threshold_ms: float | None = None,
    ops_log: str | None = None,
    router_access_log: str | None = None,
    drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
    ready_timeout: float = DEFAULT_READY_TIMEOUT,
    ready: Callable | None = None,
    stop_event: asyncio.Event | None = None,
) -> int:
    """Run a supervised fleet until stopped; ``repro fleet serve``'s body.

    Spawns *replicas* backend processes, waits for all of them to answer
    ``healthz``, binds the router front end on *host*:*port* (and/or
    *unix*), starts the supervisor loop, then serves until *stop_event*
    (or SIGINT/SIGTERM on the main thread).  *ready* is called once
    with ``(address, handle)`` where ``address`` is the bound TCP
    address (``None`` when UNIX-only) and ``handle`` a
    :class:`FleetHandle`.  Returns the process exit code.
    """
    import signal
    import threading

    from repro.fleet import supervisor as supervisor_mod

    if isinstance(stores, (str, os.PathLike)):
        stores = [str(stores)]
    manager = FleetManager(
        stores,
        replicas=replicas,
        run_dir=run_dir,
        store_dir=store_dir,
        cost_bound=cost_bound,
        workers=workers,
        max_batch=max_batch,
        faults=faults,
        fault_seed=fault_seed,
    )
    if ops_log is None:
        ops_log = os.path.join(manager.run_dir, "ops.ndjson")
    if router_access_log is None:
        router_access_log = os.path.join(
            manager.run_dir, "router.access.ndjson"
        )

    loop = asyncio.get_running_loop()
    manager.spawn_all()
    server: ReproServer | None = None
    supervisor: Supervisor | None = None
    try:
        await asyncio.gather(*[
            loop.run_in_executor(
                None, manager.await_ready, name, ready_timeout
            )
            for name in manager.backends
        ])
        # One TraceSource shared by the front end (which mints the
        # trace_id for untraced requests) and the router (which mints
        # the per-attempt span_ids) -- the fleet's tracing edge.
        traces = TraceSource()
        router = RouterService(
            manager.endpoints(),
            retries=retries,
            attempt_timeout=attempt_timeout,
            max_inflight=max_inflight,
            breaker_threshold=breaker_threshold,
            breaker_cooldown=breaker_cooldown,
            trace_source=traces,
            access_log=router_access_log,
        )
        server = ReproServer(
            router, host, port, unix_path=unix, drain_timeout=drain_timeout,
            trace_source=traces,
        )
        await server.start()
        supervisor = Supervisor(
            router,
            manager,
            ops_log=ops_log,
            registry=router.telemetry,
            guardrails=guardrails,
            interval=interval,
            probe_timeout=probe_timeout,
            latency_threshold_ms=(
                supervisor_mod.DEFAULT_LATENCY_THRESHOLD_MS
                if latency_threshold_ms is None else latency_threshold_ms
            ),
            queue_wait_threshold_ms=(
                supervisor_mod.DEFAULT_QUEUE_WAIT_THRESHOLD_MS
                if queue_wait_threshold_ms is None
                else queue_wait_threshold_ms
            ),
        )
        await supervisor.start()

        stop = stop_event or asyncio.Event()
        installed: list[int] = []
        if threading.current_thread() is threading.main_thread():
            with contextlib.suppress(NotImplementedError, ValueError):
                for signum in (signal.SIGINT, signal.SIGTERM):
                    loop.add_signal_handler(signum, stop.set)
                    installed.append(signum)
        try:
            if ready is not None:
                ready(
                    server.address if port is not None else None,
                    FleetHandle(
                        router,
                        supervisor,
                        manager,
                        ops_log,
                        router_access_log=router_access_log,
                    ),
                )
            await stop.wait()
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)
    finally:
        if supervisor is not None:
            await supervisor.stop()
        if server is not None:
            await server.close()  # drains in-flight, then closes router
        await loop.run_in_executor(None, manager.shutdown)
    return 0


class BackgroundFleet:
    """A supervised fleet on a daemon thread (tests/benchmarks).

    Usage::

        with BackgroundFleet("closure.rpro", replicas=2) as fleet:
            client = ServeClient(fleet.address_text)
            ...

    Keyword arguments pass through to :func:`run_fleet`.  Signals are
    not installed (they need the main thread); stop via :meth:`stop`.
    """

    def __init__(self, stores: str | Sequence[str], **kwargs):
        self._stores = stores
        self._kwargs = kwargs
        self._thread = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._ready_event = None
        self._started = False
        self._address: tuple[str, int] | None = None
        self._handle: FleetHandle | None = None
        self._error: BaseException | None = None

    @property
    def address(self) -> tuple[str, int]:
        assert self._address is not None, "fleet not started or unix-only"
        return self._address

    @property
    def address_text(self) -> str:
        host, port = self.address
        return f"{host}:{port}"

    @property
    def handle(self) -> FleetHandle:
        assert self._handle is not None, "fleet not started"
        return self._handle

    @property
    def router(self) -> RouterService:
        return self.handle.router

    @property
    def supervisor(self) -> Supervisor:
        return self.handle.supervisor

    @property
    def manager(self) -> FleetManager:
        return self.handle.manager

    @property
    def ops_log(self) -> str:
        return self.handle.ops_log

    def start(self) -> "BackgroundFleet":
        import threading

        self._ready_event = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-fleet", daemon=True
        )
        self._thread.start()
        self._ready_event.wait(timeout=180)
        if self._error is not None:
            raise self._error
        if not self._started:
            raise ReproError("fleet failed to start within 180s")
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=60)
            self._thread = None

    def __enter__(self) -> "BackgroundFleet":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()

            def on_ready(address, handle):
                self._address = address
                self._handle = handle
                self._started = True
                self._ready_event.set()

            await run_fleet(
                self._stores,
                ready=on_ready,
                stop_event=self._stop,
                **self._kwargs,
            )

        try:
            asyncio.run(main())
        except BaseException as exc:  # noqa: BLE001 -- reported to starter
            self._error = exc
        finally:
            self._ready_event.set()
