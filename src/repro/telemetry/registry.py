"""Process-wide metrics registry with Prometheus text exposition.

The repo grew counters organically: the service keeps per-op query
tallies as plain ints, the router counts routed/failovers/shed on
``self``, the supervisor tallies findings in its ops log, and the
section cache keeps hit/miss ints behind a lock.  Each is readable
only through its own bespoke payload (healthz, ops log, ``stats()``),
so no single scrape sees the whole process.  This module gives every
process one :class:`MetricsRegistry` that all of those feed, rendered
in the Prometheus text exposition format (v0.0.4) so a stock scraper
-- or ``curl`` -- can read it off the existing sniffed HTTP port.

Design points, in the repo's house style:

* **No new deps.**  Rendering is string formatting; parsing (used by
  tests and the CI smoke job) is a ~40-line text walk.  Nothing here
  imports outside the stdlib.
* **Byte-stable output.**  Metric families render sorted by name,
  series sorted by label values, and numbers format through one
  :func:`format_value` (ints as ints, floats via ``repr``), so two
  scrapes of identical state are byte-identical and goldens can pin
  the text.  Histogram bucket bounds are fixed at registration and
  render through the same formatter, so ``le`` labels never drift.
* **Thread-safe.**  Counters are bumped from the event loop, the log
  writer thread, and worker pools; every mutation and ``render`` takes
  the registry lock.  The hot path (``Counter.inc`` with no labels) is
  a dict add under one uncontended lock -- cheap enough for the ≤5%
  overhead bar in ``benchmarks/bench_telemetry.py``.
* **Callback metrics.**  State that already lives elsewhere (section
  cache stats, writer-queue depth, uptime) is exported by registering
  a zero-arg callable; ``render`` calls it at scrape time instead of
  mirroring state into the registry.
"""

from __future__ import annotations

import re
import threading
from typing import Callable, Iterable

from ..errors import SpecificationError

#: Content type a ``/metrics`` response declares (Prometheus text v0.0.4).
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Fixed default histogram bucket upper bounds, in milliseconds.  The
#: spread covers everything the repo times: sub-ms cache hits through
#: ten-second precompute levels.  Fixed (not configurable per call
#: site) so every latency histogram in the process shares one ``le``
#: vocabulary and renders byte-identically run to run.
DEFAULT_BUCKETS_MS = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def format_value(value: float) -> str:
    """Byte-stable sample formatting: int-valued floats render as ints.

    ``repr`` (not ``str`` or ``%g``) for the float path because it is
    the shortest round-tripping form and stable across platforms.
    """
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, bool):
        return "1" if value else "0"
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 2**53:
        return str(int(as_float))
    return repr(as_float)


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format grammar."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(names: tuple[str, ...], values: tuple) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{name}="{escape_label_value(value)}"'
        for name, value in zip(names, values)
    )
    return "{" + pairs + "}"


class _Metric:
    """Shared bookkeeping for one metric family.

    Every family owns a ``{label-values-tuple: state}`` dict guarded by
    the registry lock (shared, not per-metric: scrapes must see a
    consistent cross-family snapshot, and one lock keeps ``render``
    atomic without ordering concerns).
    """

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: tuple[str, ...],
        lock: threading.Lock,
    ):
        if not _NAME_RE.match(name):
            raise SpecificationError(f"invalid metric name: {name!r}")
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise SpecificationError(
                    f"invalid label name {label!r} on metric {name}"
                )
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._lock = lock
        self._series: dict[tuple, float] = {}

    def _key(self, labels: dict) -> tuple:
        if set(labels) != set(self.label_names):
            raise SpecificationError(
                f"metric {self.name} expects labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def samples(self) -> Iterable[tuple[str, tuple, float]]:
        """Yield ``(suffix, label_values, value)`` rows, sorted."""
        for key in sorted(self._series):
            yield "", key, self._series[key]


class Counter(_Metric):
    """Monotonically increasing count.  Name should end in ``_total``.

    Like :class:`Gauge`, a counter may be backed by a scrape-time
    callback (*fn*) when the monotonic count already lives elsewhere
    (section-cache hits, backend request tallies); such counters are
    read-only here.
    """

    kind = "counter"

    def __init__(self, name, help, label_names, lock, fn=None):
        super().__init__(name, help, label_names, lock)
        self._fn = fn
        if fn is None and not self.label_names:
            # Label-less counters exist from registration, so a scrape
            # taken before the first event still shows the family at 0
            # (shape-stable output; healthz and CI can assert on it).
            self._series[()] = 0

    def _collect_fn(self) -> dict[tuple, float]:
        value = self._fn()
        if isinstance(value, dict):
            out = {}
            for key, v in value.items():
                if not isinstance(key, tuple):
                    key = (key,)
                out[tuple(str(part) for part in key)] = float(v)
            return out
        return {(): float(value)}

    def inc(self, amount: float = 1, **labels) -> None:
        if self._fn is not None:
            raise SpecificationError(
                f"counter {self.name} is callback-backed and read-only"
            )
        if amount < 0:
            raise SpecificationError(
                f"counter {self.name} cannot decrease (inc {amount})"
            )
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def preseed(self, *label_values) -> None:
        """Materialize a series at 0 so it renders before first use.

        Healthz payloads enumerate every op with a zero count from
        process start; preseeding keeps ``/metrics`` shape-identical.
        """
        key = self._key(dict(zip(self.label_names, label_values)))
        with self._lock:
            self._series.setdefault(key, 0)

    def value(self, **labels) -> float:
        if self._fn is not None:
            return self._collect_fn().get(self._key(labels), 0)
        with self._lock:
            return self._series.get(self._key(labels), 0)

    def values(self) -> dict[tuple, float]:
        if self._fn is not None:
            return self._collect_fn()
        with self._lock:
            return dict(self._series)

    def samples(self):
        if self._fn is not None:
            collected = self._collect_fn()
            for key in sorted(collected):
                yield "", key, collected[key]
            return
        yield from super().samples()


class Gauge(_Metric):
    """A value that can go up and down (or a scrape-time callback)."""

    kind = "gauge"

    def __init__(self, name, help, label_names, lock, fn=None):
        super().__init__(name, help, label_names, lock)
        self._fn = fn

    def set(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        if self._fn is not None:
            return float(self._collect_fn().get(self._key(labels), 0))
        with self._lock:
            return self._series.get(self._key(labels), 0)

    def _collect_fn(self) -> dict[tuple, float]:
        value = self._fn()
        if isinstance(value, dict):
            out = {}
            for key, v in value.items():
                if not isinstance(key, tuple):
                    key = (key,)
                out[tuple(str(part) for part in key)] = float(v)
            return out
        return {(): float(value)}

    def samples(self):
        if self._fn is not None:
            collected = self._collect_fn()
            for key in sorted(collected):
                yield "", key, collected[key]
            return
        yield from super().samples()


class Histogram(_Metric):
    """Cumulative-bucket histogram with fixed, byte-stable bounds.

    State per series is ``(bucket_counts, sum, count)``.  Buckets are
    cumulative at render time (each ``le`` row includes everything at
    or below it, ending in ``+Inf == _count``), matching the format
    spec so scrapers compute quantiles the standard way.
    """

    kind = "histogram"

    def __init__(self, name, help, label_names, lock,
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS_MS):
        super().__init__(name, help, label_names, lock)
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise SpecificationError(
                f"histogram {name} buckets must be strictly increasing"
            )
        self.buckets = bounds

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            state = self._series.get(key)
            if state is None:
                state = self._series[key] = [
                    [0] * len(self.buckets), 0.0, 0,
                ]
            counts, _, _ = state
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
                    break
            state[1] += value
            state[2] += 1

    def count(self, **labels) -> int:
        with self._lock:
            state = self._series.get(self._key(labels))
            return 0 if state is None else state[2]

    def sum(self, **labels) -> float:
        with self._lock:
            state = self._series.get(self._key(labels))
            return 0.0 if state is None else state[1]

    def samples(self):
        for key in sorted(self._series):
            counts, total, count = self._series[key]
            running = 0
            for bound, n in zip(self.buckets, counts):
                running += n
                yield "_bucket", key + (format_value(bound),), running
            yield "_bucket", key + ("+Inf",), count
            yield "_sum", key, total
            yield "_count", key, count


class MetricsRegistry:
    """One process's metric families, rendered as Prometheus text."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _register(self, metric: _Metric) -> _Metric:
        with self._lock:
            if metric.name in self._metrics:
                raise SpecificationError(
                    f"metric {metric.name} already registered"
                )
            self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help: str, labels: tuple[str, ...] = (),
                fn: Callable | None = None) -> Counter:
        return self._register(
            Counter(name, help, labels, self._lock, fn=fn)
        )

    def gauge(self, name: str, help: str, labels: tuple[str, ...] = (),
              fn: Callable | None = None) -> Gauge:
        """Register a gauge; with *fn*, its value is read at scrape time.

        *fn* returns a float (label-less) or a ``{label-values: value}``
        dict (values may be keyed by a bare string for one label).
        """
        return self._register(Gauge(name, help, labels, self._lock, fn=fn))

    def histogram(self, name: str, help: str, labels: tuple[str, ...] = (),
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS_MS,
                  ) -> Histogram:
        return self._register(
            Histogram(name, help, labels, self._lock, buckets=buckets)
        )

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def render(self) -> str:
        """The full exposition text, deterministically ordered.

        Families sort by name; series sort by label values within a
        family (histogram rows keep their bucket/sum/count grouping).
        Ends with a trailing newline, as the format requires.
        """
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        lines: list[str] = []
        for metric in metrics:
            lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            label_names = metric.label_names
            if metric.kind == "histogram":
                label_names = label_names + ("le",)
            for suffix, key, value in metric.samples():
                names = label_names
                if suffix in ("_sum", "_count"):
                    names = metric.label_names
                lines.append(
                    f"{metric.name}{suffix}"
                    f"{_render_labels(names, key)} {format_value(value)}"
                )
        return "\n".join(lines) + "\n" if lines else ""


def parse_prometheus_text(text: str) -> dict[tuple[str, tuple], float]:
    """Parse exposition text into ``{(name, labels): value}``.

    *labels* is a sorted tuple of ``(label, value)`` pairs.  Used by
    tests and the CI smoke job to assert a scrape is well-formed and
    agrees with healthz; it raises ``ValueError`` on malformed lines
    (that is the point -- a scrape that does not parse is a failure).
    """
    samples: dict[tuple[str, tuple], float] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line or line.startswith("#"):
            continue
        match = re.match(
            r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})? "
            r"([+-]?(?:Inf|NaN|[0-9.eE+-]+))$",
            line,
        )
        if match is None:
            raise ValueError(f"malformed metric line {lineno}: {line!r}")
        name, _, label_body, raw_value = match.groups()
        labels: list[tuple[str, str]] = []
        if label_body:
            for part in re.finditer(
                r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"', label_body
            ):
                value = (
                    part.group(2)
                    .replace("\\n", "\n")
                    .replace('\\"', '"')
                    .replace("\\\\", "\\")
                )
                labels.append((part.group(1), value))
        key = (name, tuple(sorted(labels)))
        if key in samples:
            raise ValueError(f"duplicate sample at line {lineno}: {line!r}")
        samples[key] = float(raw_value.replace("Inf", "inf"))
    return samples


def sample_value(
    samples: dict[tuple[str, tuple], float], name: str, **labels
) -> float:
    """Look up one parsed sample by name and labels (raises KeyError)."""
    key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
    return samples[key]
