"""Unit tests for named groups and coset machinery (repro.perm.named_groups)."""

import pytest

from repro.errors import ReproError
from repro.gates import named
from repro.perm.group import PermutationGroup
from repro.perm.named_groups import (
    closure_levels,
    coset_decomposition,
    symmetric_group,
    symmetric_group_order,
)
from repro.perm.permutation import Permutation


class TestSymmetricGroup:
    @pytest.mark.parametrize("n,order", [(1, 1), (2, 2), (3, 6), (4, 24), (8, 40320)])
    def test_orders(self, n, order):
        assert symmetric_group(n).order() == order
        assert symmetric_group_order(n) == order

    def test_contains_arbitrary_permutation(self):
        g = symmetric_group(6)
        assert Permutation.from_cycles(6, [(1, 4, 2), (3, 6)]) in g


class TestCosetDecomposition:
    def test_not_group_transversal_of_stabilizer(self):
        # Theorem 2 for n = 2: S4 = union of 4 cosets of Stab(0).
        stab = symmetric_group(4).stabilizer(0)
        layers = named.not_group(2)
        cosets = coset_decomposition(stab, layers)
        assert len(cosets) == 4
        union = set()
        for coset in cosets.values():
            assert len(coset) == 6
            union |= coset
        assert len(union) == 24

    def test_non_transversal_rejected(self):
        stab = symmetric_group(4).stabilizer(0)
        # Two elements of the same coset (both fix point 0).
        a = Permutation.identity(4)
        b = Permutation.from_cycles(4, [(2, 3)])
        with pytest.raises(ReproError):
            coset_decomposition(stab, [a, b])

    def test_single_coset(self):
        g = PermutationGroup([Permutation.from_cycles(3, [(1, 2, 3)])])
        cosets = coset_decomposition(g, [Permutation.identity(3)])
        assert len(next(iter(cosets.values()))) == 3


class TestClosureLevels:
    def test_cnot_closure_is_gl32(self):
        gens = [
            named.cnot_target(t, c)
            for t in range(3)
            for c in range(3)
            if t != c
        ]
        levels = closure_levels(gens, 8)
        total = sum(len(level) for level in levels)
        assert total == 168  # |GL(3,2)|
        assert len(levels[0]) == 1 and len(levels[1]) == 6

    def test_levels_are_minimal_word_lengths(self):
        gens = [
            named.cnot_target(t, c)
            for t in range(3)
            for c in range(3)
            if t != c
        ]
        levels = closure_levels(gens, 8)
        # No element appears at two levels.
        seen = set()
        for level in levels:
            assert not (level & seen)
            seen |= level

    def test_max_levels_cap(self):
        gens = [Permutation.from_cycles(10, [tuple(range(1, 11))])]
        levels = closure_levels(gens, 10, max_levels=3)
        assert len(levels) <= 4

    def test_identity_only_for_empty_generators(self):
        levels = closure_levels([], 5)
        assert levels == [{Permutation.identity(5)}]

    def test_involution_closure(self):
        t = Permutation.transposition(4, 0, 1)
        levels = closure_levels([t], 4)
        assert [len(l) for l in levels] == [1, 1]
