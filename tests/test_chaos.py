"""Chaos-harness tests: fault spec parsing, the injector, live faults.

One unit test per fault injector kind, spec-parsing error cases, the
determinism contract (same seed, same request order => same faults),
and faults exercised against real servers: a `slow` fault visibly
delays requests, `reset-conn` drops connections at probability 0/1,
`hang` wedges one op while healthz stays live, and an `exit-after`
subprocess serves exactly N requests then dies with the crash exit
code.  Also the graceful-drain regression: SIGTERM mid-batch loses
zero accepted requests.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time

import pytest

from repro.client import ServeClient, wait_until_ready
from repro.core.search import CascadeSearch
from repro.core.store import save_search
from repro.errors import ServerError, SpecificationError
from repro.fleet.chaos import (
    CRASH_EXIT_CODE,
    FaultInjector,
    FaultSpec,
    build_injector,
    parse_fault_spec,
    parse_fault_specs,
)
from repro.gates.library import GateLibrary
from repro.server import BackgroundServer

BOUND = 4


@pytest.fixture(scope="module")
def store_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("chaos") / "closure.rpro"
    search = CascadeSearch(GateLibrary(3), track_parents=True)
    search.extend_to(BOUND)
    save_search(search, path)
    return str(path)


class TestFaultSpecParsing:
    def test_exit_after(self):
        spec = parse_fault_spec("exit-after:5")
        assert spec.kind == "exit-after"
        assert spec.count == 5

    def test_hang_any(self):
        spec = parse_fault_spec("hang:any")
        assert spec.kind == "hang"
        assert spec.op == "any"

    def test_hang_specific_op(self):
        assert parse_fault_spec("hang:synth").op == "synth"

    def test_slow(self):
        spec = parse_fault_spec("slow:250")
        assert spec.kind == "slow"
        assert spec.delay_ms == 250

    def test_reset_conn(self):
        spec = parse_fault_spec("reset-conn:0.5")
        assert spec.kind == "reset-conn"
        assert spec.probability == 0.5

    @pytest.mark.parametrize("bad", [
        "", "explode", "exit-after", "exit-after:x", "exit-after:-1",
        "hang:no-such-op", "slow:abc", "slow:-5",
        "reset-conn:1.5", "reset-conn:-0.1", "reset-conn:maybe",
    ])
    def test_rejects_bad_specs(self, bad):
        with pytest.raises(SpecificationError):
            parse_fault_spec(bad)

    def test_parse_several(self):
        specs = parse_fault_specs("slow:10,reset-conn:0.25")
        assert [spec.kind for spec in specs] == ["slow", "reset-conn"]

    def test_describe_round_trips(self):
        for text in ["exit-after:3", "hang:synth", "slow:40",
                     "reset-conn:0.5"]:
            assert parse_fault_spec(text).describe() == text

    def test_build_injector_none_passthrough(self):
        assert build_injector(None) is None
        assert isinstance(build_injector("slow:1"), FaultInjector)


class TestFaultInjectorUnits:
    def test_slow_delays(self):
        import asyncio

        injector = FaultInjector([FaultSpec(kind="slow", delay_ms=50)])

        async def run():
            start = time.monotonic()
            await injector.before_handle("synth")
            return time.monotonic() - start

        assert asyncio.run(run()) >= 0.045

    def test_reset_conn_deterministic_across_seeds(self):
        import asyncio

        from repro.fleet.chaos import ConnectionResetFault

        def run_pattern(seed):
            injector = FaultInjector(
                [FaultSpec(kind="reset-conn", probability=0.5)], seed=seed
            )

            async def drive():
                pattern = []
                for _ in range(32):
                    try:
                        await injector.before_handle("synth")
                        pattern.append(False)
                    except ConnectionResetFault:
                        pattern.append(True)
                return pattern

            return asyncio.run(drive())

        assert run_pattern(7) == run_pattern(7)
        assert run_pattern(7) != run_pattern(8)
        assert any(run_pattern(7))
        assert not all(run_pattern(7))

    def test_reset_conn_probability_bounds(self):
        import asyncio

        from repro.fleet.chaos import ConnectionResetFault

        always = FaultInjector(
            [FaultSpec(kind="reset-conn", probability=1.0)], seed=1
        )
        never = FaultInjector(
            [FaultSpec(kind="reset-conn", probability=0.0)], seed=1
        )

        async def drive():
            with pytest.raises(ConnectionResetFault):
                await always.before_handle("synth")
            for _ in range(16):
                await never.before_handle("synth")

        asyncio.run(drive())

    def test_hang_only_wedges_matching_op(self):
        import asyncio

        injector = FaultInjector([FaultSpec(kind="hang", op="synth")])

        async def run():
            # Non-matching op returns immediately.
            await asyncio.wait_for(
                injector.before_handle("healthz"), timeout=1.0
            )
            # Matching op never returns.
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(
                    injector.before_handle("synth"), timeout=0.1
                )

        asyncio.run(run())

    def test_requests_seen_counts(self):
        import asyncio

        injector = FaultInjector([FaultSpec(kind="slow", delay_ms=0)])

        async def run():
            for _ in range(3):
                await injector.before_handle("synth")

        asyncio.run(run())
        assert injector.requests_seen == 3


class TestLiveFaults:
    def test_slow_fault_delays_requests(self, store_path):
        with BackgroundServer(store_path, fault="slow:150") as srv:
            client = ServeClient(srv.address_text)
            try:
                start = time.monotonic()
                client.synth("peres")
                assert time.monotonic() - start >= 0.14
            finally:
                client.close()

    def test_reset_conn_certain(self, store_path):
        with BackgroundServer(store_path, fault="reset-conn:1.0") as srv:
            client = ServeClient(srv.address_text)
            try:
                with pytest.raises((ServerError, OSError)):
                    client.synth("peres")
            finally:
                client.close()

    def test_reset_conn_never(self, store_path):
        with BackgroundServer(store_path, fault="reset-conn:0.0") as srv:
            client = ServeClient(srv.address_text)
            try:
                for _ in range(4):
                    assert client.synth("peres")["cost"] == 4
            finally:
                client.close()

    def test_hang_wedges_op_but_healthz_lives(self, store_path):
        with BackgroundServer(store_path, fault="hang:synth") as srv:
            stuck = ServeClient(srv.address_text, timeout=0.5)
            probe = ServeClient(srv.address_text)
            try:
                with pytest.raises((ServerError, OSError)):
                    stuck.synth("peres")
                assert probe.healthz()["status"] == "ok"
            finally:
                stuck.close()
                probe.close()


def _spawn_serve(store_path, sock, *extra):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", store_path,
         "--no-tcp", "--unix", sock, *extra],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )


class TestCrashSubprocess:
    def test_exit_after_serves_then_dies_with_crash_code(self, store_path):
        workdir = tempfile.mkdtemp(prefix="repro-crash-")
        sock = os.path.join(workdir, "s.sock")
        proc = _spawn_serve(store_path, sock, "--fault", "exit-after:3")
        try:
            wait_until_ready(f"unix:{sock}", timeout=60)
            # healthz counts against the budget; 2 more queries succeed.
            client = ServeClient(f"unix:{sock}")
            try:
                for _ in range(2):
                    assert client.synth("peres")["cost"] == 4
                with pytest.raises((ServerError, OSError)):
                    client.synth("peres")
            finally:
                client.close()
            assert proc.wait(timeout=10) == CRASH_EXIT_CODE
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
            shutil.rmtree(workdir, ignore_errors=True)


class TestGracefulDrain:
    def test_sigterm_mid_batch_loses_nothing(self, store_path):
        """A batch accepted before SIGTERM completes in full."""
        workdir = tempfile.mkdtemp(prefix="repro-drain-")
        sock = os.path.join(workdir, "s.sock")
        proc = _spawn_serve(
            store_path, sock, "--fault", "slow:200", "--drain-timeout", "30"
        )
        try:
            wait_until_ready(f"unix:{sock}", timeout=60)
            import socket as socket_mod

            conn = socket_mod.socket(socket_mod.AF_UNIX)
            conn.connect(sock)
            conn.settimeout(30)
            request = {
                "id": 1, "op": "synth-batch",
                "params": {"targets": ["peres", "swap_ab", "cnot_ba"]},
            }
            conn.sendall(json.dumps(request).encode() + b"\n")
            time.sleep(0.05)  # request is in flight (slow:200 holds it)
            proc.send_signal(signal.SIGTERM)
            chunks = []
            while True:
                chunk = conn.recv(1 << 16)
                if not chunk:
                    break
                chunks.append(chunk)
                if chunks[-1].endswith(b"\n"):
                    break
            conn.close()
            reply = json.loads(b"".join(chunks))
            assert reply["ok"] is True
            assert len(reply["result"]["results"]) == 3
            assert proc.wait(timeout=15) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
            shutil.rmtree(workdir, ignore_errors=True)

    def test_drain_refuses_new_requests_on_open_connection(self, store_path):
        """After drain starts, a kept-alive connection gets no 2nd turn."""
        with BackgroundServer(store_path, fault="slow:100") as srv:
            client = ServeClient(srv.address_text)
            try:
                assert client.synth("peres")["cost"] == 4
            finally:
                client.close()
