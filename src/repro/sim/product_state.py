"""The quaternary product-state simulator.

Simulates a cascade at the paper's level of abstraction: each wire
carries one of {0, 1, V0, V1} and the register is their product.  This is
exact (not approximate) *within* the binary-control regime; the simulator
refuses to step outside it, unlike the permutation representation whose
don't-care entries silently pretend identity.

Also records a step-by-step trace, which the ASCII renderer and the
examples use to show how values evolve through a cascade (handy for
seeing, e.g., qubit C pass through V0 inside the Peres realization).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.circuit import Circuit
from repro.gates.gate import Gate
from repro.mvl.patterns import Pattern, pattern_from_bits


@dataclass(frozen=True)
class StepTrace:
    """One simulation step: the gate applied and the pattern after it."""

    gate: Gate
    pattern: Pattern


class ProductStateSimulator:
    """Strict quaternary simulation of cascades.

    Args:
        circuit: the cascade to simulate.
    """

    def __init__(self, circuit: Circuit):
        self._circuit = circuit

    @property
    def circuit(self) -> Circuit:
        return self._circuit

    def run(self, pattern: Pattern) -> Pattern:
        """Final pattern for an initial pattern (strict semantics).

        Raises:
            NonBinaryControlError: the cascade hits a don't-care case.
        """
        return self._circuit.strict_apply(pattern)

    def run_bits(self, bits: Sequence[int]) -> Pattern:
        """Final pattern for classical input bits."""
        return self.run(pattern_from_bits(bits))

    def trace(self, pattern: Pattern) -> list[StepTrace]:
        """Step-by-step evolution (strict semantics).

        Returns one entry per gate, containing the pattern *after* that
        gate fires.
        """
        steps = []
        for gate in self._circuit:
            pattern = gate.strict_apply(pattern)
            steps.append(StepTrace(gate=gate, pattern=pattern))
        return steps

    def wire_history(self, pattern: Pattern) -> list[tuple[Pattern, ...]]:
        """Patterns at every time step, including the input.

        ``history[t]`` is the register state after t gates.
        """
        history = [pattern]
        for step in self.trace(pattern):
            history.append(step.pattern)
        return [tuple(h) for h in history]
