"""Controlled quantum random number generators.

The paper motivates Section 4 with commercial quantum RNGs (id Quantique's
Quantis) and asks for *controlled* generators synthesized like any other
circuit.  :class:`ControlledRandomBitGenerator` is that artifact: an
enable wire gates k fair random bits -- when enable = 0 the data wires
pass through untouched; when enable = 1 each data wire becomes a
V-rotated state that measures as an unbiased coin.

The generator is *synthesized*, not hand-built: the behavioral spec goes
through :func:`~repro.core.probabilistic.express_probabilistic`, and the
expected minimal realization (one controlled-V per random wire, quantum
cost k) is confirmed by the tests and benchmarks.
"""

from __future__ import annotations

import random
from fractions import Fraction

from repro.errors import SpecificationError
from repro.core.circuit import Circuit
from repro.core.probabilistic import (
    ProbabilisticSpec,
    express_probabilistic,
)
from repro.core.search import CascadeSearch
from repro.gates.library import GateLibrary
from repro.mvl.patterns import (
    Pattern,
    binary_patterns,
    pattern_measurement_distribution,
)
from repro.mvl.values import apply_v
from repro.sim.measure import sample_pattern


class ControlledRandomBitGenerator:
    """k fair random bits gated by an enable wire (wire 0).

    Args:
        n_random: number of random data wires (register width is
            n_random + 1).
        library: gate library; defaults to a fresh one of matching width.
        cost_bound: synthesis bound (the minimal cost is n_random).
        search: optional shared search engine.
    """

    def __init__(
        self,
        n_random: int = 2,
        library: GateLibrary | None = None,
        cost_bound: int = 7,
        search: CascadeSearch | None = None,
    ):
        if n_random < 1:
            raise SpecificationError("need at least one random wire")
        n_qubits = n_random + 1
        if library is None:
            library = GateLibrary(n_qubits)
        if library.n_qubits != n_qubits:
            raise SpecificationError(
                f"library width {library.n_qubits} != {n_qubits}"
            )
        self._n_random = n_random
        self._library = library
        spec = self._build_spec(n_qubits)
        result = express_probabilistic(
            spec, library, cost_bound=cost_bound, search=search
        )
        self._spec = spec
        self._result = result

    @staticmethod
    def _build_spec(n_qubits: int) -> ProbabilisticSpec:
        """enable=0: identity; enable=1: every data wire V-rotated."""
        outputs = []
        for pattern in binary_patterns(n_qubits):
            if pattern[0].bit == 0:
                outputs.append(pattern)
            else:
                values = [pattern[0]]
                values.extend(apply_v(v) for v in pattern[1:])
                outputs.append(Pattern(values))
        return ProbabilisticSpec(tuple(outputs))

    # -- accessors --------------------------------------------------------------

    @property
    def n_random(self) -> int:
        return self._n_random

    @property
    def circuit(self) -> Circuit:
        """The synthesized cascade."""
        return self._result.circuit

    @property
    def cost(self) -> int:
        """Quantum cost of the generator (minimal: one gate per bit)."""
        return self._result.cost

    @property
    def spec(self) -> ProbabilisticSpec:
        return self._spec

    # -- behavior ------------------------------------------------------------------

    def output_pattern(self, enable: int, data_bits: tuple[int, ...] | None = None) -> Pattern:
        """The pre-measurement pattern for given inputs (data default 0)."""
        if data_bits is None:
            data_bits = (0,) * self._n_random
        if len(data_bits) != self._n_random:
            raise SpecificationError("data bit width mismatch")
        from repro.mvl.patterns import pattern_from_bits

        return self.circuit.strict_apply(
            pattern_from_bits((enable,) + tuple(data_bits))
        )

    def exact_distribution(
        self, enable: int, data_bits: tuple[int, ...] | None = None
    ) -> dict[tuple[int, ...], Fraction]:
        """Exact joint distribution of all measured wires."""
        return pattern_measurement_distribution(
            self.output_pattern(enable, data_bits)
        )

    def generate(
        self, rng: random.Random, enable: int = 1
    ) -> tuple[int, ...]:
        """One measurement shot; returns the k data bits.

        With ``enable=1`` the bits are i.i.d. fair coins; with
        ``enable=0`` they deterministically echo the (zero) data inputs.
        """
        measured = sample_pattern(self.output_pattern(enable), rng)
        return measured[1:]

    def generate_bits(self, count: int, rng: random.Random) -> list[int]:
        """A stream of *count* fair bits (repeated enabled shots)."""
        bits: list[int] = []
        while len(bits) < count:
            bits.extend(self.generate(rng))
        return bits[:count]

    def __repr__(self) -> str:
        return (
            f"ControlledRandomBitGenerator(n_random={self._n_random}, "
            f"cost={self.cost})"
        )
