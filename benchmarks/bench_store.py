"""E-store -- precompute-then-serve: store open and query latency.

Measures the point of the persistent closure store across both store
formats:

* **cold** synthesis pays for expanding the cascade closure on every
  call;
* a **v1** store is decoded eagerly (seconds for the cost-7 closure)
  and its remainder index rebuilt by scanning the closure;
* a **v2** store is memory-mapped with its remainder index serialized,
  so *open + first query* costs milliseconds -- O(queries touched), not
  O(closure);
* a **v3** store compresses each section per level and decompresses
  chunks on touch, so it keeps the v2 open/query shape at a fraction
  of the file size.

Acceptance bars: v2 open + first query <= 100 ms, v3 open + first
query <= 10 ms and a v3 file <= 0.5x the v2 size, and a >= 10x
per-query speedup of the warm store over cold search (in practice the
gap is 3-4 orders of magnitude).  Results are also written to
``BENCH_store.json`` at the repo root so performance is trendable
across PRs.

Run standalone (prints a small report)::

    PYTHONPATH=src python benchmarks/bench_store.py

or as a pytest module (asserts the bars)::

    PYTHONPATH=src python -m pytest benchmarks/bench_store.py -s

Markers: carries ``benchmark`` (timing-sensitive; excluded from the
default tier-1 selection, run explicitly or with ``-m benchmark``).
"""

from __future__ import annotations

import json
import platform
import random
import sys
import tempfile
from pathlib import Path
from time import perf_counter

import pytest

from repro.errors import CostBoundExceededError
from repro.core.batch import BatchSynthesizer
from repro.core.mce import express
from repro.core.search import CascadeSearch
from repro.core.store import load_search, open_store, save_search
from repro.gates import named
from repro.gates.library import GateLibrary
from repro.perm.permutation import Permutation

COST_BOUND = 7
N_COLD = 3
N_WARM = 200
OPEN_ROUNDS = 3

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_store.json"


def _sample_targets(count: int, seed: int = 2005) -> list[Permutation]:
    """Named paper targets padded with random reversible functions."""
    targets = [named.TARGETS[k] for k in ("toffoli", "peres", "fredkin")]
    rnd = random.Random(seed)
    while len(targets) < count:
        images = list(range(8))
        rnd.shuffle(images)
        targets.append(Permutation.from_images(images))
    return targets[:count]


def measure(work_dir: Path) -> dict[str, float]:
    """Time cold search vs v1 eager load vs v2 memory-mapped serving."""
    library = GateLibrary(3)
    v1_path = work_dir / "closure_v1.rpro"
    v2_path = work_dir / "closure_v2.rpro"
    v3_path = work_dir / "closure_v3.rpro"

    # Precompute once (this is `repro precompute`).
    started = perf_counter()
    search = CascadeSearch(library, track_parents=True)
    search.extend_to(COST_BOUND)
    precompute_s = perf_counter() - started
    started = perf_counter()
    save_search(search, v2_path, format_version=2)
    save_v2_s = perf_counter() - started
    started = perf_counter()
    v3_header = save_search(search, v3_path, format_version=3)
    save_v3_s = perf_counter() - started
    save_search(search, v1_path, format_version=1)

    # Cold: every query re-expands its own closure from scratch.
    cold_targets = _sample_targets(N_COLD)
    started = perf_counter()
    for target in cold_targets:
        express(target, library, cost_bound=COST_BOUND)
    cold_per_query = (perf_counter() - started) / len(cold_targets)

    # v1: eager decode + remainder-index scan on every open.
    started = perf_counter()
    v1_batch = BatchSynthesizer(load_search(v1_path, library))
    v1_batch.synthesize(named.TARGETS["toffoli"])
    v1_open_s = perf_counter() - started

    # v2: memory-mapped open, serialized index, O(touched) first query.
    v2_opens = []
    for _ in range(OPEN_ROUNDS):
        started = perf_counter()
        _header, _lib, loaded = open_store(v2_path)
        batch = BatchSynthesizer(loaded)
        result = batch.synthesize(named.TARGETS["toffoli"])
        v2_opens.append(perf_counter() - started)
        assert result.cost == 5
    v2_open_s = min(v2_opens)

    # v3: same open shape, chunks decompressed on touch.
    v3_opens = []
    for _ in range(OPEN_ROUNDS):
        started = perf_counter()
        _header, _lib, loaded3 = open_store(v3_path)
        batch3 = BatchSynthesizer(loaded3)
        result = batch3.synthesize(named.TARGETS["toffoli"])
        v3_opens.append(perf_counter() - started)
        assert result.cost == 5
    v3_open_s = min(v3_opens)

    # Warm per-query mix: every synthesizable target from a random
    # stream (cost-8+ functions exist; a server would triage them the
    # same way, via the index).
    warm_targets = []
    rnd = random.Random(7)
    while len(warm_targets) < N_WARM:
        images = list(range(8))
        rnd.shuffle(images)
        target = Permutation.from_images(images)
        try:
            batch.minimal_cost(target)
        except CostBoundExceededError:
            continue
        warm_targets.append(target)
    started = perf_counter()
    for target in warm_targets:
        batch.synthesize(target)
    warm_per_query = (perf_counter() - started) / len(warm_targets)

    numbers = {
        "cost_bound": COST_BOUND,
        "precompute_s": precompute_s,
        "save_v2_s": save_v2_s,
        "save_v3_s": save_v3_s,
        "store_v1_mb": v1_path.stat().st_size / 1e6,
        "store_v2_mb": v2_path.stat().st_size / 1e6,
        "store_v3_mb": v3_path.stat().st_size / 1e6,
        "v3_codec": v3_header.codec,
        "v3_size_ratio_vs_v2": (
            v3_path.stat().st_size / v2_path.stat().st_size
        ),
        "v1_open_first_query_s": v1_open_s,
        "v2_open_first_query_s": v2_open_s,
        "v3_open_first_query_s": v3_open_s,
        "v2_open_runs_s": [round(t, 5) for t in v2_opens],
        "v3_open_runs_s": [round(t, 5) for t in v3_opens],
        "open_speedup_v2_vs_v1": v1_open_s / v2_open_s,
        "cold_per_query_s": cold_per_query,
        "warm_per_query_s": warm_per_query,
        "speedup": cold_per_query / warm_per_query,
        "python": platform.python_version(),
        "numpy": __import__("numpy").__version__,
    }
    _JSON_PATH.write_text(json.dumps(numbers, indent=2) + "\n")
    return numbers


def report(numbers: dict[str, float]) -> str:
    return (
        f"precompute (once):        {numbers['precompute_s'] * 1e3:10.1f} ms\n"
        f"save v2 (once):           {numbers['save_v2_s'] * 1e3:10.1f} ms\n"
        f"save v3 (once):           {numbers['save_v3_s'] * 1e3:10.1f} ms\n"
        f"store size (v1/v2/v3):    {numbers['store_v1_mb']:7.1f} MB /"
        f"{numbers['store_v2_mb']:5.1f} MB /{numbers['store_v3_mb']:5.1f} MB"
        f"  (v3 = {numbers['v3_size_ratio_vs_v2']:.2f}x v2, "
        f"{numbers['v3_codec']})\n"
        f"v1 open + first query:    {numbers['v1_open_first_query_s'] * 1e3:10.1f} ms\n"
        f"v2 open + first query:    {numbers['v2_open_first_query_s'] * 1e3:10.1f} ms"
        f"   ({numbers['open_speedup_v2_vs_v1']:.0f}x)\n"
        f"v3 open + first query:    {numbers['v3_open_first_query_s'] * 1e3:10.1f} ms\n"
        f"cold query (search):      {numbers['cold_per_query_s'] * 1e3:10.2f} ms\n"
        f"warm query (store):       {numbers['warm_per_query_s'] * 1e6:10.2f} us\n"
        f"per-query speedup:        {numbers['speedup']:10.0f} x\n"
        f"(wrote {_JSON_PATH.name})"
    )


@pytest.mark.benchmark
def test_v2_store_opens_in_100ms_and_warm_queries_are_10x(tmp_path):
    numbers = measure(tmp_path)
    print("\n" + report(numbers))
    assert numbers["v2_open_first_query_s"] <= 0.100, (
        f"v2 store open + first query took "
        f"{numbers['v2_open_first_query_s'] * 1e3:.1f} ms; the "
        "memory-mapped load path regressed past the 100 ms bar"
    )
    assert numbers["v3_open_first_query_s"] <= 0.010, (
        f"v3 store open + first query took "
        f"{numbers['v3_open_first_query_s'] * 1e3:.1f} ms; "
        "decompress-on-touch regressed past the 10 ms bar"
    )
    assert numbers["v3_size_ratio_vs_v2"] <= 0.5, (
        f"v3 store is {numbers['v3_size_ratio_vs_v2']:.2f}x the v2 size; "
        "compression stopped paying for itself (bar: <= 0.5x)"
    )
    assert numbers["speedup"] >= 10.0, (
        f"warm-store query only {numbers['speedup']:.1f}x faster than cold "
        "full search; the store is not paying for itself"
    )


if __name__ == "__main__":
    with tempfile.TemporaryDirectory() as tmp:
        print(report(measure(Path(tmp))))
    sys.exit(0)
