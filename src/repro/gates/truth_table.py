"""Quaternary truth tables (the paper's Table 1 machinery).

A :class:`TruthTable` is the explicit input-pattern -> output-pattern map
of a gate or cascade over a label space.  It provides the paper's
presentation artifacts: numbered rows (1-based), the induced label
permutation, and restriction to the binary sub-domain.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.errors import SpecificationError
from repro.mvl.labels import LabelSpace
from repro.mvl.patterns import Pattern
from repro.perm.permutation import Permutation


@dataclass(frozen=True)
class TruthTableRow:
    """One row: input label/pattern and output label/pattern (labels 1-based)."""

    input_label: int
    input_pattern: Pattern
    output_pattern: Pattern
    output_label: int


class TruthTable:
    """The pattern-level map of a transformation over a label space."""

    def __init__(self, space: LabelSpace, images: Sequence[int]):
        if len(images) != space.size or set(images) != set(range(space.size)):
            raise SpecificationError(
                "images do not form a permutation of the label space"
            )
        self._space = space
        self._images = tuple(images)

    # -- constructors ------------------------------------------------------------

    @classmethod
    def from_map(
        cls, space: LabelSpace, transform: Callable[[Pattern], Pattern]
    ) -> "TruthTable":
        """Tabulate a pattern transform (e.g. ``gate.apply``)."""
        return cls(space, space.images_from_map(transform))

    @classmethod
    def from_gate(cls, gate, space: LabelSpace) -> "TruthTable":
        """Tabulate a single gate."""
        return cls.from_map(space, gate.apply)

    @classmethod
    def from_permutation(
        cls, space: LabelSpace, permutation: Permutation
    ) -> "TruthTable":
        """Wrap an existing label permutation."""
        if permutation.degree != space.size:
            raise SpecificationError("permutation degree does not match space")
        return cls(space, list(permutation.images))

    # -- access -----------------------------------------------------------------

    @property
    def space(self) -> LabelSpace:
        return self._space

    def output_label(self, input_label: int) -> int:
        """0-based output label for a 0-based input label."""
        return self._images[input_label]

    def output_pattern(self, pattern: Pattern) -> Pattern:
        """Output pattern for an input pattern."""
        return self._space.pattern(self._images[self._space.label(pattern)])

    def rows(self) -> list[TruthTableRow]:
        """All rows in label order, 1-based labels (presentation form)."""
        out = []
        for label, image in enumerate(self._images):
            out.append(
                TruthTableRow(
                    input_label=label + 1,
                    input_pattern=self._space.pattern(label),
                    output_pattern=self._space.pattern(image),
                    output_label=image + 1,
                )
            )
        return out

    def permutation(self) -> Permutation:
        """The induced label permutation."""
        return Permutation.from_images(self._images)

    def restricted_to_binary(self) -> Permutation:
        """The action on the binary labels (the paper's RestrictedPerm(b, S)).

        Raises:
            InvalidPermutationError: if binary inputs produce non-binary
                outputs (the table is probabilistic, not reversible).
        """
        return self.permutation().restricted(list(self._space.binary_labels))

    def is_binary_preserving(self) -> bool:
        """True when b(S) = S: binary inputs give binary outputs."""
        s = set(self._space.binary_labels)
        return {self._images[lbl] for lbl in s} == s

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TruthTable):
            return NotImplemented
        return self._space is other._space and self._images == other._images

    def __hash__(self) -> int:
        return hash((id(self._space), self._images))

    def __repr__(self) -> str:
        return f"TruthTable(space={self._space!r})"
