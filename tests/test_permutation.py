"""Unit tests for the bytes-backed permutations (repro.perm.permutation)."""

import pytest

from repro.errors import InvalidPermutationError
from repro.perm.permutation import Permutation


class TestConstruction:
    def test_from_images(self):
        p = Permutation.from_images([1, 0, 2])
        assert p(0) == 1 and p(1) == 0 and p(2) == 2

    def test_from_images_validates_bijection(self):
        with pytest.raises(InvalidPermutationError):
            Permutation.from_images([0, 0, 1])
        with pytest.raises(InvalidPermutationError):
            Permutation.from_images([0, 3, 1])

    def test_degree_limits(self):
        with pytest.raises(InvalidPermutationError):
            Permutation.from_images([])
        assert Permutation.identity(256).degree == 256
        with pytest.raises(InvalidPermutationError):
            Permutation.identity(257)

    def test_identity(self):
        e = Permutation.identity(5)
        assert e.is_identity
        assert all(e(i) == i for i in range(5))

    def test_from_cycles_one_based(self):
        # The paper's Ctrl-V permutation (3,7,4,8) on 16 labels.
        p = Permutation.from_cycles(16, [(3, 7, 4, 8)])
        assert p(2) == 6 and p(6) == 3 and p(3) == 7 and p(7) == 2

    def test_from_cycles_zero_based(self):
        p = Permutation.from_cycles(4, [(0, 1)], one_based=False)
        assert p(0) == 1 and p(1) == 0

    def test_from_cycles_rejects_overlap(self):
        with pytest.raises(InvalidPermutationError):
            Permutation.from_cycles(5, [(1, 2), (2, 3)])

    def test_from_cycles_rejects_out_of_range(self):
        with pytest.raises(InvalidPermutationError):
            Permutation.from_cycles(4, [(4, 5)])

    def test_transposition(self):
        t = Permutation.transposition(6, 2, 4)
        assert t(2) == 4 and t(4) == 2 and t(0) == 0


class TestComposition:
    def test_product_applies_left_factor_first(self):
        a = Permutation.from_cycles(3, [(1, 2)])   # swaps points 0,1
        b = Permutation.from_cycles(3, [(2, 3)])   # swaps points 1,2
        # (a*b)(0): a first (0->1), then b (1->2).
        assert (a * b)(0) == 2
        # Function composition order would have given 1 here:
        assert (b * a)(0) == 1

    def test_product_matches_paper_cascade(self):
        # Peres = (5,7,6,8) = product of its four gates is exercised in
        # the integration tests; here: a 3-cycle from two transpositions.
        a = Permutation.from_cycles(3, [(1, 2)])
        b = Permutation.from_cycles(3, [(1, 3)])
        assert (a * b).cycle_string() == "(1,2,3)"

    def test_degree_mismatch_raises(self):
        with pytest.raises(InvalidPermutationError):
            Permutation.identity(3) * Permutation.identity(4)

    def test_identity_neutral(self):
        p = Permutation.from_cycles(6, [(1, 4, 2)])
        e = Permutation.identity(6)
        assert p * e == p and e * p == p

    def test_inverse(self):
        p = Permutation.from_cycles(7, [(1, 5, 3), (2, 7)])
        assert (p * p.inverse()).is_identity
        assert (p.inverse() * p).is_identity

    def test_power(self):
        c = Permutation.from_cycles(5, [(1, 2, 3, 4, 5)])
        assert c.power(5).is_identity
        assert c.power(2)(0) == 2
        assert c.power(-1) == c.inverse()
        assert c.power(0).is_identity

    def test_conjugate_by(self):
        # Conjugation relabels the points: cycle structure preserved.
        p = Permutation.from_cycles(5, [(1, 2)])
        g = Permutation.from_cycles(5, [(2, 3)])
        q = p.conjugate_by(g)
        assert q.cycle_structure() == p.cycle_structure()
        assert q == Permutation.from_cycles(5, [(1, 3)])


class TestStructure:
    def test_cycles_zero_based(self):
        p = Permutation.from_cycles(6, [(1, 2, 3), (5, 6)])
        assert p.cycles() == [(0, 1, 2), (4, 5)]

    def test_cycles_include_fixed(self):
        p = Permutation.from_cycles(4, [(1, 2)])
        assert (2,) in p.cycles(include_fixed=True)
        assert (3,) in p.cycles(include_fixed=True)

    def test_cycle_structure(self):
        p = Permutation.from_cycles(8, [(1, 2, 3), (4, 5)])
        assert p.cycle_structure() == {3: 1, 2: 1, 1: 3}

    def test_order(self):
        p = Permutation.from_cycles(8, [(1, 2, 3), (4, 5)])
        assert p.order() == 6
        assert Permutation.identity(4).order() == 1

    def test_parity(self):
        assert Permutation.from_cycles(4, [(1, 2)]).parity() == 1
        assert Permutation.from_cycles(4, [(1, 2, 3)]).parity() == 0
        assert Permutation.identity(4).parity() == 0

    def test_support(self):
        p = Permutation.from_cycles(6, [(2, 4)])
        assert p.support() == (1, 3)

    def test_fixes(self):
        p = Permutation.from_cycles(8, [(1, 2)])
        assert p.fixes({0, 1})
        assert p.fixes({2, 3})
        assert not p.fixes({0})

    def test_image_of_set(self):
        p = Permutation.from_cycles(8, [(1, 5)])
        assert p.image_of_set({0, 1}) == frozenset({4, 1})


class TestRestriction:
    def test_restricted_renumbers(self):
        p = Permutation.from_cycles(8, [(1, 2), (5, 6)])
        r = p.restricted([0, 1])
        assert r.degree == 2 and r(0) == 1

    def test_restricted_requires_invariance(self):
        p = Permutation.from_cycles(8, [(1, 5)])
        with pytest.raises(InvalidPermutationError):
            p.restricted([0, 1])

    def test_restricted_composes(self):
        a = Permutation.from_cycles(8, [(1, 2)])
        b = Permutation.from_cycles(8, [(2, 3)])
        s = [0, 1, 2, 3]
        assert (a * b).restricted(s) == a.restricted(s) * b.restricted(s)

    def test_extended(self):
        p = Permutation.from_cycles(3, [(1, 2)])
        q = p.extended(6)
        assert q.degree == 6 and q(0) == 1 and q(5) == 5

    def test_extended_cannot_shrink(self):
        with pytest.raises(InvalidPermutationError):
            Permutation.identity(5).extended(3)


class TestPaperNotation:
    def test_cycle_string(self):
        p = Permutation.from_cycles(38, [(5, 17, 7, 21), (6, 18, 8, 22)])
        assert p.cycle_string() == "(5,17,7,21)(6,18,8,22)"

    def test_identity_cycle_string(self):
        assert Permutation.identity(4).cycle_string() == "()"

    def test_from_cycle_string_roundtrip(self):
        text = "(3,33,7,26)(4,34,8,27)(9,35,15,28)(10,36,16,29)"
        p = Permutation.from_cycle_string(38, text)
        assert p.cycle_string() == text

    def test_from_cycle_string_identity(self):
        assert Permutation.from_cycle_string(5, "()").is_identity

    def test_from_cycle_string_garbage(self):
        with pytest.raises(InvalidPermutationError):
            Permutation.from_cycle_string(5, "3,4)")
        with pytest.raises(InvalidPermutationError):
            Permutation.from_cycle_string(5, "(a,b)")

    def test_apply_paper_one_based(self):
        p = Permutation.from_cycles(8, [(5, 7, 6, 8)])
        assert p.apply_paper(5) == 7
        assert p.apply_paper(8) == 5
        assert p.apply_paper(1) == 1

    def test_repr_is_evalable_description(self):
        p = Permutation.from_cycles(8, [(5, 7, 6, 8)])
        assert "(5,7,6,8)" in repr(p)


class TestHashing:
    def test_equal_permutations_hash_equal(self):
        a = Permutation.from_cycles(6, [(1, 2)])
        b = Permutation.from_images([1, 0, 2, 3, 4, 5])
        assert a == b and hash(a) == hash(b)

    def test_usable_in_sets(self):
        perms = {
            Permutation.from_cycles(4, [(1, 2)]),
            Permutation.from_cycles(4, [(1, 2)]),
            Permutation.identity(4),
        }
        assert len(perms) == 2
