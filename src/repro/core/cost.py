"""Quantum cost models.

The paper's convention: "we consider each of the 2-qubit gates (XOR,
controlled-V, controlled-V+) to have a quantum cost of 1" and 1-qubit
gates are free.  The authors note the method "can be easily modified to
take into account the precise NMR costs" -- :class:`CostModel` is that
modification point: any non-negative integer weights per gate kind, with
2-qubit gates strictly positive so the layered search terminates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidValueError
from repro.gates.kinds import GateKind


@dataclass(frozen=True)
class CostModel:
    """Integer quantum cost per gate kind.

    Attributes:
        v_cost: cost of a controlled-V gate.
        vdag_cost: cost of a controlled-V+ gate.
        cnot_cost: cost of a Feynman (CNOT) gate.
        not_cost: cost of a 1-qubit NOT (0 in the paper).
    """

    v_cost: int = 1
    vdag_cost: int = 1
    cnot_cost: int = 1
    not_cost: int = 0

    def __post_init__(self) -> None:
        for name in ("v_cost", "vdag_cost", "cnot_cost"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise InvalidValueError(
                    f"{name} must be a positive integer, got {value!r}"
                )
        if not isinstance(self.not_cost, int) or self.not_cost < 0:
            raise InvalidValueError("not_cost must be a non-negative integer")

    @classmethod
    def unit(cls) -> "CostModel":
        """The paper's model: every 2-qubit gate costs 1, NOT is free."""
        return cls()

    def gate_cost(self, kind: GateKind) -> int:
        """Cost of one gate of the given kind.

        The four binary kinds take the model's configured weights.  MV
        kinds (:class:`~repro.gates.mv.MVGateKind`) are not covered by
        the binary weights and carry their own cost convention, so they
        fall through to ``kind.default_cost`` (Di & Wei: single-qudit 1,
        controlled 2).
        """
        if kind is GateKind.V:
            return self.v_cost
        if kind is GateKind.VDAG:
            return self.vdag_cost
        if kind is GateKind.CNOT:
            return self.cnot_cost
        if kind is GateKind.NOT:
            return self.not_cost
        return kind.default_cost

    @property
    def max_two_qubit_cost(self) -> int:
        return max(self.v_cost, self.vdag_cost, self.cnot_cost)

    @property
    def is_unit(self) -> bool:
        """True for the paper's default model."""
        return (
            self.v_cost == self.vdag_cost == self.cnot_cost == 1
            and self.not_cost == 0
        )


UNIT_COST = CostModel.unit()
