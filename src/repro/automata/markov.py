"""Induced Markov chains of quantum state machines.

Fixing the input symbol of a :class:`~repro.automata.machine.
QuantumStateMachine` makes the measured state evolve as a Markov chain on
2**k classical states.  This module extracts that chain with exact
rational transition probabilities and provides the standard analyses
(n-step distributions, stationarity, irreducibility/aperiodicity via
networkx when available).
"""

from __future__ import annotations

from collections.abc import Sequence
from fractions import Fraction

import numpy as np

from repro.errors import SpecificationError

Bits = tuple[int, ...]


class MarkovChain:
    """A finite Markov chain with exact rational transition matrix.

    Args:
        matrix: row-stochastic matrix as nested sequences of Fractions
            (or ints); ``matrix[i][j]`` = P(next = j | current = i).
    """

    def __init__(self, matrix: Sequence[Sequence[Fraction]]):
        rows = [tuple(Fraction(x) for x in row) for row in matrix]
        size = len(rows)
        if any(len(row) != size for row in rows):
            raise SpecificationError("transition matrix must be square")
        for i, row in enumerate(rows):
            if sum(row) != 1:
                raise SpecificationError(f"row {i} does not sum to 1")
            if any(x < 0 for x in row):
                raise SpecificationError(f"row {i} has a negative entry")
        self._matrix = tuple(rows)
        self._size = size

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_machine(cls, machine, input_bits: Sequence[int]) -> "MarkovChain":
        """The state chain of a machine under a constant input symbol."""
        size = machine.n_states
        k = len(machine.state_wires)
        matrix = []
        for state_index in range(size):
            state_bits = _bits(state_index, k)
            row = [Fraction(0)] * size
            for (_out, nxt), p in machine.joint_distribution(
                input_bits, state_bits
            ).items():
                row[_index(nxt)] += p
            matrix.append(row)
        return cls(matrix)

    # -- basic access -------------------------------------------------------------

    @property
    def size(self) -> int:
        return self._size

    @property
    def matrix(self) -> tuple[tuple[Fraction, ...], ...]:
        return self._matrix

    def probability(self, current: int, nxt: int) -> Fraction:
        return self._matrix[current][nxt]

    def to_numpy(self) -> np.ndarray:
        """Float64 copy of the transition matrix."""
        return np.array(
            [[float(x) for x in row] for row in self._matrix], dtype=np.float64
        )

    # -- evolution ------------------------------------------------------------------

    def step_distribution(
        self, distribution: Sequence[Fraction]
    ) -> tuple[Fraction, ...]:
        """One exact step: row-vector times matrix."""
        if len(distribution) != self._size:
            raise SpecificationError("distribution size mismatch")
        return tuple(
            sum(
                (distribution[i] * self._matrix[i][j] for i in range(self._size)),
                Fraction(0),
            )
            for j in range(self._size)
        )

    def n_step_distribution(
        self, distribution: Sequence[Fraction], steps: int
    ) -> tuple[Fraction, ...]:
        """Exact distribution after *steps* transitions."""
        current = tuple(Fraction(x) for x in distribution)
        for _ in range(steps):
            current = self.step_distribution(current)
        return current

    # -- structure ---------------------------------------------------------------------

    def stationary_distribution(self) -> np.ndarray:
        """A stationary distribution (numeric, via the null space of P^T - I).

        For irreducible chains it is the unique stationary law.
        """
        p = self.to_numpy()
        a = p.T - np.eye(self._size)
        # Append the normalization constraint and least-squares solve.
        a = np.vstack([a, np.ones(self._size)])
        b = np.zeros(self._size + 1)
        b[-1] = 1.0
        solution, *_ = np.linalg.lstsq(a, b, rcond=None)
        solution = np.clip(solution, 0.0, None)
        return solution / solution.sum()

    def is_stationary(self, distribution: Sequence[Fraction]) -> bool:
        """Exact check: the distribution is a fixed point of the chain."""
        return self.step_distribution(distribution) == tuple(
            Fraction(x) for x in distribution
        )

    def communicating_classes(self) -> list[frozenset[int]]:
        """Strongly connected components of the transition digraph."""
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(range(self._size))
        for i, row in enumerate(self._matrix):
            for j, p in enumerate(row):
                if p:
                    graph.add_edge(i, j)
        return [frozenset(c) for c in nx.strongly_connected_components(graph)]

    def is_irreducible(self) -> bool:
        return len(self.communicating_classes()) == 1

    def __repr__(self) -> str:
        return f"MarkovChain(size={self._size})"


def _bits(index: int, width: int) -> Bits:
    return tuple((index >> (width - 1 - w)) & 1 for w in range(width))


def _index(bits: Bits) -> int:
    value = 0
    for b in bits:
        value = value * 2 + b
    return value
