"""ASCII circuit diagrams in the style of the paper's figures.

Example (the Figure 4 Peres realization ``V_CB * F_BA * V_CA * V+_CB``)::

    A ────────●────●─────────
    B ──●─────(+)──│─────●───
    C ──[V]────────[V]───[V+]─

Controls are ``●``, Feynman targets ``(+)``, controlled-V/V+ targets
``[V]`` / ``[V+]``, NOT gates ``[X]``; vertical bars mark the wires a
gate spans.
"""

from __future__ import annotations

from repro.core.circuit import Circuit
from repro.gates.gate import wire_letter
from repro.gates.kinds import GateKind

_TARGET_SYMBOL = {
    GateKind.V: "[V]",
    GateKind.VDAG: "[V+]",
    GateKind.CNOT: "(+)",
    GateKind.NOT: "[X]",
}


def circuit_diagram(circuit: Circuit, wire_names: list[str] | None = None) -> str:
    """Render a cascade as a multi-line ASCII diagram.

    Args:
        circuit: the cascade to draw.
        wire_names: custom wire labels (default A, B, C, ...).
    """
    n = circuit.n_qubits
    names = wire_names or [wire_letter(w) for w in range(n)]
    width = max(len(nm) for nm in names)
    rows = [[f"{names[w]:<{width}} ──"] for w in range(n)]

    for gate in circuit:
        # MV gate kinds are not in the binary symbol table; their target
        # box carries the local digit operation (e.g. ``[X+1]``).
        symbol = _TARGET_SYMBOL.get(gate.kind)
        if symbol is None:
            op = gate.kind.value
            symbol = f"[{op[1:] if gate.control is not None else op}]"
        symbols = {gate.target: symbol}
        if gate.control is not None:
            symbols[gate.control] = "●"
        column_width = max(len(s) for s in symbols.values()) + 2
        span = (
            range(gate.target, gate.target + 1)
            if gate.control is None
            else range(
                min(gate.target, gate.control), max(gate.target, gate.control) + 1
            )
        )
        for w in range(n):
            if w in symbols:
                cell = symbols[w].center(column_width, "─")
            elif w in span:
                cell = "│".center(column_width, "─")
            else:
                cell = "─" * column_width
            rows[w].append(cell)

    for w in range(n):
        rows[w].append("──")
    return "\n".join("".join(cells) for cells in rows)
