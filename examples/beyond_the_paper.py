"""Beyond the paper: cost 8, four qubits, cost models, depth, libraries.

The machinery generalizes past everything printed in 2004.  This example
walks five extensions:

1. the cost spectrum one level past the paper's memory bound (|G[8]|);
2. the same formulation on a 4-qubit register (176 labels, 36 gates);
3. non-unit cost models (the paper's "easily modified" NMR claim);
4. depth analysis of the minimal implementations;
5. the conclusion's claim that Peres-based permutative libraries need
   fewer gates, measured exhaustively over all 40320 functions.

Run:  python examples/beyond_the_paper.py   (takes ~30 s)
"""

from repro import GateLibrary, express, express_all, find_minimum_cost_circuits, named
from repro.baselines.permlib import (
    OptimalPermutativeSynthesizer,
    nct_library,
    nctp_library,
)
from repro.core.cost import CostModel
from repro.core.schedule import depth, min_depth_implementation
from repro.core.search import CascadeSearch
from repro.render.tables import format_table


def cost_eight() -> None:
    print("=" * 64)
    print("1. One level past the paper's cb = 7")
    print("=" * 64)
    library = GateLibrary(3)
    search = CascadeSearch(library, track_parents=False)
    table = find_minimum_cost_circuits(library, cost_bound=8, search=search)
    print(f"|G[8]| = {table.g_sizes[8]} new functions "
          f"(cumulative {table.total_synthesized()} of 5040 NOT-free)")
    print(f"closure: {search.total_seen():,} cascades")


def four_qubits() -> None:
    print("\n" + "=" * 64)
    print("2. Four qubits: 176 labels, 36 gates")
    print("=" * 64)
    library = GateLibrary(4)
    table = find_minimum_cost_circuits(library, cost_bound=4)
    print(f"|G[k]| for n = 4, k = 0..4: {table.g_sizes}")
    toffoli4 = named.from_output_functions(
        4,
        [lambda b: b[0], lambda b: b[1],
         lambda b: b[2] ^ (b[0] & b[1]), lambda b: b[3]],
    )
    search = CascadeSearch(library, track_parents=True)
    result = express(toffoli4, library, cost_bound=5, search=search)
    print(f"embedded Toffoli still costs {result.cost}: {result.circuit}")


def cost_models() -> None:
    print("\n" + "=" * 64)
    print("3. Non-unit cost models")
    print("=" * 64)
    library = GateLibrary(3)
    rows = []
    for name, model in (
        ("unit", CostModel()),
        ("cnot=2", CostModel(cnot_cost=2)),
        ("nmr-ish (v=2, cnot=3)", CostModel(v_cost=2, vdag_cost=2, cnot_cost=3)),
    ):
        search = CascadeSearch(library, model, track_parents=True)
        toffoli = express(named.TOFFOLI, library, cost_bound=14,
                          cost_model=model, search=search)
        rows.append([name, toffoli.cost, str(toffoli.circuit)])
    print(format_table(["model", "toffoli cost", "optimal cascade"], rows))
    print("note: under cnot=2 the search replaces every Feynman gate "
          "with a V.V pair.")


def depths() -> None:
    print("\n" + "=" * 64)
    print("4. Depth of the minimal implementations")
    print("=" * 64)
    library = GateLibrary(3)
    search = CascadeSearch(library, track_parents=True)
    for name in ("peres", "toffoli"):
        results = express_all(named.TARGETS[name], library, search=search)
        best = min_depth_implementation(results)
        print(f"{name}: {len(results)} implementations, depths "
              f"{[depth(r.circuit) for r in results]} "
              f"(all fully sequential on 3 qubits)")
        assert depth(best.circuit) == best.cost


def libraries() -> None:
    print("\n" + "=" * 64)
    print("5. Peres-based libraries (the conclusion's claim)")
    print("=" * 64)
    rows = []
    for build in (nct_library, nctp_library):
        lib = build()
        synth = OptimalPermutativeSynthesizer(lib, "count")
        rows.append([lib.name, f"{synth.average_cost():.4f}", synth.worst_case()])
    print(format_table(["library", "avg gates (all 40320)", "worst case"], rows))
    print("adding Peres gates drops the average from 5.87 to 4.43 gates "
          "and the worst case from 8 to 6.")


if __name__ == "__main__":
    cost_eight()
    four_qubits()
    cost_models()
    depths()
    libraries()
