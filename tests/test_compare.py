"""Unit tests for the baseline comparison (repro.baselines.compare)."""

import pytest

from repro.baselines.compare import ComparisonRow, compare_targets
from repro.baselines.nct import NCTCostAssignment
from repro.gates import named


@pytest.fixture(scope="module")
def rows(nct_synthesizer):
    from repro.core.search import CascadeSearch
    from repro.gates.library import GateLibrary

    library = GateLibrary(3)
    search = CascadeSearch(library, track_parents=True)
    targets = {
        name: named.TARGETS[name]
        for name in ("toffoli", "fredkin", "peres", "g2", "g3", "g4")
    }
    return {
        r.name: r
        for r in compare_targets(
            targets, library, nct_synthesizer, search
        )
    }


class TestMotivatingClaim:
    """Section 1: min gate count != min quantum cost."""

    def test_peres_direct_synthesis_wins(self, rows):
        peres = rows["peres"]
        assert peres.nct_gate_count == 2        # Toffoli + CNOT
        assert peres.nct_quantum_cost == 6      # 5 + 1
        assert peres.direct_quantum_cost == 4   # the paper's result
        assert peres.advantage == 2

    def test_g3_and_g4_save_three(self, rows):
        assert rows["g3"].advantage == 3
        assert rows["g4"].advantage == 3

    def test_toffoli_matches_baseline(self, rows):
        # Toffoli itself is a single NCT gate costed at its own minimal
        # quantum realization, so there is nothing to save.
        toffoli = rows["toffoli"]
        assert toffoli.nct_gate_count == 1
        assert toffoli.advantage == 0

    def test_direct_cost_never_worse(self, rows):
        for row in rows.values():
            assert row.direct_quantum_cost <= row.nct_quantum_cost
            assert row.direct_quantum_cost <= row.mmd_quantum_cost

    def test_mmd_never_beats_optimal_nct_gate_count(self, rows):
        for row in rows.values():
            assert row.mmd_gate_count >= row.nct_gate_count


class TestConfiguration:
    def test_custom_cost_assignment(self, nct_synthesizer):
        # If Toffoli were free, NCT would win on Peres.
        rows = compare_targets(
            {"peres": named.PERES},
            synthesizer=nct_synthesizer,
            assignment=NCTCostAssignment(toffoli_cost=0),
        )
        assert rows[0].nct_quantum_cost == 1
        assert rows[0].advantage < 0

    def test_row_dataclass(self):
        row = ComparisonRow("x", 1, 5, 2, 6, 4)
        assert row.advantage == 1
