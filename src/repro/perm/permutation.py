"""Immutable permutations on {0, ..., n-1}, bytes-backed for speed.

Composition convention (matches the paper): ``a * b`` means *apply a
first, then b* -- the natural reading of a gate cascade ``a; b``.  In
image terms ``(a * b)(x) = b(a(x))``.

The image array is stored as ``bytes`` so that the product is a single
``bytes.translate`` call and permutations hash/compare at C speed; this
is what makes the cost-7 closure of the paper (about 7 * 10**5 distinct
cascades) take seconds in pure Python.  Domains up to 256 points are
supported, far beyond the 38 labels of the 3-qubit space (n = 4 qubits
needs 176).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.errors import InvalidPermutationError

_MAX_DEGREE = 256
# Cache of identity translation tails, keyed by degree.
_TAILS: dict[int, bytes] = {}


def pack_images(images: "Sequence[bytes]", degree: int):
    """Stack raw image arrays into one ``(n, degree)`` uint8 ndarray.

    The bulk bytes->array adapter used by the vectorized search kernel
    and the v2 closure store: one contiguous buffer copy instead of a
    Python-level loop per permutation.
    """
    import numpy as np

    n = len(images)
    if n == 0:
        return np.empty((0, degree), dtype=np.uint8)
    return np.frombuffer(b"".join(images), dtype=np.uint8).reshape(n, degree)


def unpack_images(array) -> list[bytes]:
    """Split an ``(n, degree)`` uint8 ndarray back into image bytes.

    Inverse of :func:`pack_images`; one ``tobytes`` plus C-level slicing,
    so materializing a 5e5-row level costs tenths of a second, not
    minutes.
    """
    n, degree = array.shape
    blob = array.tobytes()
    return [blob[i : i + degree] for i in range(0, n * degree, degree)]


def _tail(degree: int) -> bytes:
    tail = _TAILS.get(degree)
    if tail is None:
        tail = bytes(range(degree, _MAX_DEGREE))
        _TAILS[degree] = tail
    return tail


class Permutation:
    """A permutation of ``{0, ..., degree-1}``.

    Create with :meth:`from_images`, :meth:`from_cycles` or
    :meth:`identity`.  Instances are immutable and hashable.
    """

    __slots__ = ("_images", "_table")

    def __init__(self, images: bytes, _table: bytes | None = None):
        # Internal fast path: images must already be validated bytes.
        self._images = images
        # The 256-byte translate table is built lazily (many permutations
        # in BFS frontiers are never used as right factors).
        self._table = _table

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_images(cls, images: Sequence[int] | bytes) -> "Permutation":
        """Build from an image array: ``images[x]`` is the image of x."""
        data = bytes(images)
        degree = len(data)
        if degree == 0 or degree > _MAX_DEGREE:
            raise InvalidPermutationError(
                f"degree must be 1..{_MAX_DEGREE}, got {degree}"
            )
        seen = bytearray(degree)
        for x in data:
            if x >= degree or seen[x]:
                raise InvalidPermutationError(
                    f"images {list(data)} do not form a permutation"
                )
            seen[x] = 1
        return cls(data)

    @classmethod
    def identity(cls, degree: int) -> "Permutation":
        """The identity permutation on *degree* points."""
        if degree == 0 or degree > _MAX_DEGREE:
            raise InvalidPermutationError(f"bad degree {degree}")
        return cls(bytes(range(degree)))

    @classmethod
    def from_cycles(
        cls, degree: int, cycles: Iterable[Iterable[int]], one_based: bool = True
    ) -> "Permutation":
        """Build from disjoint cycles.

        Args:
            degree: domain size.
            cycles: iterable of cycles; each cycle lists points in order.
            one_based: interpret points as the paper's 1-based labels
                (default) rather than 0-based indices.
        """
        offset = 1 if one_based else 0
        images = list(range(degree))
        touched = set()
        for cycle in cycles:
            pts = [p - offset for p in cycle]
            for p in pts:
                if not 0 <= p < degree:
                    raise InvalidPermutationError(
                        f"cycle point {p + offset} out of range for degree {degree}"
                    )
                if p in touched:
                    raise InvalidPermutationError(
                        f"point {p + offset} appears in two cycles"
                    )
                touched.add(p)
            for i, p in enumerate(pts):
                images[p] = pts[(i + 1) % len(pts)]
        return cls(bytes(images))

    @classmethod
    def transposition(cls, degree: int, a: int, b: int) -> "Permutation":
        """The swap of 0-based points *a* and *b*."""
        images = list(range(degree))
        images[a], images[b] = images[b], images[a]
        return cls.from_images(images)

    # -- core accessors --------------------------------------------------------

    @property
    def degree(self) -> int:
        """Size of the domain."""
        return len(self._images)

    @property
    def images(self) -> bytes:
        """The raw image array (``images[x]`` = image of x)."""
        return self._images

    def table(self) -> bytes:
        """The 256-byte translation table used for fast right-composition."""
        if self._table is None:
            self._table = self._images + _tail(len(self._images))
        return self._table

    def __call__(self, point: int) -> int:
        """Image of a 0-based point."""
        return self._images[point]

    def apply_paper(self, paper_point: int) -> int:
        """Image using the paper's 1-based labels on both sides."""
        return self._images[paper_point - 1] + 1

    # -- group operations --------------------------------------------------------

    def __mul__(self, other: "Permutation") -> "Permutation":
        """Cascade product: apply ``self`` first, then ``other``."""
        if not isinstance(other, Permutation):
            return NotImplemented
        if other.degree != self.degree:
            raise InvalidPermutationError("degree mismatch in product")
        return Permutation(self._images.translate(other.table()))

    def inverse(self) -> "Permutation":
        """The inverse permutation."""
        inv = bytearray(len(self._images))
        for x, y in enumerate(self._images):
            inv[y] = x
        return Permutation(bytes(inv))

    def conjugate_by(self, g: "Permutation") -> "Permutation":
        """Return ``g^-1 * self * g`` (relabeling of points by g)."""
        return g.inverse() * self * g

    def power(self, exponent: int) -> "Permutation":
        """Integer power (negative exponents use the inverse)."""
        if exponent < 0:
            return self.inverse().power(-exponent)
        result = Permutation.identity(self.degree)
        base = self
        while exponent:
            if exponent & 1:
                result = result * base
            base = base * base
            exponent >>= 1
        return result

    # -- structure ------------------------------------------------------------------

    @property
    def is_identity(self) -> bool:
        return all(i == x for i, x in enumerate(self._images))

    def cycles(self, include_fixed: bool = False) -> list[tuple[int, ...]]:
        """Disjoint cycles as 0-based tuples (fixed points omitted by default)."""
        seen = bytearray(self.degree)
        out = []
        for start in range(self.degree):
            if seen[start]:
                continue
            cycle = [start]
            seen[start] = 1
            point = self._images[start]
            while point != start:
                cycle.append(point)
                seen[point] = 1
                point = self._images[point]
            if len(cycle) > 1 or include_fixed:
                out.append(tuple(cycle))
        return out

    def cycle_structure(self) -> dict[int, int]:
        """Map cycle length -> count (including fixed points)."""
        structure: dict[int, int] = {}
        for cycle in self.cycles(include_fixed=True):
            structure[len(cycle)] = structure.get(len(cycle), 0) + 1
        return structure

    def order(self) -> int:
        """Multiplicative order (lcm of cycle lengths)."""
        from math import lcm

        lengths = [len(c) for c in self.cycles(include_fixed=True)]
        return lcm(*lengths) if lengths else 1

    def parity(self) -> int:
        """0 for even, 1 for odd permutations."""
        swaps = sum(len(c) - 1 for c in self.cycles())
        return swaps % 2

    def support(self) -> tuple[int, ...]:
        """The 0-based points moved by the permutation."""
        return tuple(x for x, y in enumerate(self._images) if x != y)

    def fixes(self, points: Iterable[int]) -> bool:
        """True if every point in *points* is mapped into the same set."""
        pts = set(points)
        return {self._images[p] for p in pts} == pts

    def image_of_set(self, points: Iterable[int]) -> frozenset[int]:
        """The image f(S) of a set of 0-based points."""
        return frozenset(self._images[p] for p in points)

    def restricted(self, points: Sequence[int]) -> "Permutation":
        """The paper's ``RestrictedPerm(b, S)``.

        Given an invariant set *points* (b(S) = S), return the permutation
        induced on those points, renumbered 0..len(points)-1 in the order
        given.

        Raises:
            InvalidPermutationError: if the set is not invariant.
        """
        index = {p: i for i, p in enumerate(points)}
        images = []
        for p in points:
            image = self._images[p]
            if image not in index:
                raise InvalidPermutationError(
                    f"set {list(points)} is not invariant (point {p} maps "
                    f"to {image})"
                )
            images.append(index[image])
        return Permutation.from_images(images)

    def extended(self, degree: int) -> "Permutation":
        """Embed into a larger domain, fixing all new points."""
        if degree < self.degree:
            raise InvalidPermutationError("cannot shrink a permutation")
        return Permutation(self._images + bytes(range(self.degree, degree)))

    # -- equality / hashing -------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Permutation):
            return NotImplemented
        return self._images == other._images

    def __hash__(self) -> int:
        return hash(self._images)

    def __repr__(self) -> str:
        return f"Permutation.from_cycles({self.degree}, {self.cycle_string()!r})"

    # -- paper-style cycle notation ------------------------------------------------------

    def cycle_string(self) -> str:
        """Cycle notation with the paper's 1-based labels, e.g. ``(5,7,6,8)``."""
        cycles = self.cycles()
        if not cycles:
            return "()"
        return "".join(
            "(" + ",".join(str(p + 1) for p in cycle) + ")" for cycle in cycles
        )

    @classmethod
    def from_cycle_string(cls, degree: int, text: str) -> "Permutation":
        """Parse paper-style cycle notation, e.g. ``"(3,7,4,8)"``."""
        text = text.strip().replace(" ", "")
        if text in ("()", ""):
            return cls.identity(degree)
        if not (text.startswith("(") and text.endswith(")")):
            raise InvalidPermutationError(f"bad cycle string {text!r}")
        cycles = []
        for chunk in text[1:-1].split(")("):
            try:
                cycles.append([int(p) for p in chunk.split(",")])
            except ValueError:
                raise InvalidPermutationError(
                    f"bad cycle string {text!r}"
                ) from None
        return cls.from_cycles(degree, cycles, one_based=True)
