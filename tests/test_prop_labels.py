"""Property-based tests: label spaces and matrices (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.dyadic import DyadicComplex
from repro.linalg.matrix import Matrix
from repro.mvl.labels import label_space
from repro.mvl.patterns import Pattern, pattern_from_int, pattern_to_int
from repro.mvl.values import Qv


class TestPatternEncoding:
    @given(st.integers(min_value=0, max_value=255), st.integers(min_value=1, max_value=4))
    def test_roundtrip(self, code, n):
        code %= 4**n
        assert pattern_to_int(pattern_from_int(code, n)) == code

    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=4))
    def test_pattern_ordering_matches_code_ordering(self, values):
        pattern = Pattern([Qv(v) for v in values])
        code = pattern_to_int(pattern)
        again = pattern_from_int(code, len(values))
        assert again == pattern


class TestLabelSpaceInvariants:
    @given(st.integers(min_value=1, max_value=4), st.booleans())
    @settings(max_examples=20, deadline=None)
    def test_size_formula(self, n, reduced):
        space = label_space(n, reduced)
        expected = 4**n - 3**n + 1 if reduced else 4**n
        assert space.size == expected

    @given(st.integers(min_value=1, max_value=3), st.booleans())
    @settings(max_examples=12, deadline=None)
    def test_binary_prefix(self, n, reduced):
        space = label_space(n, reduced)
        for label in range(2**n):
            assert space.pattern(label).is_binary

    @given(st.integers(min_value=1, max_value=3))
    @settings(max_examples=6, deadline=None)
    def test_banned_masks_union(self, n):
        """The union of single-wire banned sets is every mixed label."""
        space = label_space(n)
        union = 0
        for wire in range(n):
            union |= space.banned_mask([wire])
        expected = 0
        for label, pattern in enumerate(space.patterns):
            if not pattern.is_binary:
                expected |= 1 << label
        assert union == expected


matrices2 = st.builds(
    lambda a, b, c, d: Matrix(
        [[DyadicComplex(*a), DyadicComplex(*b)],
         [DyadicComplex(*c), DyadicComplex(*d)]]
    ),
    *(
        st.tuples(
            st.integers(min_value=-8, max_value=8),
            st.integers(min_value=-8, max_value=8),
            st.integers(min_value=0, max_value=3),
        )
        for _ in range(4)
    ),
)


class TestMatrixProperties:
    @given(matrices2, matrices2)
    @settings(max_examples=60)
    def test_dagger_antihomomorphism(self, a, b):
        assert (a @ b).dagger() == b.dagger() @ a.dagger()

    @given(matrices2, matrices2, matrices2)
    @settings(max_examples=40)
    def test_matmul_associative(self, a, b, c):
        assert (a @ b) @ c == a @ (b @ c)

    @given(matrices2, matrices2)
    @settings(max_examples=40)
    def test_kron_mixed_product(self, a, b):
        i = Matrix.identity(2)
        assert a.kron(i) @ i.kron(b) == a.kron(b)

    @given(matrices2)
    @settings(max_examples=40)
    def test_double_dagger(self, a):
        assert a.dagger().dagger() == a
