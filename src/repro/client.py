"""Thin client for the ``repro serve`` synthesis service.

:class:`ServeClient` speaks the NDJSON IPC framing of
:mod:`repro.server.protocol` over one persistent socket: connect once,
then every query is a single JSON line each way.  Errors come back as
structured payloads and are re-raised as the *same*
:class:`~repro.errors.ReproError` subclasses the local
:class:`~repro.core.batch.BatchSynthesizer` would raise -- a
:class:`~repro.errors.CostBoundExceededError` from a server has a
byte-identical message to one from a local store, so CLI output and
``except`` clauses work unchanged against either backend.

:func:`http_request` is the HTTP sibling for one-shot calls (health
checks, curl-style tooling) and :func:`wait_until_ready` polls a
server's ``healthz`` until it accepts queries.

Example::

    from repro.client import ServeClient

    with ServeClient("127.0.0.1:7205") as client:
        print(client.healthz()["status"])
        record = client.synth("toffoli")["results"][0]
        results = client.synth_results("toffoli")  # verified SynthesisResult

Everything here is standard library only (socket + json).
"""

from __future__ import annotations

import json
import socket
import time

from repro.errors import ProtocolError, ServerError
from repro.server.protocol import (
    DEFAULT_PORT,
    MAX_BODY,
    error_to_exception,
    parse_address,
)

DEFAULT_TIMEOUT = 30.0


class ServeClient:
    """Persistent NDJSON connection to one ``repro serve`` instance.

    Args:
        address: ``host:port`` / ``:port`` / ``port`` (see
            :func:`repro.server.protocol.parse_address`).
        timeout: per-response socket timeout in seconds.

    The socket is opened lazily on the first call and can be reused for
    any number of requests; the client is a context manager.  One
    client is **not** thread-safe (requests share the socket) -- use
    one client per thread, the server multiplexes happily.
    """

    def __init__(self, address: str = "", timeout: float = DEFAULT_TIMEOUT):
        self._host, self._port = parse_address(address or str(DEFAULT_PORT))
        self._timeout = timeout
        self._sock: socket.socket | None = None
        self._file = None
        self._next_id = 0

    @property
    def address(self) -> str:
        return f"{self._host}:{self._port}"

    # -- connection lifecycle ----------------------------------------------------------

    def connect(self) -> "ServeClient":
        if self._sock is None:
            sock = socket.create_connection(
                (self._host, self._port), timeout=self._timeout
            )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
            self._file = sock.makefile("rwb")
        return self

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- transport ---------------------------------------------------------------------

    def call(self, op: str, **params) -> dict:
        """One request/response round trip; raises the mapped exception."""
        self.connect()
        assert self._file is not None
        self._next_id += 1
        request_id = self._next_id
        line = json.dumps(
            {"id": request_id, "op": op, "params": params},
            separators=(",", ":"),
        ).encode() + b"\n"
        try:
            self._file.write(line)
            self._file.flush()
            # Responses have no server-side size cap (MAX_BODY bounds
            # requests only -- a big batch legitimately returns more
            # than it asked with), so accumulate until the newline
            # instead of letting a capped readline() truncate mid-JSON.
            chunks = []
            while True:
                chunk = self._file.readline(MAX_BODY)
                chunks.append(chunk)
                if not chunk or chunk.endswith(b"\n"):
                    break
            reply = b"".join(chunks)
        except OSError as exc:
            self.close()
            raise ServerError(
                f"lost connection to {self.address}: {exc}"
            ) from None
        if not reply:
            self.close()
            raise ServerError(f"server {self.address} closed the connection")
        try:
            response = json.loads(reply)
        except ValueError:
            self.close()
            raise ProtocolError(
                f"server {self.address} sent a non-JSON response"
            ) from None
        if not isinstance(response, dict):
            raise ProtocolError("response must be a JSON object")
        if response.get("id") != request_id:
            self.close()
            raise ProtocolError(
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id}"
            )
        if response.get("ok"):
            result = response.get("result")
            if not isinstance(result, dict):
                raise ProtocolError("ok response carries no result object")
            return result
        raise error_to_exception(response.get("error") or {})

    # -- operations --------------------------------------------------------------------

    def healthz(self) -> dict:
        return self.call("healthz")

    def store_info(self) -> dict:
        return self.call("store-info")

    def synth(
        self,
        target: str,
        all: bool = False,
        allow_not: bool = True,
        cost_bound: int | None = None,
    ) -> dict:
        """Synthesize one target spec; returns the raw result payload."""
        params: dict = {"target": target, "all": all, "allow_not": allow_not}
        if cost_bound is not None:
            params["cost_bound"] = cost_bound
        return self.call("synth", **params)

    def synth_results(
        self,
        target: str,
        all: bool = False,
        allow_not: bool = True,
        cost_bound: int | None = None,
    ) -> list:
        """Like :meth:`synth`, rebuilt into verified ``SynthesisResult``s.

        Every record is re-verified locally
        (:func:`repro.io.result_from_dict` recomputes the circuit's
        permutation and compares), so a lying or corrupted server fails
        loudly instead of returning a wrong circuit.
        """
        from repro.io import result_from_dict

        payload = self.synth(
            target, all=all, allow_not=allow_not, cost_bound=cost_bound
        )
        return [result_from_dict(record) for record in payload["results"]]

    def synth_batch(
        self,
        targets: list,
        allow_not: bool = True,
        cost_bound: int | None = None,
    ) -> dict:
        """Submit many target specs as one coalesced server-side batch."""
        params: dict = {"targets": list(targets), "allow_not": allow_not}
        if cost_bound is not None:
            params["cost_bound"] = cost_bound
        return self.call("synth-batch", **params)

    def cost_table(
        self, cost_bound: int | None = None, include_members: bool = False
    ) -> dict:
        params: dict = {"include_members": include_members}
        if cost_bound is not None:
            params["cost_bound"] = cost_bound
        return self.call("cost-table", **params)


def http_request(
    address: str,
    path: str,
    method: str = "GET",
    body: dict | None = None,
    timeout: float = DEFAULT_TIMEOUT,
) -> tuple[int, dict]:
    """One-shot HTTP/1.1 request against a ``repro serve`` instance.

    Returns ``(status, decoded JSON body)``.  Raises
    :class:`ServerError` on connection failure and
    :class:`ProtocolError` on an unparseable response.
    """
    host, port = parse_address(address)
    payload = b""
    if body is not None:
        payload = json.dumps(body, separators=(",", ":")).encode()
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: {host}:{port}\r\n"
        "Connection: close\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "\r\n"
    ).encode("ascii")
    try:
        with socket.create_connection((host, port), timeout=timeout) as sock:
            sock.sendall(head + payload)
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
    except OSError as exc:
        raise ServerError(f"HTTP request to {host}:{port} failed: {exc}") from None
    raw = b"".join(chunks)
    header, sep, rest = raw.partition(b"\r\n\r\n")
    if not sep:
        raise ProtocolError("malformed HTTP response (no header terminator)")
    try:
        status = int(header.split(None, 2)[1])
        data = json.loads(rest) if rest.strip() else {}
    except (IndexError, ValueError):
        raise ProtocolError("malformed HTTP response") from None
    if not isinstance(data, dict):
        raise ProtocolError("HTTP response body must be a JSON object")
    return status, data


def wait_until_ready(
    address: str, timeout: float = 30.0, interval: float = 0.05
) -> dict:
    """Poll ``healthz`` until the server answers; returns the payload.

    Raises:
        ServerError: the server did not come up within *timeout*.
    """
    deadline = time.monotonic() + timeout
    last_error = "no attempt made"
    while time.monotonic() < deadline:
        try:
            with ServeClient(address, timeout=min(timeout, 5.0)) as client:
                health = client.healthz()
            if health.get("status") == "ok":
                return health
            last_error = f"status {health.get('status')!r}"
        except (OSError, ServerError, ProtocolError) as exc:
            last_error = str(exc)
        time.sleep(interval)
    raise ServerError(
        f"server {address} not ready after {timeout:.0f}s ({last_error})"
    )
