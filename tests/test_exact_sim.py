"""Unit tests for the exact simulator (repro.sim.exact)."""

import pytest

from repro.errors import InvalidValueError
from repro.core.circuit import Circuit
from repro.linalg.constants import pattern_state
from repro.mvl.patterns import Pattern
from repro.mvl.values import Qv
from repro.sim.exact import ExactSimulator


class TestRun:
    def test_cnot_on_basis_state(self):
        sim = ExactSimulator(2)
        out = sim.run(Circuit.from_names("F_BA", 2), Pattern([1, 0]))
        assert out == pattern_state(Pattern([1, 1]))

    def test_v_gate_produces_v0_state(self):
        sim = ExactSimulator(3)
        out = sim.run(Circuit.from_names("V_BA", 3), Pattern([1, 0, 0]))
        assert out == pattern_state(Pattern([1, Qv.V0, 0]))

    def test_agrees_with_pattern(self):
        sim = ExactSimulator(3)
        circuit = Circuit.from_names("V_CB F_BA V_CA V+_CB", 3)
        assert sim.agrees_with_pattern(
            circuit, Pattern([1, 1, 0]), Pattern([1, 0, 1])
        )
        assert not sim.agrees_with_pattern(
            circuit, Pattern([1, 1, 0]), Pattern([1, 1, 1])
        )

    def test_exactness_no_phase_slack(self):
        # V applied twice to |0> must be literally |1> (not e^{i phi}|1>).
        sim = ExactSimulator(2)
        circuit = Circuit.from_names("V_BA V_BA", 2)
        out = sim.run(circuit, Pattern([1, 0]))
        assert out == pattern_state(Pattern([1, 1]))

    def test_binary_action_covers_all_inputs(self):
        sim = ExactSimulator(2)
        states = sim.binary_action(Circuit.from_names("F_BA", 2))
        assert len(states) == 4
        assert states[0] == pattern_state(Pattern([0, 0]))
        assert states[2] == pattern_state(Pattern([1, 1]))

    def test_width_checks(self):
        sim = ExactSimulator(2)
        with pytest.raises(InvalidValueError):
            sim.run(Circuit.empty(3), Pattern([0, 0]))
        with pytest.raises(InvalidValueError):
            sim.run(Circuit.empty(2), Pattern([0, 0, 0]))

    def test_needs_positive_width(self):
        with pytest.raises(InvalidValueError):
            ExactSimulator(0)
