"""The quantum gate library: placed gates + permutations + banned masks.

For n = 3 this is exactly the paper's 18-gate library

    L_A = {V_BA, V_CA, V+_BA, V+_CA}   banned set N_A
    L_B = {V_AB, V_CB, V+_AB, V+_CB}   banned set N_B
    L_C = {V_AC, V_BC, V+_AC, V+_BC}   banned set N_C
    L_AB = {F_AB, F_BA}                banned set N_AB
    L_AC = {F_AC, F_CA}                banned set N_AC
    L_BC = {F_BC, F_CB}                banned set N_BC

Each library entry pre-computes the data the FMCF/MCE search needs per
gate-application: a 256-byte translation table (so cascade extension is
one ``bytes.translate`` call) and the banned-label bitmask implementing
Definition 1's *reasonable product* test.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations as _wire_pairs

from repro.errors import InvalidGateError
from repro.gates.gate import Gate, wire_letter
from repro.gates.kinds import GateKind
from repro.mvl.labels import LabelSpace, label_space
from repro.perm.permutation import Permutation


@dataclass(frozen=True)
class LibraryGate:
    """A gate bundled with its search-time data.

    Attributes:
        index: position in the library (stable identifier for search).
        gate: the placed gate.
        permutation: its action on the library's label space.
        banned_mask: bitmask of labels forbidden as images of the binary
            inputs when this gate is appended (Definition 1).
        cost: quantum cost of the gate (paper convention: 1).
    """

    index: int
    gate: Gate
    permutation: Permutation
    banned_mask: int
    cost: int

    @property
    def name(self) -> str:
        return self.gate.name

    @property
    def table(self) -> bytes:
        """The 256-byte translate table of the permutation."""
        return self.permutation.table()

    def __str__(self) -> str:
        return self.name


class GateLibrary:
    """All placements of the 2-qubit gate alphabet on an n-qubit register.

    Args:
        n_qubits: register width (the paper studies 3; 2 and 4 also work).
        space: label space to represent gates on; defaults to the reduced
            space of Section 3.
        kinds: which 2-qubit kinds to include (default: V, V+, CNOT).

    The NOT gate is deliberately *not* part of the library: following the
    paper, NOT layers are free and are handled algebraically by Theorem 2
    rather than searched over.
    """

    def __init__(
        self,
        n_qubits: int = 3,
        space: LabelSpace | None = None,
        kinds: tuple[GateKind, ...] = (GateKind.V, GateKind.VDAG, GateKind.CNOT),
    ):
        if space is None:
            space = label_space(n_qubits, reduced=True)
        if space.n_qubits != n_qubits:
            raise InvalidGateError(
                f"space has {space.n_qubits} qubits, expected {n_qubits}"
            )
        if any(not kind.is_two_qubit for kind in kinds):
            raise InvalidGateError("the searchable library holds 2-qubit gates only")
        self._space = space
        self._n_qubits = n_qubits
        self._family = "paper"
        entries: list[LibraryGate] = []
        for target, control in _wire_pairs(range(n_qubits), 2):
            for kind in kinds:
                gate = Gate(kind, target, control, n_qubits)
                entries.append(
                    LibraryGate(
                        index=len(entries),
                        gate=gate,
                        permutation=gate.permutation(space),
                        banned_mask=space.banned_mask(gate.constrained_wires),
                        cost=kind.default_cost,
                    )
                )
        self._gates = tuple(entries)
        self._by_name = {entry.name: entry for entry in entries}

    @classmethod
    def from_gates(cls, gates, space: LabelSpace, family: str) -> "GateLibrary":
        """Build a library from pre-placed gates (any radix, any family).

        The radix-generic constructor: *gates* are placed gate objects
        duck-typing the :class:`~repro.gates.gate.Gate` surface (``name``,
        ``kind``, ``n_qubits``, ``permutation(space)``, ``dagger()``,
        ``constrained_wires``).  Entry order is search order and therefore
        pinned by the golden tables of the family; *family* identifies the
        builder for store round-trips (``"paper"`` is the binary default,
        ``"ternary-diwei"`` / ``"quaternary-ms"`` the MV libraries).
        """
        library = cls.__new__(cls)
        library._space = space
        library._n_qubits = space.n_qubits
        library._family = family
        entries: list[LibraryGate] = []
        for gate in gates:
            if gate.n_qubits != space.n_qubits:
                raise InvalidGateError(
                    f"gate {gate.name} spans {gate.n_qubits} wires, "
                    f"space has {space.n_qubits}"
                )
            entries.append(
                LibraryGate(
                    index=len(entries),
                    gate=gate,
                    permutation=gate.permutation(space),
                    banned_mask=space.banned_mask(gate.constrained_wires),
                    cost=gate.kind.default_cost,
                )
            )
        library._gates = tuple(entries)
        library._by_name = {entry.name: entry for entry in entries}
        return library

    # -- access ------------------------------------------------------------------

    @property
    def family(self) -> str:
        """Builder family: ``"paper"`` or an MV library identifier."""
        return getattr(self, "_family", "paper")

    @property
    def space(self) -> LabelSpace:
        """The label space all permutations act on."""
        return self._space

    @property
    def n_qubits(self) -> int:
        return self._n_qubits

    @property
    def gates(self) -> tuple[LibraryGate, ...]:
        """All library entries, in index order."""
        return self._gates

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self):
        return iter(self._gates)

    def __getitem__(self, index: int) -> LibraryGate:
        return self._gates[index]

    def by_name(self, name: str) -> LibraryGate:
        """Look up ``V_BA`` / ``V+_AB`` / ``F_CA`` style names."""
        try:
            return self._by_name[name]
        except KeyError:
            raise InvalidGateError(
                f"gate {name!r} is not in the library "
                f"({', '.join(sorted(self._by_name))})"
            ) from None

    def entry_for(self, gate: Gate) -> LibraryGate:
        """The library entry wrapping an equal placed gate."""
        return self.by_name(gate.name)

    def adjoint_entry(self, entry: LibraryGate) -> LibraryGate:
        """The entry of the Hermitian-adjoint gate."""
        return self.entry_for(entry.gate.dagger())

    # -- the paper's sub-libraries ---------------------------------------------------

    def controlled_sublibrary(self, control: int) -> tuple[LibraryGate, ...]:
        """L_control: all V/V+ gates with the given control wire."""
        return tuple(
            e
            for e in self._gates
            if e.gate.kind.is_controlled and e.gate.control == control
        )

    def feynman_sublibrary(self, wire_a: int, wire_b: int) -> tuple[LibraryGate, ...]:
        """L_{ab}: the two Feynman gates on an unordered wire pair."""
        wires = {wire_a, wire_b}
        return tuple(
            e
            for e in self._gates
            if e.gate.kind is GateKind.CNOT
            and {e.gate.target, e.gate.control} == wires
        )

    def sublibrary_names(self) -> dict[str, tuple[str, ...]]:
        """Paper-style table: sub-library label -> gate names.

        For n = 3 reproduces exactly the L_A .. L_BC sets of Section 3.
        """
        table: dict[str, tuple[str, ...]] = {}
        for control in range(self._n_qubits):
            table[f"L_{wire_letter(control)}"] = tuple(
                e.name for e in self.controlled_sublibrary(control)
            )
        for a in range(self._n_qubits):
            for b in range(a + 1, self._n_qubits):
                key = f"L_{wire_letter(a)}{wire_letter(b)}"
                table[key] = tuple(e.name for e in self.feynman_sublibrary(a, b))
        return table

    def banned_sets_paper(self) -> dict[str, tuple[int, ...]]:
        """The banned sets as 1-based label tuples (N_A, ..., N_BC)."""
        out: dict[str, tuple[int, ...]] = {}
        for wire in range(self._n_qubits):
            out[f"N_{wire_letter(wire)}"] = self._space.banned_labels([wire])
        for a in range(self._n_qubits):
            for b in range(a + 1, self._n_qubits):
                key = f"N_{wire_letter(a)}{wire_letter(b)}"
                out[key] = self._space.banned_labels([a, b])
        return out

    # -- search-facing views -----------------------------------------------------------

    def search_rows(self) -> tuple[tuple[bytes, int, int], ...]:
        """Per-gate ``(translate_table, banned_mask, cost)`` rows.

        This is the hot-path view consumed by the cascade search; it
        avoids touching Python objects inside the BFS inner loop.
        """
        return tuple(
            (entry.table, entry.banned_mask, entry.cost) for entry in self._gates
        )

    def circuit_permutation(self, gates) -> Permutation:
        """Product of library gates in cascade order (apply first to last)."""
        perm = Permutation.identity(self._space.size)
        for entry in gates:
            perm = perm * entry.permutation
        return perm

    def __repr__(self) -> str:
        return (
            f"GateLibrary(n_qubits={self._n_qubits}, "
            f"n_gates={len(self._gates)}, space={self._space!r})"
        )
