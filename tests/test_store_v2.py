"""Unit tests for store format v2: memmap layout, index, migration.

Complements tests/test_store.py (which exercises the format-agnostic
API against the current default format): this module pins the
v2-specific guarantees -- lazy memory-mapped opens, the serialized
remainder index, v1 -> v2 migration equivalence, and rejection of
truncated/corrupted/unknown-version files.
"""

import numpy as np
import pytest

from repro.errors import StoreError, StoreVersionError
from repro.core.batch import BatchSynthesizer, build_remainder_index
from repro.core.search import CascadeSearch
from repro.core.store import (
    MAGIC_V1,
    MAGIC_V2,
    dump_search,
    load_search,
    loads_search,
    migrate_store,
    open_store,
    read_header,
    save_search,
    verify_store,
)
from repro.gates import named


@pytest.fixture(scope="module")
def search5(library3):
    search = CascadeSearch(library3, track_parents=True)
    search.extend_to(5)
    return search


@pytest.fixture(scope="module")
def v2_path(search5, tmp_path_factory):
    path = tmp_path_factory.mktemp("store") / "closure.rpro"
    save_search(search5, path)
    return path


@pytest.fixture(scope="module")
def v1_path(search5, tmp_path_factory):
    path = tmp_path_factory.mktemp("store") / "closure_v1.rpro"
    save_search(search5, path, format_version=1)
    return path


class TestFormatFraming:
    def test_default_format_is_v2(self, search5):
        assert dump_search(search5)[:8] == MAGIC_V2

    def test_v1_still_writable(self, search5):
        assert dump_search(search5, format_version=1)[:8] == MAGIC_V1

    def test_unknown_write_version_refused(self, search5):
        with pytest.raises(StoreVersionError):
            dump_search(search5, format_version=99)

    def test_header_describes_v2_layout(self, v2_path, search5):
        header = read_header(v2_path)
        assert header.format_version == 2
        assert header.mask_words == 1
        assert header.level_row_offsets == (0, 1, 19, 181, 1198, 6562, 32323)
        for name in ("perms", "masks", "parents", "gates",
                     "rkeys", "rcosts", "rindptr", "rmatches"):
            assert name in header.sections
        # Sections are 8-byte aligned for safe memmap views.
        for offset, _length in header.sections.values():
            assert offset % 8 == 0
        assert header.index_entries > 0
        assert header.index_matches >= header.index_entries

    def test_payload_starts_aligned(self, search5):
        data = dump_search(search5)
        hlen = int.from_bytes(data[8:12], "little")
        assert (12 + hlen) % 8 == 0

    def test_atomic_save_leaves_no_temp_file(self, search5, tmp_path):
        path = tmp_path / "closure.rpro"
        save_search(search5, path)
        assert path.exists()
        assert not (tmp_path / "closure.rpro.tmp").exists()


class TestLazyOpen:
    def test_open_attaches_serialized_index(self, v2_path):
        _header, _library, search = open_store(v2_path)
        attached = search.attached_remainder_index
        assert attached is not None
        bound, index = attached
        assert bound == 5
        assert len(index) > 0

    def test_batch_does_no_closure_scan(self, v2_path, monkeypatch):
        """BatchSynthesizer must serve purely from the attached index."""
        import repro.core.batch as batch_module

        _header, _library, search = open_store(v2_path)

        def boom(*args, **kwargs):  # pragma: no cover - should not run
            raise AssertionError("closure scan on a v2-attached search")

        monkeypatch.setattr(batch_module, "build_remainder_index", boom)
        batch = BatchSynthesizer(search)
        assert batch.cost_bound == 5
        assert batch.synthesize(named.TARGETS["peres"]).cost == 4

    def test_attached_index_matches_scan(self, v2_path, search5):
        _header, _library, loaded = open_store(v2_path)
        _bound, attached = loaded.attached_remainder_index
        scanned = build_remainder_index(search5, 5)
        assert list(attached.keys()) == list(scanned.keys())
        for remainder, (cost, rows) in scanned.items():
            a_cost, a_rows = attached[remainder]
            assert a_cost == cost
            assert [int(r) for r in a_rows] == rows

    def test_lower_bound_filters_attached_index(self, v2_path, search5):
        _header, _library, loaded = open_store(v2_path)
        batch = BatchSynthesizer(loaded, cost_bound=3)
        reference = BatchSynthesizer(search5, cost_bound=3)
        assert len(batch) == len(reference)
        assert batch.cost_table().g_sizes == reference.cost_table().g_sizes
        with pytest.raises(Exception):
            batch.synthesize(named.TARGETS["toffoli"])  # cost 5 > 3

    def test_query_results_equal_live_search(self, v2_path, search5):
        _header, _library, loaded = open_store(v2_path)
        batch = BatchSynthesizer(loaded)
        live = BatchSynthesizer(search5, cost_bound=5)
        for name in ("cnot_ba", "swap_ab", "peres", "toffoli"):
            ours = batch.synthesize_all(named.TARGETS[name])
            theirs = live.synthesize_all(named.TARGETS[name])
            assert [r.circuit.names() for r in ours] == [
                r.circuit.names() for r in theirs
            ]

    def test_levels_readable_without_engine(self, v2_path, search5):
        """level() on a lazy search touches only that level's rows."""
        _header, _library, loaded = open_store(v2_path)
        assert loaded.level(2) == search5.level(2)
        assert loaded.level_size(5) == search5.level_size(5)

    def test_extend_after_lazy_load_matches_fresh(self, v2_path, library3):
        _header, _library, loaded = open_store(v2_path)
        loaded.extend_to(6)
        fresh = CascadeSearch(library3, track_parents=True)
        fresh.extend_to(6)
        assert loaded.stats().level_sizes == fresh.stats().level_sizes
        assert sorted(p for p, _m in loaded.level(6)) == sorted(
            p for p, _m in fresh.level(6)
        )

    def test_was_restored_controls_default_bound(self, library3):
        zero = CascadeSearch(library3, track_parents=True)
        state = zero.export_state()
        restored = CascadeSearch.from_state(library3, state)
        assert restored.was_restored
        # A deliberately level-0 restored closure must not silently
        # re-expand to the paper's default bound.
        assert BatchSynthesizer(restored).cost_bound == 0
        assert restored.expanded_to == 0


class TestMigration:
    def test_migrate_v1_to_v2(self, v1_path, tmp_path, library3):
        dst = tmp_path / "migrated.rpro"
        old, new = migrate_store(v1_path, dst)
        assert (old.format_version, new.format_version) == (1, 2)
        assert old.library_fingerprint == new.library_fingerprint
        assert old.cost_fingerprint == new.cost_fingerprint
        assert old.level_sizes == new.level_sizes
        assert dst.read_bytes()[:8] == MAGIC_V2

    def test_migrated_store_serves_identical_results(
        self, v1_path, tmp_path, library3
    ):
        dst = tmp_path / "migrated.rpro"
        migrate_store(v1_path, dst)
        from_v1 = BatchSynthesizer(load_search(v1_path, library3))
        from_v2 = BatchSynthesizer(load_search(dst, library3))
        assert from_v1.cost_table().g_sizes == from_v2.cost_table().g_sizes
        for name in ("peres", "toffoli", "swap_bc"):
            a = from_v1.synthesize_all(named.TARGETS[name])
            b = from_v2.synthesize_all(named.TARGETS[name])
            assert [r.circuit.names() for r in a] == [
                r.circuit.names() for r in b
            ]

    def test_migrate_is_idempotent_on_v2(self, v2_path, tmp_path):
        dst = tmp_path / "again.rpro"
        old, new = migrate_store(v2_path, dst)
        assert old.format_version == new.format_version == 2
        assert old.level_sizes == new.level_sizes


class TestCorruption:
    def test_truncated_file_rejected_on_open(self, v2_path, tmp_path):
        clipped = tmp_path / "short.rpro"
        clipped.write_bytes(v2_path.read_bytes()[:-64])
        with pytest.raises(StoreError, match="truncated|bytes"):
            load_search(clipped, open_store(v2_path)[1])

    def test_truncated_bytes_rejected(self, search5, library3):
        data = dump_search(search5)
        with pytest.raises(StoreError):
            loads_search(data[:-10], library3)

    def test_flipped_byte_fails_eager_checksum(self, search5, library3):
        data = bytearray(dump_search(search5))
        data[-3] ^= 0xFF
        with pytest.raises(StoreError, match="sha256"):
            loads_search(bytes(data), library3)

    def test_flipped_byte_fails_verify_store(self, v2_path, tmp_path):
        data = bytearray(v2_path.read_bytes())
        data[-3] ^= 0xFF
        bad = tmp_path / "bad.rpro"
        bad.write_bytes(bytes(data))
        with pytest.raises(StoreError, match="sha256"):
            verify_store(bad)

    def test_verify_store_accepts_both_formats(self, v1_path, v2_path):
        assert verify_store(v1_path).format_version == 1
        assert verify_store(v2_path).format_version == 2

    def test_verify_store_rejects_non_decreasing_parents(
        self, search5, tmp_path
    ):
        """Doctored parents with a recomputed checksum still fail verify."""
        import hashlib
        import json

        data = bytearray(dump_search(search5))
        hlen = int.from_bytes(data[8:12], "little")
        header = json.loads(data[12 : 12 + hlen])
        off, length = header["sections"]["parents"]
        start = 12 + hlen
        parents = np.frombuffer(
            bytes(data[start + off : start + off + length]), dtype="<i4"
        ).copy()
        parents[50] = 40  # rows 19..180 are level 2: same-level parent
        data[start + off : start + off + length] = parents.tobytes()
        header["payload_sha256"] = hashlib.sha256(
            bytes(data[start:])
        ).hexdigest()
        blob = json.dumps(header, separators=(",", ":")).encode()
        blob += b" " * ((-(12 + len(blob))) % 8)
        bad = tmp_path / "bad-parents.rpro"
        bad.write_bytes(
            bytes(data[:8])
            + len(blob).to_bytes(4, "little")
            + blob
            + bytes(data[start:])
        )
        with pytest.raises(StoreError, match="decrease cost"):
            verify_store(bad)

    def test_unknown_magic_version_rejected(self, v2_path, tmp_path):
        data = bytearray(v2_path.read_bytes())
        data[7] = 9
        bad = tmp_path / "future.rpro"
        bad.write_bytes(bytes(data))
        with pytest.raises(StoreVersionError):
            read_header(bad)

    def test_magic_header_version_mismatch_rejected(self, search5, library3):
        data = dump_search(search5)
        doctored = MAGIC_V1 + data[8:]
        with pytest.raises(StoreError):
            loads_search(doctored, library3)

    def test_doctored_section_size_rejected(self, search5, library3):
        import json

        data = dump_search(search5)
        hlen = int.from_bytes(data[8:12], "little")
        header = json.loads(data[12 : 12 + hlen])
        header["sections"]["perms"][1] -= 38
        blob = json.dumps(header, separators=(",", ":")).encode()
        pad = (-(12 + len(blob))) % 8
        blob += b" " * pad
        doctored = (
            MAGIC_V2 + len(blob).to_bytes(4, "little") + blob + data[12 + hlen :]
        )
        with pytest.raises(StoreError, match="section|payload"):
            loads_search(doctored, library3)


class TestParentlessV2:
    def test_counting_only_roundtrip(self, library3):
        search = CascadeSearch(library3, track_parents=False)
        search.extend_to(3)
        loaded = loads_search(dump_search(search), library3)
        assert not loaded.tracks_parents
        assert loaded.stats().level_sizes == search.stats().level_sizes
        batch = BatchSynthesizer(loaded)
        assert batch.minimal_cost(named.TARGETS["cnot_ba"]) == 1
        header = read_header_bytes(dump_search(search))
        assert "parents" not in header.sections


def read_header_bytes(data: bytes):
    """Parse a header from in-memory store bytes (test helper)."""
    import json

    from repro.core.store import _header_from_dict

    hlen = int.from_bytes(data[8:12], "little")
    return _header_from_dict(json.loads(data[12 : 12 + hlen]))


class TestMemmapViews:
    def test_arrays_are_views_not_copies(self, v2_path):
        """The loaded arrays must be memmap-backed, not eager copies."""
        import mmap

        _header, _library, search = open_store(v2_path)
        arrays = search.export_arrays()
        base = arrays.perms
        while isinstance(base, np.ndarray) and base.base is not None:
            if isinstance(base, np.memmap):
                break
            base = base.base
        assert isinstance(base, (np.memmap, mmap.mmap))

    def test_row_accessors_against_live(self, v2_path, search5):
        _header, _library, loaded = open_store(v2_path)
        for row in (0, 1, 100, 6561):
            assert loaded.perm_bytes_at(row) == search5.perm_bytes_at(row)
            assert loaded.cost_of_row(row) == search5.cost_of_row(row)
        for row in (5, 500, 20000):
            assert loaded.witness_indices_for_row(
                row
            ) == search5.witness_indices_for_row(row)


class TestStreamedWriter:
    """save_search streams v2 sections; output must be byte-identical
    to the in-memory dump_search serialization."""

    def test_streamed_bytes_equal_dump(self, search5, tmp_path):
        path = tmp_path / "streamed.rpro"
        header = save_search(search5, path)
        assert path.read_bytes() == dump_search(search5)
        assert header.payload_sha256 != "0" * 64
        verify_store(path)

    def test_streamed_counting_only(self, library3, tmp_path):
        search = CascadeSearch(library3, track_parents=False)
        search.extend_to(3)
        path = tmp_path / "counting.rpro"
        save_search(search, path)
        assert path.read_bytes() == dump_search(search)
        verify_store(path)

    def test_streamed_parallel_kernel_roundtrip(self, library3, tmp_path):
        search = CascadeSearch(library3, kernel="parallel")
        search.extend_to(4)
        path = tmp_path / "parallel.rpro"
        written = save_search(search, path)
        assert written.shards["shard_bits"] == 6
        assert sum(written.shards["rows_per_shard"]) == search.total_seen()
        header = read_header(path)
        assert header.shards == written.shards
        verify_store(path)
        # vector-built store of the same closure differs only in the
        # shards provenance + timings, and serves identical results
        _h, _l, loaded = open_store(path)
        assert loaded.stats().level_sizes == search.stats().level_sizes
        search.close()

    def test_vector_store_has_no_shard_metadata(self, v2_path):
        assert read_header(v2_path).shards == {}


class TestIndexVerificationCache:
    """Repeated opens of one unchanged file skip re-hashing the index
    sections; any rewrite (new identity) re-verifies."""

    def test_second_open_skips_index_hashing(
        self, search5, tmp_path, monkeypatch
    ):
        import hashlib as real_hashlib

        import repro.core.store as store_module

        path = tmp_path / "cached.rpro"
        save_search(search5, path)
        store_module._INDEX_VERIFIED.clear()
        calls = []
        real = real_hashlib.sha256

        def counting(*args):
            calls.append(1)
            return real(*args)

        monkeypatch.setattr(store_module.hashlib, "sha256", counting)
        open_store(path)
        first = len(calls)
        open_store(path)
        second = len(calls) - first
        # the four r* section digests are skipped on the second open
        assert first - second == 4

    def test_rewrite_invalidates_cache(self, search5, tmp_path, monkeypatch):
        import repro.core.store as store_module

        path = tmp_path / "rewrite.rpro"
        save_search(search5, path)
        store_module._INDEX_VERIFIED.clear()
        open_store(path)
        assert len(store_module._INDEX_VERIFIED) == 1
        key = next(iter(store_module._INDEX_VERIFIED))
        save_search(search5, path)  # same bytes, new inode/mtime
        open_store(path)
        new_keys = set(store_module._INDEX_VERIFIED) - {key}
        assert new_keys, (
            "rewriting the file must change its identity: the old cache "
            "entry cannot cover the new inode/mtime"
        )
        # a corrupted index section still fails loudly after caching
        data = bytearray(path.read_bytes())
        header = read_header(path)
        rkeys_offset, rkeys_len = header.sections["rkeys"]
        start = len(data) - header.payload_size + rkeys_offset
        data[start] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(StoreError, match="sha256"):
            open_store(path)

    def test_cache_is_bounded(self, search5, tmp_path):
        import repro.core.store as store_module

        path = tmp_path / "bound.rpro"
        save_search(search5, path)
        store_module._INDEX_VERIFIED.clear()
        for i in range(store_module._INDEX_VERIFIED_MAX + 8):
            store_module._INDEX_VERIFIED[("fake", i)] = {}
        open_store(path)
        assert (
            len(store_module._INDEX_VERIFIED)
            <= store_module._INDEX_VERIFIED_MAX
        )
