"""Trace replay: re-drive a recorded access log against a live server.

``repro serve --access-log`` writes one NDJSON record per request; for
store queries the record carries the request ``params`` (see
``repro.server.service``), which makes the log a *trace* -- op mix,
store selectors, inter-arrival timestamps and the outcome every
request originally got.  :func:`replay` re-issues that trace, in
order, over one persistent connection against any live server or
fleet front, and reports two kinds of drift:

* **outcome drift** -- the replayed request's structured outcome code
  differs from the recorded one.  ``FLEET_OVERLOADED`` on either side
  is tallied separately as ``shed_drift`` rather than a mismatch:
  shedding is a load condition, not a property of the request, so a
  replay under different load legitimately sheds differently.  All
  other codes are deterministic functions of (request, store) and any
  difference is a real regression.
* **result-byte drift** -- for requests that succeeded both times, the
  replayed result is serialized (compact JSON, the wire's own form)
  and compared byte-for-byte against :func:`~repro.server.service
  .execute_query` over a locally opened **golden store**.  Zero diffs
  is the correctness bar: the serving stack returns exactly what the
  store contains, byte-identical, request for request.

The determinism contract, precisely: outcome codes and result bytes
are pure functions of ``(op, params, resolved store)``; queue waits,
latencies and shed decisions are not replayed, they are re-measured.

Records that predate params-bearing logs are counted in
``skipped_no_params`` instead of failing the replay, and a truncated
final line anywhere in the rotated set (crash mid-write or
mid-rotation) is tolerated and surfaced via ``tail`` -- both courtesy
of :func:`repro.io.load_access_log`'s lenient mode.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.client import DEFAULT_TIMEOUT, ServeClient
from repro.errors import ReproError, SpecificationError
from repro.io import load_access_log
from repro.server.protocol import OPERATIONS, error_payload
from repro.server.service import StoreState, execute_query, open_store_state

#: Ops whose results are byte-diffed against a golden store.
QUERY_OPS = frozenset({"synth", "synth-batch", "cost-table"})

#: Cap on per-item detail kept in the report (counts are never capped).
MAX_DETAIL = 20

_SHED = "FLEET_OVERLOADED"


def load_trace(
    path: str | Path, rotated: bool = True, strict: bool = False
):
    """Read an access log as a replayable trace: ``(records, tail)``.

    With ``rotated=True`` (default) the whole rotated set is read in
    arrival order.  ``tail`` is None for a clean set, else the
    truncation info :func:`repro.io.load_access_log` surfaces; under
    ``strict=True`` any malformed line raises instead.
    """
    if strict:
        return load_access_log(path, strict=True, rotated=rotated), None
    return load_access_log(path, strict=False, rotated=rotated)


def parse_golden_specs(
    specs: list[str] | None,
) -> tuple[dict[str, StoreState], StoreState | None]:
    """``[ALIAS=]PATH`` golden-store args -> ``(by_alias, default)``.

    A bare ``PATH`` becomes the default golden, used for any record
    whose store alias has no explicit entry (the single-store case).
    """
    by_alias: dict[str, StoreState] = {}
    default: StoreState | None = None
    for spec in specs or []:
        alias, sep, path = spec.partition("=")
        if sep and alias and not any(ch in alias for ch in "/\\."):
            by_alias[alias] = open_store_state(path)
        else:
            if default is not None:
                raise SpecificationError(
                    "only one default (alias-less) --golden store makes "
                    "sense; name the others ALIAS=PATH"
                )
            default = open_store_state(spec)
    return by_alias, default


def _result_bytes(result: dict) -> bytes:
    return json.dumps(result, separators=(",", ":")).encode()


def replay(
    records: list[dict],
    address: str,
    goldens: dict[str, StoreState] | None = None,
    default_golden: StoreState | None = None,
    timing: bool = False,
    speed: float = 1.0,
    retries: int = 0,
    timeout: float = DEFAULT_TIMEOUT,
    limit: int | None = None,
) -> dict:
    """Re-drive *records* against *address*; returns the drift report.

    With ``timing=True`` the recorded ``ts`` deltas pace the replay
    (divided by *speed*); otherwise records are re-issued back to
    back.  See the module doc for what counts as drift.
    """
    if speed <= 0:
        raise SpecificationError("replay speed must be > 0")
    goldens = goldens or {}
    report = {
        "replayed": 0,
        "ok": 0,
        "errors": 0,
        "outcome_mismatches": 0,
        "shed_drift": 0,
        "result_byte_diffs": 0,
        "byte_checked": 0,
        "skipped_no_params": 0,
        "skipped_unknown_op": 0,
        "mismatch_detail": [],
        "diff_detail": [],
    }
    previous_ts: float | None = None
    with ServeClient(address, timeout=timeout, retries=retries) as client:
        for index, record in enumerate(records):
            if limit is not None and report["replayed"] >= limit:
                break
            op = record.get("op")
            if op not in OPERATIONS:
                report["skipped_unknown_op"] += 1
                continue
            params = record.get("params")
            if params is None:
                if op in QUERY_OPS:
                    # Pre-replay log format: nothing to re-issue.
                    report["skipped_no_params"] += 1
                    continue
                params = {}
            if not isinstance(params, dict):
                report["skipped_no_params"] += 1
                continue
            ts = record.get("ts")
            if timing and isinstance(ts, (int, float)):
                if previous_ts is not None and ts > previous_ts:
                    time.sleep((ts - previous_ts) / speed)
                previous_ts = ts
            store = record.get("store")
            clean = {
                key: value for key, value in params.items()
                if key not in ("op", "store")
            }
            try:
                result = client.call(op, store=store, **clean)
                outcome = "ok"
            except ReproError as exc:
                result = None
                outcome = error_payload(exc)[0]["code"]
            report["replayed"] += 1
            if outcome == "ok":
                report["ok"] += 1
            else:
                report["errors"] += 1

            logged = record.get("outcome", "ok")
            if outcome != logged:
                if _SHED in (outcome, logged):
                    report["shed_drift"] += 1
                else:
                    report["outcome_mismatches"] += 1
                    if len(report["mismatch_detail"]) < MAX_DETAIL:
                        report["mismatch_detail"].append({
                            "index": index, "op": op, "store": store,
                            "logged": logged, "replayed": outcome,
                        })
                continue

            if outcome != "ok" or op not in QUERY_OPS or result is None:
                continue
            golden = goldens.get(store) if store is not None else None
            if golden is None:
                golden = default_golden
            if golden is None:
                continue
            report["byte_checked"] += 1
            try:
                expected = execute_query(golden, op, clean)
            except ReproError:
                # The golden store refuses what the server answered --
                # a diff by definition (wrong golden, or a regression).
                expected = None
            if expected is None or (
                    _result_bytes(result) != _result_bytes(expected)):
                report["result_byte_diffs"] += 1
                if len(report["diff_detail"]) < MAX_DETAIL:
                    report["diff_detail"].append({
                        "index": index, "op": op, "store": store,
                    })
    report["clean"] = (
        report["outcome_mismatches"] == 0
        and report["result_byte_diffs"] == 0
    )
    return report
