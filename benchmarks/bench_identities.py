"""A4 (analysis) -- identity structure and circuit depth.

Two analyses that explain observations elsewhere in the reproduction:

* the commutation catalog of the 18-gate library, whose six commuting
  Feynman pairs are mechanically the |G[2]| = 24-vs-30 deviation of
  Table 2;
* ASAP depth of the paper's minimal circuits -- all fully sequential, so
  for this library minimal cost equals minimal depth-cost on 3 qubits
  (every consecutive gate pair shares a wire); parallelism only appears
  from 4 qubits up.
"""

from repro.core.circuit import Circuit
from repro.core.identities import (
    cnot_emulations,
    commuting_feynman_pairs,
    identity_catalog,
    verify_adjoint_closure,
)
from repro.core.mce import express_all
from repro.core.schedule import asap_schedule, depth, is_fully_sequential
from repro.gates import named


def test_identity_catalog(benchmark, library3):
    catalog = benchmark(lambda: identity_catalog(library3))
    assert len(catalog["commute"]) == 48
    assert len(catalog["inverse"]) == 12
    assert len(catalog["cnot-emulation"]) == 12
    feynman = commuting_feynman_pairs(library3)
    assert len(feynman) == 6  # == the Table 2 k=2 deviation
    print("\ncommuting Feynman pairs (the |G[2]| collisions):")
    for identity in feynman:
        print(f"  {identity.left} . {identity.right} = "
              f"{identity.right} . {identity.left}")


def test_adjoint_closure(benchmark, library3):
    assert benchmark(lambda: verify_adjoint_closure(library3))


def test_depth_of_minimal_implementations(benchmark, library3, shared_search):
    def analyze():
        out = {}
        for name in ("peres", "toffoli", "fredkin"):
            results = express_all(
                named.TARGETS[name], library3, search=shared_search,
            )
            out[name] = [
                (depth(r.circuit), is_fully_sequential(r.circuit))
                for r in results
            ]
        return out

    analysis = benchmark.pedantic(analyze, rounds=3, iterations=1)
    # All minimal 3-qubit implementations are fully sequential.
    for name, rows in analysis.items():
        for d, sequential in rows:
            assert sequential, name
    assert all(d == 4 for d, _ in analysis["peres"])
    assert all(d == 5 for d, _ in analysis["toffoli"])
    print("\ndepths:", {k: [d for d, _ in v] for k, v in analysis.items()})


def test_four_qubit_parallelism(benchmark):
    """On 4 wires, disjoint gates do share layers."""
    circuit = Circuit.from_names("F_BA F_DC V_BA V_DC F_CA", 4)

    schedule = benchmark(lambda: asap_schedule(circuit))
    assert schedule.depth == 3
    assert schedule.width == 2
