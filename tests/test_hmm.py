"""Unit tests for quantum HMMs (repro.automata.hmm)."""

import random
from fractions import Fraction

import pytest

from repro.errors import SpecificationError
from repro.automata.hmm import QuantumHMM
from repro.automata.machine import QuantumStateMachine
from repro.core.circuit import Circuit

HALF = Fraction(1, 2)


@pytest.fixture
def coin_hmm():
    """Input randomizes the hidden state; the input wire is the output."""
    machine = QuantumStateMachine(
        Circuit.from_names("V_BA", 2), input_wires=(0,), state_wires=(1,)
    )
    return QuantumHMM(machine)


class TestConstruction:
    def test_default_initial_distribution_is_point_mass(self, coin_hmm):
        assert coin_hmm.initial_distribution == (Fraction(1), Fraction(0))

    def test_custom_initial_distribution(self):
        machine = QuantumStateMachine(
            Circuit.from_names("V_BA", 2), input_wires=(0,), state_wires=(1,)
        )
        hmm = QuantumHMM(machine, initial_distribution=(HALF, HALF))
        assert hmm.initial_distribution == (HALF, HALF)

    def test_bad_initial_distribution(self):
        machine = QuantumStateMachine(
            Circuit.from_names("V_BA", 2), input_wires=(0,), state_wires=(1,)
        )
        with pytest.raises(SpecificationError):
            QuantumHMM(machine, initial_distribution=(HALF, HALF, HALF))
        with pytest.raises(SpecificationError):
            QuantumHMM(machine, initial_distribution=(Fraction(2), Fraction(-1)))

    def test_n_states(self, coin_hmm):
        assert coin_hmm.n_states == 2


class TestKernel:
    def test_kernel_probabilities(self, coin_hmm):
        kernel = coin_hmm.kernel((1,), 0)
        assert kernel == {((1,), 0): HALF, ((1,), 1): HALF}

    def test_kernel_deterministic_branch(self, coin_hmm):
        kernel = coin_hmm.kernel((0,), 1)
        assert kernel == {((0,), 1): Fraction(1)}


class TestForward:
    def test_certain_observation_sequence(self, coin_hmm):
        # With input 1, the output wire always reads 1.
        likelihood, posterior = coin_hmm.forward(
            [(1,), (1,)], inputs=[(1,), (1,)]
        )
        assert likelihood == 1
        assert posterior == (HALF, HALF)

    def test_impossible_observation(self, coin_hmm):
        likelihood, posterior = coin_hmm.forward([(0,)], inputs=[(1,)])
        assert likelihood == 0
        assert posterior == (Fraction(0), Fraction(0))

    def test_sequence_probability_wrapper(self, coin_hmm):
        assert coin_hmm.sequence_probability([(1,)], inputs=[(1,)]) == 1

    def test_input_length_mismatch(self, coin_hmm):
        with pytest.raises(SpecificationError):
            coin_hmm.forward([(1,)], inputs=[(1,), (0,)])

    def test_inputs_required_when_machine_has_input_wires(self, coin_hmm):
        with pytest.raises(SpecificationError):
            coin_hmm.forward([(1,)])


class TestHiddenEmission:
    """A machine whose emission depends on the hidden state."""

    @pytest.fixture
    def hmm(self):
        # Wires: A = input-driven emission wire (always fed 0),
        # B = hidden state.  V_AB: if B = 1, emission becomes V(0) = V0.
        machine = QuantumStateMachine(
            Circuit.from_names("V_AB", 2),
            input_wires=(0,),
            state_wires=(1,),
            output_wires=(0,),
            initial_state=(1,),
        )
        return QuantumHMM(machine)

    def test_emission_distribution_reflects_hidden_state(self, hmm):
        # Hidden state 1 -> fair coin on the emission wire.
        assert hmm.sequence_probability([(1,)], inputs=[(0,)]) == HALF
        assert hmm.sequence_probability([(0,)], inputs=[(0,)]) == HALF

    def test_two_step_likelihood(self, hmm):
        p = hmm.sequence_probability([(1,), (1,)], inputs=[(0,), (0,)])
        assert p == Fraction(1, 4)

    def test_viterbi_path(self, hmm):
        prob, path = hmm.most_likely_path([(1,)], inputs=[(0,)])
        assert prob == HALF
        assert path == (1,)  # hidden state stays 1


class TestSampling:
    def test_sample_length_and_alphabet(self, coin_hmm):
        rng = random.Random(5)
        emissions = coin_hmm.sample(10, rng, inputs=[(1,)] * 10)
        assert len(emissions) == 10
        assert set(emissions) <= {(0,), (1,)}

    def test_sample_statistics_match_forward(self, coin_hmm):
        # All-ones inputs force output 1 deterministically.
        rng = random.Random(5)
        emissions = coin_hmm.sample(50, rng, inputs=[(1,)] * 50)
        assert set(emissions) == {(1,)}
