"""Persistent closure store: save an expanded search once, query forever.

The cost-bounded cascade closure for a fixed (library, cost model) pair
is a pure artifact: it never changes, and every MCE/FMCF query is a
lookup against it.  This module serializes a :class:`CascadeSearch`
snapshot to a versioned binary format so the closure is computed once
(``repro precompute``) and any number of synthesis queries are answered
against the stored artifact (``repro synth --store``) without re-running
the BFS.

Framing shared by all formats::

    magic   8 bytes   b"RPROCLS" + format byte (\\x01, \\x02 or \\x03)
    hlen    4 bytes   little-endian header length
    header  hlen      JSON metadata (see :class:`StoreHeader`)
    payload           format-specific binary sections

**Format v2 (current)** is laid out for ``np.memmap``: the header is
space-padded so the payload starts 8-byte aligned, and the payload is a
sequence of 8-aligned sections whose offsets are recorded in the header
(``sections``)::

    perms     n_rows * degree        uint8   image arrays, level-major
                                             discovery order (a row
                                             index is the permutation's
                                             global index; level k spans
                                             rows level_row_offsets[k]
                                             .. level_row_offsets[k+1])
    masks     n_rows * mask_words    uint64  S-image bitmasks
    parents   n_rows                 int32   parent global row (row 0 =
                                             -1); only when parents are
                                             tracked
    gates     n_rows                 int32   appended library gate index
                                             (row 0 = -1); with parents
    rkeys     entries * n_binary     uint8   remainder index keys
    rcosts    entries                int32   minimal cost per remainder
    rindptr   entries + 1            int64   CSR row pointers into
                                             rmatches
    rmatches  total matches          int32   global rows of the minimal-
                                             cost cascades per remainder

Opening a v2 file maps it read-only and touches **only the bytes a
query needs** -- O(levels touched) instead of O(closure).  The embedded
remainder index means :class:`~repro.core.batch.BatchSynthesizer`
construction does no closure scan at all: store open plus first query is
milliseconds against ~2 s for a v1 eager load (``benchmarks/
bench_store.py`` tracks this).

v2 section/offset format (normative)
------------------------------------

This is the reference specification of the on-disk layout; readers in
other languages (or future sharded writers) must honour every rule, and
``tests/test_store_v2.py`` pins them.

* **Framing.**  Byte 0..6 are ``b"RPROCLS"``, byte 7 is the format
  number (``0x02``).  Bytes 8..11 are the header length ``hlen``
  (little-endian uint32).  Bytes 12..12+hlen are the UTF-8 JSON header,
  right-padded with ASCII spaces so that ``12 + hlen`` -- the payload
  start -- is a multiple of 8.  Everything after is the payload.
* **Alignment.**  Every section starts at a payload offset that is a
  multiple of 8 (zero-padding between sections), so memory-mapped
  uint64/int64 views are always aligned.
* **Section table.**  ``header["sections"]`` maps section name to
  ``[offset, length]`` *within the payload*.  Order on disk is
  ``perms, masks, parents, gates, rkeys, rcosts, rindptr, rmatches``
  (``parents``/``gates`` present iff ``track_parents``); lengths are
  fully determined by the row/entry counts (validated on open).  All
  multi-byte values in every section are little-endian.
* **Row addressing.**  A *global row* is a permutation's index in
  level-major discovery order.  ``header["level_row_offsets"]`` has
  ``expanded_to + 2`` entries, starts at 0, and level ``k`` spans rows
  ``offsets[k] .. offsets[k+1]``; row 0 is the identity.  ``parents``
  holds each row's parent global row (int32, row 0 = -1), ``gates``
  the appended library gate index (int32, row 0 = -1); parents point
  strictly to earlier levels.
* **Remainder index (CSR).**  ``rkeys`` holds ``index_entries`` keys of
  ``n_binary`` uint8 image bytes each (the NOT-free reversible
  functions, i.e. cascade restrictions to S); ``rcosts[e]`` is entry
  *e*'s minimal cost; its minimal-cost witness rows are
  ``rmatches[rindptr[e] : rindptr[e+1]]`` (int32 global rows, in
  discovery order).  ``rindptr`` has ``index_entries + 1`` int64
  entries starting at 0.
* **Integrity.**  ``payload_sha256`` covers the whole payload (checked
  by eager loads and ``verify_store``; not by the lazy mapped open).
  ``index_sha256`` holds per-section digests of the four ``r*``
  sections, which are read eagerly and therefore verified even on the
  lazy path.
* **Replacement, not mutation.**  Files are written atomically (temp
  file + ``os.replace``) and must only ever be *replaced* the same
  way: live readers hold memory maps of the old inode, and truncating
  or rewriting a store in place would turn their page faults into
  ``SIGBUS``.  The ``repro serve`` SIGHUP reload relies on this: the
  old map stays valid until the last in-flight query drops it.

**Format v3 (compressed, opt-in)** keeps the v2 header and data model
but stores the payload as per-level, per-array *chunks*, each
independently compressed (``zstd`` when available, stdlib ``zlib``
otherwise, or ``raw``):

* ``header["chunks"]`` maps each section name to a list of ``(offset,
  stored_length, raw_length)`` spans within the payload -- one span per
  level for ``perms``/``masks``/``parents``/``gates`` (level ``k``'s
  chunk holds exactly rows ``level_row_offsets[k] ..
  level_row_offsets[k+1]``), a single span for each ``r*`` index
  section; ``header["codec"]`` names the codec.  Chunk starts are
  8-aligned; ``sections`` is absent.
* **Byte transparency.**  The decompressed bytes of every chunk are
  pinned identical to the corresponding v2 section span -- concatenating
  a section's inflated chunks reproduces the v2 section byte for byte,
  and ``index_sha256`` digests those *raw* bytes (the same values the
  v2 writer records).  A v3 store therefore serves byte-identical
  query results, and the golden tables hold on both formats.
* **Decompress on touch.**  Opening maps the compressed payload
  (pinning the inode exactly like v2) and inflates single chunks as
  queries touch them, through a small process-wide LRU
  (:func:`section_cache_stats`; ``REPRO_SECTION_CACHE_MB`` sizes it).
  Open plus first query stays O(chunks touched) at any closure size,
  which is what lets a served store exceed RAM.
* ``payload_sha256`` covers the stored (compressed) payload bytes.

**Format v1 (legacy)** packs byte-level level records plus parent pairs
and is decoded eagerly through :class:`~repro.core.search.SearchState`.
v1 files remain fully readable (auto-detected by the magic byte);
``repro store migrate`` rewrites them as v2.

Integrity is layered: the payload is checksummed (sha256 -- verified on
eager loads and by :func:`verify_store`; lazy memory-mapped opens check
framing and sizes only, deferring byte verification to the checksum
tool), the header pins fingerprints of the gate library and cost model
(mismatches are refused with :class:`StoreMismatchError` -- a closure
loaded against the wrong library would silently return wrong costs),
and the structural invariants (identity level, monotonic offsets,
cost-decreasing parents) are re-validated on restore.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import StoreError, StoreMismatchError, StoreVersionError
from repro.core.cost import CostModel, UNIT_COST
from repro.core.search import CascadeSearch, SearchArrays, SearchState
from repro.gates.kinds import GateKind
from repro.gates.library import GateLibrary
from repro.mvl.labels import label_space

MAGIC_PREFIX = b"RPROCLS"
MAGIC_V1 = MAGIC_PREFIX + b"\x01"
MAGIC_V2 = MAGIC_PREFIX + b"\x02"
MAGIC_V3 = MAGIC_PREFIX + b"\x03"
#: Compatibility alias: the magic of the current default format.
MAGIC = MAGIC_V2
FORMAT_VERSION = 2
SUPPORTED_VERSIONS = (1, 2, 3)

#: Codecs a v3 store may name.  ``zstd`` needs the optional
#: ``zstandard`` package (or the ``compression.zstd`` stdlib module of
#: Python >= 3.14); ``zlib`` is always available; ``raw`` stores the
#: section bytes uncompressed (still chunked/lazy).
V3_CODECS = ("zstd", "zlib", "raw")

_PARENT_RECORD = 6  # v1: u32 parent index + u16 gate index
_ALIGN = 8
#: v2 section names in payload order (parents/gates optional).
_SECTIONS = (
    "perms", "masks", "parents", "gates",
    "rkeys", "rcosts", "rindptr", "rmatches",
)


def _writer_tag() -> str:
    """Provenance string naming the build that wrote a store."""
    from repro._version import __version__

    return f"repro {__version__}"


def _int_bytes(value: int) -> bytes:
    """Minimal little-endian encoding of a non-negative int (>= 1 byte)."""
    return value.to_bytes(max(1, (value.bit_length() + 7) // 8), "little")


# -- v3 chunk codecs -------------------------------------------------------------------


def _zstd_module():
    """The available zstd implementation, or None.

    Prefers the third-party ``zstandard`` package, falls back to the
    ``compression.zstd`` stdlib module (Python >= 3.14).  Setting
    ``REPRO_NO_ZSTD`` in the environment reports zstd as unavailable --
    CI uses this to exercise the zlib fallback on hosts that do have
    zstd installed.
    """
    if os.environ.get("REPRO_NO_ZSTD"):
        return None
    try:
        import zstandard

        return zstandard
    except ImportError:
        pass
    try:
        from compression import zstd

        return zstd
    except ImportError:
        return None


def resolve_codec(name: str | None) -> str:
    """Resolve a requested v3 codec name (``None`` = best available).

    Raises:
        StoreError: an unknown codec, or ``zstd`` requested while no
            zstd implementation is importable.
    """
    if name is None or name == "auto":
        return "zstd" if _zstd_module() is not None else "zlib"
    if name not in V3_CODECS:
        raise StoreError(
            f"unknown store codec {name!r}; choose from {V3_CODECS}"
        )
    if name == "zstd" and _zstd_module() is None:
        raise StoreError(
            "codec 'zstd' needs the zstandard package (or Python >= "
            "3.14's compression.zstd); use codec 'zlib' instead"
        )
    return name


def _codec_fns(name: str):
    """``(compress, decompress)`` callables for a codec name.

    Raises:
        StoreError: unknown codec, or a zstd store opened on a host
            without any zstd implementation (the remedy -- re-encode
            with ``repro store migrate``'s zlib codec -- is named).
    """
    import zlib

    if name == "zlib":
        return (lambda raw: zlib.compress(raw, 6)), zlib.decompress
    if name == "raw":
        return (lambda raw: raw), (lambda blob: blob)
    if name == "zstd":
        module = _zstd_module()
        if module is None:
            raise StoreError(
                "store uses the 'zstd' codec but no zstd implementation "
                "is available (install zstandard, or re-encode with "
                "`repro store migrate --codec zlib`)"
            )
        if hasattr(module, "ZstdCompressor"):  # the zstandard package
            compressor = module.ZstdCompressor()
            decompressor = module.ZstdDecompressor()
            return compressor.compress, decompressor.decompress
        return module.compress, module.decompress  # stdlib compression.zstd
    raise StoreError(f"unknown store codec {name!r}; choose from {V3_CODECS}")


def library_fingerprint(library: GateLibrary) -> str:
    """Content hash of everything the search reads from a library.

    Covers the label-space geometry and, per gate in index order, the
    name, permutation and banned mask -- so two libraries fingerprint
    equal exactly when a closure expanded under one is valid for the
    other.
    """
    space = library.space
    digest = hashlib.sha256()
    digest.update(
        f"space:{space.n_qubits}:{space.size}:{space.n_binary}:"
        f"{space.reduced}:{space.ordering}:{space.s_mask}".encode()
    )
    mv = space.radix != 2 or library.family != "paper"
    if mv:
        # Radix and family distinguish MV spaces whose geometry numbers
        # could collide with a binary space; per-entry costs join the
        # hash because MV costs live on the entries (Di & Wei's 1/2
        # convention), not in the four binary cost-model weights.  Both
        # are folded in only for MV libraries so every existing binary
        # fingerprint stays byte-identical.
        digest.update(f":radix:{space.radix}:family:{library.family}".encode())
    for entry in library.gates:
        digest.update(b"\x00" + entry.name.encode())
        digest.update(entry.permutation.images)
        digest.update(_int_bytes(entry.banned_mask))
        if mv:
            digest.update(_int_bytes(entry.cost))
    return digest.hexdigest()


def cost_model_fingerprint(cost_model: CostModel) -> str:
    """Content hash of a cost model's four integer weights."""
    text = (
        f"cost:{cost_model.v_cost}:{cost_model.vdag_cost}:"
        f"{cost_model.cnot_cost}:{cost_model.not_cost}"
    )
    return hashlib.sha256(text.encode()).hexdigest()


@dataclass(frozen=True)
class StoreHeader:
    """Parsed metadata block of a closure store.

    Carries everything needed to rebuild the matching library and cost
    model (the store is self-describing for the default gate alphabet)
    plus the size/checksum data that frames the payload.  The v2-only
    fields (``mask_words``, ``sections``, ``level_row_offsets``, index
    sizes) are zero/None on v1 headers.
    """

    format_version: int
    library_fingerprint: str
    cost_fingerprint: str
    n_qubits: int
    degree: int
    n_binary: int
    mask_bytes: int
    space_reduced: bool
    space_ordering: str
    gate_kinds: tuple[str, ...]
    cost_model: CostModel
    expanded_to: int
    level_sizes: tuple[int, ...]
    track_parents: bool
    elapsed_seconds: float
    payload_size: int
    payload_sha256: str
    #: Provenance: the expansion kernel that produced the closure
    #: (``"vector"``/``"translate"``) and the writing build
    #: (``"repro <version>"``).  Empty strings on stores written before
    #: these fields existed; purely informational -- compatibility is
    #: governed by the fingerprints, never by provenance.
    kernel: str = ""
    writer: str = ""
    mask_words: int = 0
    level_row_offsets: tuple[int, ...] = ()
    sections: dict = field(default_factory=dict)
    index_entries: int = 0
    index_matches: int = 0
    #: Per-section sha256 of the (small) remainder-index sections; these
    #: are read eagerly on open, so they are verified even on the lazy
    #: memory-mapped path.
    index_sha256: dict = field(default_factory=dict)
    #: Dedup-shard layout of the expansion that built this store
    #: (``shard_bits``, ``rows_per_shard``, ``slab_slots``, ``spilled``)
    #: -- written by the parallel kernel, empty otherwise.  Purely
    #: informational: `repro store shards` uses it to help operators
    #: size ``--dedup-budget``; readers must not depend on it.
    shards: dict = field(default_factory=dict)
    #: v3 only: the chunk codec (``"zstd"``/``"zlib"``/``"raw"``) and the
    #: chunk table -- section name -> list of ``(offset, stored_length,
    #: raw_length)`` spans within the payload, one span per level for
    #: the row arrays, a single span for the ``r*`` index sections.
    codec: str = ""
    chunks: dict = field(default_factory=dict)
    #: Wire radix (2 = the paper's qubits) and builder family of the
    #: library this store was expanded under.  Defaults keep binary
    #: headers byte-identical: both keys are only serialized when the
    #: store holds an MV closure.
    radix: int = 2
    library_family: str = "paper"

    @property
    def total_seen(self) -> int:
        return sum(self.level_sizes)

    def rebuild_library(self) -> GateLibrary:
        """The library this store was expanded under, by family."""
        if self.library_family == "ternary-diwei":
            from repro.gates.ternary import ternary_library

            return ternary_library(self.n_qubits)
        if self.library_family == "quaternary-ms":
            from repro.gates.quaternary import quaternary_library

            return quaternary_library(self.n_qubits)
        if self.library_family != "paper":
            raise StoreError(
                f"store was built by unknown library family "
                f"{self.library_family!r}; this build knows 'paper', "
                "'ternary-diwei' and 'quaternary-ms'"
            )
        try:
            kinds = tuple(GateKind[name] for name in self.gate_kinds)
        except KeyError as exc:
            raise StoreError(f"store names unknown gate kind {exc}") from None
        space = label_space(
            self.n_qubits, reduced=self.space_reduced, ordering=self.space_ordering
        )
        return GateLibrary(self.n_qubits, space=space, kinds=kinds)


def _header_dict(header: StoreHeader) -> dict:
    cm = header.cost_model
    data = {
        "format": header.format_version,
        "library_fingerprint": header.library_fingerprint,
        "cost_fingerprint": header.cost_fingerprint,
        "n_qubits": header.n_qubits,
        "degree": header.degree,
        "n_binary": header.n_binary,
        "mask_bytes": header.mask_bytes,
        "space_reduced": header.space_reduced,
        "space_ordering": header.space_ordering,
        "gate_kinds": list(header.gate_kinds),
        "cost_model": {
            "v_cost": cm.v_cost,
            "vdag_cost": cm.vdag_cost,
            "cnot_cost": cm.cnot_cost,
            "not_cost": cm.not_cost,
        },
        "expanded_to": header.expanded_to,
        "level_sizes": list(header.level_sizes),
        "track_parents": header.track_parents,
        "elapsed_seconds": header.elapsed_seconds,
        "payload_size": header.payload_size,
        "payload_sha256": header.payload_sha256,
        "kernel": header.kernel,
        "writer": header.writer,
    }
    if header.format_version >= 2:
        data["mask_words"] = header.mask_words
        data["level_row_offsets"] = list(header.level_row_offsets)
        data["sections"] = {
            name: list(span) for name, span in header.sections.items()
        }
        data["index_entries"] = header.index_entries
        data["index_matches"] = header.index_matches
        data["index_sha256"] = dict(header.index_sha256)
        if header.shards:
            data["shards"] = dict(header.shards)
    if header.format_version >= 3:
        data["codec"] = header.codec
        data["chunks"] = {
            name: [list(span) for span in spans]
            for name, spans in header.chunks.items()
        }
        del data["sections"]
    if header.radix != 2 or header.library_family != "paper":
        # MV provenance; omitted at the binary defaults so every
        # pre-existing binary header (and store digest) stays
        # byte-identical.
        data["radix"] = header.radix
        data["library_family"] = header.library_family
    return data


def _header_from_dict(data: dict) -> StoreHeader:
    try:
        cm = data["cost_model"]
        return StoreHeader(
            format_version=int(data["format"]),
            library_fingerprint=str(data["library_fingerprint"]),
            cost_fingerprint=str(data["cost_fingerprint"]),
            n_qubits=int(data["n_qubits"]),
            degree=int(data["degree"]),
            n_binary=int(data["n_binary"]),
            mask_bytes=int(data["mask_bytes"]),
            space_reduced=bool(data["space_reduced"]),
            space_ordering=str(data["space_ordering"]),
            gate_kinds=tuple(str(k) for k in data["gate_kinds"]),
            cost_model=CostModel(
                v_cost=int(cm["v_cost"]),
                vdag_cost=int(cm["vdag_cost"]),
                cnot_cost=int(cm["cnot_cost"]),
                not_cost=int(cm["not_cost"]),
            ),
            expanded_to=int(data["expanded_to"]),
            level_sizes=tuple(int(s) for s in data["level_sizes"]),
            track_parents=bool(data["track_parents"]),
            elapsed_seconds=float(data["elapsed_seconds"]),
            payload_size=int(data["payload_size"]),
            payload_sha256=str(data["payload_sha256"]),
            kernel=str(data.get("kernel", "")),
            writer=str(data.get("writer", "")),
            mask_words=int(data.get("mask_words", 0)),
            level_row_offsets=tuple(
                int(o) for o in data.get("level_row_offsets", ())
            ),
            sections={
                str(name): (int(span[0]), int(span[1]))
                for name, span in data.get("sections", {}).items()
            },
            index_entries=int(data.get("index_entries", 0)),
            index_matches=int(data.get("index_matches", 0)),
            index_sha256={
                str(name): str(digest)
                for name, digest in data.get("index_sha256", {}).items()
            },
            shards=dict(data.get("shards", {})),
            codec=str(data.get("codec", "")),
            chunks={
                str(name): tuple(
                    (int(span[0]), int(span[1]), int(span[2]))
                    for span in spans
                )
                for name, spans in data.get("chunks", {}).items()
            },
            radix=int(data.get("radix", 2)),
            library_family=str(data.get("library_family", "paper")),
        )
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise StoreError(f"malformed store header: {exc}") from None


# -- encoding --------------------------------------------------------------------------


def _library_kinds(library: GateLibrary) -> tuple[str, ...]:
    """Gate kinds in construction order (gate indices depend on it).

    For the paper family the kinds cycle per wire pair, so the list stops
    at the first repeat (V, V+, F).  MV families interleave cost blocks
    instead, so every distinct kind name is collected; the list is
    informational there -- ``rebuild_library`` dispatches on the family,
    and the fingerprint check catches any drift.
    """
    kinds: list[str] = []
    if library.family != "paper":
        for entry in library.gates:
            name = entry.gate.kind.name
            if name not in kinds:
                kinds.append(name)
        return tuple(kinds)
    for entry in library.gates:
        name = entry.gate.kind.name
        if name in kinds:
            break
        kinds.append(name)
    return tuple(kinds)


def _dump_v1(search: CascadeSearch) -> bytes:
    """Serialize in the legacy byte-record format (kept for migration tests)."""
    state = search.export_state()
    library = search.library
    cost_model = search.cost_model
    degree = library.space.size
    mask_bytes = (degree + 7) // 8

    chunks: list[bytes] = []
    index_of: dict[bytes, int] = {}
    for level in state.levels:
        for perm, mask in level:
            index_of[perm] = len(index_of)
            chunks.append(perm)
            chunks.append(mask.to_bytes(mask_bytes, "little"))
    if state.parents is not None:
        for level in state.levels[1:]:
            for perm, _mask in level:
                parent, gate_index = state.parents[perm]
                chunks.append(index_of[parent].to_bytes(4, "little"))
                chunks.append(gate_index.to_bytes(2, "little"))
    payload = b"".join(chunks)

    header = StoreHeader(
        format_version=1,
        library_fingerprint=library_fingerprint(library),
        cost_fingerprint=cost_model_fingerprint(cost_model),
        n_qubits=library.n_qubits,
        degree=degree,
        n_binary=library.space.n_binary,
        mask_bytes=mask_bytes,
        space_reduced=library.space.reduced,
        space_ordering=library.space.ordering,
        gate_kinds=_library_kinds(library),
        cost_model=cost_model,
        expanded_to=state.expanded_to,
        level_sizes=state.level_sizes,
        track_parents=state.parents is not None,
        elapsed_seconds=state.elapsed_seconds,
        payload_size=len(payload),
        payload_sha256=hashlib.sha256(payload).hexdigest(),
        kernel=search.kernel,
        writer=_writer_tag(),
        radix=library.space.radix,
        library_family=library.family,
    )
    header_blob = json.dumps(_header_dict(header), separators=(",", ":")).encode()
    return MAGIC_V1 + len(header_blob).to_bytes(4, "little") + header_blob + payload


def _serialized_index(search: CascadeSearch, cost_bound: int):
    """The remainder index as flat arrays (keys, costs, indptr, matches)."""
    from repro.core.batch import build_remainder_index

    attached = search.attached_remainder_index
    if attached is not None and attached[0] == cost_bound:
        index = attached[1]
    else:
        index = build_remainder_index(search, cost_bound)
    keys = b"".join(index.keys())
    costs = np.array(
        [hit[0] for hit in index.values()], dtype="<i4"
    )
    counts = [len(hit[1]) for hit in index.values()]
    indptr = np.zeros(len(index) + 1, dtype="<i8")
    np.cumsum(counts, out=indptr[1:])
    matches = np.array(
        [int(row) for hit in index.values() for row in hit[1]], dtype="<i4"
    )
    return keys, costs, indptr, matches


def _v2_section_plan(
    n: int,
    degree: int,
    mask_words: int,
    n_binary: int,
    track_parents: bool,
    index_entries: int,
    index_matches: int,
) -> tuple[dict[str, tuple[int, int]], int]:
    """Section offsets/lengths (8-aligned) from the row/entry counts."""
    lengths = {
        "perms": n * degree,
        "masks": n * mask_words * 8,
        "rkeys": index_entries * n_binary,
        "rcosts": index_entries * 4,
        "rindptr": (index_entries + 1) * 8,
        "rmatches": index_matches * 4,
    }
    if track_parents:
        lengths["parents"] = n * 4
        lengths["gates"] = n * 4
    sections: dict[str, tuple[int, int]] = {}
    offset = 0
    for name in _SECTIONS:
        length = lengths.get(name)
        if length is None:
            continue
        offset += (-offset) % _ALIGN
        sections[name] = (offset, length)
        offset += length
    return sections, offset


def _v2_header(
    search: CascadeSearch,
    arrays,
    sections: dict[str, tuple[int, int]],
    payload_size: int,
    payload_sha256: str,
    index_sha: dict,
    index_entries: int,
    index_matches: int,
) -> StoreHeader:
    """The v2 header shared by the in-memory and streaming writers."""
    library = search.library
    return StoreHeader(
        format_version=2,
        library_fingerprint=library_fingerprint(library),
        cost_fingerprint=cost_model_fingerprint(search.cost_model),
        n_qubits=library.n_qubits,
        degree=arrays.degree,
        n_binary=arrays.n_binary,
        mask_bytes=8 * arrays.mask_words,
        space_reduced=library.space.reduced,
        space_ordering=library.space.ordering,
        gate_kinds=_library_kinds(library),
        cost_model=search.cost_model,
        expanded_to=arrays.expanded_to,
        level_sizes=arrays.level_sizes,
        track_parents=arrays.parents is not None,
        elapsed_seconds=arrays.elapsed_seconds,
        payload_size=payload_size,
        payload_sha256=payload_sha256,
        kernel=search.kernel,
        writer=_writer_tag(),
        mask_words=arrays.mask_words,
        level_row_offsets=tuple(int(o) for o in arrays.level_offsets),
        sections=sections,
        index_entries=index_entries,
        index_matches=index_matches,
        index_sha256=index_sha,
        shards=search.shard_layout() or {},
        radix=library.space.radix,
        library_family=library.family,
    )


def _frame_header(header: StoreHeader) -> bytes:
    """Magic + length + space-padded JSON header (payload 8-aligned)."""
    header_blob = json.dumps(
        _header_dict(header), separators=(",", ":")
    ).encode()
    magic = MAGIC_PREFIX + bytes([header.format_version])
    frame = len(magic) + 4
    pad = (-(frame + len(header_blob))) % _ALIGN
    header_blob += b" " * pad
    return magic + len(header_blob).to_bytes(4, "little") + header_blob


def _dump_v2(search: CascadeSearch) -> bytes:
    """Serialize in the memory-mappable array format (current default)."""
    arrays = search.export_arrays()

    keys, costs, indptr, matches = _serialized_index(
        search, arrays.expanded_to
    )

    blobs: dict[str, bytes] = {
        "perms": np.ascontiguousarray(arrays.perms, dtype=np.uint8).tobytes(),
        "masks": np.ascontiguousarray(arrays.masks, dtype="<u8").tobytes(),
        "rkeys": keys,
        "rcosts": costs.tobytes(),
        "rindptr": indptr.tobytes(),
        "rmatches": matches.tobytes(),
    }
    if arrays.parents is not None:
        blobs["parents"] = np.ascontiguousarray(
            arrays.parents, dtype="<i4"
        ).tobytes()
        blobs["gates"] = np.ascontiguousarray(
            arrays.gates, dtype="<i4"
        ).tobytes()

    chunks: list[bytes] = []
    sections: dict[str, tuple[int, int]] = {}
    offset = 0
    for name in _SECTIONS:
        blob = blobs.get(name)
        if blob is None:
            continue
        pad = (-offset) % _ALIGN
        if pad:
            chunks.append(b"\x00" * pad)
            offset += pad
        sections[name] = (offset, len(blob))
        chunks.append(blob)
        offset += len(blob)
    payload = b"".join(chunks)
    index_sha = {
        name: hashlib.sha256(blobs[name]).hexdigest()
        for name in ("rkeys", "rcosts", "rindptr", "rmatches")
    }

    header = _v2_header(
        search,
        arrays,
        sections,
        len(payload),
        hashlib.sha256(payload).hexdigest(),
        index_sha,
        len(costs),
        len(matches),
    )
    return _frame_header(header) + payload


#: Placeholder digest patched in place by the streaming writer (same
#: length as a real sha256 hex digest, so the header size is stable).
_SHA_PLACEHOLDER = "0" * 64

#: Rows per write in the streaming writer (bounds its extra RSS).
_STREAM_ROWS = 1 << 16


def _save_v2_streamed(search: CascadeSearch, target: Path) -> StoreHeader:
    """Write a v2 store per-level/per-chunk, never holding the payload.

    Byte-identical to :func:`_dump_v2`'s output: the section plan is
    computed from the row counts up front, the payload streams through
    an incremental sha256, and the header's placeholder digest is
    patched in place before the atomic rename.  Peak extra memory is
    one ~:data:`_STREAM_ROWS`-row chunk instead of a whole second copy
    of the closure -- the property that lets the parallel engine write
    stores bigger than RAM headroom.
    """
    arrays = search.export_arrays()
    keys, costs, indptr, matches = _serialized_index(
        search, arrays.expanded_to
    )
    n = arrays.n_rows
    sections, payload_size = _v2_section_plan(
        n,
        arrays.degree,
        arrays.mask_words,
        arrays.n_binary,
        arrays.parents is not None,
        len(costs),
        len(matches),
    )
    index_blobs = {
        "rkeys": keys,
        "rcosts": costs.tobytes(),
        "rindptr": indptr.tobytes(),
        "rmatches": matches.tobytes(),
    }
    index_sha = {
        name: hashlib.sha256(blob).hexdigest()
        for name, blob in index_blobs.items()
    }
    header = _v2_header(
        search, arrays, sections, payload_size, _SHA_PLACEHOLDER,
        index_sha, len(costs), len(matches),
    )
    frame = _frame_header(header)
    sha_at = frame.index(_SHA_PLACEHOLDER.encode())

    def _array_chunks(name: str, dtype):
        source = {
            "perms": (arrays.perms, np.uint8),
            "masks": (arrays.masks, "<u8"),
            "parents": (arrays.parents, "<i4"),
            "gates": (arrays.gates, "<i4"),
        }[name]
        array, want = source
        for start in range(0, n, _STREAM_ROWS):
            yield np.ascontiguousarray(
                array[start : start + _STREAM_ROWS], dtype=want
            ).tobytes()

    digest = hashlib.sha256()
    tmp = target.with_name(target.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(frame)
        written = 0
        for name, (offset, length) in sections.items():
            pad = offset - written
            if pad:
                handle.write(b"\x00" * pad)
                digest.update(b"\x00" * pad)
                written += pad
            if name in index_blobs:
                chunks = (index_blobs[name],)
            else:
                chunks = _array_chunks(name, None)
            for chunk in chunks:
                handle.write(chunk)
                digest.update(chunk)
                written += len(chunk)
            if written - offset != length:
                raise StoreError(
                    f"streamed section {name!r} wrote {written - offset} "
                    f"bytes, planned {length}"
                )
        # Patch the placeholder digest in place; same length, so every
        # other byte of the file is untouched.
        handle.seek(sha_at)
        handle.write(digest.hexdigest().encode())
    os.replace(tmp, target)
    from dataclasses import replace

    return replace(header, payload_sha256=digest.hexdigest())


def _v3_chunk_stream(arrays, index_blobs: dict, compress):
    """Yield ``(name, compressed_chunk, raw_length)`` in on-disk order.

    One chunk per level for each row array (level ``k`` of ``perms`` is
    exactly the v2 ``perms`` section bytes of rows ``offsets[k] ..
    offsets[k+1]``), then one chunk per ``r*`` index section.  The raw
    bytes are pinned byte-identical to the corresponding v2 section
    span, which is what lets a v3 store serve byte-identical results.
    Peak extra memory is one level's raw + compressed chunk.
    """
    sources = {
        "perms": (arrays.perms, np.uint8),
        "masks": (arrays.masks, "<u8"),
        "parents": (arrays.parents, "<i4"),
        "gates": (arrays.gates, "<i4"),
    }
    for name in _SECTIONS:
        if name in index_blobs:
            raw = index_blobs[name]
            yield name, compress(raw) if raw else b"", len(raw)
            continue
        array, dtype = sources[name]
        if array is None:
            continue
        for cost in range(arrays.expanded_to + 1):
            start, stop = arrays.level_rows(cost)
            raw = np.ascontiguousarray(
                array[start:stop], dtype=dtype
            ).tobytes()
            yield name, compress(raw) if raw else b"", len(raw)


def _v3_header(
    search: CascadeSearch,
    arrays,
    chunks: dict[str, tuple[tuple[int, int, int], ...]],
    codec: str,
    payload_size: int,
    payload_sha256: str,
    index_sha: dict,
    index_entries: int,
    index_matches: int,
) -> StoreHeader:
    """The v3 header: the v2 header with a chunk table instead of sections."""
    from dataclasses import replace

    base = _v2_header(
        search, arrays, {}, payload_size, payload_sha256,
        index_sha, index_entries, index_matches,
    )
    return replace(base, format_version=3, codec=codec, chunks=chunks)


def _v3_write_payload(search: CascadeSearch, out, codec: str | None):
    """Stream the v3 payload chunks to *out*; returns the header.

    The returned header carries the finished chunk table, payload size
    and sha256 (over the stored/compressed payload bytes) -- callers
    frame it before or after the payload as their medium requires.
    """
    arrays = search.export_arrays()
    keys, costs, indptr, matches = _serialized_index(
        search, arrays.expanded_to
    )
    codec_name = resolve_codec(codec)
    compress, _decompress = _codec_fns(codec_name)
    index_blobs = {
        "rkeys": keys,
        "rcosts": costs.tobytes(),
        "rindptr": indptr.tobytes(),
        "rmatches": matches.tobytes(),
    }
    # Digests of the *raw* (decompressed) index bytes: identical values
    # to the same store's v2 ``index_sha256``, pinning byte-transparency.
    index_sha = {
        name: hashlib.sha256(blob).hexdigest()
        for name, blob in index_blobs.items()
    }
    chunks: dict[str, list[tuple[int, int, int]]] = {}
    digest = hashlib.sha256()
    offset = 0
    for name, blob, raw_len in _v3_chunk_stream(arrays, index_blobs, compress):
        pad = (-offset) % _ALIGN
        if pad:
            out.write(b"\x00" * pad)
            digest.update(b"\x00" * pad)
            offset += pad
        chunks.setdefault(name, []).append((offset, len(blob), raw_len))
        out.write(blob)
        digest.update(blob)
        offset += len(blob)
    return _v3_header(
        search,
        arrays,
        {name: tuple(spans) for name, spans in chunks.items()},
        codec_name,
        offset,
        digest.hexdigest(),
        index_sha,
        len(costs),
        len(matches),
    )


def _dump_v3(search: CascadeSearch, codec: str | None = None) -> bytes:
    """Serialize in the chunk-compressed lazy format (in memory)."""
    import io

    payload = io.BytesIO()
    header = _v3_write_payload(search, payload, codec)
    return _frame_header(header) + payload.getvalue()


def _save_v3_streamed(
    search: CascadeSearch, target: Path, codec: str | None = None
) -> StoreHeader:
    """Write a v3 store chunk by chunk, never holding the payload.

    Chunk sizes are only known after compression, so the payload is
    streamed to a sibling temp file first, then the framed header and
    payload are concatenated into the final temp file and atomically
    renamed -- byte-identical to :func:`_dump_v3`, with peak extra
    memory bounded by one level's chunk.
    """
    payload_tmp = target.with_name(target.name + ".tmp.payload")
    tmp = target.with_name(target.name + ".tmp")
    try:
        with open(payload_tmp, "wb") as payload:
            header = _v3_write_payload(search, payload, codec)
        with open(tmp, "wb") as out, open(payload_tmp, "rb") as payload:
            out.write(_frame_header(header))
            while True:
                block = payload.read(1 << 20)
                if not block:
                    break
                out.write(block)
        os.replace(tmp, target)
    finally:
        for leftover in (payload_tmp,):
            try:
                os.unlink(leftover)
            except OSError:
                pass
    return header


def dump_search(
    search: CascadeSearch,
    format_version: int = FORMAT_VERSION,
    codec: str | None = None,
) -> bytes:
    """Serialize a search's accumulated closure to store bytes.

    *codec* selects the v3 chunk codec (``None`` = best available) and
    is ignored by the uncompressed v1/v2 formats.
    """
    if format_version == 1:
        return _dump_v1(search)
    if format_version == 2:
        return _dump_v2(search)
    if format_version == 3:
        return _dump_v3(search, codec)
    raise StoreVersionError(
        f"cannot write store format {format_version}; this build writes "
        f"formats {SUPPORTED_VERSIONS}"
    )


def save_search(
    search: CascadeSearch,
    path: str | Path,
    format_version: int = FORMAT_VERSION,
    codec: str | None = None,
) -> StoreHeader:
    """Write a search's closure to *path*; returns the store header.

    The write is atomic (temp file + rename), so an interrupted save
    never leaves a truncated store behind -- and re-saving over a store
    that is currently memory-mapped (``precompute --extend``) is safe:
    the mapping keeps the old inode alive.

    v2 and v3 stores are **streamed** section by section, level by
    level (:func:`_save_v2_streamed` / :func:`_save_v3_streamed`) --
    byte-identical to :func:`dump_search` output, but peak RSS stays
    bounded by one chunk instead of a full second copy of the payload.
    *codec* selects the v3 chunk codec (``None`` = best available).
    """
    target = Path(path)
    if format_version == 2:
        return _save_v2_streamed(search, target)
    if format_version == 3:
        return _save_v3_streamed(search, target, codec)
    data = dump_search(search, format_version)
    tmp = target.with_name(target.name + ".tmp")
    tmp.write_bytes(data)
    os.replace(tmp, target)
    header, _payload_start = _parse_frame(data)
    return header


# -- decoding --------------------------------------------------------------------------


def _parse_frame(data: bytes) -> tuple[StoreHeader, int]:
    """Parse magic + header; return (header, payload start offset)."""
    if len(data) < len(MAGIC_PREFIX) + 5 or data[: len(MAGIC_PREFIX)] != (
        MAGIC_PREFIX
    ):
        raise StoreError("not a closure store (bad magic)")
    magic_version = data[len(MAGIC_PREFIX)]
    if magic_version not in SUPPORTED_VERSIONS:
        raise StoreVersionError(
            f"store format {magic_version} is not supported (this build "
            f"reads formats {SUPPORTED_VERSIONS})"
        )
    frame = len(MAGIC_PREFIX) + 1
    hlen = int.from_bytes(data[frame : frame + 4], "little")
    header_start = frame + 4
    if len(data) < header_start + hlen:
        raise StoreError("truncated store header")
    try:
        raw = json.loads(data[header_start : header_start + hlen])
    except ValueError:
        raise StoreError("store header is not valid JSON") from None
    header = _header_from_dict(raw)
    if header.format_version not in SUPPORTED_VERSIONS:
        raise StoreVersionError(
            f"store format {header.format_version} is not supported "
            f"(this build reads formats {SUPPORTED_VERSIONS})"
        )
    if header.format_version != magic_version:
        raise StoreError(
            f"store magic says format {magic_version} but the header "
            f"says {header.format_version}"
        )
    return header, header_start + hlen


def _check_v1_payload(header: StoreHeader, payload: memoryview) -> None:
    if len(payload) != header.payload_size:
        raise StoreError(
            f"store payload is {len(payload)} bytes, header says "
            f"{header.payload_size} (truncated or padded file)"
        )
    if hashlib.sha256(payload).hexdigest() != header.payload_sha256:
        raise StoreError("store payload fails its sha256 checksum")
    record = header.degree + header.mask_bytes
    expected = header.total_seen * record
    if header.track_parents:
        expected += (header.total_seen - 1) * _PARENT_RECORD
    if header.payload_size != expected:
        raise StoreError(
            f"payload size {header.payload_size} inconsistent with "
            f"{header.total_seen} records of {record} bytes"
        )
    if len(header.level_sizes) != header.expanded_to + 1:
        raise StoreError(
            f"store claims bound {header.expanded_to} but lists "
            f"{len(header.level_sizes)} level sizes"
        )


def _check_array_geometry(
    header: StoreHeader, payload_size: int
) -> tuple[int, dict[str, int]]:
    """Level/offset sanity shared by the v2 and v3 checkers.

    Returns ``(row count, expected raw section sizes)``.
    """
    if payload_size != header.payload_size:
        raise StoreError(
            f"store payload is {payload_size} bytes, header says "
            f"{header.payload_size} (truncated or padded file)"
        )
    if len(header.level_sizes) != header.expanded_to + 1:
        raise StoreError(
            f"store claims bound {header.expanded_to} but lists "
            f"{len(header.level_sizes)} level sizes"
        )
    offsets = header.level_row_offsets
    if len(offsets) != header.expanded_to + 2 or offsets[0] != 0:
        raise StoreError("store level offset table is malformed")
    n = offsets[-1]
    for k, size in enumerate(header.level_sizes):
        if offsets[k + 1] - offsets[k] != size:
            raise StoreError(
                f"level {k} offsets disagree with its recorded size"
            )
    if header.mask_words < 1:
        raise StoreError("store mask_words must be positive")
    expected = {
        "perms": n * header.degree,
        "masks": n * header.mask_words * 8,
        "rkeys": header.index_entries * header.n_binary,
        "rcosts": header.index_entries * 4,
        "rindptr": (header.index_entries + 1) * 8,
        "rmatches": header.index_matches * 4,
    }
    if header.track_parents:
        expected["parents"] = n * 4
        expected["gates"] = n * 4
    return n, expected


def _check_v2_header(header: StoreHeader, payload_size: int) -> None:
    """Structural sanity of a v2 header against the payload size."""
    _n, expected = _check_array_geometry(header, payload_size)
    for name, size in expected.items():
        span = header.sections.get(name)
        if span is None:
            raise StoreError(f"store is missing its {name!r} section")
        offset, length = span
        if length != size:
            raise StoreError(
                f"store section {name!r} is {length} bytes, expected {size}"
            )
        if offset < 0 or offset + length > header.payload_size:
            raise StoreError(
                f"store section {name!r} lies outside the payload"
            )


#: Per-array bytes per row in the v3 chunk layout.
_V3_ROW_BYTES = {"parents": 4, "gates": 4}


def _check_v3_header(header: StoreHeader, payload_size: int) -> None:
    """Structural sanity of a v3 header against the payload size.

    The raw (decompressed) chunk lengths are fully determined by the
    row/entry counts, exactly like v2 section lengths; stored lengths
    are only bounded (the codec decides them), and every span must lie
    inside the payload.
    """
    _n, expected = _check_array_geometry(header, payload_size)
    if header.codec not in V3_CODECS:
        raise StoreError(
            f"store names unknown codec {header.codec!r}"
        )
    sizes = header.level_sizes
    for name, total in expected.items():
        spans = header.chunks.get(name)
        if spans is None:
            raise StoreError(f"store is missing its {name!r} section")
        if name in ("rkeys", "rcosts", "rindptr", "rmatches"):
            per_chunk = [total]
        else:
            row_bytes = _V3_ROW_BYTES.get(name) or (
                header.degree if name == "perms" else header.mask_words * 8
            )
            per_chunk = [size * row_bytes for size in sizes]
        if len(spans) != len(per_chunk):
            raise StoreError(
                f"store section {name!r} has {len(spans)} chunks, "
                f"expected {len(per_chunk)}"
            )
        for idx, (span, raw_expected) in enumerate(zip(spans, per_chunk)):
            offset, stored, raw = span
            if raw != raw_expected:
                raise StoreError(
                    f"store chunk {name!r}[{idx}] decodes to {raw} "
                    f"bytes, expected {raw_expected}"
                )
            if offset < 0 or stored < 0 or (
                offset + stored > header.payload_size
            ):
                raise StoreError(
                    f"store chunk {name!r}[{idx}] lies outside the payload"
                )


def _section(header: StoreHeader, payload, name: str, dtype, shape=None):
    """A zero-copy ndarray view of one v2 payload section.

    ``dtype`` must be an explicit little-endian spec (``"<u8"`` etc.) --
    sections are written little-endian, so native-order views would be
    byte-swapped on big-endian hosts.
    """
    offset, length = header.sections[name]
    view = np.frombuffer(payload, dtype=np.uint8, count=length, offset=offset)
    arr = view.view(np.dtype(dtype))
    if shape is not None:
        arr = arr.reshape(shape)
    return arr


def _v2_arrays(header: StoreHeader, payload) -> SearchArrays:
    """SearchArrays over a v2 payload (a memmap, bytes or memoryview)."""
    n = header.level_row_offsets[-1]
    parents = gates = None
    if header.track_parents:
        parents = _section(header, payload, "parents", "<i4", (n,))
        gates = _section(header, payload, "gates", "<i4", (n,))
    return SearchArrays(
        expanded_to=header.expanded_to,
        degree=header.degree,
        n_binary=header.n_binary,
        mask_words=header.mask_words,
        level_offsets=np.asarray(header.level_row_offsets, dtype=np.int64),
        perms=_section(
            header, payload, "perms", np.uint8, (n, header.degree)
        ),
        masks=_section(
            header, payload, "masks", "<u8", (n, header.mask_words)
        ),
        parents=parents,
        gates=gates,
        elapsed_seconds=header.elapsed_seconds,
    )


#: File identities whose index sections already passed verification
#: this process: ``identity -> index_sha256`` (the digests verified).
#: Keyed by (resolved path, dev, inode, size, mtime_ns), so a re-saved
#: store (new inode/mtime) re-verifies while repeated opens of the same
#: bytes -- e.g. back-to-back ``repro precompute --extend`` calls in
#: one process -- skip the rescan.
_INDEX_VERIFIED: dict[tuple, dict] = {}
_INDEX_VERIFIED_MAX = 64


def _identity_from_stat(path: Path, stat: os.stat_result) -> tuple:
    """The identity tuple of an already-statted store file."""
    return (
        str(path.resolve()),
        stat.st_dev,
        stat.st_ino,
        stat.st_size,
        stat.st_mtime_ns,
    )


def _file_identity(path: Path) -> tuple | None:
    """Stable identity of a store file's current bytes, or None."""
    try:
        stat = path.stat()
    except OSError:
        return None
    return _identity_from_stat(path, stat)


def _v2_remainder_index(
    header: StoreHeader, payload, cache_key: tuple | None = None
) -> dict:
    """Deserialize the remainder index; verifies its per-section hashes.

    These sections are small and read eagerly, so the checksum pass is
    cheap -- corruption of the index fails loudly even on the lazy
    memory-mapped open (closure sections are only covered by the full
    :func:`verify_store` pass).  With a *cache_key* (the opened file's
    identity), a successful verification is remembered per process, so
    repeated opens of the same unchanged file -- e.g. consecutive
    ``precompute --extend`` rounds -- skip re-hashing the sections.
    """
    verified = (
        cache_key is not None
        and _INDEX_VERIFIED.get(cache_key) == header.index_sha256
    )
    if not verified:
        for name, expected in header.index_sha256.items():
            section = _section(header, payload, name, np.uint8)
            if hashlib.sha256(section.tobytes()).hexdigest() != expected:
                raise StoreError(
                    f"store section {name!r} fails its sha256 checksum"
                )
        if cache_key is not None:
            while len(_INDEX_VERIFIED) >= _INDEX_VERIFIED_MAX:
                _INDEX_VERIFIED.pop(next(iter(_INDEX_VERIFIED)))
            _INDEX_VERIFIED[cache_key] = dict(header.index_sha256)
    entries = header.index_entries
    width = header.n_binary
    keys = _section(header, payload, "rkeys", np.uint8).tobytes()
    costs = _section(header, payload, "rcosts", "<i4")
    indptr = _section(header, payload, "rindptr", "<i8")
    matches = _section(header, payload, "rmatches", "<i4")
    index: dict[bytes, tuple[int, np.ndarray]] = {}
    for e in range(entries):
        remainder = keys[e * width : (e + 1) * width]
        index[remainder] = (
            int(costs[e]),
            matches[int(indptr[e]) : int(indptr[e + 1])],
        )
    return index


# -- v3 lazy reading -------------------------------------------------------------------


class _SectionCache:
    """Process-wide LRU of decompressed v3 chunks, bounded by bytes.

    Keys are ``(file identity, section name, chunk index)``: a replaced
    store gets a new inode/mtime and therefore fresh entries, while the
    old entries age out by LRU -- no invalidation hooks needed, which is
    what keeps the serve reload race-free (in-flight queries on the old
    :class:`StoreState` keep their already-decompressed chunks alive by
    reference regardless of what the cache evicts).
    """

    def __init__(self, max_bytes: int):
        import threading
        from collections import OrderedDict

        self.max_bytes = max_bytes
        self._entries: OrderedDict[tuple, bytes] = OrderedDict()
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._lock = threading.Lock()

    def get(self, key: tuple) -> bytes | None:
        with self._lock:
            blob = self._entries.get(key)
            if blob is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return blob

    def put(self, key: tuple, blob: bytes) -> None:
        if len(blob) > self.max_bytes:
            return
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= len(old)
            self._entries[key] = blob
            self._bytes += len(blob)
            while self._bytes > self.max_bytes and self._entries:
                _key, dropped = self._entries.popitem(last=False)
                self._bytes -= len(dropped)
                self._evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self._hits = 0
            self._misses = 0
            self._evictions = 0

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }


#: The per-process chunk cache; sized by ``REPRO_SECTION_CACHE_MB``
#: (default 64).  Small by design: it bounds decompression rework, it
#: does not try to hold the closure.
_SECTION_CACHE = _SectionCache(
    max(1, int(os.environ.get("REPRO_SECTION_CACHE_MB", "64"))) << 20
)


def section_cache_stats() -> dict:
    """Hit/size counters of the process-wide v3 chunk cache."""
    return _SECTION_CACHE.stats()


class _ChunkStore:
    """Decompress-on-touch access to one v3 store's payload chunks.

    Holds the (compressed) payload -- a memmap for file opens, so the
    inode stays pinned across atomic replaces exactly like a v2 map --
    and inflates single chunks on demand through the process-wide
    :data:`_SECTION_CACHE` (when a *cache_key* identity is given).
    """

    def __init__(
        self, header: StoreHeader, payload, cache_key: tuple | None = None
    ):
        self._header = header
        self._payload = payload
        self._cache_key = cache_key
        _compress, self._decompress = _codec_fns(header.codec)

    def chunk(self, name: str, idx: int) -> bytes:
        """The decompressed bytes of one chunk (cached per process)."""
        offset, stored, raw_len = self._header.chunks[name][idx]
        key = None
        if self._cache_key is not None:
            key = (self._cache_key, name, idx)
            cached = _SECTION_CACHE.get(key)
            if cached is not None:
                return cached
        if stored == 0 and raw_len == 0:
            return b""
        view = self._payload[offset : offset + stored]
        blob = view.tobytes() if hasattr(view, "tobytes") else bytes(view)
        try:
            raw = self._decompress(blob)
        except Exception as exc:
            raise StoreError(
                f"store chunk {name!r}[{idx}] fails to decompress "
                f"({self._header.codec}): {exc}"
            ) from None
        if len(raw) != raw_len:
            raise StoreError(
                f"store chunk {name!r}[{idx}] decompressed to "
                f"{len(raw)} bytes, header says {raw_len}"
            )
        if key is not None:
            _SECTION_CACHE.put(key, raw)
        return raw

    def level_array(self, name: str, idx: int, dtype, width: int | None):
        """One chunk as a read-only ndarray (``(rows, width)`` or flat)."""
        arr = np.frombuffer(self.chunk(name, idx), dtype=np.dtype(dtype))
        if width is not None:
            arr = arr.reshape(-1, width)
        return arr


class _LazyChunkedArray:
    """Read-only, ndarray-like view over a v3 array's per-level chunks.

    Implements exactly the access surface the query paths use on raw
    :class:`SearchArrays` members -- ``shape``/``dtype``, integer row
    indexing, contiguous row slices, and whole-array materialization
    via ``__array__`` (used by eager consumers such as migration and
    ``verify_store``).  Rows decompress level by level on first touch,
    so open + first query stays O(chunks touched) at any closure size.
    """

    def __init__(
        self,
        chunks: _ChunkStore,
        name: str,
        dtype,
        width: int | None,
        level_offsets,
    ):
        self._chunks = chunks
        self._name = name
        self.dtype = np.dtype(dtype)
        self._width = width
        self._offsets = np.asarray(level_offsets, dtype=np.int64)
        n = int(self._offsets[-1])
        self.shape = (n,) if width is None else (n, width)
        self.ndim = len(self.shape)

    def __len__(self) -> int:
        return self.shape[0]

    def _level_of(self, row: int) -> int:
        return int(
            np.searchsorted(self._offsets, row, side="right") - 1
        )

    def _level(self, k: int):
        return self._chunks.level_array(
            self._name, k, self.dtype, self._width
        )

    def __getitem__(self, key):
        n = self.shape[0]
        if isinstance(key, (int, np.integer)):
            row = int(key)
            if row < 0:
                row += n
            if not 0 <= row < n:
                raise IndexError(
                    f"row {key} outside the {n}-row closure"
                )
            k = self._level_of(row)
            return self._level(k)[row - int(self._offsets[k])]
        if isinstance(key, slice):
            start, stop, step = key.indices(n)
            if step != 1:
                raise IndexError(
                    "chunked store arrays support contiguous slices only"
                )
            if start >= stop:
                return np.empty(
                    (0,) if self._width is None else (0, self._width),
                    dtype=self.dtype,
                )
            first = self._level_of(start)
            last = self._level_of(stop - 1)
            if first == last:
                base = int(self._offsets[first])
                return self._level(first)[start - base : stop - base]
            parts = []
            for k in range(first, last + 1):
                lo = max(start, int(self._offsets[k]))
                hi = min(stop, int(self._offsets[k + 1]))
                if lo < hi:
                    base = int(self._offsets[k])
                    parts.append(self._level(k)[lo - base : hi - base])
            return np.concatenate(parts)
        raise TypeError(
            f"chunked store arrays take int or slice indices, not "
            f"{type(key).__name__}"
        )

    def __array__(self, dtype=None, copy=None):
        full = self[0 : self.shape[0]]
        if dtype is not None and np.dtype(dtype) != full.dtype:
            return full.astype(dtype)
        return np.asarray(full)


def _v3_arrays(header: StoreHeader, chunks: _ChunkStore) -> SearchArrays:
    """Lazy SearchArrays over a v3 chunk store (decompress on touch)."""
    offsets = np.asarray(header.level_row_offsets, dtype=np.int64)
    parents = gates = None
    if header.track_parents:
        parents = _LazyChunkedArray(chunks, "parents", "<i4", None, offsets)
        gates = _LazyChunkedArray(chunks, "gates", "<i4", None, offsets)
    return SearchArrays(
        expanded_to=header.expanded_to,
        degree=header.degree,
        n_binary=header.n_binary,
        mask_words=header.mask_words,
        level_offsets=offsets,
        perms=_LazyChunkedArray(
            chunks, "perms", np.uint8, header.degree, offsets
        ),
        masks=_LazyChunkedArray(
            chunks, "masks", "<u8", header.mask_words, offsets
        ),
        parents=parents,
        gates=gates,
        elapsed_seconds=header.elapsed_seconds,
    )


def _v3_remainder_index(
    header: StoreHeader, chunks: _ChunkStore, cache_key: tuple | None = None
) -> dict:
    """Deserialize a v3 remainder index; verifies its raw-byte hashes.

    The ``index_sha256`` digests cover the *decompressed* section bytes
    -- the same values a v2 store records -- so the eager-verification
    guarantee (and the per-process verified-identity cache) carries
    over unchanged.
    """
    blobs = {
        name: chunks.chunk(name, 0)
        for name in ("rkeys", "rcosts", "rindptr", "rmatches")
    }
    verified = (
        cache_key is not None
        and _INDEX_VERIFIED.get(cache_key) == header.index_sha256
    )
    if not verified:
        for name, expected in header.index_sha256.items():
            if hashlib.sha256(blobs[name]).hexdigest() != expected:
                raise StoreError(
                    f"store section {name!r} fails its sha256 checksum"
                )
        if cache_key is not None:
            while len(_INDEX_VERIFIED) >= _INDEX_VERIFIED_MAX:
                _INDEX_VERIFIED.pop(next(iter(_INDEX_VERIFIED)))
            _INDEX_VERIFIED[cache_key] = dict(header.index_sha256)
    entries = header.index_entries
    width = header.n_binary
    keys = blobs["rkeys"]
    costs = np.frombuffer(blobs["rcosts"], dtype="<i4")
    indptr = np.frombuffer(blobs["rindptr"], dtype="<i8")
    matches = np.frombuffer(blobs["rmatches"], dtype="<i4")
    index: dict[bytes, tuple[int, np.ndarray]] = {}
    for e in range(entries):
        remainder = keys[e * width : (e + 1) * width]
        index[remainder] = (
            int(costs[e]),
            matches[int(indptr[e]) : int(indptr[e + 1])],
        )
    return index


def _split(data: bytes) -> tuple[StoreHeader, memoryview]:
    """Validate framing + checksum; return (header, payload view)."""
    header, payload_start = _parse_frame(data)
    payload = memoryview(data)[payload_start:]
    if header.format_version == 1:
        _check_v1_payload(header, payload)
    else:
        if header.format_version >= 3:
            _check_v3_header(header, len(payload))
        else:
            _check_v2_header(header, len(payload))
        if hashlib.sha256(payload).hexdigest() != header.payload_sha256:
            raise StoreError("store payload fails its sha256 checksum")
    return header, payload


def _decode_state(header: StoreHeader, payload: memoryview) -> SearchState:
    """Decode a v1 payload into a byte-level snapshot."""
    degree = header.degree
    mask_bytes = header.mask_bytes
    record = degree + mask_bytes
    from_bytes = int.from_bytes

    perms: list[bytes] = []
    levels: list[tuple[tuple[bytes, int], ...]] = []
    offset = 0
    for size in header.level_sizes:
        level = []
        for _ in range(size):
            perm = bytes(payload[offset : offset + degree])
            mask = from_bytes(payload[offset + degree : offset + record], "little")
            level.append((perm, mask))
            perms.append(perm)
            offset += record
        levels.append(tuple(level))

    parents: dict[bytes, tuple[bytes, int]] | None = None
    if header.track_parents:
        parents = {}
        total = len(perms)
        for child_index in range(1, total):
            parent_index = from_bytes(payload[offset : offset + 4], "little")
            gate_index = from_bytes(payload[offset + 4 : offset + 6], "little")
            offset += _PARENT_RECORD
            if parent_index >= child_index:
                raise StoreError(
                    f"parent index {parent_index} does not precede its "
                    f"child {child_index}"
                )
            parents[perms[child_index]] = (perms[parent_index], gate_index)

    return SearchState(
        expanded_to=header.expanded_to,
        levels=tuple(levels),
        parents=parents,
        elapsed_seconds=header.elapsed_seconds,
    )


def _read_header(path: Path) -> tuple[StoreHeader, tuple]:
    """Read a store's metadata block plus the file identity it came from.

    Header and identity are taken from one open file descriptor, so
    they always describe the same inode -- the identity lets the later
    mapping step (:func:`_map_store`) detect a concurrent atomic
    replace instead of failing on a misleading size mismatch.
    """
    with open(path, "rb") as handle:
        identity = _identity_from_stat(path, os.fstat(handle.fileno()))
        magic = handle.read(len(MAGIC_PREFIX) + 1)
        if len(magic) < len(MAGIC_PREFIX) + 1 or not magic.startswith(
            MAGIC_PREFIX
        ):
            raise StoreError("not a closure store (bad magic)")
        if magic[-1] not in SUPPORTED_VERSIONS:
            raise StoreVersionError(
                f"store format {magic[-1]} is not supported (this build "
                f"reads formats {SUPPORTED_VERSIONS})"
            )
        hlen_bytes = handle.read(4)
        if len(hlen_bytes) < 4:
            raise StoreError("truncated store header")
        hlen = int.from_bytes(hlen_bytes, "little")
        blob = handle.read(hlen)
    if len(blob) < hlen:
        raise StoreError("truncated store header")
    try:
        raw = json.loads(blob)
    except ValueError:
        raise StoreError("store header is not valid JSON") from None
    return _header_from_dict(raw), identity


def read_header(path: str | Path) -> StoreHeader:
    """Read only the metadata block of a store file (cheap peek).

    The payload is not read or verified; use :func:`verify_store` for a
    fully checked pass.
    """
    header, _identity = _read_header(Path(path))
    return header


def _check_compatible(
    header: StoreHeader, library: GateLibrary, cost_model: CostModel
) -> None:
    expected_lib = library_fingerprint(library)
    if header.library_fingerprint != expected_lib:
        # Name the mismatching dimension before falling back to raw
        # fingerprints: a cross-radix or cross-width open should say so.
        space = library.space
        if header.radix != space.radix:
            raise StoreMismatchError(
                f"radix mismatch: store holds a radix-{header.radix} "
                f"closure, the given library is radix {space.radix}; "
                "rebuild the store with `repro precompute "
                f"--radix {space.radix}` for this library"
            )
        if header.n_qubits != library.n_qubits:
            raise StoreMismatchError(
                f"width mismatch: store holds a {header.n_qubits}-wire "
                f"closure, the given library spans {library.n_qubits} "
                "wires; rebuild the store with `repro precompute "
                f"--qubits {library.n_qubits}` for this library"
            )
        if header.library_family != library.family:
            raise StoreMismatchError(
                f"library mismatch: store was expanded under the "
                f"{header.library_family!r} gate family, the given "
                f"library is {library.family!r}; rebuild the store with "
                "`repro precompute` for this library"
            )
        raise StoreMismatchError(
            f"library mismatch: store was expanded under library "
            f"fingerprint {header.library_fingerprint[:12]}..., the given "
            f"{library!r} fingerprints {expected_lib[:12]}...; "
            "rebuild the store with `repro precompute` for this library"
        )
    expected_cost = cost_model_fingerprint(cost_model)
    if header.cost_fingerprint != expected_cost:
        raise StoreMismatchError(
            f"cost model mismatch: store was expanded under "
            f"{header.cost_model}, refusing to serve queries for "
            f"{cost_model}"
        )


def _load_split(
    header: StoreHeader,
    payload: memoryview,
    library: GateLibrary,
    cost_model: CostModel,
    cache_key: tuple | None = None,
) -> CascadeSearch:
    """Decode an already-validated (header, payload) pair."""
    _check_compatible(header, library, cost_model)
    if header.format_version == 1:
        state = _decode_state(header, payload)
        return CascadeSearch.from_state(library, state, cost_model)
    if header.format_version >= 3:
        chunks = _ChunkStore(header, payload, cache_key=cache_key)
        search = CascadeSearch.from_arrays(
            library, _v3_arrays(header, chunks), cost_model
        )
        index = _v3_remainder_index(header, chunks, cache_key=cache_key)
    else:
        search = CascadeSearch.from_arrays(
            library, _v2_arrays(header, payload), cost_model
        )
        index = _v2_remainder_index(header, payload, cache_key=cache_key)
    search.attach_remainder_index(header.expanded_to, index)
    return search


def loads_search(
    data: bytes,
    library: GateLibrary,
    cost_model: CostModel = UNIT_COST,
) -> CascadeSearch:
    """Rebuild a search from in-memory store bytes (checksum verified)."""
    header, payload = _split(data)
    return _load_split(header, payload, library, cost_model)


def load_search(
    path: str | Path,
    library: GateLibrary,
    cost_model: CostModel = UNIT_COST,
) -> CascadeSearch:
    """Load a store file back into a ready-to-query :class:`CascadeSearch`.

    v2 stores are memory-mapped: the call returns after reading the
    header and the (small) remainder index, and closure bytes are paged
    in only as queries touch them -- O(queries touched), not O(closure).
    The sha256 checksum is *not* verified on this lazy path (that would
    read every byte); run :func:`verify_store` or ``repro store verify``
    for a full integrity pass.  v1 stores are decoded eagerly, checksum
    included.

    Raises:
        StoreError: corrupted, truncated or unsupported file.
        StoreMismatchError: the store was expanded under a different
            library or cost model than the ones given.
    """
    path = Path(path)
    header, identity = _read_header(path)
    if header.format_version == 1:
        # Eager v1 decode; framing and header are parsed from the bytes.
        return loads_search(path.read_bytes(), library, cost_model)
    return _load_from_path(path, header, library, cost_model, identity)


def _load_from_path(
    path: Path,
    header: StoreHeader,
    library: GateLibrary,
    cost_model: CostModel,
    identity: tuple | None = None,
) -> CascadeSearch:
    """Load with an already-parsed header.

    The lazy v2/v3 path reuses *header* so the open costs a single
    header parse; *identity* (the file identity the header was read
    from) lets the mapping step refuse a concurrently-replaced file.
    The eager v1 path re-frames the bytes it reads anyway (the extra
    parse is noise next to decoding the full closure).
    """
    if header.format_version == 1:
        return loads_search(path.read_bytes(), library, cost_model)
    payload = _map_store(path, header, expected_identity=identity)
    return _load_split(
        header, payload, library, cost_model,
        cache_key=identity if identity is not None else _file_identity(path),
    )


def _map_store(
    path: Path, header: StoreHeader, expected_identity: tuple | None = None
) -> np.memmap:
    """Memory-map a v2/v3 store; validates framing and sizes, not bytes.

    The frame is read from a single file descriptor -- the same one the
    size check and the mapping use -- so the open itself can never mix
    two files.  When *expected_identity* is given (the identity
    :func:`_read_header` captured), a store that was atomically
    replaced between the header read and this call is detected and
    refused by name instead of surfacing as a baffling size or shape
    mismatch: ``repro serve``'s SIGHUP reload replaces store files
    exactly this way.
    """
    if header.format_version not in (2, 3):
        raise StoreVersionError(
            f"expected a mappable v2/v3 store, found format "
            f"{header.format_version}"
        )
    with open(path, "rb") as handle:
        stat = os.fstat(handle.fileno())
        if expected_identity is not None:
            identity = _identity_from_stat(path, stat)
            if identity != expected_identity:
                raise StoreError(
                    f"store {path} was replaced while being opened (a "
                    "concurrent save or SIGHUP reload swapped in a new "
                    "file after its header was read); retry the open to "
                    "load the new store"
                )
        handle.seek(len(MAGIC_PREFIX) + 1)
        hlen = int.from_bytes(handle.read(4), "little")
        payload_start = len(MAGIC_PREFIX) + 5 + hlen
        actual = stat.st_size - payload_start
        if header.format_version >= 3:
            _check_v3_header(header, actual)
        else:
            _check_v2_header(header, actual)
        # Mapping through the open handle (not the path) pins the very
        # inode that was statted; the map outlives the handle.
        return np.memmap(
            handle, dtype=np.uint8, mode="r", offset=payload_start
        )


def _map_v2(
    path: Path, header: StoreHeader, expected_identity: tuple | None = None
) -> np.memmap:
    """Backwards-compatible alias of :func:`_map_store`."""
    return _map_store(path, header, expected_identity)


def open_store(
    path: str | Path,
) -> tuple[StoreHeader, GateLibrary, CascadeSearch]:
    """Self-describing load: rebuild the library from the store header.

    Convenience for the CLI and services that hold only a store path:
    the library and cost model are reconstructed from the header (this
    only works for default-alphabet libraries) and the fingerprints are
    still verified against the rebuilt objects.  v2 stores open lazily
    (see :func:`load_search`).
    """
    path = Path(path)
    header, identity = _read_header(path)
    library = header.rebuild_library()
    search = _load_from_path(
        path, header, library, header.cost_model, identity
    )
    return header, library, search


def projected_shard_layout(
    path: str | Path, shard_bits: int
) -> tuple[list[int], int]:
    """Project a dedup-shard layout from a v2 store's rows (sizing aid).

    Hashes the stored permutations level by level through the
    memory-mapped ``perms`` section -- O(one level) of extra memory, so
    it stays usable on stores bigger than RAM headroom -- and returns
    ``(rows per shard, slab slots per shard at load <= 1/4)``.  `repro
    store shards --bits` uses this when a store carries no recorded
    layout.
    """
    from repro.core.dedup import MAX_SHARD_BITS, shard_of
    from repro.core.kernel import hash_rows, pack_rows

    if not 0 <= shard_bits <= MAX_SHARD_BITS:
        raise StoreError(
            f"shard bits must be in 0..{MAX_SHARD_BITS}, got {shard_bits}"
        )
    path = Path(path)
    header, identity = _read_header(path)
    if header.format_version < 2:
        raise StoreVersionError(
            "projecting a shard layout needs a memory-mapped v2/v3 store"
        )
    payload = _map_store(path, header, expected_identity=identity)
    if header.format_version >= 3:
        arrays = _v3_arrays(
            header, _ChunkStore(header, payload, cache_key=identity)
        )
    else:
        arrays = _v2_arrays(header, payload)
    counts = np.zeros(1 << shard_bits, dtype=np.int64)
    for level in range(header.expanded_to + 1):
        start, stop = arrays.level_rows(level)
        if start == stop:
            continue
        hashes = hash_rows(
            pack_rows(np.array(arrays.perms[start:stop]), header.degree)
        )
        counts += np.bincount(
            shard_of(hashes, shard_bits), minlength=1 << shard_bits
        )
    peak = int(counts.max()) if counts.size else 0
    slots = 1 << max(8, (4 * max(peak, 1) - 1).bit_length())
    return [int(c) for c in counts], slots


def verify_store(path: str | Path) -> StoreHeader:
    """Full integrity pass: framing, checksum and structural invariants.

    Reads the entire file (unlike the lazy v2 open) and raises
    :class:`StoreError` on any corruption; returns the header on
    success.
    """
    data = Path(path).read_bytes()
    header, payload = _split(data)
    if header.format_version >= 2:
        if header.format_version >= 3:
            chunks = _ChunkStore(header, payload)
            # Decompress every chunk once: any codec error or raw-length
            # mismatch fails here, before the structural checks.
            for name, spans in header.chunks.items():
                for idx in range(len(spans)):
                    chunks.chunk(name, idx)
            arrays = _v3_arrays(header, chunks)
            index = _v3_remainder_index(header, chunks)
        else:
            arrays = _v2_arrays(header, payload)
            index = _v2_remainder_index(header, payload)
        library = header.rebuild_library()
        # Full structural validation (identity row, offsets, shapes).
        CascadeSearch.from_arrays(
            library, arrays, header.cost_model, validate=True
        )
        if arrays.parents is not None:
            _check_v2_parents(header, arrays, len(library))
        n = header.level_row_offsets[-1]
        for remainder, (cost, rows) in index.items():
            if not 0 < cost <= header.expanded_to:
                raise StoreError(
                    f"remainder index cost {cost} outside the stored bound"
                )
            if len(rows) and (
                int(rows.min()) < 1 or int(rows.max()) >= n
            ):
                raise StoreError("remainder index row outside the closure")
    return header


def _check_v2_parents(
    header: StoreHeader, arrays: SearchArrays, n_gates: int
) -> None:
    """Level-decreasing parents and in-range gate indices (vectorized).

    Mirrors the cost-decreasing-parent invariant that the v1 path
    enforces through :meth:`CascadeSearch.from_state`: every non-
    identity row must point to a parent in a strictly earlier level and
    name a library gate.
    """
    n = arrays.n_rows
    parents = np.asarray(arrays.parents)
    gates = np.asarray(arrays.gates)
    if n and (int(parents[0]) != -1 or int(gates[0]) != -1):
        raise StoreError("store identity row carries a parent pointer")
    child = parents[1:]
    if child.size:
        if int(child.min()) < 0 or int(child.max()) >= n:
            raise StoreError("store parent pointer outside the closure")
        offsets = np.asarray(header.level_row_offsets, dtype=np.int64)
        row_level = np.searchsorted(
            offsets, np.arange(1, n, dtype=np.int64), side="right"
        )
        parent_level = np.searchsorted(
            offsets, child.astype(np.int64), side="right"
        )
        if not (parent_level < row_level).all():
            raise StoreError("store parent pointer does not decrease cost")
        if int(gates[1:].min()) < 0 or int(gates[1:].max()) >= n_gates:
            raise StoreError(
                f"store gate index outside the {n_gates}-gate library"
            )


def migrate_store(
    src: str | Path,
    dst: str | Path,
    format_version: int = FORMAT_VERSION,
    codec: str | None = None,
) -> tuple[StoreHeader, StoreHeader]:
    """Rewrite a store (any readable version) in *format_version*.

    The source is read once and fully verified (checksum included)
    before writing.  Returns ``(source header, new header)``;
    fingerprints, bound and expansion timing are preserved, so the
    migrated store serves byte-identical query results.  *codec*
    selects the chunk codec when migrating to v3.
    """
    data = Path(src).read_bytes()
    src_header, payload = _split(data)
    library = src_header.rebuild_library()
    search = _load_split(src_header, payload, library, src_header.cost_model)
    dst_header = save_search(
        search, dst, format_version=format_version, codec=codec
    )
    return src_header, dst_header
