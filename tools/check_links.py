#!/usr/bin/env python3
"""Fail on broken intra-repo links in markdown files.

Scans the given markdown files/directories for inline links and images
(``[text](target)``), resolves every relative target against the
containing file, and exits non-zero listing any target that does not
exist.  External links (``http(s)://``, ``mailto:``) and pure anchors
(``#section``) are skipped; ``path#anchor`` targets are checked for the
path part only.

Usage (what the CI docs job runs)::

    python tools/check_links.py README.md docs

Also importable: ``broken_links(paths)`` returns the offending
``(file, target)`` pairs, which ``tests/test_docs.py`` asserts empty.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown links/images; deliberately simple -- the repo's docs
#: do not use reference-style links or angle-bracket destinations.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def iter_markdown(paths: list[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``*.md`` files."""
    files: set[Path] = set()
    for path in paths:
        if path.is_dir():
            files.update(path.rglob("*.md"))
        elif path.suffix == ".md":
            files.add(path)
        else:
            raise SystemExit(f"not a markdown file or directory: {path}")
    return sorted(files)


def broken_links(paths: list[Path]) -> list[tuple[Path, str]]:
    """All ``(markdown file, unresolvable relative target)`` pairs."""
    broken: list[tuple[Path, str]] = []
    for md_file in iter_markdown(paths):
        text = md_file.read_text(encoding="utf-8")
        for match in _LINK.finditer(text):
            target = match.group(1)
            if target.startswith(_SKIP_PREFIXES):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            if not (md_file.parent / relative).exists():
                broken.append((md_file, target))
    return broken


def main(argv: list[str]) -> int:
    if not argv:
        argv = ["README.md", "docs"]
    offenders = broken_links([Path(arg) for arg in argv])
    if offenders:
        for md_file, target in offenders:
            print(f"{md_file}: broken link -> {target}", file=sys.stderr)
        return 1
    checked = len(iter_markdown([Path(arg) for arg in argv]))
    print(f"checked {checked} markdown file(s): all intra-repo links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
