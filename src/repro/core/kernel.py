"""NumPy-vectorized closure-expansion kernel (the hot path of the search).

The seed engine extended a level by looping over every (cascade, gate)
pair in Python: one ``bytes.translate`` per candidate plus a dict lookup
for dedup.  This module replaces that inner loop with whole-level array
operations on a :class:`VectorEngine`:

* **Representation.**  Each discovered permutation is one row of a
  contiguous ``(n_rows, padded_width)`` uint8 array (padded to a
  multiple of 8 so rows view as uint64 words); rows are appended in
  discovery order, so a row index is the permutation's *global index*
  and levels are contiguous row ranges.  Parallel per-level arrays hold
  the S-image bitmask (``mask_words`` uint64 words per row), the parent
  global row and the appended gate index.

* **Candidate generation.**  Per gate, Definition 1's reasonable-product
  test is one vectorized mask filter (``masks & banned == 0``) and
  composition is one fancy-indexing gather through a precomputed
  65536-entry uint16 *pair table* (two labels substituted per lookup --
  half the gathers of a byte-wise table).  A guaranteed-duplicate
  back-edge filter drops candidates that would just undo the gate that
  created their source (``p * g * g^-1 = p`` is always already seen).

* **Dedup.**  New candidates are separated from duplicates with a
  vectorized open-addressing hash table (double hashing over a 64-bit
  mulxor row hash).  Hash hits are verified by comparing full packed
  rows, so the result is exact -- a hash collision only costs an extra
  comparison, never a wrong count.  Batch-internal duplicates resolve
  through claim races: every candidate scatters its id into empty slots
  (lowest id wins, preserving the seed kernel's first-discovery order)
  and losers compare against the winner.

The engine is exact: for any library and cost model it discovers the
same level sets, in the same order, with the same parent pointers as the
seed ``bytes.translate`` kernel (``CascadeSearch(kernel="translate")``),
roughly 3-5x faster end to end on the paper's cost-7 closure.

Dedup-table claim protocol (normative)
--------------------------------------

This section is the reference specification of the vectorized dedup
table; ``tests/test_kernels.py`` (including its forced-collision cases)
pins the behaviour, and any reimplementation -- a sharded or on-disk
table for the 4-qubit closure, a parallel expansion worker -- must
preserve these invariants.

**Slot layout.**  The table is an open-addressing array of ``2**c``
uint64 words, load factor kept under 1/4 (capacity doubles on demand;
rebuilds reinsert all discovered rows).  Each word packs two fields:

* bits 63..32 -- the high half of the occupant's 64-bit mulxor row hash
  (:func:`hash_rows` over the 8-padded row bytes);
* bits 31..0 -- the *encoding*, an int32 in two's complement: ``0`` for
  an empty slot, ``row + 1`` (positive) for a committed global row,
  ``-(candidate_id + 1)`` (negative) for an in-flight batch claim.

**Probe sequence.**  Candidate ``i`` with hash ``h`` probes slot
``(h + r * step) mod 2**c`` in round ``r``, with ``step = (h >> 42) | 1``
(double hashing; round 0 probes ``h mod 2**c`` directly).

**Batch round protocol.**  Each round, every still-unresolved candidate
gathers its slot word once, then exactly one of three transitions
applies:

1. *Occupied, hash-high match* -- the candidate is **assumed** to be a
   duplicate of the occupant and leaves the probe loop; the (candidate,
   occupant-encoding) pair is queued for deferred verification.
2. *Occupied, hash-high mismatch* -- the candidate survives to the next
   round (ordinary collision, probe on).
3. *Empty* -- every candidate that probed this slot scatters its claim
   word (hash high | claim encoding) **in reverse candidate order**, so
   after numpy's last-write-wins scatter the *lowest* candidate id owns
   the slot: first-discovery order is exactly the seed kernel's.  Each
   claimant re-reads the slot; the winner is provisionally **new**,
   a loser whose hash-high matches the winner is an assumed
   batch-internal duplicate (queued as in 1), any other loser probes on.

**Deferred verification.**  After the probe loop, all assumed-duplicate
pairs are verified in one vectorized comparison of full packed rows
(claims resolve against the claiming candidate's row, committed
encodings against the stored row).  A pair that fails -- a genuine
64-bit hash collision -- is re-inserted through an exact scalar probe
path in ascending candidate order.  Optimism therefore never changes
*what* is deduplicated, only how fast.

**Commit.**  Accepted candidates receive consecutive global rows in
candidate order (``n_rows + 1 ..``), and their slots are rewritten from
claim encodings to committed ``row + 1`` encodings; claims never
survive a batch.  Readers (:meth:`VectorEngine.find_row`) treat any
positive encoding with a matching hash-high as a hit candidate and
verify against the full row, so they are correct against committed
state at any batch boundary.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidValueError

#: 64-bit mulxor hash constant (golden-ratio multiplier).
_HASH_C = np.uint64(0x9E3779B97F4A7C15)
_ONE = np.uint64(1)
_LOW32 = np.uint64(0xFFFFFFFF)
#: Initial hash-table capacity (slots); grows by doubling.
_MIN_CAP_BITS = 16


def padded_width(degree: int) -> int:
    """Row width in bytes: *degree* rounded up to a multiple of 8."""
    return -(-degree // 8) * 8


def mask_word_count(degree: int) -> int:
    """uint64 words needed for a *degree*-bit S-image mask."""
    return -(-degree // 64) or 1


def mask_int_to_words(value: int, words: int) -> np.ndarray:
    """Split an arbitrary-precision bitmask into little-endian u64 words."""
    return np.array(
        [(value >> (64 * w)) & 0xFFFFFFFFFFFFFFFF for w in range(words)],
        dtype=np.uint64,
    )


def mask_words_to_int(row: np.ndarray) -> int:
    """Recombine u64 mask words into a Python int bitmask."""
    out = 0
    for w, word in enumerate(row.tolist()):
        out |= word << (64 * w)
    return out


def pack_rows(rows: np.ndarray, degree: int) -> np.ndarray:
    """Pad ``(n, degree)`` uint8 rows to the kernel's aligned width.

    Pad columns hold the fixed points ``degree .. padded_width-1`` so a
    padded row is itself a valid permutation of the padded domain and
    gate tables (identity beyond *degree*) leave the padding untouched.
    """
    width = padded_width(degree)
    n = rows.shape[0]
    if rows.shape[1] == width:
        return np.ascontiguousarray(rows, dtype=np.uint8)
    out = np.empty((n, width), dtype=np.uint8)
    out[:, :degree] = rows
    out[:, degree:] = np.arange(degree, width, dtype=np.uint8)
    return out


#: Row-block size for cache-blocked column sweeps (rows * width ~ L2).
_CHUNK = 1 << 16


def hash_rows(packed: np.ndarray) -> np.ndarray:
    """Mulxor hash of packed rows: ``(n, words) u64 -> (n,) u64``.

    Processed in row blocks so the per-word column sweeps stay in cache
    (each sweep touches every row's cache line; blocking pays the DRAM
    traffic once instead of once per word).
    """
    n = packed.shape[0]
    if not n:
        return np.empty(0, dtype=np.uint64)
    words = packed.view(np.uint64).reshape(n, -1)
    out = np.empty(n, dtype=np.uint64)
    for start in range(0, n, _CHUNK):
        block = words[start : start + _CHUNK]
        h = block[:, 0] * _HASH_C
        for j in range(1, block.shape[1]):
            h = (h ^ block[:, j]) * _HASH_C
        out[start : start + _CHUNK] = h
    return out


#: ``_BIT64[i] == 1 << i`` -- gather table for vectorized mask building.
_BIT64 = _ONE << np.arange(64, dtype=np.uint64)


def compute_masks(perms: np.ndarray, n_binary: int, words: int) -> np.ndarray:
    """S-image mask words for each row: OR of ``1 << image`` over S.

    ``perms`` may be padded or degree-wide; only the first *n_binary*
    columns (the binary labels, always the low indices of the reduced
    ordering) are read.
    """
    n = perms.shape[0]
    out = np.zeros((n, words), dtype=np.uint64)
    if words == 1:
        for start in range(0, n, _CHUNK):
            block = perms[start : start + _CHUNK]
            mask = _BIT64[block[:, 0]]
            for j in range(1, n_binary):
                mask |= _BIT64[block[:, j]]
            out[start : start + _CHUNK, 0] = mask
    else:
        img = perms[:, :n_binary].astype(np.uint64)
        word_idx = img >> np.uint64(6)
        bit = _ONE << (img & np.uint64(63))
        for w in range(words):
            out[:, w] = np.bitwise_or.reduce(
                np.where(word_idx == w, bit, np.uint64(0)), axis=1
            )
    return out


def _pair_table(table: bytes) -> np.ndarray:
    """uint16 pair-substitution table for a 256-byte translate table.

    Entry ``hi << 8 | lo`` maps to ``t[hi] << 8 | t[lo]``, so composing
    a little-endian uint16 view of a row substitutes two labels per
    gather.
    """
    t16 = np.frombuffer(table, dtype=np.uint8).astype(np.uint16)
    return ((t16[:, None] << np.uint16(8)) | t16[None, :]).ravel()


class GateRows:
    """Static per-gate kernel data derived from a gate library.

    Attributes:
        tables: per-gate raw 256-byte translate tables (the source the
            derived pair tables and relation filters are built from).
        tables16: per-gate uint16 pair tables.
        banned: per-gate ``(mask_words,)`` u64 banned masks.
        costs: per-gate integer costs.
        inverse: per-gate index of the inverse gate (-1 if the inverse
            is not in the library), for the back-edge duplicate filter.
    """

    __slots__ = ("tables", "tables16", "banned", "costs", "inverse", "groups")

    def __init__(
        self,
        tables: list[bytes],
        banned_masks: list[int],
        costs: list[int],
        inverse: list[int],
        mask_words: int,
    ):
        self.tables = [bytes(t) for t in tables]
        self.tables16 = [_pair_table(t) for t in tables]
        self.banned = [mask_int_to_words(b, mask_words) for b in banned_masks]
        self.costs = list(costs)
        self.inverse = list(inverse)
        # Gates sharing (banned set, cost) also share the reasonable-
        # product filter, so the per-level keep mask is computed once per
        # group (the paper's L_A..L_BC sub-libraries for n = 3).
        groups: dict[tuple, list[int]] = {}
        for gi, (mask, cost) in enumerate(zip(banned_masks, costs)):
            groups.setdefault((mask, cost), []).append(gi)
        self.groups = list(groups.values())

    def __len__(self) -> int:
        return len(self.tables16)


class VectorEngine:
    """Array-backed closure state plus the vectorized expansion kernel.

    One engine instance owns everything the vector kernel touches: the
    global row store (packed permutations + hashes), the per-level mask,
    parent and gate arrays, and the dedup hash table.  The public
    :class:`~repro.core.search.CascadeSearch` delegates its array-form
    state here and keeps the byte-level legacy API on top.
    """

    def __init__(
        self,
        degree: int,
        n_binary: int,
        gate_rows: GateRows,
        track_parents: bool = True,
    ):
        self.degree = degree
        self.n_binary = n_binary
        self.width = padded_width(degree)
        self.words = self.width // 8
        self.mask_words = mask_word_count(degree)
        self.gate_rows = gate_rows
        self.track_parents = track_parents

        cap = 1024
        self._perms = np.empty((cap, self.width), dtype=np.uint8)
        self._hashes = np.empty(cap, dtype=np.uint64)
        self.n_rows = 0
        self.offsets: list[int] = [0]
        self.level_masks: list[np.ndarray] = []
        self.level_parents: list[np.ndarray] = []
        self.level_gates: list[np.ndarray] = []

        self._cap_bits = _MIN_CAP_BITS
        self._ht = np.zeros(1 << self._cap_bits, dtype=np.uint64)

        #: Optional progress sink (duck-typed ``ProgressReporter``);
        #: ``None`` keeps every phase boundary a plain attribute check,
        #: so un-instrumented runs pay nothing.
        self.progress = None
        self._last_planned = 0

    # -- row store ---------------------------------------------------------------------

    @property
    def n_levels(self) -> int:
        return len(self.offsets) - 1

    def level_size(self, level: int) -> int:
        return self.offsets[level + 1] - self.offsets[level]

    def level_perms(self, level: int) -> np.ndarray:
        """Padded ``(n, width)`` uint8 view of one level's rows."""
        return self._perms[self.offsets[level] : self.offsets[level + 1]]

    def level_perms_raw(self, level: int) -> np.ndarray:
        """Degree-wide ``(n, degree)`` view (drops the pad columns)."""
        return self.level_perms(level)[:, : self.degree]

    def all_perms_raw(self) -> np.ndarray:
        """Degree-wide view of every row, level-major discovery order."""
        return self._perms[: self.n_rows, : self.degree]

    def row_bytes(self, row: int) -> bytes:
        """The raw image bytes of one global row."""
        if not 0 <= row < self.n_rows:
            raise InvalidValueError(f"row {row} outside 0..{self.n_rows - 1}")
        return self._perms[row, : self.degree].tobytes()

    def level_of_row(self, row: int) -> int:
        """The level (= cost layer) a global row belongs to."""
        import bisect

        return bisect.bisect_right(self.offsets, row) - 1

    def parent_of(self, row: int) -> tuple[int, int]:
        """``(parent global row, gate index)`` of a non-identity row."""
        level = self.level_of_row(row)
        local = row - self.offsets[level]
        return (
            int(self.level_parents[level][local]),
            int(self.level_gates[level][local]),
        )

    def _grow_rows(self, extra: int) -> None:
        need = self.n_rows + extra
        cap = self._perms.shape[0]
        if need <= cap:
            return
        while cap < need:
            cap *= 2
        perms = np.empty((cap, self.width), dtype=np.uint8)
        perms[: self.n_rows] = self._perms[: self.n_rows]
        self._perms = perms
        hashes = np.empty(cap, dtype=np.uint64)
        hashes[: self.n_rows] = self._hashes[: self.n_rows]
        self._hashes = hashes

    # -- hash table --------------------------------------------------------------------
    #
    # One uint64 word per slot: the high 32 bits hold the row hash's high
    # half, the low 32 bits the *encoding* -- 0 for empty, ``row + 1``
    # for a discovered row, ``-(candidate_id + 1)`` (two's complement)
    # for an in-flight batch claim.  A single gather per probe reads
    # both; truncating the stored hash to 32 bits is safe because every
    # hash match is verified against the full packed rows anyway.

    @staticmethod
    def _pack_word(hashes: np.ndarray, enc: np.ndarray) -> np.ndarray:
        """Combine hash high halves with int32 encodings into slot words."""
        return (hashes & ~_LOW32) | (
            enc.astype(np.int64).view(np.uint64) & _LOW32
        )

    def _ensure_capacity(self, total_rows: int) -> None:
        """Grow + rebuild the table so *total_rows* keeps load under 1/4.

        The array is allocated with an explicit sequential fill rather
        than ``np.zeros`` so the page faults happen in one streaming pass
        instead of randomly during the first probe rounds.
        """
        if total_rows * 4 <= (1 << self._cap_bits):
            return
        while total_rows * 4 > (1 << self._cap_bits):
            self._cap_bits += 1
        cap = 1 << self._cap_bits
        self._ht = np.empty(cap, dtype=np.uint64)
        self._ht.fill(0)
        if self.n_rows:
            self._insert_distinct(
                self._hashes[: self.n_rows],
                np.arange(1, self.n_rows + 1, dtype=np.int32),
            )

    def _insert_distinct(self, hashes: np.ndarray, rows: np.ndarray) -> None:
        """Insert rows known to be pairwise-distinct and not in the table.

        ``rows`` carries the +1-encoded slot values (row index plus one).
        """
        msk = np.uint64((1 << self._cap_bits) - 1)
        ht = self._ht
        words = self._pack_word(hashes, rows)
        alive = np.arange(hashes.size, dtype=np.int64)
        rnd = np.uint64(0)
        while alive.size:
            h = hashes[alive]
            step = (h >> np.uint64(42)) | _ONE
            slot = ((h + rnd * step) & msk).view(np.int64)
            empty = (np.take(ht, slot, mode="clip") & _LOW32) == 0
            idx = alive[empty]
            sl = slot[empty]
            ht[sl[::-1]] = words[idx[::-1]]
            won = np.take(ht, sl, mode="clip") == words[idx]
            alive = np.concatenate([alive[~empty], idx[~won]])
            rnd += _ONE

    def find_row(self, images: bytes) -> int:
        """Global row of a permutation, or -1 if not discovered."""
        row = np.frombuffer(images, dtype=np.uint8)[None, :]
        packed = pack_rows(row, self.degree)
        h = hash_rows(packed)[0]
        key = packed.view(np.uint64)[0]
        msk = np.uint64((1 << self._cap_bits) - 1)
        step = (h >> np.uint64(42)) | _ONE
        probe = h & msk
        high = int(h >> np.uint64(32))
        for _ in range(1 << self._cap_bits):
            slot = int(probe)
            word = int(self._ht[slot])
            occupant = (word & 0xFFFFFFFF) - ((word & 0x80000000) << 1)
            if occupant == 0:
                return -1
            if occupant > 0 and (word >> 32) == high:
                stored = self._perms[occupant - 1].view(np.uint64)
                if bool((stored == key).all()):
                    return occupant - 1
            probe = (probe + step) & msk
        return -1

    # -- dedup + insert ----------------------------------------------------------------

    def _occupant_packed(
        self, occupant: np.ndarray, candw: np.ndarray
    ) -> np.ndarray:
        """Packed rows behind occupant encodings.

        ``occupant`` holds slot values: discovered rows as ``row + 1``
        (positive) or batch claims as ``-(candidate_id + 1)`` (negative).
        """
        permw = self._perms.view(np.uint64)
        batch = occupant < 0
        if batch.any():
            packed = np.empty((occupant.size, self.words), dtype=np.uint64)
            packed[batch] = np.take(
                candw, -occupant[batch] - 1, axis=0, mode="clip"
            )
            glob = ~batch
            if glob.any():
                packed[glob] = np.take(
                    permw, occupant[glob] - 1, axis=0, mode="clip"
                )
            return packed
        return np.take(permw, occupant - 1, axis=0, mode="clip")

    def _dedup_insert(self, cand: np.ndarray, ch: np.ndarray) -> np.ndarray:
        """Classify candidate rows, returning the accepted-as-new mask.

        Exactly-once semantics: among candidates with equal images the
        lowest index survives (matching the seed kernel's first-discovery
        order), and a candidate equal to an already-discovered row is
        dropped.  Winners are inserted with their final global rows.

        A candidate whose hash matches an occupant is *optimistically*
        treated as that occupant's duplicate during the probe rounds; all
        such pairs are then verified in one vectorized row comparison,
        and the (cosmically rare) hash-collision victims are re-inserted
        through the exact scalar path -- so the optimistic fast path
        never changes the result, only the speed.
        """
        M = cand.shape[0]
        self._ensure_capacity(self.n_rows + M)
        msk = np.uint64((1 << self._cap_bits) - 1)
        ht = self._ht
        candw = cand.view(np.uint64)
        status = np.zeros(M, dtype=np.int8)  # 0 pending, 1 new, 2 dup
        slot_of = np.empty(M, dtype=np.int64)
        pair_cand: list[np.ndarray] = []  # assumed-dup candidate ids
        pair_occ: list[np.ndarray] = []  # the occupant encodings they hit
        ids = None  # None = all candidates (round 0 fast path)
        rnd = np.uint64(0)
        while True:
            if ids is None:
                h = ch
                slot = (h & msk).view(np.int64)
            else:
                if not ids.size:
                    break
                h = np.take(ch, ids)
                step = (h >> np.uint64(42)) | _ONE
                slot = ((h + rnd * step) & msk).view(np.int64)
            word = np.take(ht, slot, mode="clip")
            enc = (word & _LOW32).astype(np.uint32).view(np.int32)
            survivors = []
            # Occupied slots (nonzero encoding): a hash-high match is an
            # assumed duplicate (deferred verification); a mismatch
            # probes on.
            occ_i = np.flatnonzero(enc)
            if occ_i.size:
                own = occ_i if ids is None else np.take(ids, occ_i)
                hmatch = (
                    np.take(word, occ_i) >> np.uint64(32)
                ) == (np.take(h, occ_i) >> np.uint64(32))
                if hmatch.any():
                    dup_own = own[hmatch]
                    status[dup_own] = 2
                    pair_cand.append(dup_own)
                    pair_occ.append(np.take(enc, occ_i[hmatch]))
                    survivors.append(own[~hmatch])
                else:
                    survivors.append(own)
            # Empty slots: claim with the candidate id; the reversed
            # scatter makes the lowest id win, and a loser whose hash
            # matches the winner's is an assumed batch-internal duplicate.
            emp_i = np.flatnonzero(enc == 0)
            if emp_i.size:
                claimants = emp_i if ids is None else np.take(ids, emp_i)
                sl = np.take(slot, emp_i)
                my_h = np.take(ch, claimants)
                my_word = self._pack_word(
                    my_h, (-1 - claimants).astype(np.int32)
                )
                ht[sl[::-1]] = my_word[::-1]
                got = np.take(ht, sl, mode="clip")
                won = got == my_word
                winners = claimants[won]
                status[winners] = 1
                slot_of[winners] = sl[won]
                lost = ~won
                if lost.any():
                    lcl = claimants[lost]
                    gotl = got[lost]
                    same_h = (gotl >> np.uint64(32)) == (
                        my_h[lost] >> np.uint64(32)
                    )
                    if same_h.any():
                        si = np.flatnonzero(same_h)
                        status[lcl[si]] = 2
                        pair_cand.append(lcl[si])
                        pair_occ.append(
                            (gotl[si] & _LOW32)
                            .astype(np.uint32)
                            .view(np.int32)
                        )
                        keep = np.ones(lcl.size, dtype=bool)
                        keep[si] = False
                        survivors.append(lcl[keep])
                    else:
                        survivors.append(lcl)
            ids = (
                np.concatenate(survivors)
                if survivors
                else np.empty(0, dtype=np.int64)
            )
            rnd += _ONE
        # Verify every assumed duplicate in one vectorized comparison.
        if pair_cand:
            cids = np.concatenate(pair_cand)
            occs = np.concatenate(pair_occ)
            eq = (
                self._occupant_packed(occs, candw)
                == np.take(candw, cids, axis=0, mode="clip")
            ).all(axis=1)
            for cid in np.sort(cids[~eq]):
                # Hash collision: not a duplicate after all.  Exact
                # scalar re-insert (one candidate per ~2^64 hashes).
                self._scalar_insert(int(cid), cand, ch, status, slot_of)
        new_mask = status == 1
        accepted = np.flatnonzero(new_mask)
        final_rows = (self.n_rows + 1 + np.arange(accepted.size)).astype(
            np.int32
        )
        ht[slot_of[accepted]] = self._pack_word(
            np.take(ch, accepted), final_rows
        )
        return new_mask

    def _scalar_insert(
        self,
        cid: int,
        cand: np.ndarray,
        ch: np.ndarray,
        status: np.ndarray,
        slot_of: np.ndarray,
    ) -> None:
        """Exact single-candidate probe for hash-collision victims."""
        candw = cand.view(np.uint64)
        msk = np.uint64((1 << self._cap_bits) - 1)
        h = ch[cid]
        step = (h >> np.uint64(42)) | _ONE
        probe = h & msk
        high = int(h >> np.uint64(32))
        key = candw[cid]
        for _ in range(1 << self._cap_bits):
            slot = int(probe)
            word = int(self._ht[slot])
            occupant = (word & 0xFFFFFFFF) - ((word & 0x80000000) << 1)
            if occupant == 0:
                self._ht[slot] = self._pack_word(
                    h[None], np.array([-1 - cid], dtype=np.int32)
                )[0]
                status[cid] = 1
                slot_of[cid] = slot
                return
            if (word >> 32) == high:
                if occupant > 0:
                    stored = self._perms[occupant - 1].view(np.uint64)
                else:
                    stored = candw[-occupant - 1]
                if bool((stored == key).all()):
                    status[cid] = 2
                    return
            probe = (probe + step) & msk
        raise InvalidValueError("hash table full during scalar insert")

    # -- level append ------------------------------------------------------------------

    def _append_level(
        self,
        perms: np.ndarray,
        hashes: np.ndarray,
        masks: np.ndarray,
        parents: np.ndarray,
        gates: np.ndarray,
    ) -> None:
        n = perms.shape[0]
        self._grow_rows(n)
        self._perms[self.n_rows : self.n_rows + n] = perms
        self._hashes[self.n_rows : self.n_rows + n] = hashes
        self.n_rows += n
        self.offsets.append(self.n_rows)
        self.level_masks.append(masks)
        self.level_parents.append(parents)
        self.level_gates.append(gates)

    def seed_identity(self) -> None:
        """Install level 0: the identity singleton."""
        if self.n_levels:
            raise InvalidValueError("engine already seeded")
        identity = np.arange(self.width, dtype=np.uint8)[None, :]
        h = hash_rows(identity)
        self._ensure_capacity(1)
        self._append_level(
            identity,
            h,
            compute_masks(identity, self.n_binary, self.mask_words),
            np.full(1, -1, dtype=np.int32),
            np.full(1, -1, dtype=np.int32),
        )
        self._insert_distinct(h, np.ones(1, dtype=np.int32))

    def load_level(
        self,
        perms: np.ndarray,
        masks: np.ndarray | None = None,
        parents: np.ndarray | None = None,
        gates: np.ndarray | None = None,
    ) -> None:
        """Append one level of already-validated, pairwise-distinct rows.

        Used when rebuilding the engine from a store or a legacy
        snapshot.  ``masks`` are recomputed when absent; ``parents`` and
        ``gates`` default to -1 (unknown -- the back-edge filter then
        skips those rows, which only costs a few extra candidates).
        """
        n = perms.shape[0]
        # Explicit copies throughout: the inputs may be views of a
        # memory-mapped store file, and the engine must not keep that
        # mapping alive (the caller may re-save over the file).
        packed = pack_rows(np.array(perms, dtype=np.uint8), self.degree)
        hashes = hash_rows(packed)
        if masks is None:
            masks = compute_masks(packed, self.n_binary, self.mask_words)
        else:
            masks = np.array(masks, dtype=np.uint64).reshape(
                n, self.mask_words
            )
        if parents is None:
            parents = np.full(n, -1, dtype=np.int32)
        else:
            parents = np.array(parents, dtype=np.int32)
        if gates is None:
            gates = np.full(n, -1, dtype=np.int32)
        else:
            gates = np.array(gates, dtype=np.int32)
        start = self.n_rows
        self._ensure_capacity(self.n_rows + n)
        self._append_level(packed, hashes, masks, parents, gates)
        if n:
            self._insert_distinct(
                hashes, (start + 1 + np.arange(n)).astype(np.int32)
            )

    # -- the kernel --------------------------------------------------------------------
    #
    # ``expand_level`` is split into four phases so sharded/parallel
    # engines (:mod:`repro.core.parallel`) can override one phase at a
    # time while inheriting the rest:
    #
    #   _plan_chunks         -> which (gate, source level, kept rows)
    #                           pairs become candidates, in the
    #                           determinism-critical library-gate order;
    #   _filter_candidates   -> per-chunk pruning hook (identity here;
    #                           the relation filter of the parallel
    #                           engine drops provable duplicates);
    #   _generate_candidates -> compose + hash every kept pair;
    #   _commit_level        -> dedup, append accepted rows, build the
    #                           per-level mask/parent/gate arrays.

    def _plan_chunks(
        self, cost: int
    ) -> tuple[list[tuple[int, int, np.ndarray]], int]:
        """Candidate chunks ``(gate, src level, kept src rows)`` for a level.

        Chunks are returned sorted by library-gate index: candidates
        must appear in gate order for discovery order (and hence parent
        choice) to match the translate kernel.
        """
        rows = self.gate_rows
        chunks: list[tuple[int, int, np.ndarray]] = []
        total = 0
        planned = 0
        for group in rows.groups:
            src = cost - rows.costs[group[0]]
            if src < 0 or src >= self.n_levels:
                continue
            if not self.level_size(src):
                continue
            masks = self.level_masks[src]
            banned = rows.banned[group[0]]
            if self.mask_words == 1:
                keep_group = (masks[:, 0] & banned[0]) == 0
            else:
                keep_group = ~((masks & banned[None, :]).any(axis=1))
            for gi in group:
                inverse = rows.inverse[gi]
                if inverse >= 0:
                    # p * g * g^-1 == p is always already discovered.
                    keep = keep_group & (self.level_gates[src] != inverse)
                else:
                    keep = keep_group
                kept = np.flatnonzero(keep)
                planned += kept.size
                if kept.size:
                    kept = self._filter_candidates(src, gi, kept)
                if kept.size:
                    chunks.append((gi, src, kept))
                    total += kept.size
        chunks.sort(key=lambda chunk: chunk[0])
        # Pre-filter candidate count, read by the progress ``plan``
        # event (the filter hook may have dropped some of *planned*).
        self._last_planned = planned
        return chunks, total

    def _filter_candidates(
        self, src: int, gi: int, kept: np.ndarray
    ) -> np.ndarray:
        """Hook: drop kept rows whose candidates are provable duplicates.

        The base engine keeps everything; overrides must only remove
        candidates that some earlier candidate (earlier level, or same
        level and smaller gate index) is guaranteed to have produced,
        so levels, discovery order and parents stay byte-identical.
        """
        return kept

    def _generate_candidates(
        self, chunks: list[tuple[int, int, np.ndarray]], total: int
    ):
        """Compose + hash all planned candidates.

        Returns ``(cand, ch, parents, gates)``: packed candidate rows,
        their hashes, parent global rows (None on counting-only runs)
        and appended-gate indices, all in chunk order.
        """
        rows = self.gate_rows
        cand, ch, parents, gates = self._candidate_buffers(total)
        cand16 = cand.view(np.uint16)
        pos = 0
        for gi, src, kept in chunks:
            m = kept.size
            src16 = self.level_perms(src).view(np.uint16)
            block = cand16[pos : pos + m]
            # mode="clip" skips the bounds check; uint16 indices cannot
            # exceed the 65536-entry pair table anyway.
            np.take(
                rows.tables16[gi],
                np.take(src16, kept, axis=0),
                out=block,
                mode="clip",
            )
            # Hash while the freshly written block is still cache-hot.
            ch[pos : pos + m] = hash_rows(cand[pos : pos + m])
            if parents is not None:
                parents[pos : pos + m] = self.offsets[src] + kept
            gates[pos : pos + m] = gi
            pos += m
        return cand, ch, parents, gates

    def _wants_parents(self) -> bool:
        """Whether candidate parents are materialized during expansion."""
        return self.track_parents

    def _candidate_buffers(self, total: int):
        """Scratch arrays for one level's candidates (overridable).

        Returns ``(cand, ch, parents, gates)``; *parents* is None on
        counting-only runs (the gate array stays -- it feeds the
        back-edge duplicate filter).
        """
        return (
            np.empty((total, self.width), dtype=np.uint8),
            np.empty(total, dtype=np.uint64),
            np.empty(total, dtype=np.int32) if self._wants_parents() else None,
            np.empty(total, dtype=np.int32),
        )

    def _commit_level(self, cand, ch, parents, gates) -> int:
        """Dedup the candidate batch and append the accepted rows."""
        new_mask = self._dedup_insert(cand, ch)
        accepted = np.flatnonzero(new_mask)
        n_new = accepted.size
        self._grow_rows(n_new)
        start = self.n_rows
        np.take(cand, accepted, axis=0, out=self._perms[start : start + n_new])
        np.take(ch, accepted, out=self._hashes[start : start + n_new])
        new_perms = self._perms[start : start + n_new]
        self.n_rows += n_new
        self.offsets.append(self.n_rows)
        self.level_masks.append(
            compute_masks(new_perms, self.n_binary, self.mask_words)
        )
        self.level_parents.append(
            parents[accepted]
            if parents is not None
            else np.empty(0, dtype=np.int32)
        )
        self.level_gates.append(gates[accepted])
        return int(n_new)

    def dedup_stats(self) -> dict:
        """Occupancy of the dedup structure, as progress-event fields."""
        return {
            "dedup_slots": int(self._ht.size),
            "dedup_used": int(self.n_rows),
        }

    def expand_level(self, cost: int) -> int:
        """Compute the next level (must be ``n_levels``); returns its size."""
        if cost != self.n_levels:
            raise InvalidValueError(
                f"levels must be expanded in order: next is {self.n_levels}, "
                f"got {cost}"
            )
        progress = self.progress
        chunks, total = self._plan_chunks(cost)
        if progress is not None:
            progress.emit(
                "plan",
                level=cost,
                chunks=len(chunks),
                planned=int(self._last_planned),
                kept=int(total),
                rows=int(self.n_rows),
            )
        if not total:
            self._append_level(
                np.empty((0, self.width), dtype=np.uint8),
                np.empty(0, dtype=np.uint64),
                np.empty((0, self.mask_words), dtype=np.uint64),
                np.empty(0, dtype=np.int32),
                np.empty(0, dtype=np.int32),
            )
            if progress is not None:
                progress.emit(
                    "commit",
                    level=cost,
                    accepted=0,
                    rows=int(self.n_rows),
                    **self.dedup_stats(),
                )
            return 0
        cand, ch, parents, gates = self._generate_candidates(chunks, total)
        if progress is not None:
            progress.emit("generate", level=cost, candidates=int(total))
        n_new = self._commit_level(cand, ch, parents, gates)
        if progress is not None:
            progress.emit(
                "commit",
                level=cost,
                accepted=int(n_new),
                rows=int(self.n_rows),
                **self.dedup_stats(),
            )
        return n_new
