"""Baseline synthesizers the paper argues against.

The paper's motivation (Section 1): synthesizing with *permutative*
reversible gates (NOT/CNOT/Toffoli -- the NCT library) and minimizing
gate count "does not necessarily result in a quantum implementation with
the lowest cost", because a Toffoli costs 5 elementary 2-qubit gates
while a CNOT costs 1.  To make that argument measurable we implement:

* :mod:`repro.baselines.nct` -- exhaustive BFS-optimal gate-count
  synthesis over the NCT library (the Shende et al. style baseline);
* :mod:`repro.baselines.mmd` -- the Miller-Maslov-Dueck
  transformation-based heuristic (reference [10] of the paper);
* :mod:`repro.baselines.compare` -- quantum-cost accounting that maps
  NCT circuits onto the paper's elementary-gate costs and tabulates the
  comparison against direct MCE synthesis.
"""

from repro.baselines.nct import (
    NCTGate,
    NCTLibrary,
    NCTSynthesizer,
    nct_quantum_cost,
    NCTCostAssignment,
)
from repro.baselines.mmd import mmd_synthesize
from repro.baselines.compare import ComparisonRow, compare_targets
from repro.baselines.permlib import (
    PermutativeGate,
    PermutativeLibrary,
    OptimalPermutativeSynthesizer,
    nct_library,
    nctp_library,
    pnc_library,
    peres_gates,
)

__all__ = [
    "NCTGate",
    "NCTLibrary",
    "NCTSynthesizer",
    "NCTCostAssignment",
    "nct_quantum_cost",
    "mmd_synthesize",
    "ComparisonRow",
    "compare_targets",
    "PermutativeGate",
    "PermutativeLibrary",
    "OptimalPermutativeSynthesizer",
    "nct_library",
    "nctp_library",
    "pnc_library",
    "peres_gates",
]
