"""Unit tests for the numpy statevector simulator (repro.sim.statevector)."""

import numpy as np
import pytest

from repro.errors import InvalidValueError
from repro.core.circuit import Circuit
from repro.gates.gate import Gate
from repro.mvl.patterns import Pattern, binary_patterns
from repro.mvl.values import Qv
from repro.sim.statevector import (
    StatevectorSimulator,
    circuit_unitary_numpy,
    gate_unitary_numpy,
    pattern_statevector,
    value_statevector,
)


def exact_as_numpy(matrix):
    return np.array(matrix.to_complex_lists(), dtype=np.complex128)


class TestGateUnitaries:
    def test_every_library_gate_matches_exact_unitary(self, library3):
        for entry in library3.gates:
            numeric = gate_unitary_numpy(entry.gate)
            exact = exact_as_numpy(entry.gate.unitary)
            assert np.array_equal(numeric, exact), entry.name

    def test_not_gate_matches_exact(self):
        gate = Gate.not_(1, 3)
        assert np.array_equal(
            gate_unitary_numpy(gate), exact_as_numpy(gate.unitary)
        )

    def test_unitarity_numeric(self):
        for gate in (Gate.v(2, 0, 3), Gate.vdag(0, 1, 3), Gate.cnot(1, 2, 3)):
            u = gate_unitary_numpy(gate)
            assert np.allclose(u @ u.conj().T, np.eye(8))


class TestCircuitUnitary:
    def test_matches_exact_for_peres(self):
        circuit = Circuit.from_names("V_CB F_BA V_CA V+_CB", 3)
        assert np.array_equal(
            circuit_unitary_numpy(circuit), exact_as_numpy(circuit.unitary())
        )

    def test_empty_circuit(self):
        assert np.array_equal(
            circuit_unitary_numpy(Circuit.empty(2)), np.eye(4)
        )


class TestStates:
    def test_value_statevectors(self):
        assert np.array_equal(value_statevector(Qv.ZERO), [1, 0])
        v0 = value_statevector(Qv.V0)
        assert v0[0] == 0.5 + 0.5j and v0[1] == 0.5 - 0.5j

    def test_pattern_statevector_binary(self):
        state = pattern_statevector(Pattern([1, 0]))
        assert np.array_equal(state, [0, 0, 1, 0])

    def test_pattern_statevector_normalized(self):
        state = pattern_statevector(Pattern([1, Qv.V0, Qv.V1]))
        assert np.isclose(np.vdot(state, state).real, 1.0)


class TestSimulator:
    def test_initial_state_from_index(self):
        sim = StatevectorSimulator(3)
        state = sim.initial_state(5)
        assert state[5] == 1.0 and np.sum(np.abs(state)) == 1.0

    def test_initial_state_from_pattern(self):
        sim = StatevectorSimulator(2)
        state = sim.initial_state(Pattern([1, 1]))
        assert state[3] == 1.0

    def test_initial_state_validation(self):
        sim = StatevectorSimulator(2)
        with pytest.raises(InvalidValueError):
            sim.initial_state(4)
        with pytest.raises(InvalidValueError):
            sim.initial_state(Pattern([1, 1, 1]))
        with pytest.raises(InvalidValueError):
            sim.initial_state(np.zeros(3))

    def test_apply_gate_equals_matrix_multiply(self, library3):
        sim = StatevectorSimulator(3)
        rng = np.random.default_rng(11)
        state = rng.normal(size=8) + 1j * rng.normal(size=8)
        state /= np.linalg.norm(state)
        for entry in library3.gates[:9]:
            via_tensor = sim.apply_gate(state, entry.gate)
            via_matrix = gate_unitary_numpy(entry.gate) @ state
            assert np.allclose(via_tensor, via_matrix)

    def test_apply_not_gate(self):
        sim = StatevectorSimulator(2)
        state = sim.initial_state(0)
        out = sim.apply_gate(state, Gate.not_(0, 2))
        assert out[2] == 1.0

    def test_run_toffoli_truth_table(self, library3, search3):
        from repro.core.mce import express
        from repro.gates import named

        circuit = express(named.TOFFOLI, library3, search=search3).circuit
        sim = StatevectorSimulator(3)
        for index in range(8):
            state = sim.run(circuit, index)
            expected = named.TOFFOLI(index)
            assert np.isclose(abs(state[expected]), 1.0)

    def test_run_matches_exact_simulator_on_patterns(self):
        from repro.sim.exact import ExactSimulator

        circuit = Circuit.from_names("V_CB F_BA V_CA V+_CB", 3)
        sim = StatevectorSimulator(3)
        exact = ExactSimulator(3)
        for pattern in binary_patterns(3):
            numeric = sim.run(circuit, pattern)
            reference = np.array(
                [x.to_complex() for x in exact.run(circuit, pattern).column_vector()]
            )
            assert np.array_equal(numeric, reference)

    def test_width_mismatch(self):
        sim = StatevectorSimulator(2)
        with pytest.raises(InvalidValueError):
            sim.run(Circuit.empty(3), 0)
        with pytest.raises(InvalidValueError):
            sim.apply_gate(np.zeros(4, dtype=complex), Gate.v(1, 0, 3))

    def test_probabilities_and_distribution(self):
        sim = StatevectorSimulator(3)
        circuit = Circuit.from_names("V_BA", 3)
        state = sim.run(circuit, 4)  # |100>
        probs = sim.probabilities(state)
        assert np.isclose(probs.sum(), 1.0)
        dist = sim.basis_distribution(state)
        assert set(dist) == {4, 6}  # (1,0,0) and (1,1,0)
        assert np.isclose(dist[4], 0.5) and np.isclose(dist[6], 0.5)

    def test_needs_positive_width(self):
        with pytest.raises(InvalidValueError):
            StatevectorSimulator(0)
