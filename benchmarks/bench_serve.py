"""E-serve -- long-lived service vs per-invocation CLI latency.

Measures the point of ``repro serve``: once the v2 store opens in
milliseconds, the remaining per-query cost of ``repro synth --store``
is *process lifecycle* -- interpreter startup, imports, store open,
one query, exit.  A long-lived server pays that once, so the marginal
query is a socket round trip against a warm, frozen closure.

Five measurements:

* **per-invocation CLI**: wall time of ``python -m repro synth toffoli
  --store ...`` subprocesses (the workflow the server replaces);
* **warm server, sequential**: p50/p99/mean latency of single-target
  queries over one persistent NDJSON connection;
* **warm server, concurrent**: aggregate throughput with several
  client threads in flight (exercises the coalescing dispatcher);
* **64-target batch**: one ``synth-batch`` call, verified **identical**
  to a local :meth:`BatchSynthesizer.synthesize_many` over the same
  store -- the correctness bar for the whole serving stack;
* **multi-store / UNIX socket**: one process serving two stores
  (routed per request by alias) over TCP *and* a UNIX socket with an
  access log attached -- per-alias latency on both transports, routed
  results verified identical to a local synthesizer per store, and the
  server's own ``healthz`` queue-wait/latency percentiles captured.

Acceptance bars: warm-server per-query latency >= 50x better than the
per-invocation CLI, the 64-target batch identity, and per-alias
multi-store identity over both transports.  Results land in
``BENCH_serve.json`` at the repo root so performance is trendable
across PRs.

Run standalone (prints a small report)::

    PYTHONPATH=src python benchmarks/bench_serve.py

or as a pytest module (asserts the bars)::

    PYTHONPATH=src python -m pytest benchmarks/bench_serve.py -s

Markers: carries ``benchmark`` (timing-sensitive; excluded from the
default tier-1 selection, run explicitly or with ``-m benchmark``).
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import subprocess
import sys
import tempfile
import threading
from pathlib import Path
from time import perf_counter

import pytest

from repro.client import ServeClient
from repro.core.batch import BatchSynthesizer
from repro.core.search import CascadeSearch
from repro.core.store import save_search
from repro.gates.library import GateLibrary
from repro.io import open_store, result_to_dict
from repro.server import BackgroundServer

COST_BOUND = 5  # covers Toffoli; precompute stays a couple of seconds
SHALLOW_BOUND = 4  # the second registry store in the multi-store scenario
N_CLI = 3
N_WARM = 400
N_MULTI = 200  # per-alias queries in the multi-store/UNIX scenario
N_THREADS = 4
N_PER_THREAD = 100
SPEEDUP_BAR = 50.0

_REPO_ROOT = Path(__file__).resolve().parent.parent
_JSON_PATH = _REPO_ROOT / "BENCH_serve.json"


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def _batch_targets(batch: BatchSynthesizer, count: int) -> list:
    """*count* in-bound targets spread over every cost level (S8 coset)."""
    targets = []
    for cost in range(batch.cost_bound + 1):
        targets.extend(batch.targets_at_cost(cost, include_not_layers=True))
        if len(targets) >= count:
            break
    return targets[:count]


def measure(work_dir: Path) -> dict:
    """Time per-invocation CLI vs warm-server serving over one store."""
    store_path = work_dir / "closure.rpro"
    search = CascadeSearch(GateLibrary(3), track_parents=True)
    search.extend_to(COST_BOUND)
    save_search(search, store_path)

    # Per-invocation CLI: what every query costs without a server.
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    cli_times = []
    for _ in range(N_CLI):
        started = perf_counter()
        subprocess.run(
            [
                sys.executable, "-m", "repro", "synth", "toffoli",
                "--store", str(store_path),
            ],
            check=True,
            capture_output=True,
            env=env,
        )
        cli_times.append(perf_counter() - started)
    cli_per_invocation = statistics.mean(cli_times)

    # Ground truth for the identity check.
    _header, _library, loaded = open_store(store_path)
    local_batch = BatchSynthesizer(loaded)
    targets64 = _batch_targets(local_batch, 64)
    want64 = [
        result_to_dict(result)
        for result in local_batch.synthesize_many(targets64)
    ]
    warm_specs = [
        target.cycle_string()
        for target in _batch_targets(local_batch, N_WARM)
    ]

    with BackgroundServer(str(store_path)) as server:
        with ServeClient(server.address_text) as client:
            client.healthz()  # connection + code paths warm
            client.synth("toffoli")

            # Sequential warm latency.
            latencies = []
            for spec in warm_specs:
                started = perf_counter()
                client.synth(spec)
                latencies.append(perf_counter() - started)

            # One 64-target batch; identity against synthesize_many.
            started = perf_counter()
            reply = client.synth_batch(
                [target.cycle_string() for target in targets64]
            )
            batch64_s = perf_counter() - started
            got64 = [entry["result"] for entry in reply["results"]]
            batch_identical = got64 == want64

        # Concurrent throughput (one client per thread).
        def worker(out: list) -> None:
            with ServeClient(server.address_text) as handle:
                for i in range(N_PER_THREAD):
                    handle.synth(warm_specs[i % len(warm_specs)])
            out.append(True)

        done: list = []
        threads = [
            threading.Thread(target=worker, args=(done,))
            for _ in range(N_THREADS)
        ]
        started = perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        concurrent_s = perf_counter() - started
        assert len(done) == N_THREADS

        with ServeClient(server.address_text) as client:
            health = client.healthz()

    multi = _measure_multi_store(work_dir, store_path, local_batch)

    warm_mean = statistics.mean(latencies)
    numbers = {
        "cost_bound": COST_BOUND,
        "cli_per_invocation_s": cli_per_invocation,
        "cli_runs_s": [round(t, 4) for t in cli_times],
        "warm_queries": len(latencies),
        "warm_mean_s": warm_mean,
        "warm_p50_s": _percentile(latencies, 0.50),
        "warm_p99_s": _percentile(latencies, 0.99),
        "warm_throughput_rps": 1.0 / warm_mean,
        "concurrent_threads": N_THREADS,
        "concurrent_queries": N_THREADS * N_PER_THREAD,
        "concurrent_throughput_rps": N_THREADS * N_PER_THREAD / concurrent_s,
        "batch64_s": batch64_s,
        "batch64_identical_to_synthesize_many": batch_identical,
        "speedup_vs_cli": cli_per_invocation / warm_mean,
        "jobs_coalesced": health["jobs_coalesced"],
        "batches_executed": health["batches_executed"],
        "multi_store": multi,
        "python": platform.python_version(),
    }
    _JSON_PATH.write_text(json.dumps(numbers, indent=2) + "\n")
    return numbers


def _measure_multi_store(
    work_dir: Path, deep_path: Path, deep_batch: BatchSynthesizer
) -> dict:
    """One process, two stores, TCP + UNIX socket, access log attached.

    Routed single-target answers are verified identical to a local
    :class:`BatchSynthesizer` over the matching store/bound, per alias,
    on both transports.
    """
    from repro.io import load_access_log, parse_target

    shallow_path = work_dir / "shallow.rpro"
    search = CascadeSearch(GateLibrary(3), track_parents=True)
    search.extend_to(SHALLOW_BOUND)
    save_search(search, shallow_path)
    _h, _l, shallow_loaded = open_store(shallow_path)
    shallow_batch = BatchSynthesizer(shallow_loaded)

    specs = {
        "deep": [t.cycle_string() for t in _batch_targets(deep_batch, N_MULTI)],
        "shallow": [
            t.cycle_string()
            for t in _batch_targets(shallow_batch, N_MULTI)
        ],
    }
    sock = str(work_dir / "serve.sock")
    log = str(work_dir / "access.ndjson")
    latencies: dict = {}
    identical = True
    with BackgroundServer(
        [f"deep={deep_path}", f"shallow={shallow_path}"],
        unix=sock,
        access_log=log,
    ) as server:
        endpoints = {"tcp": server.address_text, "unix": f"unix:{sock}"}
        locals_ = {"deep": deep_batch, "shallow": shallow_batch}
        for transport, endpoint in endpoints.items():
            for alias, spec_list in specs.items():
                with ServeClient(endpoint, store=alias) as client:
                    client.healthz()
                    samples = []
                    for spec in spec_list:
                        started = perf_counter()
                        payload = client.synth(spec)
                        samples.append(perf_counter() - started)
                        local = locals_[alias].synthesize(parse_target(spec))
                        if payload["results"][0] != result_to_dict(local):
                            identical = False
                    latencies[f"{transport}_{alias}_p50_s"] = _percentile(
                        samples, 0.50
                    )
        with ServeClient(endpoints["tcp"]) as client:
            health = client.healthz()
    records = load_access_log(log)
    return {
        "aliases": sorted(health["stores"]),
        "routed_identical_to_local": identical,
        "queries_per_alias_per_transport": N_MULTI,
        **{key: latencies[key] for key in sorted(latencies)},
        "access_log_records": len(records),
        "healthz_latency_ms": health["latency_ms"].get("synth"),
        "healthz_queue_wait_ms": health["queue_wait_ms"].get("synth"),
    }


def report(numbers: dict) -> str:
    return (
        f"CLI per invocation:        {numbers['cli_per_invocation_s'] * 1e3:10.1f} ms\n"
        f"warm query p50 / p99:      {numbers['warm_p50_s'] * 1e6:10.1f} us /"
        f"{numbers['warm_p99_s'] * 1e6:8.1f} us\n"
        f"warm throughput:           {numbers['warm_throughput_rps']:10.0f} q/s\n"
        f"concurrent throughput:     {numbers['concurrent_throughput_rps']:10.0f} q/s"
        f"   ({numbers['concurrent_threads']} threads)\n"
        f"64-target batch:           {numbers['batch64_s'] * 1e3:10.1f} ms"
        f"   (identical: {numbers['batch64_identical_to_synthesize_many']})\n"
        f"coalescing:                {numbers['jobs_coalesced']} jobs in "
        f"{numbers['batches_executed']} dispatches\n"
        f"speedup vs CLI:            {numbers['speedup_vs_cli']:10.0f} x\n"
        f"multi-store (2 aliases):   tcp p50 "
        f"{numbers['multi_store']['tcp_deep_p50_s'] * 1e6:.1f} us / unix p50 "
        f"{numbers['multi_store']['unix_deep_p50_s'] * 1e6:.1f} us"
        f"   (routed identical: "
        f"{numbers['multi_store']['routed_identical_to_local']}, "
        f"{numbers['multi_store']['access_log_records']} access-log records)\n"
        f"(wrote {_JSON_PATH.name})"
    )


@pytest.mark.benchmark
def test_warm_server_is_50x_cli_and_batch_is_identical(tmp_path):
    numbers = measure(tmp_path)
    print("\n" + report(numbers))
    assert numbers["batch64_identical_to_synthesize_many"], (
        "synth-batch results diverged from BatchSynthesizer.synthesize_many"
    )
    assert numbers["speedup_vs_cli"] >= SPEEDUP_BAR, (
        f"warm server only {numbers['speedup_vs_cli']:.1f}x faster than "
        f"per-invocation CLI; the serving stack regressed past the "
        f"{SPEEDUP_BAR:.0f}x bar"
    )
    multi = numbers["multi_store"]
    assert multi["routed_identical_to_local"], (
        "multi-store routing returned results that differ from a local "
        "BatchSynthesizer over the matching store"
    )
    assert multi["aliases"] == ["deep", "shallow"]
    # Every routed request (plus the healthz warmups/snapshot) logged.
    assert multi["access_log_records"] >= 4 * multi[
        "queries_per_alias_per_transport"
    ]


if __name__ == "__main__":
    with tempfile.TemporaryDirectory() as tmp:
        print(report(measure(Path(tmp))))
    sys.exit(0)
