"""E10 -- the Section 1 motivation, quantified.

"Finding the smallest number of gates ... does not necessarily result in
a quantum implementation with the lowest cost."  Regenerates the
three-way comparison (optimal NCT / MMD heuristic / direct MCE) and the
classic optimal NCT gate-count histogram the baseline rests on.
"""

from repro.baselines.compare import compare_targets
from repro.baselines.mmd import mmd_synthesize
from repro.gates import named
from repro.render.tables import comparison_table_text

TARGET_NAMES = ("toffoli", "fredkin", "peres", "g2", "g3", "g4", "swap_bc")

#: expected (nct_qcost, direct_qcost) per target
EXPECTED = {
    "toffoli": (5, 5),
    "fredkin": (7, 7),
    "peres": (6, 4),
    "g2": (6, 4),
    "g3": (7, 4),
    "g4": (7, 4),
    "swap_bc": (3, 3),
}


def test_comparison_table(benchmark, library3, shared_search, nct_synthesizer):
    targets = {name: named.TARGETS[name] for name in TARGET_NAMES}

    rows = benchmark.pedantic(
        lambda: compare_targets(
            targets, library3, nct_synthesizer, shared_search
        ),
        rounds=3,
        iterations=1,
    )
    by_name = {row.name: row for row in rows}
    for name, (nct_cost, direct_cost) in EXPECTED.items():
        assert by_name[name].nct_quantum_cost == nct_cost, name
        assert by_name[name].direct_quantum_cost == direct_cost, name
    assert by_name["peres"].advantage == 2
    assert by_name["g3"].advantage == 3
    print("\n" + comparison_table_text(rows))


def test_nct_histogram(benchmark, nct_synthesizer):
    """Optimal NCT gate counts over all 40320 functions (Shende et al.)."""
    histogram = benchmark(nct_synthesizer.gate_count_distribution)
    assert histogram == {
        0: 1, 1: 12, 2: 102, 3: 625, 4: 2780,
        5: 8921, 6: 17049, 7: 10253, 8: 577,
    }
    print("\nOptimal NCT gate-count histogram:", histogram)


def test_mmd_average_overhead(benchmark, nct_synthesizer):
    """Average MMD-vs-optimal gate-count gap over a fixed sample."""
    import random

    from repro.perm.permutation import Permutation

    rng = random.Random(2025)
    targets = []
    for _ in range(100):
        images = list(range(8))
        rng.shuffle(images)
        targets.append(Permutation.from_images(images))

    def average_gap():
        total = 0
        for target in targets:
            total += len(mmd_synthesize(target, 3)) - (
                nct_synthesizer.optimal_gate_count(target)
            )
        return total / len(targets)

    gap = benchmark(average_gap)
    assert gap >= 0
    print(f"\nMMD average extra gates over optimal (n=100): {gap:.2f}")
